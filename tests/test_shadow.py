"""Unit tests for the incremental clairvoyant shadow layer.

The exactness contract — staged ``advance`` calls equal one fresh run — is
covered indirectly by the analytic simulators' suites and the golden
differential; this file exercises the shadow's own mechanics: checkpoint /
rollback, lazy-piece materialization, delta operations, the prefix oracle's
rebuild-on-regression rule, and the edge cases around simultaneous releases
and completions landing exactly on release events.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.clairvoyant import simulate_clairvoyant
from repro.core.errors import SimulationError
from repro.core.job import Instance, Job
from repro.core.power import PowerLaw
from repro.core.shadow import (
    ClairvoyantShadow,
    PrefixWeightOracle,
    ShadowCounters,
    SimulationContext,
)

ALPHA = 3.0


def _shadow(**kw) -> ClairvoyantShadow:
    return ClairvoyantShadow(ALPHA, **kw)


def _fresh_weight(jobs: list[Job], t: float) -> float:
    """Reference value: one fresh shadow run straight to ``t``."""
    sh = _shadow()
    for j in jobs:
        sh.insert_job(j.job_id, j.release, j.density, j.volume)
    sh.advance(t)
    return sh.remaining_weight()


JOBS = [
    Job(0, 0.0, 2.0, 1.0),
    Job(1, 0.5, 1.0, 3.0),
    Job(2, 1.25, 0.75, 2.0),
]


class TestAdvanceAndReads:
    def test_staged_advance_equals_fresh(self):
        sh = _shadow()
        for j in JOBS:
            sh.insert_job(j.job_id, j.release, j.density, j.volume)
        for t in (0.3, 0.5, 0.9, 1.25, 1.7, 2.4, 5.0):
            sh.advance(t)
            assert sh.remaining_weight() == _fresh_weight(JOBS, t)

    def test_advance_is_monotone_noop_backwards(self):
        sh = _shadow()
        sh.insert_job(0, 0.0, 1.0, 2.0)
        sh.advance(1.0)
        w = sh.remaining_weight()
        sh.advance(0.25)  # no-op, not an error
        assert sh.clock == 1.0
        assert sh.remaining_weight() == w

    def test_remaining_items_match_materialized_dict(self):
        sh = _shadow()
        for j in JOBS:
            sh.insert_job(j.job_id, j.release, j.density, j.volume)
        sh.advance(1.0)
        items = sh.remaining_items()  # non-destructive (lazy piece kept)
        sh.materialize()
        assert dict((j, v) for j, _, v in items) == sh.remaining_dict()

    def test_counters_accumulate(self):
        counters = ShadowCounters()
        sh = _shadow(counters=counters)
        sh.insert_job(0, 0.0, 1.0, 1.0)
        sh.advance(0.5)
        sh.remaining_weight()
        assert counters.inserts == 1
        assert counters.advances >= 1
        assert counters.queries == 1


class TestCheckpointRollback:
    def test_rollback_restores_exact_state(self):
        sh = _shadow()
        for j in JOBS:
            sh.insert_job(j.job_id, j.release, j.density, j.volume)
        sh.advance(0.8)
        ckpt = sh.checkpoint()
        w_at_ckpt = sh.remaining_weight()
        sh.advance(2.5)
        assert sh.remaining_weight() != w_at_ckpt
        sh.rollback(ckpt)
        assert sh.clock == ckpt.clock
        assert sh.remaining_weight() == w_at_ckpt

    def test_rollback_discards_later_inserts(self):
        sh = _shadow()
        sh.insert_job(0, 0.0, 1.0, 1.0)
        sh.advance(0.2)
        ckpt = sh.checkpoint()
        sh.insert_job(7, 0.3, 2.0, 1.0)
        sh.advance(0.4)
        sh.rollback(ckpt)
        assert 7 not in sh.remaining_dict()
        # Re-inserting the same id after rollback is allowed.
        sh.insert_job(7, 0.3, 2.0, 1.0)
        sh.advance(0.4)
        assert 7 in sh.remaining_dict()

    def test_checkpoint_materializes_lazy_piece(self):
        sh = _shadow()
        sh.insert_job(0, 0.0, 1.0, 4.0)
        sh.advance(0.5)  # inside the first decay piece — anchored, not split
        ckpt = sh.checkpoint()
        (entry,) = ckpt.remaining
        assert entry[0] == 0
        assert entry[1] < 4.0  # the piece was committed at the checkpoint

    def test_replay_after_rollback_is_bit_identical(self):
        sh = _shadow()
        for j in JOBS:
            sh.insert_job(j.job_id, j.release, j.density, j.volume)
        sh.advance(0.6)
        ckpt = sh.checkpoint()
        sh.advance(1.9)
        w_first = sh.remaining_weight()
        sh.rollback(ckpt)
        sh.advance(1.9)
        assert sh.remaining_weight() == w_first

    def test_query_with_job_equals_unfused_sequence(self):
        sh = _shadow()
        for j in JOBS[:2]:
            sh.insert_job(j.job_id, j.release, j.density, j.volume)
        sh.advance(0.7)
        base = sh.checkpoint()
        extra = Job(9, 0.7, 0.4, 5.0)
        sh.rollback(base)
        sh.insert_job(extra.job_id, extra.release, extra.density, extra.volume)
        sh.advance(1.6)
        w_unfused = sh.remaining_weight()
        w_fused = sh.query_with_job(
            base, 1.6, extra.job_id, extra.release, extra.density, extra.volume
        )
        assert w_fused == w_unfused
        # job_id=None skips the insertion.
        sh2 = _shadow()
        for j in JOBS[:2]:
            sh2.insert_job(j.job_id, j.release, j.density, j.volume)
        sh2.advance(0.7)
        base2 = sh2.checkpoint()
        sh2.rollback(base2)
        sh2.advance(1.6)
        assert sh.query_with_job(base, 1.6, None, 0.0, 0.0, 0.0) == sh2.remaining_weight()


class TestDeltas:
    def test_insert_before_committed_past_rejected(self):
        sh = _shadow()
        sh.insert_job(0, 0.0, 1.0, 0.5)
        sh.advance(math.inf)  # job completes; the loop committed past t=0
        with pytest.raises(SimulationError, match="committed past"):
            sh.insert_job(1, sh.clock * 0.5, 1.0, 1.0)

    def test_insert_at_clock_splits_like_fresh_run(self):
        # Insert with release <= clock must reproduce a fresh run that knew
        # the job all along (split of the in-progress piece at the release).
        late = Job(5, 0.6, 1.0, 2.0)
        sh = _shadow()
        for j in JOBS[:2]:
            sh.insert_job(j.job_id, j.release, j.density, j.volume)
        sh.advance(1.0)
        sh.insert_job(late.job_id, late.release, late.density, late.volume)
        assert sh.remaining_weight() == _fresh_weight(JOBS[:2] + [late], 1.0)

    def test_duplicate_and_nonpositive_rejected(self):
        sh = _shadow()
        sh.insert_job(0, 0.0, 1.0, 1.0)
        with pytest.raises(SimulationError, match="already known"):
            sh.insert_job(0, 0.5, 1.0, 1.0)
        with pytest.raises(ValueError, match="volume"):
            sh.insert_job(1, 0.0, 1.0, 0.0)
        with pytest.raises(ValueError, match="volume"):
            sh.insert_job(2, 0.0, 1.0, -2.0)
        with pytest.raises(ValueError, match="density"):
            sh.insert_job(3, 0.0, 0.0, 1.0)

    def test_grow_weight_pending_only(self):
        sh = _shadow()
        sh.insert_job(0, 0.0, 1.0, 1.0)
        sh.insert_job(1, 2.0, 1.0, 0.5)
        sh.grow_weight(1, 0.25)  # pending: fine
        with pytest.raises(SimulationError, match="already admitted"):
            sh.grow_weight(0, 0.1)
        with pytest.raises(SimulationError, match="not known"):
            sh.grow_weight(42, 0.1)
        sh.advance(math.inf)
        # The grown volume was what the run saw.
        assert sh.remaining_dict() == {}
        assert sh.clock == _completion_clock([Job(0, 0.0, 1.0, 1.0), Job(1, 2.0, 0.75, 1.0)])


def _completion_clock(jobs: list[Job]) -> float:
    sh = _shadow()
    for j in jobs:
        sh.insert_job(j.job_id, j.release, j.density, j.volume)
    sh.advance(math.inf)
    return sh.clock


class TestEdgeCases:
    def test_simultaneous_releases_admitted_together(self):
        jobs = [Job(0, 1.0, 1.0, 2.0), Job(1, 1.0, 1.0, 1.0), Job(2, 1.0, 0.5, 3.0)]
        sh = _shadow()
        for j in jobs:
            sh.insert_job(j.job_id, j.release, j.density, j.volume)
        sh.advance(1.0)
        assert set(sh.remaining_dict()) == {0, 1, 2}
        assert sh.remaining_weight() == sum(j.density * j.volume for j in jobs)
        # Staged queries across the burst agree with fresh runs.
        for t in (1.0, 1.2, 1.9, 4.0):
            sh.advance(t)
            assert sh.remaining_weight() == _fresh_weight(jobs, t)

    def test_completion_exactly_at_release_event(self):
        # Volume tuned so job 0 completes exactly when job 1 is released:
        # decay from w0=1 with rho=1 reaches 0 in alpha/(alpha-1) * w0^((alpha-1)/alpha)...
        # instead, place the release at the analytically computed completion.
        sh0 = _shadow()
        sh0.insert_job(0, 0.0, 1.0, 1.0)
        sh0.advance(math.inf)
        t_done = sh0.clock
        jobs = [Job(0, 0.0, 1.0, 1.0), Job(1, t_done, 1.0, 1.0)]
        sh = _shadow()
        for j in jobs:
            sh.insert_job(j.job_id, j.release, j.density, j.volume)
        for t in (t_done * 0.5, t_done, t_done * 1.5, math.inf):
            sh.advance(t)
            ref = _fresh_weight(jobs, t) if math.isfinite(t) else 0.0
            assert sh.remaining_weight() == ref
        assert sh.remaining_dict() == {}

    def test_zero_duration_pieces_at_shared_instant(self):
        # Two jobs released together, one of negligible volume relative to
        # the other: the tiny job's decay piece is near-instant and must not
        # wedge the loop or corrupt the weight.
        jobs = [Job(0, 0.0, 1e-12, 5.0), Job(1, 0.0, 1.0, 1.0)]
        sh = _shadow()
        for j in jobs:
            sh.insert_job(j.job_id, j.release, j.density, j.volume)
        sh.advance(0.5)
        assert sh.remaining_weight() == _fresh_weight(jobs, 0.5)

    def test_shadow_matches_analytic_simulator(self):
        # The schedule recorded through the callback equals the simulator's.
        inst = Instance(JOBS)
        run = simulate_clairvoyant(inst, PowerLaw(ALPHA))
        pieces = []
        sh = _shadow(record=lambda kind, t0, t1, jid, w0: pieces.append((t0, t1, jid, w0)))
        for j in JOBS:
            sh.insert_job(j.job_id, j.release, j.density, j.volume)
        sh.advance(math.inf)
        assert pieces == [(s.t0, s.t1, s.job_id, s.x0) for s in run.schedule.segments]


class TestPrefixWeightOracle:
    def test_monotone_stream_matches_fresh(self):
        oracle = PrefixWeightOracle(ALPHA)
        added = []
        for j in JOBS:
            oracle.add_job(j.job_id, j.release, j.density, j.volume)
            added.append(j)
            t = j.release + 0.3
            assert oracle.weight_at(t) == _fresh_weight(added, t)

    def test_query_regression_triggers_rebuild(self):
        counters = ShadowCounters()
        oracle = PrefixWeightOracle(ALPHA, counters=counters)
        for j in JOBS:
            oracle.add_job(j.job_id, j.release, j.density, j.volume)
        w_late = oracle.weight_at(2.0)
        assert counters.rebuilds == 0
        w_early = oracle.weight_at(0.75)  # regression: rebuild from scratch
        assert counters.rebuilds == 1
        assert w_early == _fresh_weight(JOBS, 0.75)
        assert oracle.weight_at(2.0) == w_late

    def test_out_of_order_insert_invalidates_prefix_cache(self):
        counters = ShadowCounters()
        oracle = PrefixWeightOracle(ALPHA, counters=counters)
        oracle.add_job(0, 0.0, 1.0, 2.0)
        oracle.weight_at(3.0)
        # A job released in the oracle's committed past: the cached run no
        # longer covers the true prefix instance and must be discarded.
        oracle.add_job(1, 0.5, 3.0, 1.0)
        w = oracle.weight_at(3.0)
        assert counters.rebuilds == 1
        assert w == _fresh_weight([Job(0, 0.0, 2.0, 1.0), Job(1, 0.5, 1.0, 3.0)], 3.0)

    def test_remaining_items_at(self):
        oracle = PrefixWeightOracle(ALPHA)
        for j in JOBS:
            oracle.add_job(j.job_id, j.release, j.density, j.volume)
        items = oracle.remaining_items_at(0.9)
        assert [jid for jid, _, _ in items] == [0, 1]
        assert oracle.weight_at(0.9) == _fresh_weight(JOBS, 0.9)


class TestSimulationContext:
    def test_factories_share_counters(self):
        ctx = SimulationContext(PowerLaw(ALPHA))
        sh = ctx.shadow()
        oracle = ctx.prefix_oracle()
        sh.insert_job(0, 0.0, 1.0, 1.0)
        oracle.add_job(1, 0.0, 1.0, 1.0)
        assert ctx.counters.inserts == 2

    def test_non_power_law_rejected(self):
        from repro.core.power import TabulatedPower

        tab = TabulatedPower([0.0, 1.0, 2.0], [0.0, 1.0, 8.0])
        ctx = SimulationContext(tab)
        with pytest.raises(TypeError, match="PowerLaw"):
            ctx.shadow()

    def test_capped_power_enables_s_max(self):
        from repro.extensions.bounded_speed import CappedPowerLaw

        ctx = SimulationContext(CappedPowerLaw(ALPHA, 1.5))
        sh = ctx.shadow()
        assert sh.s_max == 1.5
