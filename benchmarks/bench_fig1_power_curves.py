"""E2 — Figure 1: the single-job power curves.

(a) Algorithm C: power starts at P = W and decays; flow-time == energy.
(b) Algorithm NC: power starts at 0 and grows along the *reversed* curve;
    flow-time / energy = 1/(1 - 1/alpha) ... concretely the area above the
    curve over the area under it equals 1/beta (§1.2's 'crucial observation',
    independent of the job's weight).
"""

from __future__ import annotations

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.analysis import format_ascii_chart, format_table, power_curve
from repro.core import evaluate

from conftest import emit

ALPHA = 3.0
WEIGHT = 4.0


def _run():
    power = PowerLaw(ALPHA)
    inst = Instance([Job(0, 0.0, WEIGHT, 1.0)])
    c = simulate_clairvoyant(inst, power)
    nc = simulate_nc_uniform(inst, power)
    curve_c = power_curve(c.schedule, power, samples=72, label="C (clairvoyant)")
    curve_nc = power_curve(nc.schedule, power, samples=72, label="NC (non-clairvoyant)")
    rep_c = evaluate(c.schedule, inst, power)
    rep_nc = evaluate(nc.schedule, inst, power)
    return inst, curve_c, curve_nc, rep_c, rep_nc


def test_fig1_power_curves(benchmark):
    inst, curve_c, curve_nc, rep_c, rep_nc = benchmark.pedantic(_run, rounds=1, iterations=1)
    chart = format_ascii_chart(
        [
            (curve_c.label, curve_c.times, curve_c.values),
            (curve_nc.label, curve_nc.times, curve_nc.values),
        ],
        title=f"Figure 1 — single job (W = {WEIGHT}), power vs time, alpha = {ALPHA}",
    )
    table = format_table(
        ["algorithm", "energy", "frac flow", "flow/energy", "paper"],
        [
            ["C", rep_c.energy, rep_c.fractional_flow, rep_c.fractional_flow / rep_c.energy, 1.0],
            [
                "NC",
                rep_nc.energy,
                rep_nc.fractional_flow,
                rep_nc.fractional_flow / rep_nc.energy,
                1.0 / (1.0 - 1.0 / ALPHA),
            ],
        ],
        floatfmt=".6f",
    )
    emit("fig1_power_curves", chart + "\n\n" + table)

    assert abs(rep_c.fractional_flow / rep_c.energy - 1.0) < 1e-9
    assert abs(rep_nc.fractional_flow / rep_nc.energy - 1.0 / (1 - 1 / ALPHA)) < 1e-9
    assert abs(rep_nc.energy - rep_c.energy) < 1e-9 * rep_c.energy
