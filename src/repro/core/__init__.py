"""Core substrate: jobs, power functions, analytic kernels, schedules,
metrics, the non-clairvoyance oracle and the generic numeric engine."""

from .errors import (
    ClairvoyanceViolationError,
    ConvergenceError,
    InvalidInstanceError,
    InvalidPowerFunctionError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from .engine import EngineResult, NumericEngine, SchedulingPolicy
from .job import Instance, Job
from .metrics import CostReport, evaluate, validate_schedule
from .oracle import ReleaseInfo, VolumeOracle
from .power import CUBE_LAW, PowerFunction, PowerLaw, TabulatedPower
from .schedule import (
    ConstantSegment,
    DecaySegment,
    GrowthSegment,
    IdleSegment,
    ScaledSegment,
    Schedule,
    ScheduleBuilder,
    Segment,
)
from .shadow import (
    ClairvoyantShadow,
    PrefixWeightOracle,
    ShadowCheckpoint,
    ShadowCounters,
    SimulationContext,
)
from .tracing import (
    EVENT_KINDS,
    NULL_RECORDER,
    JsonlRecorder,
    MemoryRecorder,
    MetricsRegistry,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
)

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidPowerFunctionError",
    "ScheduleError",
    "ClairvoyanceViolationError",
    "SimulationError",
    "ConvergenceError",
    "Job",
    "Instance",
    "PowerFunction",
    "PowerLaw",
    "TabulatedPower",
    "CUBE_LAW",
    "Segment",
    "IdleSegment",
    "ConstantSegment",
    "DecaySegment",
    "GrowthSegment",
    "ScaledSegment",
    "Schedule",
    "ScheduleBuilder",
    "CostReport",
    "evaluate",
    "validate_schedule",
    "VolumeOracle",
    "ReleaseInfo",
    "SchedulingPolicy",
    "NumericEngine",
    "EngineResult",
    "SimulationContext",
    "ClairvoyantShadow",
    "PrefixWeightOracle",
    "ShadowCheckpoint",
    "ShadowCounters",
    "EVENT_KINDS",
    "TraceEvent",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MemoryRecorder",
    "JsonlRecorder",
    "MetricsRegistry",
    "read_jsonl",
]
