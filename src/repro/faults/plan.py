"""Deterministic, seeded fault plans.

A *fault plan* is data, not behaviour: an immutable list of
:class:`FaultSpec` records saying what goes wrong, where, and when.  The
injectors in :mod:`repro.faults.injector` interpret a plan against a concrete
run; the supervisor (:mod:`repro.runtime.supervisor`) retries against the
*same* injector state, so a transient fault (``max_firings`` exhausted)
does not re-fire on the retried attempt — that is the transient-fault model.

Plans are generated from a seed via :func:`generate_plan`, so a chaos
campaign (``repro chaos``) is reproducible end to end: same seed, same
faults, same recovery story.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = [
    "FAULT_KINDS",
    "INSTANCE_KINDS",
    "PROCESS_KINDS",
    "TRANSIENT_KINDS",
    "SERVICE_KINDS",
    "FaultSpec",
    "FaultPlan",
    "generate_plan",
]

#: The closed set of fault kinds the injectors understand.
#:
#: ``oracle_lie``        — a completed job's revealed volume is perturbed
#:                         (mode ``scale``), replaced by NaN (``nan``), or the
#:                         reveal raises (``withhold``).
#: ``release_jitter``    — a job's release time is shifted by ``magnitude``.
#: ``release_duplicate`` — a phantom copy of a job is injected into the
#:                         release stream.
#: ``release_drop``      — a job is dropped from the stream; the supervisor's
#:                         retry restores it (drop-and-retry semantics).
#: ``power_transient``   — the power function raises ``ConvergenceError`` on
#:                         its n-th speed query.
#: ``power_nan``         — the power function returns NaN on its n-th query.
#: ``step_corruption``   — float noise on the engine's processed volume.
#: ``machine_failure``   — a parallel machine dies at ``at_time``; its
#:                         unfinished jobs re-release on the survivors.
#: ``worker_kill``       — a pool worker process is SIGKILLed right after it
#:                         receives its ``after_calls``-th shard dispatch
#:                         (process-level; interpreted by
#:                         :mod:`repro.runtime.pool`).
#: ``shard_hang``        — the ``after_calls``-th shard wedges inside its
#:                         worker (the worker keeps heartbeating but never
#:                         returns), exercising the pool's shard timeout.
#: ``checkpoint_corruption`` — a durable per-shard checkpoint's bytes are
#:                         corrupted on write; the store's checksum must
#:                         reject it on load and recompute the shard.
#: ``torn_journal_write`` — a session journal append crashes mid-line: a
#:                         prefix of the record reaches disk, the process
#:                         dies, and the batch is never acknowledged.
#:                         Recovery must drop the tear and restore exactly
#:                         the acked prefix.
#: ``journal_corruption`` — a journal line's body is flipped *after* its
#:                         checksum was taken; recovery must detect the
#:                         mismatch and quarantine the journal instead of
#:                         restoring a silently wrong session.
#: ``slow_handler``      — an HTTP handler stalls for ``magnitude`` seconds
#:                         before running, exercising the per-request
#:                         deadline (504 with a cleanly cancelled handler).
#: ``connection_drop``   — the server drops the connection mid-response on
#:                         the ``after_calls``-th gated request; the client
#:                         must see a torn response, never a half-committed
#:                         session.
FAULT_KINDS = frozenset(
    {
        "oracle_lie",
        "release_jitter",
        "release_duplicate",
        "release_drop",
        "power_transient",
        "power_nan",
        "step_corruption",
        "machine_failure",
        "worker_kill",
        "shard_hang",
        "checkpoint_corruption",
        "torn_journal_write",
        "journal_corruption",
        "slow_handler",
        "connection_drop",
    }
)

#: Kinds that perturb the instance itself (resolved before a run starts).
INSTANCE_KINDS = frozenset({"release_jitter", "release_duplicate", "release_drop"})

#: Process-level kinds, realised outside the simulators by the sharded
#: execution layer: the worker pool interprets ``worker_kill`` /
#: ``shard_hang`` and the checkpoint store interprets
#: ``checkpoint_corruption``.  All fire through the shared injector budget,
#: so a fault that fired once stays quiet on the re-dispatched attempt.
PROCESS_KINDS = frozenset({"worker_kill", "shard_hang", "checkpoint_corruption"})

#: Kinds that fire during a run and stop firing once ``max_firings`` is spent
#: — the faults a retry can survive without any plan change.
TRANSIENT_KINDS = frozenset(
    {"oracle_lie", "power_transient", "power_nan", "step_corruption", "release_drop"}
)

#: HTTP-service kinds, realised outside the simulators by the service layer:
#: the session journal interprets ``torn_journal_write`` /
#: ``journal_corruption`` (via :meth:`FaultInjector.journal_filter`) and the
#: ASGI request gate interprets ``slow_handler`` / ``connection_drop`` (via
#: :meth:`FaultInjector.service_gate`).  All spend the shared injector
#: budget, so a service fault that fired once stays quiet on the retried
#: request — the transient-fault model at the HTTP boundary.
SERVICE_KINDS = frozenset(
    {"torn_journal_write", "journal_corruption", "slow_handler", "connection_drop"}
)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scheduled fault.

    ``job_id`` / ``machine`` select the target where that makes sense
    (``None`` = first eligible).  ``at_time`` gates time-triggered kinds;
    ``after_calls`` gates call-count-triggered kinds (the n-th oracle reveal
    or power query fires the fault).  ``magnitude`` scales the perturbation;
    ``mode`` refines the kind (see :data:`FAULT_KINDS`).  ``max_firings``
    bounds how often the fault fires across *all* attempts of a supervised
    run — the default of 1 makes every fault transient.
    """

    kind: str
    job_id: int | None = None
    machine: int | None = None
    at_time: float | None = None
    after_calls: int = 0
    magnitude: float = 0.5
    mode: str = "scale"
    max_firings: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.max_firings < 1:
            raise ValueError(f"max_firings must be >= 1, got {self.max_firings}")
        if self.after_calls < 0:
            raise ValueError(f"after_calls must be >= 0, got {self.after_calls}")

    def describe(self) -> str:
        parts = [self.kind]
        if self.mode != "scale":
            parts.append(f"mode={self.mode}")
        if self.job_id is not None:
            parts.append(f"job={self.job_id}")
        if self.machine is not None:
            parts.append(f"machine={self.machine}")
        if self.at_time is not None:
            parts.append(f"t={self.at_time:.4g}")
        if self.after_calls:
            parts.append(f"after={self.after_calls}")
        return " ".join(parts)

    def as_payload(self) -> dict[str, object]:
        """JSON-representable form for ``fault_injected`` trace payloads.

        The spec's kind is keyed ``fault`` (the payload rides inside a trace
        event whose own ``kind`` is ``fault_injected``)."""
        return {
            "fault": self.kind,
            "job": self.job_id,
            "machine": self.machine,
            "at_time": self.at_time,
            "after_calls": self.after_calls,
            "magnitude": self.magnitude,
            "mode": self.mode,
        }


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable, seeded collection of :class:`FaultSpec` s."""

    seed: int
    faults: tuple[FaultSpec, ...] = field(default=())

    @classmethod
    def empty(cls, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, faults=())

    def of_kind(self, *kinds: str) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.kind in kinds)

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def describe(self) -> str:
        if not self.faults:
            return f"plan(seed={self.seed}): no faults"
        inner = "; ".join(f.describe() for f in self.faults)
        return f"plan(seed={self.seed}): {inner}"


def generate_plan(
    seed: int,
    *,
    n_faults: int = 1,
    kinds: tuple[str, ...] | None = None,
    n_jobs: int | None = None,
    machines: int | None = None,
    horizon: float = 2.0,
    transient_only: bool = True,
) -> FaultPlan:
    """Draw a deterministic fault plan from ``seed``.

    ``kinds`` restricts the pool (default: every transient kind when
    ``transient_only``, else every kind applicable to the run shape).
    ``n_jobs`` / ``machines`` bound the drawn targets; ``horizon`` bounds
    ``at_time`` draws.  Same arguments, same plan — always.
    """
    rng = random.Random(seed)
    if kinds is None:
        pool = tuple(sorted(TRANSIENT_KINDS if transient_only else FAULT_KINDS))
    else:
        for k in kinds:
            if k not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {k!r}")
        pool = kinds
    faults = []
    for _ in range(n_faults):
        kind = rng.choice(pool)
        job_id = rng.randrange(n_jobs) if n_jobs else None
        machine = rng.randrange(machines) if (machines and kind == "machine_failure") else None
        at_time = rng.uniform(0.0, horizon) if kind in ("machine_failure",) else None
        if kind in ("power_transient", "power_nan"):
            after_calls = rng.randrange(1, 6)
        elif kind in ("worker_kill", "shard_hang", "checkpoint_corruption"):
            # Target shard / dispatch ordinal: kept small so the fault lands
            # even on shard plans of only a few shards.
            after_calls = rng.randrange(1, 4)
        elif kind in SERVICE_KINDS:
            # Target journal append / gated request ordinal: small, so the
            # fault lands early in even a short session.
            after_calls = rng.randrange(1, 4)
        else:
            after_calls = 0
        if kind == "oracle_lie":
            mode = rng.choice(("scale", "nan", "withhold"))
        elif kind == "release_jitter":
            mode = "shift"
        else:
            mode = "scale"
        magnitude = rng.uniform(0.1, 0.9)
        faults.append(
            FaultSpec(
                kind=kind,
                job_id=job_id,
                machine=machine,
                at_time=at_time,
                after_calls=after_calls,
                magnitude=magnitude,
                mode=mode,
            )
        )
    return FaultPlan(seed=seed, faults=tuple(faults))
