"""Scheduling-as-a-service: the paper's algorithms behind an async API.

The non-clairvoyant model made operational — multi-tenant sessions accept
jobs as online arrivals through a bounded (backpressured) queue, journal
every committed batch to a per-session write-ahead log, and answer live
speed/schedule/metrics/Gantt queries, verified Lemma 3/4 reports, and
sharded parallel-machine campaigns.  Crashed services restore bit-identical
sessions by replaying their journals.  See ``docs/service.md``.

Requires the ``service`` extra (pydantic); the HTTP layer
(:mod:`repro.service.asgi`) and the journal (:mod:`repro.service.journal`)
are dependency-free, so this package resolves its attributes lazily —
importing a pydantic-free submodule never pulls pydantic in.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "create_app",
    "App",
    "ClientResponse",
    "ConnectionAborted",
    "HTTPError",
    "Request",
    "Response",
    "TestClient",
    "serve",
    "Backpressure",
    "Campaign",
    "CampaignPruned",
    "RateLimited",
    "RestoreReport",
    "Session",
    "SessionClosed",
    "SessionGone",
    "SessionJournal",
    "SessionManager",
    "StoreFull",
]

_ASGI = {
    "App",
    "ClientResponse",
    "ConnectionAborted",
    "HTTPError",
    "Request",
    "Response",
    "TestClient",
    "serve",
}
_SESSIONS = {
    "Backpressure",
    "Campaign",
    "CampaignPruned",
    "RateLimited",
    "RestoreReport",
    "Session",
    "SessionClosed",
    "SessionGone",
    "SessionManager",
    "StoreFull",
}


def __getattr__(name: str) -> Any:
    if name == "create_app":
        from .app import create_app

        return create_app
    if name in _ASGI:
        from . import asgi

        return getattr(asgi, name)
    if name in _SESSIONS:
        from . import sessions

        return getattr(sessions, name)
    if name == "SessionJournal":
        from .journal import SessionJournal

        return SessionJournal
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
