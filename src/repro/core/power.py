"""Power functions: the energy model of a speed-scalable machine.

The machine runs at a non-negative speed ``s``; the instantaneous power draw
(energy per unit time) is ``P(s)``.  The paper's results are stated for the
standard polynomial model ``P(s) = s**alpha`` with ``alpha > 1`` (cube law in
practice, ``alpha == 3``), but several structural lemmas (Lemmas 3 and 6) hold
for any monotone convex power function, so the library supports both:

* :class:`PowerLaw` — the ``s**alpha`` model with exact closed-form inverse and
  derivative; every analytic fast path in the simulators keys off this class.
* :class:`TabulatedPower` — an arbitrary convex power curve given by samples,
  with monotone interpolation and a numeric inverse; exercised by the generic
  numeric engine.

Both expose the interface of :class:`PowerFunction`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from .errors import InvalidPowerFunctionError

__all__ = ["PowerFunction", "PowerLaw", "TabulatedPower", "CUBE_LAW"]


class PowerFunction(ABC):
    """A monotone, convex map from machine speed to instantaneous power.

    Implementations must satisfy ``P(0) == 0``, monotone non-decreasing and
    convex on ``[0, inf)`` — the standing assumptions of the paper (§2).
    """

    @abstractmethod
    def power(self, speed: float) -> float:
        """Instantaneous power ``P(s)`` at the given speed ``s >= 0``."""

    @abstractmethod
    def speed(self, power: float) -> float:
        """Inverse map ``P^{-1}(w)``: the speed whose power draw is ``w``."""

    @abstractmethod
    def marginal_power(self, speed: float) -> float:
        """Derivative ``P'(s)`` — marginal energy cost of extra speed."""

    def power_array(self, speeds: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`power` (default: elementwise loop)."""
        return np.array([self.power(float(s)) for s in np.asarray(speeds).ravel()]).reshape(
            np.asarray(speeds).shape
        )

    def validate(self, probe_max: float = 100.0, samples: int = 257) -> None:
        """Check ``P(0)==0``, monotonicity and convexity on a probe grid.

        Raises :class:`InvalidPowerFunctionError` if any property fails.  The
        check is a sampled heuristic for tabulated/user functions; it is exact
        for :class:`PowerLaw`.
        """
        if abs(self.power(0.0)) > 1e-12:
            raise InvalidPowerFunctionError(f"P(0) must be 0, got {self.power(0.0)!r}")
        grid = np.linspace(0.0, probe_max, samples)
        vals = self.power_array(grid)
        diffs = np.diff(vals)
        if np.any(diffs < -1e-9 * max(1.0, float(np.max(np.abs(vals))))):
            raise InvalidPowerFunctionError("power function is not monotone non-decreasing")
        second = np.diff(vals, 2)
        if np.any(second < -1e-6 * max(1.0, float(np.max(np.abs(vals))))):
            raise InvalidPowerFunctionError("power function is not convex")


class PowerLaw(PowerFunction):
    """The polynomial power model ``P(s) = s**alpha``, ``alpha > 1``.

    This is the model under which every quantitative result of the paper is
    stated.  ``beta = 1 - 1/alpha`` appears throughout the closed forms (see
    :mod:`repro.core.kernels`) and is precomputed here.
    """

    __slots__ = ("alpha", "beta", "inv_alpha")

    def __init__(self, alpha: float) -> None:
        if not (alpha > 1.0):
            raise InvalidPowerFunctionError(f"PowerLaw requires alpha > 1, got {alpha}")
        if not math.isfinite(alpha):
            raise InvalidPowerFunctionError("alpha must be finite")
        self.alpha = float(alpha)
        self.beta = 1.0 - 1.0 / self.alpha
        #: hoisted ``1/alpha`` so the per-step ``speed`` call skips the
        #: division (the same float the inline division would produce).
        self.inv_alpha = 1.0 / self.alpha

    def power(self, speed: float) -> float:
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        return speed**self.alpha

    def speed(self, power: float) -> float:
        if power < 0:
            raise ValueError(f"power must be non-negative, got {power}")
        return power**self.inv_alpha

    def marginal_power(self, speed: float) -> float:
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        return self.alpha * speed ** (self.alpha - 1.0)

    def power_array(self, speeds: np.ndarray) -> np.ndarray:
        return np.asarray(speeds, dtype=float) ** self.alpha

    def __repr__(self) -> str:
        return f"PowerLaw(alpha={self.alpha})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PowerLaw) and other.alpha == self.alpha

    def __hash__(self) -> int:
        return hash(("PowerLaw", self.alpha))


class TabulatedPower(PowerFunction):
    """A convex power curve given by ``(speed, power)`` sample points.

    Between samples the curve is linear (which preserves convexity and
    monotonicity of the samples); beyond the last sample it extrapolates with
    the final slope.  The inverse is computed by interpolation on the swapped
    axes, which is exact for the piecewise-linear model.
    """

    def __init__(self, speeds: Sequence[float], powers: Sequence[float]) -> None:
        s = np.asarray(speeds, dtype=float)
        p = np.asarray(powers, dtype=float)
        if s.ndim != 1 or s.shape != p.shape or s.size < 2:
            raise InvalidPowerFunctionError("need matching 1-D sample arrays with >= 2 points")
        if s[0] != 0.0 or p[0] != 0.0:
            raise InvalidPowerFunctionError("samples must start at (0, 0)")
        if np.any(np.diff(s) <= 0):
            raise InvalidPowerFunctionError("speed samples must be strictly increasing")
        if np.any(np.diff(p) < 0):
            raise InvalidPowerFunctionError("power samples must be non-decreasing")
        slopes = np.diff(p) / np.diff(s)
        if np.any(np.diff(slopes) < -1e-12):
            raise InvalidPowerFunctionError("power samples must be convex")
        self._s = s
        self._p = p
        self._final_slope = float(slopes[-1]) if slopes.size else 0.0

    def power(self, speed: float) -> float:
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        if speed <= self._s[-1]:
            return float(np.interp(speed, self._s, self._p))
        return float(self._p[-1] + self._final_slope * (speed - self._s[-1]))

    def speed(self, power: float) -> float:
        if power < 0:
            raise ValueError(f"power must be non-negative, got {power}")
        if power <= self._p[-1]:
            # Flat power stretches (only possible at the start of a convex
            # curve through the origin) map to their *right* edge: the maximal
            # speed at that power.  Running faster for free dominates, which
            # is the semantics the power-equals-weight scheduling rule needs.
            idx = int(np.searchsorted(self._p, power, side="right"))
            if idx >= self._p.size:
                return float(self._s[-1])
            if self._p[idx - 1] == power and idx >= 1:
                return float(self._s[idx - 1])
            p0, p1 = self._p[idx - 1], self._p[idx]
            s0, s1 = self._s[idx - 1], self._s[idx]
            return float(s0 + (power - p0) / (p1 - p0) * (s1 - s0))
        if self._final_slope == 0.0:
            raise ValueError("power exceeds the range of a saturating tabulated curve")
        return float(self._s[-1] + (power - self._p[-1]) / self._final_slope)

    def marginal_power(self, speed: float) -> float:
        if speed < 0:
            raise ValueError(f"speed must be non-negative, got {speed}")
        if speed >= self._s[-1]:
            return self._final_slope
        idx = int(np.searchsorted(self._s, speed, side="right"))
        idx = max(1, min(idx, self._s.size - 1))
        return float((self._p[idx] - self._p[idx - 1]) / (self._s[idx] - self._s[idx - 1]))

    def __repr__(self) -> str:
        return f"TabulatedPower({self._s.size} samples, max speed {self._s[-1]})"


#: The practically ubiquitous cube law ``P(s) = s**3`` used as default.
CUBE_LAW = PowerLaw(3.0)
