"""Reproduction of Table 1 — the paper's summary of competitive ratios.

Each row of the paper's table is a (objective, density-model) setting; the
columns are the three information models.  The clairvoyant and
known-*weight* columns cite prior work (we reproduce them as the paper
states them); the known-*density* column is this paper's contribution and is
reproduced *empirically*: the paper's algorithm is run over a standard
instance suite and its worst measured ratio against a certified OPT lower
bound is reported next to the theoretical guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.power import PowerLaw
from .ratios import empirical_ratio
from .report import format_table
from .suites import nonuniform_suite, uniform_suite

__all__ = ["Table1Row", "build_table1", "render_table1", "theoretical_bound"]


def theoretical_bound(objective: str, densities: str, alpha: float) -> float | None:
    """This paper's proved competitive ratio for a Table-1 row (None when the
    paper only states an exponential-in-alpha constant)."""
    if densities == "unit":
        if objective == "fractional":
            return 2.0 + 1.0 / (alpha - 1.0)  # Theorem 5
        return 3.0 + 1.0 / (alpha - 1.0)  # Theorem 9
    return None  # 2^{O(alpha)}, constants deferred to the full version


@dataclass(frozen=True)
class Table1Row:
    objective: str  # "integral" | "fractional"
    densities: str  # "unit" | "arbitrary"
    clairvoyant: str  # literature column, as cited by the paper
    nc_known_weight: str  # literature column, as cited by the paper
    theoretical: float | None  # this paper's bound (None => 2^{O(alpha)})
    measured_max: float  # worst empirical ratio over the suite
    worst_instance: str


_LITERATURE = {
    ("integral", "unit"): ("4 (unit density) [5]; 3 (unit weight) [8]", "2a^2/ln a [11]"),
    ("fractional", "unit"): ("2 [8]", "-"),
    ("integral", "arbitrary"): ("O(a/log a) [8,5]", "(2-1/a)^2 [7] (release at 0)"),
    ("fractional", "arbitrary"): ("2 [8]", "-"),
}


def build_table1(
    alpha: float = 3.0,
    *,
    uniform_n: int = 24,
    nonuniform_n: int = 8,
    seeds: tuple[int, ...] = (1, 2, 3),
    slots: int = 300,
    iterations: int = 1500,
    max_step: float = 2e-2,
) -> list[Table1Row]:
    """Measure all four rows of Table 1 at the given ``alpha``."""
    power = PowerLaw(alpha)
    rows: list[Table1Row] = []

    uni = uniform_suite(n=uniform_n, seeds=seeds, alpha=alpha)
    nonuni = nonuniform_suite(n=nonuniform_n, seeds=seeds[:2], alpha=alpha)

    settings = [
        ("integral", "unit", "NC", uni),
        ("fractional", "unit", "NC", uni),
        ("integral", "arbitrary", "NC_GENERAL_INT", nonuni),
        ("fractional", "arbitrary", "NC_GENERAL", nonuni),
    ]
    for objective, densities, algo, suite in settings:
        worst, worst_name = 0.0, "-"
        for name, inst in suite:
            res = empirical_ratio(
                algo,
                inst,
                power,
                objective=objective,
                slots=slots,
                iterations=iterations,
                max_step=max_step,
            )
            if res.ratio > worst:
                worst, worst_name = res.ratio, name
        lit_c, lit_w = _LITERATURE[(objective, densities)]
        rows.append(
            Table1Row(
                objective=objective,
                densities=densities,
                clairvoyant=lit_c,
                nc_known_weight=lit_w,
                theoretical=theoretical_bound(objective, densities, alpha),
                measured_max=worst,
                worst_instance=worst_name,
            )
        )
    return rows


def render_table1(rows: list[Table1Row], alpha: float) -> str:
    """Text rendering in the paper's row order."""
    body = []
    for r in rows:
        theory = f"{r.theoretical:.3f}" if r.theoretical is not None else "2^O(a)"
        body.append(
            [
                f"{r.objective} {r.densities}",
                r.clairvoyant,
                r.nc_known_weight,
                theory,
                r.measured_max,
                r.worst_instance,
            ]
        )
    return format_table(
        ["setting", "clairvoyant (lit.)", "NC known weight (lit.)", "this paper (bound)", "measured max", "worst instance"],
        body,
        title=f"Table 1 reproduction (alpha = {alpha}); measured = worst cost / certified OPT lower bound",
    )
