"""Identical parallel machines (§6): the clairvoyant greedy-dispatch baseline
C-PAR, the non-clairvoyant global-FIFO algorithm NC-PAR, volume-oblivious
immediate-dispatch rules, the Ω(k^(1-1/α)) lower-bound adversary, and the
fault-tolerant sharded execution layer (per-machine independence, Lemma 20,
made executable on a supervised worker pool)."""

from .c_par import remaining_weight_on_machine, simulate_c_par
from .cluster import ClusterRun
from .dispatch import (
    DISPATCH_RULES,
    least_count,
    round_robin,
    seeded_random_rule,
    simulate_immediate_dispatch,
)
from .lower_bound import AdversaryOutcome, adversarial_instance, adversarial_ratio
from .nc_par import simulate_nc_par
from .nonuniform_dispatch import simulate_c_hdf_par, simulate_nc_hdf_par
from .shard import (
    Shard,
    ShardCheckpointStore,
    ShardedResult,
    compute_shard,
    plan_shards,
    run_sharded,
    shard_payload,
)

__all__ = [
    "ClusterRun",
    "Shard",
    "ShardCheckpointStore",
    "ShardedResult",
    "compute_shard",
    "plan_shards",
    "run_sharded",
    "shard_payload",
    "simulate_c_par",
    "remaining_weight_on_machine",
    "simulate_nc_par",
    "DISPATCH_RULES",
    "round_robin",
    "least_count",
    "seeded_random_rule",
    "simulate_immediate_dispatch",
    "AdversaryOutcome",
    "adversarial_instance",
    "adversarial_ratio",
    "simulate_nc_hdf_par",
    "simulate_c_hdf_par",
]
