"""E10 — sharded execution: pool scaling and the price of recovery.

Times the sharded parallel-machine path (:func:`repro.parallel.shard.run_sharded`)
over a machines x jobs grid, serial in-process shard computes versus the
supervised worker pool, and prices the pool's fault recovery (a SIGKILLed
worker mid-shard) against a clean pool run.

**What is being measured.** Shard *latency*, not CPU parallelism: every
shard carries a synthetic ``shard_hold`` duration (the same ``hold_s`` knob
the chaos campaign uses to make kills land mid-shard), modelling a shard
whose wall clock is dominated by waiting — remote inputs, I/O, a simulated
device.  Holds overlap across worker processes even on a single-core host
(this container has one CPU), so the benchmark isolates what the pool
itself contributes — dispatch, heartbeats, result transport, respawn — and
is reproducible on any machine.  The per-machine schedule derivation (real
CPU work) rides along in both variants and is bit-identity-checked.

Gated statistics (``scripts/check_bench_regression.py``):

* ``shard_pool_speedup_largest`` — serial / pool wall clock at the largest
  grid point; the pool must beat serial shard-at-a-time execution
  (floor 1.0, the ISSUE's "pool beats serial" acceptance).
* ``shard_recovery_overhead`` — killed-worker pool run / clean pool run at
  the largest grid point; recovering a lost shard (detect, respawn,
  re-dispatch, recompute) must stay under a 4x ceiling.

Both are wall-clock-derived, so like ``speedup``/``supervised_overhead``
they are never diffed against baselines — only the one-sided gates apply.
"""

from __future__ import annotations

import gc
import statistics
import time

from repro import PowerLaw
from repro.analysis import format_table
from repro.core.shadow import SimulationContext
from repro.core.tracing import MemoryRecorder
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.parallel.shard import run_sharded
from repro.runtime.pool import PoolPolicy
from repro.workloads import random_instance

from conftest import emit, emit_json

ALPHA = 3.0
WORKERS = 2
#: synthetic per-shard latency; large against pool overhead (~tens of ms),
#: small enough to keep the whole bench under ~20 s.
SHARD_HOLD = 0.12
#: (machines, jobs, seed) grid; the last entry is the gated "largest" point.
GRID = ((2, 32, 501), (4, 64, 502))
MIN_POOL_SPEEDUP = 1.0
MAX_RECOVERY_OVERHEAD = 4.0
_TIMING_ROUNDS = 3

_POLICY = PoolPolicy(
    workers=WORKERS,
    heartbeat_interval=0.05,
    shard_timeout=30.0,
    poll_interval=0.01,
)


def _scaling_records():
    power = PowerLaw(ALPHA)
    records = []
    for machines, jobs, seed in GRID:
        inst = random_instance(jobs, seed=seed, volume="uniform")

        def serial():
            return run_sharded(
                inst, power, machines, force_serial=True, shard_hold=SHARD_HOLD
            )

        def pooled():
            return run_sharded(
                inst, power, machines, policy=_POLICY, shard_hold=SHARD_HOLD
            )

        serial_result = serial()  # warm caches before the timed rounds
        pooled_result = pooled()
        assert pooled_result.report == serial_result.report, (
            f"pool and serial shard reports diverged at m={machines} n={jobs}"
        )
        best = {"serial": float("inf"), "pool": float("inf")}
        ratios = []
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            variants = (("serial", serial), ("pool", pooled))
            for i in range(_TIMING_ROUNDS):
                round_times = {}
                # Alternate order so a systematic second-position effect
                # cannot bias the paired ratio.
                for name, fn in variants if i % 2 == 0 else variants[::-1]:
                    t0 = time.perf_counter()
                    fn()
                    dt = time.perf_counter() - t0
                    round_times[name] = dt
                    if dt < best[name]:
                        best[name] = dt
                ratios.append(round_times["serial"] / round_times["pool"])
        finally:
            if gc_was_enabled:
                gc.enable()
        records.append(
            {
                "machines": machines,
                "jobs": jobs,
                "seed": seed,
                "n_shards": len(pooled_result.shards),
                "wall_clock_s": dict(best),
                "shard_pool_speedup": statistics.median(ratios),
            }
        )
    return records


def _recovery_record():
    """Price one SIGKILLed worker against a clean pool run (largest grid
    point); both runs produce the same bit-identical report."""
    machines, jobs, seed = GRID[-1]
    power = PowerLaw(ALPHA)
    inst = random_instance(jobs, seed=seed, volume="uniform")

    def clean():
        return run_sharded(
            inst, power, machines, policy=_POLICY, shard_hold=SHARD_HOLD
        )

    def killed():
        context = SimulationContext(power, recorder=MemoryRecorder())
        plan = FaultPlan(
            seed=seed, faults=(FaultSpec(kind="worker_kill", after_calls=1),)
        )
        injector = FaultInjector(plan, context)
        result = run_sharded(
            inst,
            power,
            machines,
            policy=_POLICY,
            context=context,
            injector=injector,
            shard_hold=SHARD_HOLD,
        )
        assert injector.fired, "worker_kill fault did not fire"
        assert result.stats is not None and result.stats.redispatched >= 1
        return result

    clean_result = clean()  # warm + correctness check before timing
    killed_result = killed()
    assert killed_result.report == clean_result.report, (
        "recovered pool run diverged from the clean pool run"
    )
    best = {"clean": float("inf"), "killed": float("inf")}
    ratios = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        variants = (("clean", clean), ("killed", killed))
        for i in range(_TIMING_ROUNDS):
            round_times = {}
            for name, fn in variants if i % 2 == 0 else variants[::-1]:
                t0 = time.perf_counter()
                fn()
                dt = time.perf_counter() - t0
                round_times[name] = dt
                if dt < best[name]:
                    best[name] = dt
            ratios.append(round_times["killed"] / round_times["clean"])
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "machines": machines,
        "jobs": jobs,
        "seed": seed,
        "wall_clock_s": dict(best),
        "shard_recovery_overhead": statistics.median(ratios),
    }


def test_shard_scale(benchmark):
    def run_all():
        return _scaling_records(), _recovery_record()

    records, recovery = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            f"m={r['machines']} n={r['jobs']}",
            r["n_shards"],
            r["wall_clock_s"]["serial"],
            r["wall_clock_s"]["pool"],
            r["shard_pool_speedup"],
        ]
        for r in records
    ]
    rows.append(
        [
            f"m={recovery['machines']} n={recovery['jobs']} +kill",
            records[-1]["n_shards"],
            recovery["wall_clock_s"]["clean"],
            recovery["wall_clock_s"]["killed"],
            recovery["shard_recovery_overhead"],
        ]
    )
    table = format_table(
        ["case", "shards", "serial/clean [s]", "pool/killed [s]", "ratio"],
        rows,
        title=f"sharded execution, hold={SHARD_HOLD}s, {WORKERS} workers "
        f"(median of {_TIMING_ROUNDS} paired rounds; gates: pool speedup >= "
        f"{MIN_POOL_SPEEDUP}, recovery <= {MAX_RECOVERY_OVERHEAD}x)",
        floatfmt=".4f",
    )
    emit("shard_scale", table)
    emit_json(
        "shard_scale",
        {
            "alpha": ALPHA,
            "workers": WORKERS,
            "shard_hold_s": SHARD_HOLD,
            "min_pool_speedup": MIN_POOL_SPEEDUP,
            "max_recovery_overhead": MAX_RECOVERY_OVERHEAD,
            "grid": [dict(r) for r in records],
            "shard_pool_speedup_largest": records[-1]["shard_pool_speedup"],
            "recovery": recovery,
        },
    )

    assert records[-1]["shard_pool_speedup"] >= MIN_POOL_SPEEDUP, (
        f"pool {records[-1]['shard_pool_speedup']:.3f}x serial at the largest "
        f"grid point — the supervised pool is slower than shard-at-a-time "
        f"serial execution"
    )
    assert recovery["shard_recovery_overhead"] <= MAX_RECOVERY_OVERHEAD, (
        f"recovering a SIGKILLed worker cost "
        f"{recovery['shard_recovery_overhead']:.3f}x the clean pool run "
        f"(ceiling {MAX_RECOVERY_OVERHEAD}x)"
    )
