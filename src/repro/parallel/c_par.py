"""Algorithm C-PAR — the clairvoyant parallel baseline (§6, after [12]).

Immediate dispatch: each arriving job is assigned, at its release instant, to
the machine whose assignment *minimises the increase in the fractional
objective*.  Lemma 19 shows this is exactly the machine with the **least
remaining fractional weight** at the release (energy-to-finish is a convex
increasing function of remaining weight, and flow equals energy for Algorithm
C).  Ties are broken by a fixed total order — machine index — matching the
assumption used by Lemma 20.  Each machine then runs Algorithm C on its own
jobs.  Theorem 18 ([12]): O(alpha)-competitive for the fractional objective.
"""

from __future__ import annotations

from ..core.errors import InvalidInstanceError
from ..core.job import Instance
from ..core.power import PowerLaw
from ..algorithms.clairvoyant import simulate_clairvoyant
from .cluster import ClusterRun

__all__ = ["simulate_c_par", "remaining_weight_on_machine"]


def remaining_weight_on_machine(
    assigned: list[int], instance: Instance, power: PowerLaw, at: float
) -> float:
    """Remaining fractional weight at time ``at`` of Algorithm C run on the
    machine-local instance ``assigned`` (empty machines weigh nothing)."""
    if not assigned:
        return 0.0
    sub = instance.subset(assigned)
    assert sub is not None
    run = simulate_clairvoyant(sub, power, until=at)
    return sum(sub[jid].density * v for jid, v in run.remaining.items())


def simulate_c_par(instance: Instance, power: PowerLaw, machines: int) -> ClusterRun:
    """Run C-PAR: greedy least-remaining-weight immediate dispatch + per-machine
    Algorithm C."""
    if machines < 1:
        raise InvalidInstanceError(f"machines must be >= 1, got {machines}")
    assignments: dict[int, list[int]] = {i: [] for i in range(machines)}
    for job in instance:  # release order; dispatch is immediate
        weights = [
            (remaining_weight_on_machine(assignments[i], instance, power, job.release), i)
            for i in range(machines)
        ]
        _, chosen = min(weights)  # least weight, ties by machine index
        assignments[chosen].append(job.job_id)
    schedules = {}
    for i in range(machines):
        if assignments[i]:
            sub = instance.subset(assignments[i])
            assert sub is not None
            schedules[i] = simulate_clairvoyant(sub, power).schedule
    return ClusterRun(
        instance=instance,
        power=power,
        machines=machines,
        assignments=assignments,
        schedules=schedules,
    )
