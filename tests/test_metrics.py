"""Tests for exact cost evaluation (energy, fractional/integral flow)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import Instance, Job, PowerLaw
from repro.core.errors import ScheduleError
from repro.core.metrics import evaluate, validate_schedule
from repro.core.schedule import ConstantSegment, Schedule

from conftest import uniform_instances


def make_constant_schedule(instance: Instance, speed: float) -> Schedule:
    """FIFO at constant speed — simple enough to verify flow by hand."""
    segs = []
    t = 0.0
    for job in instance:
        start = max(t, job.release)
        dur = job.volume / speed
        segs.append(ConstantSegment(start, start + dur, job.job_id, speed))
        t = start + dur
    return Schedule(segs)


class TestSingleJobByHand:
    def test_energy(self, cube):
        inst = Instance([Job(0, 0.0, 4.0)])
        sched = make_constant_schedule(inst, 2.0)  # 2 time units at speed 2
        rep = evaluate(sched, inst, cube)
        assert rep.energy == pytest.approx(8.0 * 2.0)

    def test_fractional_flow(self, cube):
        # V(t) = 4 - 2t over [0,2]; integral = 4*2 - 2*2 = 4; density 1.
        inst = Instance([Job(0, 0.0, 4.0)])
        rep = evaluate(make_constant_schedule(inst, 2.0), inst, cube)
        assert rep.fractional_flow == pytest.approx(4.0)

    def test_integral_flow(self, cube):
        inst = Instance([Job(0, 0.0, 4.0)])
        rep = evaluate(make_constant_schedule(inst, 2.0), inst, cube)
        assert rep.integral_flow == pytest.approx(4.0 * 2.0)  # weight * duration

    def test_density_scales_flows(self, cube):
        inst = Instance([Job(0, 0.0, 4.0, 3.0)])
        rep = evaluate(make_constant_schedule(inst, 2.0), inst, cube)
        assert rep.fractional_flow == pytest.approx(12.0)
        assert rep.integral_flow == pytest.approx(24.0)

    def test_release_offset(self, cube):
        inst = Instance([Job(0, 5.0, 4.0)])
        rep = evaluate(make_constant_schedule(inst, 2.0), inst, cube)
        assert rep.completion_times[0] == pytest.approx(7.0)
        assert rep.integral_flow == pytest.approx(8.0)
        assert rep.fractional_flow == pytest.approx(4.0)


class TestTwoJobsByHand:
    def test_waiting_job_accrues_full_weight(self, cube):
        # Job 1 released at 0 but processed [2,4]; it waits 2 units at full
        # volume: F_1 = 1*(2*2) + triangle 2 = 6.
        inst = Instance([Job(0, 0.0, 4.0), Job(1, 0.0, 4.0)])
        sched = Schedule(
            [ConstantSegment(0.0, 2.0, 0, 2.0), ConstantSegment(2.0, 4.0, 1, 2.0)]
        )
        rep = evaluate(sched, inst, cube)
        assert rep.fractional_flow_by_job[0] == pytest.approx(4.0)
        assert rep.fractional_flow_by_job[1] == pytest.approx(8.0 + 4.0)

    def test_idle_gap_counts_for_waiting_jobs(self, cube):
        inst = Instance([Job(0, 0.0, 2.0)])
        sched = Schedule([ConstantSegment(3.0, 4.0, 0, 2.0)])
        rep = evaluate(sched, inst, cube)
        # Waits 3 units at volume 2, then triangle 2*1/2 = 1.
        assert rep.fractional_flow == pytest.approx(7.0)
        assert rep.integral_flow == pytest.approx(2.0 * 4.0)

    def test_preemption_resume(self, cube):
        # Job 0 processed [0,1] and [2,3]; job 1 processed [1,2].
        inst = Instance([Job(0, 0.0, 2.0), Job(1, 0.0, 1.0)])
        sched = Schedule(
            [
                ConstantSegment(0.0, 1.0, 0, 1.0),
                ConstantSegment(1.0, 2.0, 1, 1.0),
                ConstantSegment(2.0, 3.0, 0, 1.0),
            ]
        )
        rep = evaluate(sched, inst, cube)
        # Job 0: [0,1]: 2 - t -> 1.5; [1,2]: constant 1 -> 1; [2,3]: 1-t -> .5
        assert rep.fractional_flow_by_job[0] == pytest.approx(3.0)
        assert rep.completion_times[0] == pytest.approx(3.0)


class TestValidation:
    def test_missing_volume_rejected(self, cube):
        inst = Instance([Job(0, 0.0, 4.0)])
        sched = Schedule([ConstantSegment(0.0, 1.0, 0, 1.0)])
        with pytest.raises(ScheduleError):
            evaluate(sched, inst, cube)

    def test_unknown_job_rejected(self, cube):
        inst = Instance([Job(0, 0.0, 1.0)])
        sched = Schedule(
            [ConstantSegment(0.0, 1.0, 0, 1.0), ConstantSegment(1.0, 2.0, 9, 1.0)]
        )
        with pytest.raises(ScheduleError):
            validate_schedule(sched, inst)

    def test_processing_before_release_rejected(self, cube):
        inst = Instance([Job(0, 5.0, 1.0)])
        sched = Schedule([ConstantSegment(0.0, 1.0, 0, 1.0)])
        with pytest.raises(ScheduleError):
            validate_schedule(sched, inst)

    def test_validate_can_be_skipped(self, cube):
        inst = Instance([Job(0, 0.0, 4.0)])
        sched = Schedule([ConstantSegment(0.0, 1.0, 0, 1.0)])
        # Partial schedules are evaluable with validate=False... except
        # completion lookup fails; so we only check validate_schedule gating.
        with pytest.raises(ScheduleError):
            evaluate(sched, inst, cube, validate=True)


class TestCostReport:
    def test_objectives_sum(self, cube, three_jobs):
        sched = make_constant_schedule(three_jobs, 2.0)
        rep = evaluate(sched, three_jobs, cube)
        assert rep.fractional_objective == pytest.approx(rep.energy + rep.fractional_flow)
        assert rep.integral_objective == pytest.approx(rep.energy + rep.integral_flow)

    def test_integral_dominates_fractional(self, cube, three_jobs):
        rep = evaluate(make_constant_schedule(three_jobs, 2.0), three_jobs, cube)
        assert rep.integral_flow >= rep.fractional_flow - 1e-12

    def test_merge_disjoint(self, cube):
        i1 = Instance([Job(0, 0.0, 1.0)])
        i2 = Instance([Job(1, 0.0, 1.0)])
        r1 = evaluate(make_constant_schedule(i1, 1.0), i1, cube)
        r2 = evaluate(make_constant_schedule(i2, 1.0), i2, cube)
        merged = r1.merged_with(r2)
        assert merged.energy == pytest.approx(r1.energy + r2.energy)
        assert set(merged.completion_times) == {0, 1}

    def test_merge_overlapping_rejected(self, cube):
        i1 = Instance([Job(0, 0.0, 1.0)])
        r1 = evaluate(make_constant_schedule(i1, 1.0), i1, cube)
        with pytest.raises(ScheduleError):
            r1.merged_with(r1)

    def test_makespan(self, cube, three_jobs):
        rep = evaluate(make_constant_schedule(three_jobs, 2.0), three_jobs, cube)
        assert rep.makespan == pytest.approx(max(rep.completion_times.values()))


class TestPropertyInvariants:
    @given(uniform_instances(max_jobs=5))
    @settings(max_examples=30, deadline=None)
    def test_integral_at_least_fractional(self, inst):
        power = PowerLaw(3.0)
        rep = evaluate(make_constant_schedule(inst, 1.5), inst, power)
        assert rep.integral_flow >= rep.fractional_flow - 1e-9 * max(1.0, rep.integral_flow)

    @given(uniform_instances(max_jobs=5))
    @settings(max_examples=30, deadline=None)
    def test_flows_nonnegative(self, inst):
        power = PowerLaw(2.0)
        rep = evaluate(make_constant_schedule(inst, 1.0), inst, power)
        assert all(v >= 0 for v in rep.fractional_flow_by_job.values())
        assert all(v >= 0 for v in rep.integral_flow_by_job.values())

    @given(uniform_instances(max_jobs=4))
    @settings(max_examples=30, deadline=None)
    def test_faster_constant_speed_more_energy_less_flow(self, inst):
        power = PowerLaw(3.0)
        slow = evaluate(make_constant_schedule(inst, 1.0), inst, power)
        fast = evaluate(make_constant_schedule(inst, 2.0), inst, power)
        assert fast.energy >= slow.energy - 1e-9
        assert fast.fractional_flow <= slow.fractional_flow + 1e-9
