"""Differential tests for the one-pass streaming report pipeline.

`repro.analysis.streaming` reimplements `build_report_in_memory` as a
single forward pass with memory bounded by the number of jobs.  The
contract is **bit-identity**, not approximation: on every trace the two
paths must return `==` TraceReports, and on every invalid trace they must
raise the *same* ScheduleError with the *same* message.  These tests pin
that contract on the golden corpus (all file encodings: list, plain JSONL,
gzip, rotated segments), across supervisor retry boundaries, with shard
lifecycle events mixed in, on the capped (C_capped, NC_capped) pair, and
on every error class the replayer distinguishes.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.algorithms.clairvoyant import simulate_clairvoyant
from repro.algorithms.nc_uniform import simulate_nc_uniform
from repro.analysis.streaming import (
    IncrementalScheduleReplayer,
    StreamingReportBuilder,
    StreamOrderError,
    build_report_streaming,
)
from repro.analysis.trace_report import (
    REL_TOL,
    build_report,
    build_report_in_memory,
)
from repro.core.errors import ScheduleError
from repro.core.job import Instance, Job
from repro.core.power import PowerLaw
from repro.core.shadow import SimulationContext
from repro.core.tracing import (
    JsonlRecorder,
    MemoryRecorder,
    TraceEvent,
    iter_jsonl,
    iter_trace,
    read_jsonl,
)
from repro.extensions.bounded_speed import (
    CappedPowerLaw,
    simulate_clairvoyant_capped,
    simulate_nc_uniform_capped,
)
from repro.workloads import random_instance

CORPUS_PATH = pathlib.Path(__file__).parent / "data" / "golden_corpus.json"


def _corpus_cases() -> list[tuple[str, Instance, float]]:
    corpus = json.loads(CORPUS_PATH.read_text())
    out = []
    for key in sorted(k for k in corpus if k.startswith("nc_uniform/")):
        entry = corpus[key]
        inst = Instance([Job(int(j), r, v, d) for j, r, v, d in entry["instance"]])
        out.append((key, inst, float(entry["alpha"])))
    return out


def _traced_pair(inst: Instance, alpha: float) -> list[TraceEvent]:
    """Record a run_meta header plus a full traced (C, NC) pair."""
    rec = MemoryRecorder()
    power = PowerLaw(alpha)
    context = SimulationContext(power, recorder=rec)
    context.emit(
        "run_meta",
        0.0,
        "harness",
        alpha=alpha,
        instance=[[j.job_id, j.release, j.volume, j.density] for j in inst],
    )
    simulate_clairvoyant(inst, power, context=context)
    simulate_nc_uniform(inst, power, context=context)
    return list(rec)


def _retry(component: str) -> TraceEvent:
    return TraceEvent(
        kind="retry", sim_time=0.0, wall_time=0.0, component=component,
        payload={"reason": "test"},
    )


def _assert_parity(events: list[TraceEvent]):
    """Streaming and in-memory reports must be `==` (bit-identical floats)."""
    streamed = build_report_streaming(iter(events), rel_tol=REL_TOL)
    batch = build_report_in_memory(events)
    assert streamed == batch
    return streamed


def _assert_error_parity(events: list[TraceEvent]) -> None:
    with pytest.raises(ScheduleError) as stream_exc:
        build_report_streaming(iter(events), rel_tol=REL_TOL)
    with pytest.raises(ScheduleError) as batch_exc:
        build_report_in_memory(events)
    assert str(stream_exc.value) == str(batch_exc.value)


class TestGoldenCorpusDifferential:
    @pytest.mark.parametrize(
        "key,inst,alpha", _corpus_cases(), ids=[k for k, _, _ in _corpus_cases()]
    )
    def test_streaming_matches_in_memory(self, key, inst, alpha):
        events = _traced_pair(inst, alpha)
        report = _assert_parity(events)
        assert report.ok
        assert any(c.name.startswith("Lemma 3") for c in report.checks)
        assert any(c.name.startswith("Lemma 4") for c in report.checks)

    def test_all_file_encodings_identical(self, tmp_path):
        """One trace, four sources — list, plain file, gzip, rotated segments —
        must all produce the same report (rotation headers are transparent)."""
        _, inst, alpha = _corpus_cases()[0]
        events = _traced_pair(inst, alpha)
        reference = build_report_in_memory(events)

        sinks = {"plain": "p.jsonl", "gzip": "g.jsonl.gz", "rotate:16": "r.jsonl"}
        for spec, name in sinks.items():
            with JsonlRecorder(tmp_path / name, sink=spec) as rec:
                for e in events:
                    rec.emit(e.kind, e.sim_time, e.component, **e.payload)
            streamed = build_report(
                iter_trace(rec.paths), rel_tol=REL_TOL
            )
            # wall_time differs between recordings, so compare everything else.
            assert streamed.n_events == reference.n_events
            assert streamed.checks == reference.checks
            assert streamed.energies == reference.energies
            assert streamed.order_violations == reference.order_violations
            assert [
                (c.component, c.events, c.by_kind) for c in streamed.components
            ] == [(c.component, c.events, c.by_kind) for c in reference.components]

    def test_capped_pair_parity(self):
        inst = random_instance(8, seed=11, volume="exponential", density="unit")
        rec = MemoryRecorder()
        capped = CappedPowerLaw(3.0, 1.2)
        context = SimulationContext(capped, recorder=rec)
        context.emit(
            "run_meta", 0.0, "harness", alpha=3.0,
            instance=[[j.job_id, j.release, j.volume, j.density] for j in inst],
        )
        simulate_clairvoyant_capped(inst, capped, context=context)
        simulate_nc_uniform_capped(inst, capped, context=context)
        report = _assert_parity(list(rec))
        capped_checks = [c for c in report.checks if "capped" in c.name]
        assert capped_checks and all(c.holds for c in capped_checks)


class TestRetryBoundaries:
    def test_failed_attempt_discarded_identically(self):
        """A garbled first attempt followed by per-component retries and a
        clean attempt verifies — and matches the batch replay exactly."""
        _, inst, alpha = _corpus_cases()[0]
        clean = _traced_pair(inst, alpha)
        garbled = [
            e for e in clean[: len(clean) // 2] if e.kind == "kernel_eval"
        ]
        events = (
            clean[:1]  # run_meta
            + garbled
            + [_retry("C"), _retry("NC")]
            + clean[1:]
        )
        report = _assert_parity(events)
        assert report.ok

    def test_retry_resets_overlap_but_not_builder_poison(self):
        """A builder-clock violation (t0 before the builder clock) poisons the
        whole component even across a retry — matching replay_schedule, which
        scans every attempt through one builder per reset."""
        _, inst, alpha = _corpus_cases()[0]
        clean = _traced_pair(inst, alpha)
        bad = TraceEvent(
            kind="kernel_eval", sim_time=0.0, wall_time=0.0, component="C",
            payload={"profile": "const", "t0": -5.0, "t1": -4.0, "job": 0,
                     "speed": 1.0},
        )
        # Poison *after* the retry boundary: both paths must report it.
        events = clean + [_retry("C"), bad]
        _assert_error_parity(events)

    def test_shard_lifecycle_events_ride_along(self):
        _, inst, alpha = _corpus_cases()[0]
        clean = _traced_pair(inst, alpha)
        lifecycle = [
            TraceEvent(kind="worker_lost", sim_time=0.0, wall_time=0.0,
                       component="pool", payload={"worker": 1}),
            TraceEvent(kind="shard_redispatch", sim_time=0.0, wall_time=0.0,
                       component="pool", payload={"shard": 0, "to": 2}),
        ]
        events = clean[:5] + lifecycle + clean[5:]
        report = _assert_parity(events)
        assert report.ok
        pool = [c for c in report.components if c.component == "pool"]
        assert pool and pool[0].by_kind == {"shard_redispatch": 1, "worker_lost": 1}


class TestErrorParity:
    def test_missing_volume_message_identical(self):
        _, inst, alpha = _corpus_cases()[0]
        events = _traced_pair(inst, alpha)
        # Drop all NC kernel pieces for the last job: validate must fail with
        # the exact same "processed volume" message on both paths.
        last = max(j.job_id for j in inst)
        dropped = [
            e for e in events
            if not (
                e.kind == "kernel_eval"
                and e.component == "NC"
                and int(e.payload["job"]) == last
            )
        ]
        _assert_error_parity(dropped)

    def test_builder_clock_poison_message_identical(self):
        _, inst, alpha = _corpus_cases()[0]
        events = _traced_pair(inst, alpha)
        events.append(
            TraceEvent(
                kind="kernel_eval", sim_time=0.0, wall_time=0.0, component="NC",
                payload={"profile": "const", "t0": -1.0, "t1": 0.5, "job": 0,
                         "speed": 2.0},
            )
        )
        _assert_error_parity(events)

    def test_no_meta_and_bare_meta_parity(self):
        _, inst, alpha = _corpus_cases()[0]
        events = _traced_pair(inst, alpha)
        no_meta = [e for e in events if e.kind != "run_meta"]
        report = _assert_parity(no_meta)
        assert report.checks == [] and report.energies == {}
        bare = TraceEvent(
            kind="run_meta", sim_time=0.0, wall_time=0.0, component="harness",
            payload={"note": "no instance"},
        )
        report2 = _assert_parity([bare] + no_meta)
        assert report2.checks == []

    def test_order_violations_reported_identically(self):
        _, inst, alpha = _corpus_cases()[0]
        events = _traced_pair(inst, alpha)
        events.append(
            TraceEvent(
                kind="release", sim_time=-3.0, wall_time=0.0, component="harness",
                payload={"job": 0},
            )
        )
        events.append(
            TraceEvent(
                kind="release", sim_time=-4.0, wall_time=0.0, component="harness",
                payload={"job": 1},
            )
        )
        streamed = build_report_streaming(iter(events), rel_tol=REL_TOL)
        batch = build_report_in_memory(events)
        assert streamed.order_violations == batch.order_violations
        assert len(streamed.order_violations) == 1


class TestStreamOrderError:
    def test_swapped_kernel_events_fail_identically(self):
        """A hard t0 regression trips the builder-clock check in *both* paths
        (ScheduleBuilder.append enforces the same clock), so the contract here
        is error parity, not refusal."""
        _, inst, alpha = _corpus_cases()[0]
        events = _traced_pair(inst, alpha)
        kernel_idx = [
            i for i, e in enumerate(events)
            if e.kind == "kernel_eval" and e.component == "C"
        ]
        i, j = kernel_idx[1], kernel_idx[2]
        events[i], events[j] = events[j], events[i]
        _assert_error_parity(events)

    def test_tolerance_sliver_regression_refused(self):
        """A t0 regression *inside* the builder-clock tolerance passes the
        batch path's append (which then re-sorts in Schedule.__init__) — the
        one-pass replayer cannot mirror that and must refuse loudly."""
        inst = Instance([Job(0, 0.0, 10.0, 1.0)])
        replayer = IncrementalScheduleReplayer("C", inst, PowerLaw(3.0))
        replayer.feed(
            {"profile": "const", "t0": 1.0, "t1": 1.0 + 5e-10, "job": 0,
             "speed": 1.0}
        )
        with pytest.raises(StreamOrderError, match="re-sort"):
            replayer.feed(
                {"profile": "const", "t0": 1.0 - 2e-10, "t1": 2.0, "job": 0,
                 "speed": 1.0}
            )

    def test_pre_meta_buffer_bounded(self):
        """kernel_eval events arriving before any run_meta are buffered only
        up to a fixed cap — unbounded buffering would defeat the point."""
        flood = [
            TraceEvent(
                kind="kernel_eval", sim_time=float(k), wall_time=0.0,
                component="C",
                payload={"profile": "const", "t0": float(k), "t1": k + 1.0,
                         "job": 0, "speed": 1.0},
            )
            for k in range(70_000)
        ]
        builder = StreamingReportBuilder(rel_tol=REL_TOL)
        with pytest.raises(StreamOrderError, match="before any run_meta"):
            for e in flood:
                builder.feed(e)


class TestBoundedMemory:
    def test_replayer_retires_completed_jobs(self):
        """The incremental replayer's live-job dict must shrink as jobs
        complete — that is the bounded-memory claim in miniature."""
        inst = random_instance(12, seed=4, volume="exponential", density="unit")
        power = PowerLaw(3.0)
        rec = MemoryRecorder()
        context = SimulationContext(power, recorder=rec)
        simulate_clairvoyant(inst, power, context=context)
        replayer = IncrementalScheduleReplayer("C", inst, power)
        for e in rec:
            if e.kind == "kernel_eval" and e.component == "C":
                replayer.feed(e.payload)
        # Every job completes in a clairvoyant run, so all are retired from
        # the active integral set before finalize.
        assert len(replayer._active) == 0
        replayer.finalize_replay()
        energy, _ = replayer.finalize_eval()
        assert energy > 0

    def test_generator_source_single_pass(self, tmp_path):
        """build_report consumes a generator exactly once (no list() inside)."""
        _, inst, alpha = _corpus_cases()[0]
        events = _traced_pair(inst, alpha)
        pulls = 0

        def gen():
            nonlocal pulls
            for e in events:
                pulls += 1
                yield e

        report = build_report(gen())
        assert pulls == len(events)
        assert report.n_events == len(events)
        assert report.ok
