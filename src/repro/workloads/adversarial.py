"""Adversarial and structured instances from the paper's arguments.

* :func:`burst_instance` — all jobs arrive in tight bursts; stresses the
  FIFO/HDF conflict of §1.2 (many jobs queued behind one being probed).
* :func:`staircase_instance` — each job released exactly when the previous
  one would finish under Algorithm C; the regime where the clairvoyant and
  non-clairvoyant runs are maximally out of phase.
* :func:`geometric_density_instance` — the §7 observation: ``l`` jobs with
  densities ``1, rho, rho**2, ...``, each calibrated to cost ``c`` when
  processed alone; the paper shows all of them on a *single* machine cost at
  most ``4*l*c`` once ``rho >= 4`` (so density spread cannot substitute for
  the uniform-density dispatch lower bound).
* :func:`escalating_volumes_instance` — volumes growing geometrically, FIFO's
  worst ordering relative to SRPT-style rules.
"""

from __future__ import annotations

import math

from ..core.job import Instance, Job
from ..core.kernels import decay_time_to_zero
from ..offline.single_job import single_job_opt_fractional

__all__ = [
    "burst_instance",
    "staircase_instance",
    "geometric_density_instance",
    "escalating_volumes_instance",
    "volume_for_unit_cost",
]


def burst_instance(
    bursts: int,
    per_burst: int,
    *,
    gap: float = 5.0,
    volume: float = 1.0,
    density: float = 1.0,
    jitter: float = 1e-3,
) -> Instance:
    """``bursts`` bursts of ``per_burst`` jobs, ``gap`` apart; releases within
    a burst are jittered so they stay distinct (the paper's w.l.o.g.)."""
    if bursts < 1 or per_burst < 1:
        raise ValueError("need at least one burst and one job per burst")
    jobs = []
    jid = 0
    for b in range(bursts):
        for i in range(per_burst):
            jobs.append(Job(jid, b * gap + i * jitter, volume, density))
            jid += 1
    return Instance(jobs)


def staircase_instance(
    n: int, *, volume: float = 1.0, density: float = 1.0, alpha: float = 3.0, overlap: float = 0.5
) -> Instance:
    """Job ``i+1`` is released when Algorithm C would be ``overlap`` of the
    way through job ``i`` (run in isolation): a sustained marginal backlog."""
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1], got {overlap}")
    solo = decay_time_to_zero(density * volume, density, alpha)
    jobs = [Job(i, i * solo * overlap, volume, density) for i in range(n)]
    return Instance(jobs)


def volume_for_unit_cost(cost: float, density: float, alpha: float) -> float:
    """The volume whose *single-job offline optimum* (fractional objective)
    equals ``cost``.  Closed-form inversion: the optimum scales as
    ``obj ∝ V**((2*alpha-1)/alpha)`` at fixed density, so bisection is not
    needed — but we bisect anyway to stay valid for future power models."""
    if cost <= 0:
        raise ValueError(f"cost must be > 0, got {cost}")
    lo, hi = 1e-12, 1.0
    while single_job_opt_fractional(hi, density, alpha).objective < cost:
        hi *= 2.0
        if hi > 1e30:
            raise ValueError("cost unreachable")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if single_job_opt_fractional(mid, density, alpha).objective < cost:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def geometric_density_instance(
    l: int, rho: float, *, unit_cost: float = 1.0, alpha: float = 3.0
) -> Instance:
    """The §7 family: densities ``rho**0 .. rho**(l-1)``, volumes calibrated
    so each job alone has offline optimum ``unit_cost``.  All released at 0
    (jittered to keep releases distinct)."""
    if l < 1:
        raise ValueError(f"need l >= 1, got {l}")
    if rho <= 1:
        raise ValueError(f"need rho > 1, got {rho}")
    jobs = []
    for i in range(l):
        d = rho**i
        v = volume_for_unit_cost(unit_cost, d, alpha)
        jobs.append(Job(i, i * 1e-9, v, d))
    return Instance(jobs)


def escalating_volumes_instance(
    n: int, *, base: float = 0.1, factor: float = 2.0, density: float = 1.0, spacing: float = 0.1
) -> Instance:
    """Volumes ``base * factor**i`` with tight spacing: FIFO keeps probing an
    ever-larger job while small ones queue up behind it."""
    if factor <= 0 or base <= 0:
        raise ValueError("base and factor must be > 0")
    try:
        top = base * factor ** max(n - 1, 0)
    except OverflowError:
        top = math.inf
    if not math.isfinite(top):
        raise ValueError("volumes overflow; shrink n or factor")
    return Instance(Job(i, i * spacing, base * factor**i, density) for i in range(n))
