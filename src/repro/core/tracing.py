"""Structured tracing and metrics for the engine + shadow stack.

The speed rules of the paper are *state-coupled dynamics*: Algorithm C's
remaining weight drives NC-general's speed, NC-uniform's offsets are frozen
reads of a shadow C run, and one mis-ordered event silently changes every
number downstream.  The final :class:`~repro.core.engine.EngineResult` cannot
answer "which kernel fired at t=3.7, and why did NC diverge from C there" —
this module can.  It provides:

* :class:`TraceEvent` — one typed, timestamped record.  Every event carries
  the *simulation* time it describes, the *wall-clock* time it was emitted
  (relative to the recorder's creation, so per-phase wall-time breakdowns
  need no epoch bookkeeping), the emitting ``component`` (``"engine"``,
  ``"C"``, ``"NC"``, ``"shadow"``, ``"nc_general"``, ...) and a ``kind`` from
  :data:`EVENT_KINDS` with a kind-specific payload.
* :class:`TraceRecorder` — the protocol consumers emit through, with three
  implementations: :class:`NullRecorder` (the default; tracing off),
  :class:`MemoryRecorder` (in-process list, for tests and reports) and
  :class:`JsonlRecorder` (one JSON object per line, streamed to disk).
* :class:`MetricsRegistry` — a named-counter store.
  :class:`~repro.core.shadow.ShadowCounters` is a *view* over one of these,
  so ad-hoc counter ints and trace events share a single metrics substrate.

Zero-overhead-when-off contract
-------------------------------

Hot loops must hoist the recorder once and guard every emission::

    rec = context.recorder
    rec = rec if rec.enabled else None
    ...
    if rec is not None:
        rec.emit("kernel_eval", t, "shadow", profile="decay", ...)

:class:`NullRecorder` advertises ``enabled = False``, so a run with tracing
off pays exactly one attribute read at setup — no event objects, no payload
dicts, no wall-clock calls.  ``benchmarks/bench_tracing_overhead.py`` holds
this to within a few percent of the untraced baseline.

Ordering contract
-----------------

Within one ``(component, kind)`` stream, events are emitted in nondecreasing
``sim_time`` order — except across a ``shadow_rollback`` / ``shadow_rebuild``
/ ``retry`` boundary, which by construction rewinds the emitting component's
clock (the whole point of those events is to mark exactly where time was
rewound; ``retry`` is the supervisor restarting a failed attempt from a
checkpoint).  ``tests/test_tracing.py`` enforces this.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Protocol, TextIO, runtime_checkable

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MemoryRecorder",
    "JsonlRecorder",
    "MetricsRegistry",
    "read_jsonl",
]

#: The closed set of event kinds.  ``run_meta`` is the self-description header
#: a harness writes before a traced run (instance, alpha, algorithm) so a
#: JSONL trace is replayable without out-of-band context, and
#: ``backend_selected`` records which kernel backend (scalar / numpy / numba;
#: see :mod:`repro.core.arraykernels`) produced the run, with its vector
#: width and numba availability.  ``fault_injected``
#: marks every firing of a :mod:`repro.faults` injector, and
#: ``guard_violation`` / ``retry`` / ``recovery`` / ``degraded_mode`` narrate
#: the supervisor's response (:mod:`repro.runtime.supervisor`).
#:
#: The shard lifecycle kinds narrate the sharded parallel-machine layer
#: (:mod:`repro.runtime.pool`, :mod:`repro.parallel.shard`): a
#: ``shard_dispatch`` per shard handed to a worker, ``worker_heartbeat``
#: liveness ticks, ``worker_lost`` when a worker dies or times out,
#: ``shard_redispatch`` when its shard is retried elsewhere,
#: ``pool_degraded`` when the pool falls back to the serial path, and
#: ``shard_checkpoint`` for durable per-shard snapshot saves/loads.
#: ``run_timeout`` marks a chaos-campaign run cut off by its wall-clock
#: budget (:mod:`repro.runtime.chaos`).
EVENT_KINDS = frozenset(
    {
        "run_meta",
        "backend_selected",
        "release",
        "completion",
        "speed_change",
        "kernel_eval",
        "shadow_checkpoint",
        "shadow_rollback",
        "shadow_rebuild",
        "density_class_switch",
        "stall_guard_tick",
        "fault_injected",
        "guard_violation",
        "retry",
        "recovery",
        "degraded_mode",
        "shard_dispatch",
        "worker_heartbeat",
        "worker_lost",
        "shard_redispatch",
        "pool_degraded",
        "shard_checkpoint",
        "run_timeout",
    }
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record.

    ``sim_time`` is the simulation clock the event describes; ``wall_time``
    is seconds since the recorder was created (monotone within a trace);
    ``component`` names the emitter; ``payload`` is kind-specific data, JSON
    representable by construction.
    """

    kind: str
    sim_time: float
    wall_time: float
    component: str
    payload: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "sim_time": self.sim_time,
                "wall_time": self.wall_time,
                "component": self.component,
                "payload": self.payload,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        raw = json.loads(line)
        return cls(
            kind=raw["kind"],
            sim_time=float(raw["sim_time"]),
            wall_time=float(raw["wall_time"]),
            component=raw["component"],
            payload=dict(raw.get("payload", {})),
        )


@runtime_checkable
class TraceRecorder(Protocol):
    """What the engine, shadow layer and algorithms emit through.

    ``enabled`` is the zero-overhead switch: consumers read it once per run
    (or per hot loop) and skip event construction entirely when it is False.
    ``emit`` stamps the wall clock and stores/serializes the event.
    """

    enabled: bool

    def emit(self, kind: str, sim_time: float, component: str, **payload: Any) -> None: ...


class NullRecorder:
    """Tracing off: ``enabled`` is False and ``emit`` is a no-op.

    Consumers that honor the hoist-and-guard idiom never even call ``emit``;
    the method exists so un-hoisted call sites stay correct, just slower.
    """

    enabled: bool = False

    def emit(self, kind: str, sim_time: float, component: str, **payload: Any) -> None:
        return None


#: Shared default recorder — stateless, so one instance serves every context.
NULL_RECORDER = NullRecorder()


class MemoryRecorder:
    """Collect events in an in-process list (tests, ad-hoc analysis)."""

    enabled: bool = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._origin = time.perf_counter()

    def emit(self, kind: str, sim_time: float, component: str, **payload: Any) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        self.events.append(
            TraceEvent(
                kind=kind,
                sim_time=float(sim_time),
                wall_time=time.perf_counter() - self._origin,
                component=component,
                payload=payload,
            )
        )

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def events_of(self, kind: str, component: str | None = None) -> list[TraceEvent]:
        return [
            e
            for e in self.events
            if e.kind == kind and (component is None or e.component == component)
        ]


class JsonlRecorder:
    """Stream events to a JSONL file (one :class:`TraceEvent` per line).

    Usable as a context manager; :func:`read_jsonl` round-trips the file back
    into :class:`TraceEvent` objects.
    """

    enabled: bool = True

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: TextIO | None = self.path.open("w", encoding="utf-8")
        self._origin = time.perf_counter()
        self.count = 0

    def emit(self, kind: str, sim_time: float, component: str, **payload: Any) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        if self._fh is None:
            raise ValueError(f"JsonlRecorder({self.path}) is closed")
        event = TraceEvent(
            kind=kind,
            sim_time=float(sim_time),
            wall_time=time.perf_counter() - self._origin,
            component=component,
            payload=payload,
        )
        self._fh.write(event.to_json() + "\n")
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a trace written by :class:`JsonlRecorder`."""
    out = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(TraceEvent.from_json(line))
    return out


class MetricsRegistry:
    """Named integer/float counters shared by a run's observability surface.

    The registry is intentionally plain — a dict with increment semantics —
    so counter bumps in hot loops stay cheap.  Typed views (such as
    :class:`~repro.core.shadow.ShadowCounters`) expose curated subsets as
    attributes; ad-hoc metrics are welcome alongside them.
    """

    __slots__ = ("values",)

    def __init__(self, initial: dict[str, int | float] | None = None) -> None:
        self.values: dict[str, int | float] = dict(initial) if initial else {}

    def increment(self, name: str, amount: int | float = 1) -> None:
        self.values[name] = self.values.get(name, 0) + amount

    def get(self, name: str, default: int | float = 0) -> int | float:
        return self.values.get(name, default)

    def set(self, name: str, value: int | float) -> None:
        self.values[name] = value

    def as_dict(self, prefix: str | None = None) -> dict[str, int | float]:
        if prefix is None:
            return dict(self.values)
        return {k: v for k, v in self.values.items() if k.startswith(prefix)}

    def names(self) -> Iterable[str]:
        return self.values.keys()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.values.items()))
        return f"MetricsRegistry({inner})"
