"""Analysis harness: empirical competitive ratios, figure curve extraction,
preemption-interval structure, standard instance suites, Table-1 building and
plain-text rendering."""

from .curves import (
    Curve,
    power_curve,
    processed_weight_curve,
    remaining_weight_curve,
    speed_curve,
    speed_quantile_gap,
)
from .gantt import cluster_gantt, gantt_chart, gantt_line
from .preemption import PreemptionInterval, preemption_intervals
from .ratios import ALGORITHMS, RatioResult, empirical_ratio, run_algorithm
from .report import format_ascii_chart, format_table
from .section4 import Section4Trace, shadow_properties
from .statistics import FleetStats, JobStats, fleet_statistics, job_statistics
from .suites import nonuniform_suite, uniform_suite
from .sweeps import SweepPoint, alpha_grid, sweep
from .streaming import (
    IncrementalScheduleReplayer,
    StreamingReportBuilder,
    StreamOrderError,
)
from .trace_report import (
    ComponentStats,
    InvariantCheck,
    TraceReport,
    build_report,
    build_report_in_memory,
    check_event_order,
    format_report,
    replay_schedule,
)
from .verification import ClaimCheck, verify_paper_claims
from .tables import Table1Row, build_table1, render_table1, theoretical_bound

__all__ = [
    "Curve",
    "power_curve",
    "speed_curve",
    "remaining_weight_curve",
    "processed_weight_curve",
    "speed_quantile_gap",
    "PreemptionInterval",
    "preemption_intervals",
    "ALGORITHMS",
    "RatioResult",
    "empirical_ratio",
    "run_algorithm",
    "format_table",
    "format_ascii_chart",
    "uniform_suite",
    "nonuniform_suite",
    "Table1Row",
    "build_table1",
    "render_table1",
    "theoretical_bound",
    "SweepPoint",
    "sweep",
    "alpha_grid",
    "ClaimCheck",
    "verify_paper_claims",
    "JobStats",
    "FleetStats",
    "job_statistics",
    "fleet_statistics",
    "gantt_line",
    "gantt_chart",
    "cluster_gantt",
    "Section4Trace",
    "shadow_properties",
    "TraceReport",
    "InvariantCheck",
    "ComponentStats",
    "build_report",
    "build_report_in_memory",
    "check_event_order",
    "format_report",
    "replay_schedule",
    "StreamOrderError",
    "StreamingReportBuilder",
    "IncrementalScheduleReplayer",
]
