"""E11 — §7 open problem probe: non-uniform densities on parallel machines.

The paper conjectures that its Lemma-20 equivalence breaks for the natural
HDF-based candidates: "jobs released later could affect the machine a job is
assigned to in the non-clairvoyant algorithm whereas they do not in the
clairvoyant algorithm."  This bench runs both §7 candidates (NC-HDF-PAR and
C-HDF-PAR) over random non-uniform instances and reports:

* how often the two produce *different* assignments (the paper expects this
  to happen — a non-zero divergence rate confirms the §7 intuition);
* the cost of the non-clairvoyant candidate relative to the clairvoyant one
  and to the pooled OPT lower bound (is it *empirically* constant?).
"""

from __future__ import annotations

from repro import PowerLaw
from repro.analysis import format_table
from repro.offline import opt_fractional_lower_bound
from repro.parallel import simulate_c_hdf_par, simulate_nc_hdf_par
from repro.workloads import random_instance

from conftest import emit

ALPHA = 3.0
MACHINES = 3


def _run():
    power = PowerLaw(ALPHA)
    rows = []
    diverged = 0
    for seed in range(1, 9):
        inst = random_instance(
            10, 500 + seed, volume="uniform", density="powers",
            density_params={"beta": 5.0, "classes": 3},
        )
        nc = simulate_nc_hdf_par(inst, power, MACHINES)
        c = simulate_c_hdf_par(inst, power, MACHINES)
        same = nc.assignments == c.assignments
        diverged += 0 if same else 1
        rep_nc = nc.report()
        rep_c = c.report()
        lb = opt_fractional_lower_bound(inst, power, machines=MACHINES, slots=200, iterations=800)
        rows.append(
            [
                seed,
                "same" if same else "DIFFERENT",
                rep_nc.fractional_objective / rep_c.fractional_objective,
                rep_nc.fractional_objective / lb.value,
            ]
        )
    return rows, diverged


def test_open_problem_probe(benchmark):
    rows, diverged = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["seed", "assignments", "NC-HDF-PAR / C-HDF-PAR", "NC-HDF-PAR / OPT_lb"],
        rows,
        title=f"§7 probe: {MACHINES} machines, 10 jobs, 3 density classes "
        f"(assignment divergence on {diverged}/8 seeds)",
        floatfmt=".3f",
    )
    emit("open_problem", table)

    # The candidates stay within a constant of the clairvoyant comparator on
    # these instances (no proof — an empirical observation the §7 discussion
    # invites), and within a generous constant of OPT.
    for row in rows:
        assert row[2] < 20.0
        assert row[3] < 60.0
