"""Per-job performance statistics.

Scheduling papers report distributional views as well as aggregates; this
module derives them from a :class:`~repro.core.metrics.CostReport`:

* **flow time** per job (``c_j − r_j``);
* **slowdown** (a.k.a. stretch): flow time divided by the job's ideal
  processing time at the instance-wide reference speed — the classic
  fairness measure (a slowdown of 1 means the job was served as if alone on
  a unit-speed machine of its own);
* summary percentiles of both.

The reference speed defaults to 1, making the ideal time simply the volume;
pass ``reference_speed`` to compare against a provisioned-machine baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.job import Instance
from ..core.metrics import CostReport

__all__ = ["JobStats", "FleetStats", "job_statistics", "fleet_statistics"]


@dataclass(frozen=True, slots=True)
class JobStats:
    job_id: int
    flow_time: float
    slowdown: float
    weighted_flow: float


@dataclass(frozen=True)
class FleetStats:
    """Distributional summary over all jobs of one schedule."""

    jobs: tuple[JobStats, ...]

    def _values(self, attr: str) -> np.ndarray:
        return np.array([getattr(j, attr) for j in self.jobs])

    def mean_flow(self) -> float:
        return float(self._values("flow_time").mean())

    def max_flow(self) -> float:
        return float(self._values("flow_time").max())

    def mean_slowdown(self) -> float:
        return float(self._values("slowdown").mean())

    def percentile_slowdown(self, q: float) -> float:
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self._values("slowdown"), q))

    def worst_jobs(self, n: int = 3) -> tuple[JobStats, ...]:
        """The n jobs with the highest slowdown (ties by id)."""
        ranked = sorted(self.jobs, key=lambda j: (-j.slowdown, j.job_id))
        return tuple(ranked[:n])


def job_statistics(
    report: CostReport, instance: Instance, *, reference_speed: float = 1.0
) -> FleetStats:
    """Per-job flow and slowdown statistics for an evaluated schedule."""
    if reference_speed <= 0:
        raise ValueError(f"reference_speed must be > 0, got {reference_speed}")
    jobs = []
    for job in instance:
        flow = report.completion_times[job.job_id] - job.release
        ideal = job.volume / reference_speed
        jobs.append(
            JobStats(
                job_id=job.job_id,
                flow_time=flow,
                slowdown=flow / ideal,
                weighted_flow=report.integral_flow_by_job[job.job_id],
            )
        )
    return FleetStats(jobs=tuple(jobs))


def fleet_statistics(
    reports: dict[str, CostReport], instance: Instance, *, reference_speed: float = 1.0
) -> dict[str, FleetStats]:
    """Statistics for several algorithms' reports on the same instance."""
    return {
        name: job_statistics(rep, instance, reference_speed=reference_speed)
        for name, rep in reports.items()
    }
