"""Typed request/response models of the scheduling service.

Every payload crossing the HTTP boundary is a pydantic ``BaseModel`` —
validated on the way in, serialized with exact shortest-repr floats on the
way out.  The instance/schedule/report models mirror :mod:`repro.io` field
for field, and the round-trip is *bit-stable*: an
``Instance -> InstanceModel -> JSON -> InstanceModel -> Instance`` cycle
reproduces the identical floats (pinned by ``tests/test_service_models.py``
against the :mod:`repro.io` dictionaries), so schedules computed from
API-fed jobs are bit-identical to schedules computed from the original
objects.
"""

from __future__ import annotations

from typing import Any, Literal, Optional

from pydantic import BaseModel, ConfigDict, Field

from ..core.errors import ScheduleError
from ..core.job import Instance, Job
from ..core.metrics import CostReport
from ..core.schedule import (
    ConstantSegment,
    DecaySegment,
    GrowthSegment,
    IdleSegment,
    ScaledSegment,
    Schedule,
    Segment,
)

__all__ = [
    "JobModel",
    "InstanceModel",
    "SegmentModel",
    "ScheduleModel",
    "ReportModel",
    "SessionCreateRequest",
    "SessionInfo",
    "ArrivalRequest",
    "ArrivalAck",
    "SpeedsResponse",
    "ActiveJobModel",
    "ScheduleResponse",
    "MetricsResponse",
    "GanttResponse",
    "InvariantCheckModel",
    "VerifiedReportResponse",
    "CampaignRequest",
    "CampaignStatus",
    "ErrorModel",
]


class JobModel(BaseModel):
    """One job as it crosses the API boundary (mirrors ``repro.io``)."""

    id: int
    release: float = Field(ge=0.0)
    volume: float = Field(gt=0.0)
    density: float = Field(default=1.0, gt=0.0)

    @classmethod
    def from_job(cls, job: Job) -> "JobModel":
        return cls(id=job.job_id, release=job.release, volume=job.volume, density=job.density)

    def to_job(self) -> Job:
        return Job(self.id, self.release, self.volume, self.density)


class InstanceModel(BaseModel):
    """A full instance; ``schema_version`` matches ``repro.io``'s payloads."""

    schema_version: int = 1
    jobs: list[JobModel]

    @classmethod
    def from_instance(cls, instance: Instance) -> "InstanceModel":
        return cls(jobs=[JobModel.from_job(j) for j in instance])

    def to_instance(self) -> Instance:
        return Instance(j.to_job() for j in self.jobs)


class SegmentModel(BaseModel):
    """One analytic schedule segment, the closed-form parameters verbatim."""

    kind: Literal["idle", "constant", "decay", "growth", "scaled"]
    t0: float
    t1: float
    job: Optional[int] = None
    speed: Optional[float] = None
    x0: Optional[float] = None
    rho: Optional[float] = None
    alpha: Optional[float] = None
    factor: Optional[float] = None
    base: Optional["SegmentModel"] = None

    @classmethod
    def from_segment(cls, seg: Segment) -> "SegmentModel":
        if isinstance(seg, IdleSegment):
            return cls(kind="idle", t0=seg.t0, t1=seg.t1, job=None)
        if isinstance(seg, ConstantSegment):
            return cls(kind="constant", t0=seg.t0, t1=seg.t1, job=seg.job_id, speed=seg.speed)
        if isinstance(seg, DecaySegment):
            return cls(
                kind="decay", t0=seg.t0, t1=seg.t1, job=seg.job_id,
                x0=seg.x0, rho=seg.rho, alpha=seg.alpha,
            )
        if isinstance(seg, GrowthSegment):
            return cls(
                kind="growth", t0=seg.t0, t1=seg.t1, job=seg.job_id,
                x0=seg.x0, rho=seg.rho, alpha=seg.alpha,
            )
        if isinstance(seg, ScaledSegment):
            return cls(
                kind="scaled", t0=seg.t0, t1=seg.t1, job=seg.job_id,
                factor=seg.factor, base=cls.from_segment(seg.base),
            )
        raise ScheduleError(f"cannot serialise segment type {type(seg).__name__}")

    def to_segment(self) -> Segment:
        if self.kind == "idle":
            return IdleSegment(self.t0, self.t1, None)
        if self.kind == "constant":
            # The numeric engine renders idle gaps as constant speed-0
            # segments with no job, so ``job`` stays optional here.
            assert self.speed is not None
            return ConstantSegment(self.t0, self.t1, self.job, self.speed)
        if self.kind == "decay":
            assert self.x0 is not None and self.rho is not None and self.alpha is not None
            return DecaySegment(self.t0, self.t1, self.job, self.x0, self.rho, self.alpha)
        if self.kind == "growth":
            assert self.x0 is not None and self.rho is not None and self.alpha is not None
            return GrowthSegment(self.t0, self.t1, self.job, self.x0, self.rho, self.alpha)
        assert self.base is not None and self.factor is not None
        return ScaledSegment(self.t0, self.t1, self.job, self.base.to_segment(), self.factor)


class ScheduleModel(BaseModel):
    schema_version: int = 1
    segments: list[SegmentModel]

    @classmethod
    def from_schedule(cls, schedule: Schedule) -> "ScheduleModel":
        return cls(segments=[SegmentModel.from_segment(s) for s in schedule])

    def to_schedule(self) -> Schedule:
        return Schedule(s.to_segment() for s in self.segments)


class ReportModel(BaseModel):
    """A :class:`~repro.core.metrics.CostReport`, aggregates precomputed."""

    energy: float
    fractional_flow: float
    integral_flow: float
    fractional_objective: float
    integral_objective: float
    completion_times: dict[int, float]
    fractional_flow_by_job: dict[int, float]
    integral_flow_by_job: dict[int, float]

    @classmethod
    def from_report(cls, report: CostReport) -> "ReportModel":
        return cls(
            energy=report.energy,
            fractional_flow=report.fractional_flow,
            integral_flow=report.integral_flow,
            fractional_objective=report.fractional_objective,
            integral_objective=report.integral_objective,
            completion_times=dict(report.completion_times),
            fractional_flow_by_job=dict(report.fractional_flow_by_job),
            integral_flow_by_job=dict(report.integral_flow_by_job),
        )

    def to_report(self) -> CostReport:
        return CostReport(
            energy=self.energy,
            fractional_flow_by_job=dict(self.fractional_flow_by_job),
            integral_flow_by_job=dict(self.integral_flow_by_job),
            completion_times=dict(self.completion_times),
        )


# -- session lifecycle --------------------------------------------------------

#: Algorithms a session can run.  ``C`` is the clairvoyant baseline; ``NC``
#: the uniform-density non-clairvoyant algorithm (exact closed forms);
#: ``NC_GENERAL`` the arbitrary-density algorithm on the numeric engine.
SESSION_ALGORITHMS = ("C", "NC", "NC_GENERAL")


class SessionCreateRequest(BaseModel):
    """Create a live scheduling session.

    ``session_id=None`` lets the service mint one.  ``jobs`` seeds the
    session with an initial batch of arrivals (equivalent to streaming them
    immediately after creation).  ``queue_limit`` bounds the per-session
    arrival queue — the backpressure knob; a batch that would overflow it is
    rejected with 429.  ``trace_path`` attaches a per-session
    :class:`~repro.core.tracing.JsonlRecorder` (``sink``: ``plain`` | ``gzip``
    | ``rotate:N``), flushed on session close and on service shutdown.
    """

    model_config = ConfigDict(extra="forbid")

    session_id: Optional[str] = Field(default=None, min_length=1, max_length=128)
    alpha: float = Field(default=3.0, gt=1.0)
    algorithm: Literal["C", "NC", "NC_GENERAL"] = "NC"
    max_step: float = Field(default=2e-2, gt=0.0)
    queue_limit: int = Field(default=256, ge=1, le=65536)
    jobs: list[JobModel] = Field(default_factory=list)
    trace_path: Optional[str] = None
    sink: str = "plain"
    backend: Optional[str] = None


class SessionInfo(BaseModel):
    """Public state of one session."""

    session_id: str
    algorithm: str
    alpha: float
    clock: float
    jobs_accepted: int
    queue_depth: int
    queue_limit: int
    closed: bool
    trace_paths: list[str] = Field(default_factory=list)


class ArrivalRequest(BaseModel):
    """A batch of online arrivals streamed into a live session.

    Releases must be nondecreasing across the session's lifetime — an
    arrival released before the session's committed clock is the online
    model's contradiction and is rejected with 409.
    """

    model_config = ConfigDict(extra="forbid")

    jobs: list[JobModel] = Field(min_length=1)


class ArrivalAck(BaseModel):
    session_id: str
    accepted: int
    jobs_accepted: int
    clock: float
    queue_depth: int


class ActiveJobModel(BaseModel):
    """One live job in the clairvoyant shadow at query time."""

    id: int
    density: float
    remaining_volume: float


class SpeedsResponse(BaseModel):
    """The session's live speed view at ``t`` (from the incremental shadow).

    ``speed`` is Algorithm C's instantaneous speed ``P^{-1}(W^C(t))`` —
    the power-equals-remaining-weight rule the paper's algorithms all build
    on; ``remaining_weight`` is ``W^C(t)`` itself.
    """

    session_id: str
    t: float
    remaining_weight: float
    speed: float
    active_jobs: list[ActiveJobModel]


class ScheduleResponse(BaseModel):
    session_id: str
    algorithm: str
    n_jobs: int
    schedule: ScheduleModel


class MetricsResponse(BaseModel):
    session_id: str
    algorithm: str
    n_jobs: int
    report: ReportModel
    counters: dict[str, int]


class GanttResponse(BaseModel):
    session_id: str
    width: int
    end_time: float
    chart: str


class InvariantCheckModel(BaseModel):
    """One replayed paper invariant (Lemma 3 / Lemma 4)."""

    name: str
    holds: bool
    lhs: float
    rhs: float
    detail: str


class VerifiedReportResponse(BaseModel):
    """A verified report: the session's traced (C, NC) pair replayed through
    the streaming verifier, Lemma 3/4 checked from the trace alone."""

    session_id: str
    ok: bool
    n_events: int
    checks: list[InvariantCheckModel]
    energies: dict[str, float]
    order_violations: list[str]


# -- sharded campaigns --------------------------------------------------------


class CampaignRequest(BaseModel):
    """Launch a sharded parallel-machine campaign on the worker pool.

    The instance is generated deterministically from ``(n_jobs, seed)`` via
    :func:`repro.workloads.random_instance` unless explicit ``jobs`` are
    given.  ``force_serial`` computes shards in-process (the default: cheap
    and deterministic for API use); ``force_serial=False`` dispatches to the
    supervised multiprocessing pool of :mod:`repro.runtime.pool`.
    """

    model_config = ConfigDict(extra="forbid")

    campaign_id: Optional[str] = Field(default=None, min_length=1, max_length=128)
    algorithm: Literal["nc_par", "c_par"] = "nc_par"
    machines: int = Field(default=4, ge=1, le=4096)
    n_jobs: int = Field(default=20, ge=1, le=200000)
    seed: int = 1
    alpha: float = Field(default=3.0, gt=1.0)
    jobs: list[JobModel] = Field(default_factory=list)
    n_shards: Optional[int] = Field(default=None, ge=1)
    workers: int = Field(default=2, ge=1, le=64)
    force_serial: bool = True


class CampaignStatus(BaseModel):
    """Lifecycle of one campaign: ``running`` -> ``done`` | ``failed``."""

    campaign_id: str
    state: Literal["running", "done", "failed"]
    algorithm: str
    machines: int
    n_jobs: int
    shards: Optional[int] = None
    resumed: Optional[int] = None
    bit_identical: Optional[bool] = None
    report: Optional[ReportModel] = None
    error: Optional[str] = None


class ErrorModel(BaseModel):
    detail: str


def error_payload(detail: str) -> dict[str, Any]:
    return ErrorModel(detail=detail).model_dump()
