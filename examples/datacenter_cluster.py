#!/usr/bin/env python3
"""Parallel machines: NC-PAR on a small cluster (§6).

Simulates a burst-heavy job stream on a k-machine cluster with the paper's
non-clairvoyant NC-PAR (global FIFO queue, assign-on-available), verifies
Lemma 20 live (its assignment coincides with the clairvoyant greedy C-PAR's),
and contrasts both with naive immediate-dispatch rules — including the §6
adversarial instance on which any volume-oblivious immediate dispatcher loses
a factor Ω(k^(1-1/alpha)).

Usage::

    python examples/datacenter_cluster.py [machines] [jobs]
"""

from __future__ import annotations

import sys

from repro import PowerLaw
from repro.analysis import format_table
from repro.parallel import (
    adversarial_ratio,
    simulate_c_par,
    simulate_immediate_dispatch,
    simulate_nc_par,
)
from repro.workloads import random_instance


def main(machines: int = 4, jobs: int = 40) -> None:
    alpha = 3.0
    power = PowerLaw(alpha)
    instance = random_instance(jobs, seed=7, rate=2.0, volume="bimodal")
    print(f"{jobs} unit-density jobs on {machines} machines, P(s) = s^{alpha:g}")

    nc = simulate_nc_par(instance, power, machines)
    c = simulate_c_par(instance, power, machines)

    same = nc.assignments == c.assignments
    print(f"\nLemma 20 — NC-PAR assignment identical to C-PAR greedy dispatch: {same}")

    rep_nc = nc.report()
    rep_c = c.report()
    rows = [
        ["NC-PAR (non-clairvoyant)", rep_nc.energy, rep_nc.fractional_flow, rep_nc.fractional_objective],
        ["C-PAR (clairvoyant)", rep_c.energy, rep_c.fractional_flow, rep_c.fractional_objective],
    ]
    for rule in ("round_robin", "least_count"):
        rep = simulate_immediate_dispatch(instance, power, machines, rule).report()
        rows.append([f"immediate dispatch: {rule}", rep.energy, rep.fractional_flow,
                     rep.fractional_objective])
    print()
    print(format_table(["scheduler", "energy", "frac flow", "G_frac"], rows, floatfmt=".3f"))

    print(
        f"\nLemma 21/22: energy ratio = {rep_nc.energy / rep_c.energy:.9f}, "
        f"flow ratio = {rep_nc.fractional_flow / rep_c.fractional_flow:.9f} "
        f"(theory: 1 and {1 / (1 - 1 / alpha):.9f})"
    )

    print("\nMachine load (jobs -> machine), NC-PAR:")
    for m in range(machines):
        ids = nc.assignments.get(m, [])
        print(f"  machine {m}: {len(ids):3d} jobs")

    print("\n§6 lower bound — the same cluster under *immediate* dispatch, vs k:")
    rows = []
    for k in (2, 4, 8, 16):
        out = adversarial_ratio(k, power, "least_count")
        rows.append([k, out.ratio, k ** (1 - 1 / alpha)])
    print(format_table(["k", "adversarial ratio", "k^(1-1/alpha)"], rows, floatfmt=".3f"))


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
