"""E6 — §4/§5: Algorithm NC-general on non-uniform densities.

Measures, per suite instance: the fractional ratio of NC-general against a
certified OPT lower bound, the same after the §5 conversion for the integral
objective (Theorem 16), and the ratio against Algorithm C (the constant the
paper proves is 2^{O(alpha)}).
"""

from __future__ import annotations

from repro import PowerLaw
from repro.algorithms import convert, simulate_clairvoyant, simulate_nc_general
from repro.analysis import format_table, nonuniform_suite
from repro.core import evaluate
from repro.offline import opt_fractional_lower_bound, opt_integral_lower_bound

from conftest import emit

ALPHA = 3.0


def _run():
    power = PowerLaw(ALPHA)
    rows = []
    for name, inst in nonuniform_suite(n=6, seeds=(1, 2), alpha=ALPHA):
        run = simulate_nc_general(inst, power, max_step=2e-2)
        rep = evaluate(run.schedule, inst, power)
        conv = convert(run.schedule, inst, power, epsilon=0.5)
        rep_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power)
        lb_f = opt_fractional_lower_bound(inst, power, slots=250, iterations=1000)
        lb_i = opt_integral_lower_bound(inst, power, slots=250, iterations=1000)
        rows.append(
            [
                name,
                len(inst),
                rep.fractional_objective / lb_f.value,
                conv.integral_report.integral_objective / lb_i.value,
                rep.fractional_objective / rep_c.fractional_objective,
            ]
        )
    return rows


def test_general_density(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["instance", "jobs", "frac ratio vs OPT_lb", "int ratio vs OPT_lb (Thm16)", "vs C"],
        rows,
        title=f"§4 NC-general (alpha={ALPHA}, default eta/beta); constants are 2^O(alpha)",
        floatfmt=".3f",
    )
    emit("general_density", table)
    for row in rows:
        # Constant-competitive: generous 2^{O(alpha)} cap, far below any
        # load-dependent blow-up.
        assert row[2] < 200.0
        assert row[3] < 400.0
        assert row[4] < 100.0
