"""Deterministic fault injection for the speed-scaling simulators.

``plan`` describes *what* goes wrong (seeded, immutable
:class:`~repro.faults.plan.FaultPlan`); ``injector`` makes it happen against
a concrete run through the :class:`~repro.core.shadow.SimulationContext`
hooks.  The supervised runtime (:mod:`repro.runtime`) consumes both.
"""

from .injector import (
    FaultInjector,
    FaultyVolumeOracle,
    FlakyPowerFunction,
    simulate_nc_par_with_failure,
)
from .plan import (
    FAULT_KINDS,
    PROCESS_KINDS,
    SERVICE_KINDS,
    FaultPlan,
    FaultSpec,
    generate_plan,
)

__all__ = [
    "FAULT_KINDS",
    "PROCESS_KINDS",
    "SERVICE_KINDS",
    "FaultPlan",
    "FaultSpec",
    "generate_plan",
    "FaultInjector",
    "FaultyVolumeOracle",
    "FlakyPowerFunction",
    "simulate_nc_par_with_failure",
]
