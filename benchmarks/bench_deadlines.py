"""E15 (extension) — the deadline model of ref [3] (Yao–Demers–Shenker).

Runs YDS (offline optimal) and AVR (online) on random deadline workloads and
reports: YDS energy vs the certified convex lower bound (they coincide up to
discretisation — numerical proof of optimality), and AVR's measured energy
ratio vs its proved cap ``2^{alpha-1} * alpha^alpha``.
"""

from __future__ import annotations

import numpy as np

from repro import Instance, Job, PowerLaw
from repro.analysis import format_table
from repro.extensions import (
    DeadlineInstance,
    avr_schedule,
    deadline_energy_lower_bound,
    validate_deadlines,
    yds_schedule,
)

from conftest import emit

ALPHA = 3.0


def _random_deadline_instance(n: int, seed: int) -> DeadlineInstance:
    rng = np.random.default_rng(seed)
    releases = np.cumsum(rng.exponential(1.0, size=n))
    spans = rng.uniform(0.5, 6.0, size=n)
    volumes = rng.uniform(0.2, 3.0, size=n)
    jobs = [Job(i, float(releases[i]), float(volumes[i])) for i in range(n)]
    return DeadlineInstance(
        Instance(jobs), {i: float(releases[i] + spans[i]) for i in range(n)}
    )


def _run():
    power = PowerLaw(ALPHA)
    rows = []
    for seed in (1, 2, 3, 4):
        di = _random_deadline_instance(8, 1000 + seed)
        y = yds_schedule(di)
        a = avr_schedule(di)
        validate_deadlines(y, di)
        validate_deadlines(a, di)
        e_y = sum(s.energy(power) for s in y)
        e_a = sum(s.energy(power) for s in a)
        lb = deadline_energy_lower_bound(di, power, slots=400, iterations=1500)
        rows.append([seed, e_y, lb, e_y / lb, e_a / e_y])
    return rows


def test_deadline_substrate(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["seed", "YDS energy", "certified LB", "YDS/LB", "AVR/YDS"],
        rows,
        title=f"Deadline model [3] (alpha = {ALPHA}): YDS optimality and AVR's online price",
        floatfmt=".4f",
    )
    emit("deadlines", table)
    cap = 2.0 ** (ALPHA - 1) * ALPHA**ALPHA
    for seed, e_y, lb, opt_ratio, online_ratio in rows:
        assert 1.0 - 1e-9 <= opt_ratio <= 1.10  # optimal up to discretisation
        assert 1.0 - 1e-9 <= online_ratio <= cap
