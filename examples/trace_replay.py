#!/usr/bin/env python3
"""Replay an external job trace through the paper's algorithms.

Demonstrates the adoption path for real logs: write/read a CSV trace
(`job_id,release,volume,density`), run Algorithm NC and the clairvoyant
reference on it, and print machine timelines (Gantt), per-job slowdowns and
the cost comparison.

Usage::

    python examples/trace_replay.py [path/to/trace.csv]

Without an argument, a demo trace is generated, written to a temp file and
replayed — so the script is self-contained.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.analysis import format_table, gantt_chart, job_statistics
from repro.core import evaluate
from repro.workloads import random_instance, read_trace, write_trace


def demo_trace_path() -> Path:
    inst = random_instance(12, seed=99, rate=1.5, volume="bimodal")
    path = Path(tempfile.mkdtemp()) / "demo_trace.csv"
    write_trace(path, inst)
    print(f"(no trace given — wrote a demo trace to {path})\n")
    return path


def main() -> None:
    power = PowerLaw(3.0)
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_trace_path()
    instance = read_trace(path)
    if not instance.is_uniform_density():
        raise SystemExit(
            "this example replays uniform-density traces with Algorithm NC; "
            "use simulate_nc_general for mixed densities"
        )
    print(
        f"trace: {len(instance)} jobs, total volume {instance.total_volume:.2f}, "
        f"releases over [0, {instance.max_release:.2f}]"
    )

    nc = simulate_nc_uniform(instance, power)
    c = simulate_clairvoyant(instance, power)
    rep_nc = evaluate(nc.schedule, instance, power)
    rep_c = evaluate(c.schedule, instance, power)

    print("\nAlgorithm NC timeline:")
    print(gantt_chart(nc.schedule, width=72))
    print("\nAlgorithm C timeline (same jobs, clairvoyant):")
    print(gantt_chart(c.schedule, width=72))

    print()
    print(
        format_table(
            ["algorithm", "energy", "frac flow", "int flow", "G_frac"],
            [
                ["NC", rep_nc.energy, rep_nc.fractional_flow, rep_nc.integral_flow,
                 rep_nc.fractional_objective],
                ["C", rep_c.energy, rep_c.fractional_flow, rep_c.integral_flow,
                 rep_c.fractional_objective],
            ],
            floatfmt=".3f",
        )
    )

    stats = job_statistics(rep_nc, instance)
    print(
        f"\nNC slowdowns: mean {stats.mean_slowdown():.2f}, "
        f"p95 {stats.percentile_slowdown(95):.2f}; worst jobs:"
    )
    for js in stats.worst_jobs(3):
        print(f"  job {js.job_id}: flow {js.flow_time:.3f}, slowdown {js.slowdown:.2f}")


if __name__ == "__main__":
    main()
