#!/usr/bin/env python3
"""Diff fresh ``BENCH_*.json`` artifacts against the committed baselines.

The benchmark suite writes machine-readable artifacts to ``benchmarks/out/``
*in place*, so after a local ``make bench-smoke`` the working tree holds the
fresh numbers while the committed baseline is only reachable through git.
This script compares the two:

* every shared numeric quantity must agree within ``--tolerance`` relative
  (deterministic outputs — energies, objectives, counters, ratios — are
  expected to agree exactly; the tolerance absorbs intentional re-baselines
  of statistical quantities);
* wall-clock-derived quantities (``wall_clock_s``, overhead ratios) are
  skipped — they vary with the host — EXCEPT the one-sided gates: the
  shadow-layer ``speedup`` must stay at or above ``--min-speedup`` (the
  repo's 5x acceptance floor); the supervisor's no-fault
  ``supervised_overhead`` must stay at or below ``--max-overhead`` (1.05,
  the robustness layer's 5% ceiling); the sharded path's
  ``shard_pool_speedup_largest`` must stay at or above
  ``--min-shard-speedup`` (the pool beats serial shard execution) and its
  ``shard_recovery_overhead`` at or below ``--max-recovery-overhead``;
  the streaming trace verifier's ``trace_peak_mb`` must stay at or below
  ``--max-trace-peak-mb`` and its ``trace_peak_ratio`` (peak at 10^6 vs
  10^4 events) at or below ``--max-trace-peak-ratio`` — bounded-memory
  verification of million-event traces; the service's mixed-load
  ``service_p99_ms`` must stay at or below ``--max-service-p99-ms``
  (99th-percentile request latency through the in-process ASGI stack,
  bench_service_load); the durable service's ``journal_overhead`` (p99
  of a journaled service over its unjournaled twin, paired mixed load,
  bench_service_recovery) must stay at or below
  ``--max-journal-overhead`` (1.10 — write-ahead durability may cost at
  most 10% at the tail) and its ``restore_100_sessions_ms`` (cold
  crash-recovery of 100 journaled sessions) at or below
  ``--max-restore-ms``;
* quantities present on only one side are reported (new benchmarks are fine;
  silently vanished ones are not).

Baselines come from ``git show <ref>:benchmarks/out/<name>`` by default
(``--baseline-ref HEAD``), or from a directory via ``--baseline-dir`` when
comparing two checkouts.  Used by the CI ``bench-smoke`` job and ``make ci``.

Exit status: 0 clean, 1 on any regression, 2 on usage/IO errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Any, Iterator

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_DIR = REPO_ROOT / "benchmarks" / "out"

#: Host-dependent keys: never diffed against the baseline.
TIMING_KEYS = frozenset(
    {
        "wall_clock_s",
        "speedup",
        "null_overhead",
        "memory_overhead",
        "supervised_overhead",
        "shard_pool_speedup",
        "shard_pool_speedup_largest",
        "shard_recovery_overhead",
        "scalar_wall_s",
        "fast_wall_s",
        "scale_speedup",
        "events_per_s",
        "trace_peak_mb",
        "in_memory_peak_mb",
        "trace_peak_ratio",
        "ru_maxrss_mb",
        "requests_per_s",
        "service_p50_ms",
        "service_p99_ms",
        "p50_ms",
        "p99_ms",
        "mean_ms",
        "journal_overhead",
        "p50_plain_ms",
        "p50_journal_ms",
        "p99_plain_ms",
        "p99_journal_ms",
        "submit_p99_plain_ms",
        "submit_p99_journal_ms",
        "restore_100_sessions_ms",
        "restore_per_session_ms",
    }
)
#: The one timing-derived key that still carries an acceptance floor.
SPEEDUP_KEY = "speedup"
#: Timing-derived key with an acceptance *ceiling*: the no-fault supervised
#: run may cost at most 5% over the unsupervised baseline.
OVERHEAD_KEY = "supervised_overhead"
#: Sharded-execution gates (bench_shard_scale): the worker pool must beat
#: shard-at-a-time serial execution at the largest grid point, and
#: recovering a SIGKILLed worker must stay under the ceiling relative to a
#: clean pool run.
SHARD_SPEEDUP_KEY = "shard_pool_speedup_largest"
SHARD_RECOVERY_KEY = "shard_recovery_overhead"
#: Array-core gate (bench_scale): the fast shadow loop must beat the legacy
#: scalar loop by at least this factor wherever both are timed.
SCALE_SPEEDUP_KEY = "scale_speedup"
#: Streaming-verification gates (bench_trace_scale): the one-pass report
#: over a >= 10^6-event trace must fit a fixed heap ceiling, and its peak
#: may not grow with the event count (10^6 vs 10^4 events ratio).
TRACE_PEAK_KEY = "trace_peak_mb"
TRACE_PEAK_RATIO_KEY = "trace_peak_ratio"
#: Service load gate (bench_service_load): the mixed-load 99th-percentile
#: request latency through the in-process ASGI stack must stay under a
#: committed ceiling.
SERVICE_P99_KEY = "service_p99_ms"
#: Durable-service gates (bench_service_recovery): the write-ahead journal
#: may cost at most 10% at the paired mixed-load p99, and a cold restore of
#: 100 journaled sessions must stay under the ceiling — recovery time is
#: part of the availability budget.
JOURNAL_OVERHEAD_KEY = "journal_overhead"
RESTORE_MS_KEY = "restore_100_sessions_ms"
DEFAULT_MIN_SPEEDUP = 5.0
DEFAULT_MAX_OVERHEAD = 1.05
DEFAULT_MIN_SHARD_SPEEDUP = 1.0
DEFAULT_MAX_RECOVERY_OVERHEAD = 4.0
DEFAULT_MIN_SCALE_SPEEDUP = 20.0
DEFAULT_MAX_TRACE_PEAK_MB = 8.0
DEFAULT_MAX_TRACE_PEAK_RATIO = 2.0
DEFAULT_MAX_SERVICE_P99_MS = 25.0
DEFAULT_MAX_JOURNAL_OVERHEAD = 1.10
DEFAULT_MAX_RESTORE_MS = 5000.0
DEFAULT_TOLERANCE = 1e-6


def flatten(obj: Any, path: str = "") -> Iterator[tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf, skipping
    host-dependent timing keys."""
    if isinstance(obj, dict):
        for key, value in sorted(obj.items()):
            if key in TIMING_KEYS:
                continue
            yield from flatten(value, f"{path}.{key}" if path else str(key))
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from flatten(value, f"{path}[{i}]")
    elif isinstance(obj, bool):
        return
    elif isinstance(obj, (int, float)):
        yield path, float(obj)


def collect_key(obj: Any, wanted: str, path: str = "") -> Iterator[tuple[str, float]]:
    """Every numeric ``wanted`` leaf in a payload, with its dotted path."""
    if isinstance(obj, dict):
        for key, value in sorted(obj.items()):
            sub = f"{path}.{key}" if path else str(key)
            if key == wanted and isinstance(value, (int, float)):
                yield sub, float(value)
            else:
                yield from collect_key(value, wanted, sub)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from collect_key(value, wanted, f"{path}[{i}]")


def load_baseline(
    name: str, baseline_dir: Path | None, baseline_ref: str
) -> dict[str, Any] | None:
    if baseline_dir is not None:
        path = baseline_dir / name
        if not path.exists():
            return None
        return json.loads(path.read_text())
    proc = subprocess.run(
        ["git", "show", f"{baseline_ref}:benchmarks/out/{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def compare_file(
    name: str,
    fresh: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float,
) -> list[str]:
    problems = []
    fresh_vals = dict(flatten(fresh))
    base_vals = dict(flatten(baseline))
    for path in sorted(base_vals.keys() - fresh_vals.keys()):
        problems.append(f"{name}: {path} vanished (baseline had {base_vals[path]:g})")
    for path in sorted(fresh_vals.keys() & base_vals.keys()):
        a, b = fresh_vals[path], base_vals[path]
        if abs(a - b) > tolerance * max(1.0, abs(a), abs(b)):
            problems.append(
                f"{name}: {path} = {a:.9g}, baseline {b:.9g} "
                f"(rel diff {abs(a - b) / max(1.0, abs(a), abs(b)):.3g} > {tolerance:g})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=OUT_DIR,
        help="directory holding the freshly produced BENCH_*.json",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref to read the committed baselines from (default HEAD)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=None,
        help="read baselines from a directory instead of git",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="relative tolerance for deterministic quantities",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=DEFAULT_MIN_SPEEDUP,
        help="acceptance floor for every fresh 'speedup' value",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=DEFAULT_MAX_OVERHEAD,
        help="acceptance ceiling for every fresh 'supervised_overhead' value",
    )
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=DEFAULT_MIN_SHARD_SPEEDUP,
        help="acceptance floor for 'shard_pool_speedup_largest' (pool must "
        "beat serial shard execution)",
    )
    parser.add_argument(
        "--max-recovery-overhead",
        type=float,
        default=DEFAULT_MAX_RECOVERY_OVERHEAD,
        help="acceptance ceiling for 'shard_recovery_overhead' (price of a "
        "SIGKILLed worker vs a clean pool run)",
    )
    parser.add_argument(
        "--min-scale-speedup",
        type=float,
        default=DEFAULT_MIN_SCALE_SPEEDUP,
        help="acceptance floor for every fresh 'scale_speedup' value (fast "
        "shadow loop vs the legacy scalar loop, bench_scale)",
    )
    parser.add_argument(
        "--max-trace-peak-mb",
        type=float,
        default=DEFAULT_MAX_TRACE_PEAK_MB,
        help="acceptance ceiling for every fresh 'trace_peak_mb' value (peak "
        "heap of one-pass trace verification, bench_trace_scale)",
    )
    parser.add_argument(
        "--max-trace-peak-ratio",
        type=float,
        default=DEFAULT_MAX_TRACE_PEAK_RATIO,
        help="acceptance ceiling for 'trace_peak_ratio' (streaming peak at "
        "10^6 events over 10^4 events — must stay ~flat)",
    )
    parser.add_argument(
        "--max-service-p99-ms",
        type=float,
        default=DEFAULT_MAX_SERVICE_P99_MS,
        help="acceptance ceiling for 'service_p99_ms' (99th-percentile "
        "request latency of the in-process service load, bench_service_load)",
    )
    parser.add_argument(
        "--max-journal-overhead",
        type=float,
        default=DEFAULT_MAX_JOURNAL_OVERHEAD,
        help="acceptance ceiling for 'journal_overhead' (journaled over "
        "unjournaled mixed-load p99, bench_service_recovery)",
    )
    parser.add_argument(
        "--max-restore-ms",
        type=float,
        default=DEFAULT_MAX_RESTORE_MS,
        help="acceptance ceiling for 'restore_100_sessions_ms' (cold "
        "crash-recovery of 100 journaled sessions, bench_service_recovery)",
    )
    args = parser.parse_args(argv)

    fresh_files = sorted(args.fresh_dir.glob("BENCH_*.json"))
    if not fresh_files:
        print(f"error: no BENCH_*.json under {args.fresh_dir}", file=sys.stderr)
        return 2

    problems: list[str] = []
    checked = 0
    for path in fresh_files:
        fresh = json.loads(path.read_text())
        for spath, value in collect_key(fresh, SPEEDUP_KEY):
            if value < args.min_speedup:
                problems.append(
                    f"{path.name}: {spath} = {value:.3f} below the "
                    f"{args.min_speedup:g}x floor"
                )
        for spath, value in collect_key(fresh, OVERHEAD_KEY):
            if value > args.max_overhead:
                problems.append(
                    f"{path.name}: {spath} = {value:.3f} above the "
                    f"{args.max_overhead:g}x supervised-overhead ceiling"
                )
        for spath, value in collect_key(fresh, SHARD_SPEEDUP_KEY):
            if value < args.min_shard_speedup:
                problems.append(
                    f"{path.name}: {spath} = {value:.3f} below the "
                    f"{args.min_shard_speedup:g}x shard-pool floor (pool "
                    f"slower than serial shard execution)"
                )
        for spath, value in collect_key(fresh, SCALE_SPEEDUP_KEY):
            if value < args.min_scale_speedup:
                problems.append(
                    f"{path.name}: {spath} = {value:.1f} below the "
                    f"{args.min_scale_speedup:g}x array-core floor"
                )
        for spath, value in collect_key(fresh, SHARD_RECOVERY_KEY):
            if value > args.max_recovery_overhead:
                problems.append(
                    f"{path.name}: {spath} = {value:.3f} above the "
                    f"{args.max_recovery_overhead:g}x shard-recovery ceiling"
                )
        for spath, value in collect_key(fresh, TRACE_PEAK_KEY):
            if value > args.max_trace_peak_mb:
                problems.append(
                    f"{path.name}: {spath} = {value:.2f} MB above the "
                    f"{args.max_trace_peak_mb:g} MB streaming-verification ceiling"
                )
        for spath, value in collect_key(fresh, TRACE_PEAK_RATIO_KEY):
            if value > args.max_trace_peak_ratio:
                problems.append(
                    f"{path.name}: {spath} = {value:.2f} above the "
                    f"{args.max_trace_peak_ratio:g}x peak-growth ceiling "
                    f"(streaming memory is growing with the event count)"
                )
        for spath, value in collect_key(fresh, SERVICE_P99_KEY):
            if value > args.max_service_p99_ms:
                problems.append(
                    f"{path.name}: {spath} = {value:.2f} ms above the "
                    f"{args.max_service_p99_ms:g} ms service-latency ceiling"
                )
        for spath, value in collect_key(fresh, JOURNAL_OVERHEAD_KEY):
            if value > args.max_journal_overhead:
                problems.append(
                    f"{path.name}: {spath} = {value:.3f} above the "
                    f"{args.max_journal_overhead:g}x journaling-overhead "
                    f"ceiling (write-ahead durability tax at the mixed p99)"
                )
        for spath, value in collect_key(fresh, RESTORE_MS_KEY):
            if value > args.max_restore_ms:
                problems.append(
                    f"{path.name}: {spath} = {value:.1f} ms above the "
                    f"{args.max_restore_ms:g} ms crash-recovery ceiling "
                    f"(100-session cold restore)"
                )
        baseline = load_baseline(path.name, args.baseline_dir, args.baseline_ref)
        if baseline is None:
            print(f"  {path.name}: no baseline (new benchmark) — skipped diff")
            continue
        problems.extend(compare_file(path.name, fresh, baseline, args.tolerance))
        checked += 1

    if problems:
        print(f"BENCH REGRESSION: {len(problems)} problem(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"bench regression check: OK ({checked} baseline(s) diffed, "
          f"{len(fresh_files)} artifact(s), tolerance {args.tolerance:g}, "
          f"speedup floor {args.min_speedup:g}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
