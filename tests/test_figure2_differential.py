"""The differential claim behind Figure 2 (and the proof of Lemma 7).

Figure 2 shows that processing an extra ``dw`` of job 2's weight extends the
non-clairvoyant run by some ``dT``, and shifts the clairvoyant run's entire
suffix right by *the same* ``dT``.  We verify this numerically: perturb a
job's volume by a small ``dv`` and compare the completion-time shifts of the
two algorithms (they must agree to first order), plus the prediction
``dT = dv / s``, where ``s`` is the speed at which the extra weight is
processed (the end of NC's run for the perturbed job).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform

DV = 1e-7


def shifted_instance(inst: Instance, job_id: int, dv: float) -> Instance:
    return Instance(
        j if j.job_id != job_id else j.with_volume(j.volume + dv) for j in inst
    )


class TestFigure2Differential:
    def figure_instance(self) -> Instance:
        return Instance([Job(1, 0.0, 3.0), Job(2, 1.2, 2.0)])

    def test_equal_dT_both_algorithms(self, cube):
        inst = self.figure_instance()
        pert = shifted_instance(inst, 2, DV)
        dT_nc = (
            simulate_nc_uniform(pert, cube).schedule.end_time
            - simulate_nc_uniform(inst, cube).schedule.end_time
        )
        dT_c = (
            simulate_clairvoyant(pert, cube).schedule.end_time
            - simulate_clairvoyant(inst, cube).schedule.end_time
        )
        assert dT_nc == pytest.approx(dT_c, rel=1e-4)

    def test_dT_equals_dv_over_final_speed(self, cube):
        """NC processes the extra dw at the very end of job 2's run, at the
        final speed s; so dT = dv/s to first order."""
        inst = self.figure_instance()
        nc = simulate_nc_uniform(inst, cube)
        end_speed = nc.schedule.speed_at(nc.schedule.end_time - 1e-12)
        pert = shifted_instance(inst, 2, DV)
        dT = simulate_nc_uniform(pert, cube).schedule.end_time - nc.schedule.end_time
        assert dT == pytest.approx(DV / end_speed, rel=1e-4)

    def test_clairvoyant_history_before_release_unchanged(self, cube):
        """Adding weight to job 2 does not change C's schedule before r2."""
        inst = self.figure_instance()
        pert = shifted_instance(inst, 2, 0.5)  # a large, visible perturbation
        a = simulate_clairvoyant(inst, cube)
        b = simulate_clairvoyant(pert, cube)
        for t in (0.3, 0.7, 1.1):
            assert a.schedule.speed_at(t) == pytest.approx(b.schedule.speed_at(t), rel=1e-12)

    def test_clairvoyant_suffix_speed_jump_at_release(self, cube):
        """At r2 the remaining weight jumps by dW, raising C's speed there."""
        inst = self.figure_instance()
        pert = shifted_instance(inst, 2, 0.5)
        a = simulate_clairvoyant(inst, cube)
        b = simulate_clairvoyant(pert, cube)
        assert b.schedule.speed_at(1.21) > a.schedule.speed_at(1.21)

    @given(
        st.floats(min_value=0.5, max_value=5.0),
        st.floats(min_value=0.5, max_value=5.0),
        st.floats(min_value=0.2, max_value=3.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_dT_equality_property(self, v1, v2, r2):
        """The same first-order claim over random two-job instances."""
        power = PowerLaw(3.0)
        inst = Instance([Job(1, 0.0, v1), Job(2, r2, v2)])
        pert = shifted_instance(inst, 2, DV)
        dT_nc = (
            simulate_nc_uniform(pert, power).schedule.end_time
            - simulate_nc_uniform(inst, power).schedule.end_time
        )
        dT_c = (
            simulate_clairvoyant(pert, power).schedule.end_time
            - simulate_clairvoyant(inst, power).schedule.end_time
        )
        assert dT_nc == pytest.approx(dT_c, rel=1e-3, abs=1e-12)
