"""Immediate-dispatch rules for parallel machines.

These are the *volume-oblivious* dispatchers the §6 lower bound applies to: a
deterministic immediate-dispatch algorithm in the non-clairvoyant model sees
only (release, density) at assignment time, so the adversary can choose which
jobs are heavy *after* seeing the assignment.  Each rule maps a job stream to
machine assignments; per-machine processing is then delegated to a
single-machine algorithm (Algorithm C by default — giving the dispatcher the
best possible processing only strengthens the lower bound).
"""

from __future__ import annotations

from typing import Callable, Literal

from ..core.errors import InvalidInstanceError
from ..core.job import Instance
from ..core.power import PowerLaw
from ..core.shadow import SimulationContext
from ..algorithms.clairvoyant import simulate_clairvoyant
from ..algorithms.nc_uniform import simulate_nc_uniform
from .cluster import ClusterRun

__all__ = [
    "DISPATCH_RULES",
    "simulate_immediate_dispatch",
    "round_robin",
    "least_count",
    "seeded_random_rule",
]

#: A dispatch rule sees the machine count and the *observable* part of the job
#: stream so far (ids in release order) and returns the machine for each job.
DispatchRule = Callable[[int, list[int]], list[int]]


def round_robin(machines: int, job_ids: list[int]) -> list[int]:
    """Job i -> machine i mod k."""
    return [i % machines for i in range(len(job_ids))]


def least_count(machines: int, job_ids: list[int]) -> list[int]:
    """Each job goes to the machine with the fewest jobs so far (ties by
    index).  With equal-looking jobs this is the canonical 'balanced'
    volume-oblivious dispatcher."""
    counts = [0] * machines
    out = []
    for _ in job_ids:
        chosen = min(range(machines), key=lambda i: (counts[i], i))
        out.append(chosen)
        counts[chosen] += 1
    return out


def seeded_random_rule(seed: int) -> DispatchRule:
    """A *randomized* volume-oblivious dispatcher (uniform machine choice).

    Randomisation does not escape the §6 lower bound against an *adaptive*
    adversary: the adversary observes the realised assignment and still finds
    a machine with at least ``k`` jobs (the maximum load of k² balls in k
    bins is ``k + Θ(sqrt(k log k)) >= k``), so the measured ratio matches the
    deterministic rules' — demonstrated in ``bench_lower_bound.py``.
    """
    import numpy as np

    def rule(machines: int, job_ids: list[int]) -> list[int]:
        rng = np.random.default_rng(seed)
        return [int(m) for m in rng.integers(0, machines, size=len(job_ids))]

    return rule


DISPATCH_RULES: dict[str, DispatchRule] = {
    "round_robin": round_robin,
    "least_count": least_count,
}


def simulate_immediate_dispatch(
    instance: Instance,
    power: PowerLaw,
    machines: int,
    rule: str | DispatchRule = "least_count",
    per_machine: Literal["C", "NC"] = "C",
    context: SimulationContext | None = None,
    exclude_machines: frozenset[int] | set[int] | None = None,
) -> ClusterRun:
    """Dispatch with a volume-oblivious rule, then run each machine's jobs
    with Algorithm C (``per_machine='C'``) or Algorithm NC (``'NC'``, uniform
    densities only).  ``context`` — if given — routes per-machine shadow
    counters and trace events (one ``release`` per dispatch decision,
    component ``"dispatch"``) through its recorder.

    ``exclude_machines`` marks machines known-dead at dispatch time (the
    machine-failure fault model of :mod:`repro.faults`): the rule still sees
    the full machine count, but any assignment landing on a dead machine is
    remapped to the next surviving index, preserving the rule's determinism.
    """
    if machines < 1:
        raise InvalidInstanceError(f"machines must be >= 1, got {machines}")
    excluded = frozenset(exclude_machines) if exclude_machines else frozenset()
    survivors = [i for i in range(machines) if i not in excluded]
    if not survivors:
        raise InvalidInstanceError("exclude_machines leaves no machine alive")
    rule_fn = DISPATCH_RULES[rule] if isinstance(rule, str) else rule
    job_ids = list(instance.job_ids)
    targets = rule_fn(machines, job_ids)
    if len(targets) != len(job_ids) or any(not 0 <= m < machines for m in targets):
        raise InvalidInstanceError("dispatch rule returned an invalid assignment")
    if excluded:
        targets = [m if m not in excluded else survivors[m % len(survivors)] for m in targets]

    rec = None
    if context is not None and context.recorder.enabled:
        rec = context.recorder
    assignments: dict[int, list[int]] = {i: [] for i in range(machines)}
    for jid, m in zip(job_ids, targets):
        assignments[m].append(jid)
        if rec is not None:
            rec.emit(
                "release", instance[jid].release, "dispatch", job=jid, machine=m
            )

    schedules = {}
    for i in range(machines):
        if not assignments[i]:
            continue
        sub = instance.subset(assignments[i])
        assert sub is not None
        if per_machine == "C":
            schedules[i] = simulate_clairvoyant(
                sub, power, context=context, component=f"dispatch.m{i}.C"
            ).schedule
        elif per_machine == "NC":
            schedules[i] = simulate_nc_uniform(
                sub, power, context=context, component=f"dispatch.m{i}.NC"
            ).schedule
        else:
            raise ValueError(f"unknown per-machine algorithm {per_machine!r}")
    return ClusterRun(
        instance=instance,
        power=power,
        machines=machines,
        assignments=assignments,
        schedules=schedules,
    )
