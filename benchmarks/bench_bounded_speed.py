"""E12 (extension) — speed-bounded processors.

Related-work model (§1.3, [6]): same objective, maximum speed ``s_max``.
Sweeping the cap from loose to tight shows:

* the **energy equality** of Algorithms C and NC (Lemma 3) survives the cap
  *exactly* — the clipped profiles are still rearrangements of each other;
* the **flow ratio** (Lemma 4's `1/(1-1/alpha)` when uncapped) shrinks
  towards 1 as the cap tightens: with both algorithms pinned at ``s_max``
  most of the time there is less room for the non-clairvoyant penalty;
* total cost rises as the cap tightens (flow explodes once the machine can
  no longer react to backlog).
"""

from __future__ import annotations

from repro import Instance, Job
from repro.analysis import format_table
from repro.core import evaluate
from repro.extensions import (
    CappedPowerLaw,
    simulate_clairvoyant_capped,
    simulate_nc_uniform_capped,
)

from conftest import emit

ALPHA = 3.0
CAPS = (8.0, 2.0, 1.4, 1.1, 0.9, 0.7)


def _instance() -> Instance:
    return Instance(
        [Job(0, 0.0, 4.0), Job(1, 1.0, 2.0), Job(2, 1.5, 1.0), Job(3, 4.0, 3.0)]
    )


def _run():
    inst = _instance()
    rows = []
    for s_max in CAPS:
        p = CappedPowerLaw(ALPHA, s_max)
        rc = evaluate(simulate_clairvoyant_capped(inst, p).schedule, inst, p)
        rn = evaluate(simulate_nc_uniform_capped(inst, p).schedule, inst, p)
        rows.append(
            [
                s_max,
                rn.energy / rc.energy,
                rn.fractional_flow / rc.fractional_flow,
                1 / (1 - 1 / ALPHA),
                rc.fractional_objective,
                rn.fractional_objective,
            ]
        )
    return rows


def test_bounded_speed(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["s_max", "E_NC/E_C", "F_NC/F_C", "uncapped ratio", "G_frac(C)", "G_frac(NC)"],
        rows,
        title=f"Speed-bounded extension (alpha = {ALPHA}); energy equality survives the cap",
        floatfmt=".4f",
    )
    emit("bounded_speed", table)
    for s_max, e_ratio, f_ratio, uncapped, g_c, g_nc in rows:
        assert abs(e_ratio - 1.0) < 1e-9
        assert f_ratio <= uncapped + 1e-9
        assert 1.0 - 1e-9 <= f_ratio
    # Tightening the cap monotonically raises the clairvoyant cost.
    costs = [r[4] for r in rows]
    assert all(b >= a - 1e-9 for a, b in zip(costs, costs[1:]))
