"""E3 — Figure 2: the uniform-density weight evolution.

The paper's figure shows a two-job instance (job 1 at time 0 fully processed,
job 2 released at r2): adding dw to job 2's processed weight extends the
non-clairvoyant run by dT, and shifts the clairvoyant run's entire suffix by
the *same* dT.  We regenerate the observable consequences:

* the remaining-weight profile of Algorithm C and the processed-weight
  profile of Algorithm NC on the figure's instance;
* Lemma 6 — the two schedules' speed *distributions* coincide (quantile gap
  ~ 0) and the total durations are equal;
* Lemmas 3/4 — the resulting exact energy equality and flow ratio.
"""

from __future__ import annotations

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.analysis import (
    format_ascii_chart,
    format_table,
    processed_weight_curve,
    remaining_weight_curve,
    speed_quantile_gap,
)
from repro.core import evaluate

from conftest import emit

ALPHA = 3.0


def _run():
    power = PowerLaw(ALPHA)
    # The figure's setup: w1 at time 0, w2 released at r2 > 0.
    inst = Instance([Job(1, 0.0, 3.0, 1.0), Job(2, 1.2, 2.0, 1.0)])
    c = simulate_clairvoyant(inst, power)
    nc = simulate_nc_uniform(inst, power)
    rem_c = remaining_weight_curve(c.schedule, inst, samples=72)
    done_nc = processed_weight_curve(nc.schedule, inst, samples=72)
    gap = speed_quantile_gap(nc.schedule, c.schedule, samples=8192)
    rep_c = evaluate(c.schedule, inst, power)
    rep_nc = evaluate(nc.schedule, inst, power)
    return inst, rem_c, done_nc, gap, rep_c, rep_nc, c, nc


def test_fig2_weight_profiles(benchmark):
    inst, rem_c, done_nc, gap, rep_c, rep_nc, c, nc = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    chart = format_ascii_chart(
        [
            ("C remaining weight", rem_c.times, rem_c.values),
            ("NC processed weight", done_nc.times, done_nc.values),
        ],
        title="Figure 2 — weight evolution (jobs w1=3 at t=0, w2=2 at t=1.2), alpha = 3",
    )
    table = format_table(
        ["quantity", "C", "NC", "paper's relation"],
        [
            ["end of schedule", c.schedule.end_time, nc.schedule.end_time, "equal (Lemma 6)"],
            ["energy", rep_c.energy, rep_nc.energy, "equal (Lemma 3)"],
            [
                "fractional flow",
                rep_c.fractional_flow,
                rep_nc.fractional_flow,
                f"x {1 / (1 - 1 / ALPHA):.6f} (Lemma 4)",
            ],
            ["speed-distribution gap", 0.0, gap, "~0 (Lemma 6)"],
        ],
        floatfmt=".6f",
    )
    emit("fig2_weight_profiles", chart + "\n\n" + table)

    assert gap < 3e-3
    assert abs(nc.schedule.end_time - c.schedule.end_time) < 1e-9 * c.schedule.end_time
    assert abs(rep_nc.energy - rep_c.energy) < 1e-9 * rep_c.energy
    assert (
        abs(rep_nc.fractional_flow - rep_c.fractional_flow / (1 - 1 / ALPHA))
        < 1e-9 * rep_nc.fractional_flow
    )
