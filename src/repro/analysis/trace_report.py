"""Reports and invariant checks over structured traces.

A trace produced through :mod:`repro.core.tracing` is *self-contained*: the
``run_meta`` header carries the instance and power function, and every
``kernel_eval`` event carries the full closed-form parameters of the piece it
describes (``profile``, ``t0``/``t1``, ``x0`` or ``speed``, ``rho``,
``alpha``).  This module replays those events back into
:class:`~repro.core.schedule.Schedule` objects and checks the paper's
invariants *from the trace alone* — no access to the original run objects:

* **Lemma 3** — ``energy(NC) == energy(C)``: both replayed schedules are
  evaluated with :func:`repro.core.metrics.evaluate` and compared exactly.
* **Lemma 4** — ``frac_flow(NC) == frac_flow(C) / (1 - 1/alpha)``.
* **Ordering** — per ``(component, kind)`` stream, ``sim_time`` is
  nondecreasing except across a ``shadow_rollback`` / ``shadow_rebuild``
  boundary on that component (the events that mark a clock rewind), or a
  supervisor ``retry`` (which restarts a whole attempt, rewinding every
  stream).

Supervised runs (:mod:`repro.runtime.supervisor`) may retry a failed
attempt: a ``retry`` event on component ``X`` means every ``kernel_eval``
previously emitted by ``X`` (and its ``X.*`` children) belongs to a
discarded attempt.  :func:`replay_schedule` honors this by resetting its
builder at the boundary, so post-recovery invariant checks see only the
surviving attempt.

:func:`build_report` computes all of the above plus a per-component
wall-time/event breakdown; :func:`format_report` renders it for the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.job import Instance, Job
from ..core.metrics import evaluate
from ..core.power import PowerLaw
from ..core.schedule import (
    ConstantSegment,
    DecaySegment,
    GrowthSegment,
    Schedule,
    ScheduleBuilder,
)
from ..core.tracing import TraceEvent

__all__ = [
    "InvariantCheck",
    "ComponentStats",
    "TraceReport",
    "instance_from_meta",
    "replay_schedule",
    "check_event_order",
    "build_report",
    "build_report_in_memory",
    "format_report",
]

#: Acceptance tolerance for the replayed Lemma 3 / Lemma 4 equalities.
REL_TOL = 1e-9

#: Components whose kernel_eval streams are replayed into schedules and fed
#: to the invariant checks (single-machine C vs NC; the capped variants obey
#: the same energy equality, see extensions.bounded_speed).
_PAIRS = (("C", "NC"), ("C_capped", "NC_capped"))


@dataclass(frozen=True)
class InvariantCheck:
    """One replayed paper invariant."""

    name: str
    holds: bool
    lhs: float
    rhs: float
    detail: str


@dataclass(frozen=True)
class ComponentStats:
    """Per-component breakdown of one trace."""

    component: str
    events: int
    by_kind: dict[str, int]
    wall_start: float
    wall_end: float

    @property
    def wall_span(self) -> float:
        return self.wall_end - self.wall_start


@dataclass(frozen=True)
class TraceReport:
    """Everything :func:`build_report` extracts from one event stream."""

    n_events: int
    components: list[ComponentStats]
    checks: list[InvariantCheck]
    order_violations: list[str]
    energies: dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.order_violations and all(c.holds for c in self.checks)


def instance_from_meta(events: list[TraceEvent]) -> tuple[Instance, PowerLaw] | None:
    """Recover ``(instance, power)`` from the trace's ``run_meta`` header."""
    for e in events:
        if e.kind == "run_meta":
            spec = e.payload.get("instance")
            alpha = e.payload.get("alpha")
            if spec is None or alpha is None:
                return None
            inst = Instance(
                [Job(int(j), float(r), float(v), float(d)) for j, r, v, d in spec]
            )
            return inst, PowerLaw(float(alpha))
    return None


def replay_schedule(events: list[TraceEvent], component: str) -> Schedule | None:
    """Rebuild a component's schedule from its ``kernel_eval`` events.

    A ``retry`` event on ``component`` discards everything replayed so far —
    those kernel pieces belong to a failed, rolled-back attempt."""
    builder = ScheduleBuilder()
    n = 0
    for e in events:
        if e.kind == "retry" and e.component == component:
            builder = ScheduleBuilder()
            n = 0
            continue
        if e.kind != "kernel_eval" or e.component != component:
            continue
        p = e.payload
        t0, t1, job = float(p["t0"]), float(p["t1"]), int(p["job"])
        profile = p["profile"]
        if profile == "decay":
            builder.append(
                DecaySegment(t0, t1, job, float(p["x0"]), float(p["rho"]), float(p["alpha"]))
            )
        elif profile == "growth":
            builder.append(
                GrowthSegment(t0, t1, job, float(p["x0"]), float(p["rho"]), float(p["alpha"]))
            )
        elif profile == "const":
            builder.append(ConstantSegment(t0, t1, job, float(p["speed"])))
        else:
            raise ValueError(f"unknown kernel profile {profile!r} in trace")
        n += 1
    return builder.build() if n else None


def check_event_order(events: list[TraceEvent]) -> list[str]:
    """Violations of the per-``(component, kind)`` monotonicity contract.

    A ``shadow_rollback`` or ``shadow_rebuild`` on a component rewinds that
    component's clock, so it resets the watermark for *all* kinds of that
    component.  A supervisor ``retry`` restarts a whole attempt from a
    checkpoint, so it resets every watermark.
    """
    last: dict[tuple[str, str], float] = {}
    violations: list[str] = []
    for i, e in enumerate(events):
        if e.kind == "retry":
            last.clear()
            continue
        if e.kind in ("shadow_rollback", "shadow_rebuild"):
            for key in [k for k in last if k[0] == e.component]:
                del last[key]
            continue
        key = (e.component, e.kind)
        prev = last.get(key)
        if prev is not None and e.sim_time < prev:
            violations.append(
                f"event {i}: {e.component}/{e.kind} at sim_time={e.sim_time} "
                f"after {prev} with no rollback boundary"
            )
        last[key] = e.sim_time
    return violations


def _component_stats(events: list[TraceEvent]) -> list[ComponentStats]:
    by_comp: dict[str, list[TraceEvent]] = {}
    for e in events:
        by_comp.setdefault(e.component, []).append(e)
    out = []
    for comp in sorted(by_comp):
        evs = by_comp[comp]
        kinds: dict[str, int] = {}
        for e in evs:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        out.append(
            ComponentStats(
                component=comp,
                events=len(evs),
                by_kind=dict(sorted(kinds.items())),
                wall_start=min(e.wall_time for e in evs),
                wall_end=max(e.wall_time for e in evs),
            )
        )
    return out


def _close(a: float, b: float, tol: float) -> bool:
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def build_report(events: Iterable[TraceEvent], *, rel_tol: float = REL_TOL) -> TraceReport:
    """Replay one trace and check every invariant it can support.

    Lemma 3 / Lemma 4 checks run for each ``(C, NC)`` component pair present
    in the trace (plain and capped); components with kernel events but no
    paired counterpart contribute their replayed energy informationally.

    ``events`` may be any iterable — a list, :func:`~repro.core.tracing.iter_jsonl`
    over a (possibly gzip-compressed) file, :func:`~repro.core.tracing.iter_trace`
    over rotated segments, or a live :func:`~repro.core.tracing.follow_jsonl`
    tail.  The report is computed in a **single pass with memory bounded by
    the number of jobs**, never the number of events, and is bit-identical
    to :func:`build_report_in_memory` (the pre-streaming implementation,
    kept as a differential twin — ``tests/test_streaming.py`` proves parity
    on the golden corpus).
    """
    from .streaming import build_report_streaming

    return build_report_streaming(events, rel_tol=rel_tol)


def build_report_in_memory(
    events: Iterable[TraceEvent], *, rel_tol: float = REL_TOL
) -> TraceReport:
    """The original list-materializing implementation of :func:`build_report`.

    Kept as the differential twin for the streaming path (and as the
    fallback for traces the one-pass replayer refuses, see
    :class:`~repro.analysis.streaming.StreamOrderError`).  Memory is
    proportional to the trace; prefer :func:`build_report`.
    """
    events = list(events)
    meta = instance_from_meta(events)
    checks: list[InvariantCheck] = []
    energies: dict[str, float] = {}
    if meta is not None:
        inst, power = meta
        for c_comp, nc_comp in _PAIRS:
            sched_c = replay_schedule(events, c_comp)
            sched_nc = replay_schedule(events, nc_comp)
            rep_c = evaluate(sched_c, inst, power) if sched_c is not None else None
            rep_nc = evaluate(sched_nc, inst, power) if sched_nc is not None else None
            if rep_c is not None:
                energies[c_comp] = rep_c.energy
            if rep_nc is not None:
                energies[nc_comp] = rep_nc.energy
            if rep_c is None or rep_nc is None:
                continue
            checks.append(
                InvariantCheck(
                    name=f"Lemma 3: energy({nc_comp}) == energy({c_comp})",
                    holds=_close(rep_nc.energy, rep_c.energy, rel_tol),
                    lhs=rep_nc.energy,
                    rhs=rep_c.energy,
                    detail=f"replayed from kernel_eval events, rel_tol={rel_tol:g}",
                )
            )
            if c_comp == "C":
                # Lemma 4's exact ratio holds only uncapped (the capped ratio
                # degrades with the cap; see extensions.bounded_speed).
                factor = 1.0 / (1.0 - 1.0 / power.alpha)
                expected = rep_c.fractional_flow * factor
                checks.append(
                    InvariantCheck(
                        name="Lemma 4: flow(NC) == flow(C) / (1 - 1/alpha)",
                        holds=_close(rep_nc.fractional_flow, expected, rel_tol),
                        lhs=rep_nc.fractional_flow,
                        rhs=expected,
                        detail=f"alpha={power.alpha:g}, factor={factor:.6g}",
                    )
                )
    return TraceReport(
        n_events=len(events),
        components=_component_stats(events),
        checks=checks,
        order_violations=check_event_order(events),
        energies=energies,
    )


def format_report(report: TraceReport) -> str:
    """Human-readable rendering of a :class:`TraceReport`."""
    lines = [f"trace: {report.n_events} events, {len(report.components)} components"]
    lines.append("")
    lines.append(f"{'component':<20} {'events':>7} {'wall span (ms)':>15}  kinds")
    for cs in report.components:
        kinds = ", ".join(f"{k}={v}" for k, v in cs.by_kind.items())
        lines.append(
            f"{cs.component:<20} {cs.events:>7} {cs.wall_span * 1e3:>15.3f}  {kinds}"
        )
    if report.energies:
        lines.append("")
        for comp, e in sorted(report.energies.items()):
            lines.append(f"replayed energy[{comp}] = {e:.12g}")
    lines.append("")
    if report.checks:
        for c in report.checks:
            mark = "PASS" if c.holds else "FAIL"
            lines.append(f"[{mark}] {c.name}")
            lines.append(f"       lhs={c.lhs:.12g}  rhs={c.rhs:.12g}  ({c.detail})")
    else:
        lines.append("no invariant checks (trace has no run_meta or no C/NC pair)")
    if report.order_violations:
        lines.append("")
        lines.append(f"ORDER VIOLATIONS ({len(report.order_violations)}):")
        lines.extend(f"  {v}" for v in report.order_violations)
    else:
        lines.append("event ordering: OK (per-component monotone sim_time)")
    return "\n".join(lines)
