"""E14 — alpha sensitivity: how every guarantee moves with the power exponent.

A single chart/table consolidating the paper's alpha-dependencies:

* Algorithm NC's measured fractional ratio vs Theorem 5's ``2 + 1/(alpha-1)``
  (both fall towards 2 as alpha grows);
* the measured flow blow-up ``1/(1-1/alpha)`` (falls towards 1);
* the derived NC-general threshold ``eta_min(alpha)`` (falls towards 1 —
  higher alpha makes the shadow easier to outrun);
* the §6 lower-bound exponent ``1 - 1/alpha`` (rises towards 1 — more
  machines hurt more at higher alpha).
"""

from __future__ import annotations

from repro import PowerLaw
from repro.algorithms import eta_threshold, simulate_nc_uniform
from repro.analysis import format_ascii_chart, format_table
from repro.analysis.sweeps import alpha_grid, sweep
from repro.core import evaluate
from repro.offline import opt_fractional_lower_bound
from repro.workloads import random_instance

from conftest import emit


def _run():
    alphas = alpha_grid(1.5, 6.0, 7)

    def nc_ratio_samples(alpha: float):
        power = PowerLaw(alpha)
        out = []
        for seed in (1, 2):
            inst = random_instance(14, 900 + seed, volume="bimodal")
            rep = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power)
            lb = opt_fractional_lower_bound(inst, power, slots=200, iterations=700)
            out.append(rep.fractional_objective / lb.value)
        return out

    ratio_points = sweep(alphas, nc_ratio_samples)

    rows = []
    for pt in ratio_points:
        a = pt.value
        rows.append(
            [
                a,
                pt.worst,
                2 + 1 / (a - 1),
                1 / (1 - 1 / a),
                eta_threshold(a),
                1 - 1 / a,
            ]
        )
    return alphas, rows


def test_alpha_sensitivity(benchmark):
    alphas, rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        [
            "alpha",
            "NC worst ratio",
            "Thm5 bound",
            "flow blow-up",
            "eta_min",
            "LB exponent",
        ],
        rows,
        title="alpha sensitivity of every guarantee",
        floatfmt=".4f",
    )
    chart = format_ascii_chart(
        [
            ("measured NC ratio", [r[0] for r in rows], [r[1] for r in rows]),
            ("Theorem 5 bound", [r[0] for r in rows], [r[2] for r in rows]),
        ],
        title="NC ratio vs alpha (measured under bound everywhere)",
        height=12,
    )
    emit("alpha_sensitivity", table + "\n\n" + chart)

    for a, measured, bound, blowup, eta_min, exponent in rows:
        assert measured <= bound + 1e-6
        assert eta_min > 1.0
        assert 0.0 < exponent < 1.0
    # Monotonicities the theory predicts.
    bounds = [r[2] for r in rows]
    etas = [r[4] for r in rows]
    exps = [r[5] for r in rows]
    assert all(b >= c for b, c in zip(bounds, bounds[1:]))
    assert all(b >= c for b, c in zip(etas, etas[1:]))
    assert all(b <= c for b, c in zip(exps, exps[1:]))
