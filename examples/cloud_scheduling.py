#!/usr/bin/env python3
"""Cloud billing: the paper's motivating application (§1).

A cloud provider charges ``lambda - rho * t_delay`` per unit volume.  The
penalty rate ``rho`` is in the contract (known when a job is submitted); the
job's true size is whatever the customer uploaded (unknown until it runs to
completion).  The scheduler controls exactly the term
``rho * F_int[j] * V[j]`` — weighted flow-time with *known density and
unknown weight* — plus the provider's energy bill.

Part 1 (single SLA class -> uniform densities, §3): Algorithm NC with the §5
conversion, against a constant-speed FIFO cluster and the clairvoyant
Algorithm C.  NC's guarantees have tight constants here (3 + 1/(alpha-1)),
and it lands within a small factor of the clairvoyant reference without ever
seeing a job size.

Part 2 (tenant-specific SLAs -> non-uniform densities, §4): Algorithm
NC-general.  Note the honest caveat the paper itself states: the §4
competitive constant is 2^{O(alpha)} — the speed multiplier eta costs
eta^alpha in energy — so on small friendly instances the worst-case-optimal
algorithm spends visibly more energy than the clairvoyant reference.

Usage::

    python examples/cloud_scheduling.py [jobs_per_tenant] [seed]
"""

from __future__ import annotations

import sys

from repro import PowerLaw
from repro.algorithms import (
    convert,
    simulate_clairvoyant,
    simulate_constant_speed_fifo,
    simulate_nc_general,
    simulate_nc_uniform,
)
from repro.analysis import format_table
from repro.core import evaluate
from repro.workloads import Tenant, billing_summary, cloud_instance


def run_single_class(jobs: int, seed: int, power: PowerLaw) -> None:
    # One SLA class: every job pays lambda=8 and is penalised at rho=1.
    tenants = (Tenant("standard", lam=8.0, penalty=1.0, mean_volume=1.5, submit_rate=1.2),)
    instance, owner = cloud_instance(jobs, seed, tenants=tenants)

    rows = []
    # Theorem 9: Algorithm NC itself is (3 + 1/(alpha-1))-competitive for the
    # integral objective — no conversion needed in the uniform case.
    nc = evaluate(simulate_nc_uniform(instance, power).schedule, instance, power)
    bill = billing_summary(nc, instance, owner)
    rows.append(["NC (non-clairvoyant)", bill.delay_penalty, bill.energy_cost, bill.net])

    # NB: this baseline is given hindsight it should not have — its speed is
    # sized from the *total* volume of the stream.
    avg_speed = instance.total_volume / max(instance.max_release, 1.0)
    base = evaluate(simulate_constant_speed_fifo(instance, max(avg_speed, 0.5)), instance, power)
    bill_b = billing_summary(base, instance, owner)
    rows.append(["FIFO @ hindsight speed", bill_b.delay_penalty, bill_b.energy_cost, bill_b.net])

    c = evaluate(simulate_clairvoyant(instance, power).schedule, instance, power)
    bill_c = billing_summary(c, instance, owner)
    rows.append(["C (clairvoyant ref.)", bill_c.delay_penalty, bill_c.energy_cost, bill_c.net])

    print(
        format_table(
            ["scheduler", "delay penalty", "energy", "net revenue"],
            rows,
            title=f"Part 1 — one SLA class, {len(instance)} jobs, gross payment "
            f"{bill.gross_payment:.2f}",
            floatfmt=".2f",
        )
    )
    print(
        "(NC's energy is *exactly* the clairvoyant reference's — Lemma 3 — and\n"
        " its guarantee needs no tuning knowledge, unlike the FIFO baseline.)"
    )


def run_multi_tenant(jobs_per_tenant: int, seed: int, power: PowerLaw) -> None:
    instance, owner = cloud_instance(jobs_per_tenant, seed)
    print(
        f"\nPart 2 — {len(instance)} jobs from "
        f"{len({t.name for t in owner.values()})} tenants with distinct SLA penalty rates"
    )

    rows = []
    nc_run = simulate_nc_general(instance, power, max_step=2e-2)
    conv = convert(nc_run.schedule, instance, power, epsilon=0.5)
    bill_nc = billing_summary(conv.integral_report, instance, owner)
    rows.append([f"NC-general (eta={nc_run.eta:.2f}) + §5", bill_nc.delay_penalty,
                 bill_nc.energy_cost, bill_nc.net])

    avg_speed = instance.total_volume / max(instance.max_release, 1.0)
    base = evaluate(simulate_constant_speed_fifo(instance, max(avg_speed, 0.5)), instance, power)
    bill_b = billing_summary(base, instance, owner)
    rows.append(["constant-speed FIFO", bill_b.delay_penalty, bill_b.energy_cost, bill_b.net])

    c = evaluate(simulate_clairvoyant(instance, power).schedule, instance, power)
    bill_c = billing_summary(c, instance, owner)
    rows.append(["C (clairvoyant ref.)", bill_c.delay_penalty, bill_c.energy_cost, bill_c.net])

    print(
        format_table(
            ["scheduler", "delay penalty", "energy", "net revenue"],
            rows,
            floatfmt=".2f",
        )
    )
    print(
        "\n(NC-general's extra energy is the paper's 2^O(alpha) constant at work:\n"
        " its speed multiplier eta costs eta^alpha in energy — the price of a\n"
        " worst-case guarantee with unknown volumes and mixed densities.)"
    )

    print("\nPer-tenant delay penalties under NC-general:")
    per_tenant: dict[str, float] = {}
    for jid, flow in conv.integral_report.integral_flow_by_job.items():
        per_tenant[owner[jid].name] = per_tenant.get(owner[jid].name, 0.0) + flow
    for name, penalty in sorted(per_tenant.items()):
        print(f"  {name:<16} {penalty:10.3f}")


def main(jobs_per_tenant: int = 6, seed: int = 2026) -> None:
    power = PowerLaw(3.0)
    run_single_class(jobs_per_tenant * 3, seed, power)
    run_multi_tenant(jobs_per_tenant, seed, power)


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
