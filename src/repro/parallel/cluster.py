"""Identical parallel machines: shared result container and evaluation.

A cluster run is, per machine, an ordinary single-machine schedule over the
jobs assigned to it (the paper's model forbids migration, so each job lives
entirely on one machine).  Costs are evaluated per machine with the exact
single-machine machinery and merged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ScheduleError
from ..core.job import Instance
from ..core.metrics import CostReport, evaluate
from ..core.power import PowerFunction
from ..core.schedule import Schedule

__all__ = ["ClusterRun"]


@dataclass(frozen=True)
class ClusterRun:
    """Assignments and per-machine schedules of a parallel-machine algorithm."""

    instance: Instance
    power: PowerFunction
    machines: int
    #: machine index -> job ids in assignment order
    assignments: dict[int, list[int]]
    #: machine index -> that machine's schedule
    schedules: dict[int, Schedule]
    #: job id -> machine index, precomputed in ``__post_init__``
    _machine_by_job: dict[int, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        assigned = [j for jobs in self.assignments.values() for j in jobs]
        if sorted(assigned) != sorted(self.instance.job_ids):
            raise ScheduleError("assignments must partition the instance's jobs")
        # Reverse map for machine_of: dispatch evaluation calls it per job in
        # a loop, so the lookup must not rescan every assignment list.
        reverse = {
            j: machine for machine, jobs in self.assignments.items() for j in jobs
        }
        object.__setattr__(self, "_machine_by_job", reverse)

    def machine_of(self, job_id: int) -> int:
        machine = self._machine_by_job.get(job_id)
        if machine is None:
            raise KeyError(f"job {job_id} not assigned")
        return machine

    def machine_instance(self, machine: int) -> Instance | None:
        jobs = self.assignments.get(machine, [])
        return self.instance.subset(jobs) if jobs else None

    def report(self, *, validate: bool = True) -> CostReport:
        """Exact combined cost report over all machines."""
        merged: CostReport | None = None
        for machine, jobs in self.assignments.items():
            if not jobs:
                continue
            sub = self.instance.subset(jobs)
            assert sub is not None
            rep = evaluate(self.schedules[machine], sub, self.power, validate=validate)
            merged = rep if merged is None else merged.merged_with(rep)
        if merged is None:
            raise ScheduleError("cluster run assigned no jobs")
        return merged
