"""E1 — Table 1: the paper's summary of competitive ratios.

Regenerates all four rows at alpha = 3 (the cube law): the literature columns
as the paper cites them, this paper's proved bound, and the *measured* worst
empirical ratio of the paper's algorithm over the standard instance suite
against a certified lower bound on OPT.
"""

from __future__ import annotations

from repro.analysis import build_table1, render_table1

from conftest import emit

ALPHA = 3.0


def _run():
    rows = build_table1(
        ALPHA,
        uniform_n=16,
        nonuniform_n=6,
        seeds=(1, 2),
        slots=250,
        iterations=1000,
        max_step=2e-2,
    )
    return rows


def test_table1(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("table1", render_table1(rows, ALPHA))
    # Reproduction guard: measured ratios sit below the proved bounds.
    for row in rows:
        if row.theoretical is not None:
            assert row.measured_max <= row.theoretical + 1e-6
        else:
            assert row.measured_max < 2.0**10  # 2^{O(alpha)} sanity cap
