"""Seeded chaos campaigns: inject faults, supervise, re-verify the paper.

A campaign (``repro chaos``) runs ``n`` seeded fault scenarios, rotating
through the algorithm families.  Each run either

* completes **clean** (no fault fired on its surviving attempt),
* completes **recovered** (faults fired; the supervisor rolled back and the
  surviving attempt passes every guard — and for C/NC pair runs, Lemma 3 /
  Lemma 4 re-verified *from the trace* at ``1e-9``), or
* **fails structurally** with a :class:`~repro.core.errors.ReproError`
  naming the fault and the last good checkpoint.

No fourth outcome exists: no hangs, no silent NaN, no negative weights —
that is the campaign's contract, asserted by ``tests/test_chaos.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..analysis.trace_report import build_report
from ..core.errors import ReproError, ScheduleError
from ..core.shadow import SimulationContext
from ..core.tracing import MemoryRecorder
from ..extensions.bounded_speed import CappedPowerLaw, simulate_clairvoyant_capped
from ..algorithms.clairvoyant import simulate_clairvoyant
from ..core.power import PowerLaw
from ..faults.plan import FaultPlan, generate_plan
from ..workloads.random_instances import random_instance
from .supervisor import RecoveryPolicy, Supervisor

__all__ = ["RunOutcome", "CampaignReport", "run_pair_verified", "run_campaign", "format_campaign"]

#: Tolerance for trace-replayed Lemma 3 / Lemma 4 on pair runs.
PAIR_REL_TOL = 1e-9

#: Family rotation of a campaign (index ``i % len``): the single-machine NC
#: pair twice (it carries the lemma re-verification), the capped pair, the
#: engine-driven general-density family, and the parallel family.
_ROTATION = ("NC_PAIR", "NC_PAIR", "CAPPED_PAIR", "NC_GENERAL", "NC_PAR")

#: Fault pools per family: pair runs get reveal/release faults (their lies
#: surface as lemma failures); the engine family gets the numeric faults;
#: the parallel family gets machine failures.
_POOLS = {
    "NC_PAIR": ("oracle_lie", "release_jitter", "release_duplicate", "release_drop"),
    "CAPPED_PAIR": ("oracle_lie", "release_drop"),
    "NC_GENERAL": ("power_transient", "power_nan", "step_corruption", "oracle_lie"),
    "NC_PAR": ("machine_failure",),
}


@dataclass(frozen=True)
class RunOutcome:
    """One chaos run's verdict."""

    run_id: int
    family: str
    seed: int
    plan: str
    status: str  # "clean" | "recovered" | "failed"
    attempts: int
    faults_fired: int
    #: pair runs: did Lemma 3/4 replay hold at PAIR_REL_TOL (None otherwise)
    lemmas_ok: bool | None
    error: str | None
    checkpoint: str | None
    n_events: int


@dataclass(frozen=True)
class CampaignReport:
    seed: int
    n_runs: int
    outcomes: tuple[RunOutcome, ...]

    @property
    def n_clean(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "clean")

    @property
    def n_recovered(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "recovered")

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def ok(self) -> bool:
        """Every run survived (clean or recovered) with its lemmas intact;
        structured failures count against the campaign verdict even though
        they satisfy the no-silent-failure contract."""
        return all(
            o.status in ("clean", "recovered") and o.lemmas_ok is not False
            for o in self.outcomes
        )


def _meta_payload(instance, alpha: float) -> dict:
    return {
        "instance": [[j.job_id, j.release, j.volume, j.density] for j in instance],
        "alpha": alpha,
    }


def run_pair_verified(
    instance,
    power: PowerLaw,
    plan: FaultPlan,
    recorder: MemoryRecorder,
    *,
    capped: bool = False,
    policy: RecoveryPolicy | None = None,
) -> tuple[bool, object]:
    """Run the (C, NC) pair traced, NC under supervision, and re-verify
    Lemma 3 / Lemma 4 from the trace at :data:`PAIR_REL_TOL`.

    A lie that slips past the local guards (a scaled volume reveal, a
    jittered release) produces a *valid-looking* NC run whose lemma replay
    fails against C; the harness then emits ``guard_violation`` + ``retry``
    and re-runs NC — the injector's budgets are spent, so the retried
    attempt is clean — and re-verifies.  Returns ``(lemmas_ok, result)``.
    """
    context = SimulationContext(power, recorder=recorder)
    context.emit("run_meta", 0.0, "chaos", **_meta_payload(instance, power.alpha))
    supervisor = Supervisor(power, plan=plan, context=context, policy=policy)
    nc_name = "NC_CAPPED" if capped else "NC"
    if capped:
        assert isinstance(power, CappedPowerLaw)
        simulate_clairvoyant_capped(instance, power, context=context)
    else:
        simulate_clairvoyant(instance, power, context=context)
    result = supervisor.run(nc_name, instance)

    def _lemmas_hold() -> bool:
        try:
            report = build_report(recorder.events, rel_tol=PAIR_REL_TOL)
        except ScheduleError:
            # A phantom/dropped job makes the replayed NC schedule
            # inconsistent with the instance — a lemma failure in disguise.
            return False
        return bool(report.checks) and all(c.holds for c in report.checks)

    ok = _lemmas_hold()
    if not ok:
        # The surviving attempt is self-consistent but wrong against C:
        # escalate to a pair-level retry (fault budgets are spent by now).
        context.emit(
            "guard_violation", 0.0, "supervisor",
            guard="lemma_replay", algorithm=nc_name,
        )
        context.emit("retry", 0.0, "NC_capped" if capped else "NC", reason="lemma_replay")
        result = supervisor.run(nc_name, instance)
        ok = _lemmas_hold()
    return ok, result


def run_campaign(
    seed: int,
    n_runs: int,
    *,
    jobs: int = 8,
    alpha: float = 3.0,
    machines: int = 3,
    out: str | Path | None = None,
    policy: RecoveryPolicy | None = None,
) -> CampaignReport:
    """Run a seeded campaign of ``n_runs`` fault scenarios.

    With ``out`` given, every run's full trace (including ``fault_injected``
    and ``recovery`` events) is appended to one JSONL file; the per-run
    ``run_meta`` header carries ``run_id``/``family``/``plan`` so the file
    partitions cleanly on re-read.
    """
    outcomes: list[RunOutcome] = []
    sink = Path(out).open("w", encoding="utf-8") if out is not None else None
    try:
        for i in range(n_runs):
            derived = seed * 1_000_003 + i
            family = _ROTATION[i % len(_ROTATION)]
            outcomes.append(
                _run_one(i, family, derived, jobs=jobs, alpha=alpha,
                         machines=machines, sink=sink, policy=policy)
            )
    finally:
        if sink is not None:
            sink.close()
    return CampaignReport(seed=seed, n_runs=n_runs, outcomes=tuple(outcomes))


def _run_one(
    run_id: int,
    family: str,
    derived_seed: int,
    *,
    jobs: int,
    alpha: float,
    machines: int,
    sink,
    policy: RecoveryPolicy | None,
) -> RunOutcome:
    recorder = MemoryRecorder()
    n = jobs if family != "NC_GENERAL" else max(3, jobs // 2)
    plan = generate_plan(
        derived_seed,
        n_faults=1,
        kinds=_POOLS[family],
        n_jobs=n,
        machines=machines if family == "NC_PAR" else None,
    )
    instance = random_instance(n, seed=derived_seed, volume="uniform")
    lemmas_ok: bool | None = None
    status = "failed"
    attempts = 0
    error = None
    checkpoint = None
    faults_fired = 0
    try:
        if family == "NC_PAIR":
            power = PowerLaw(alpha)
            ok, result = run_pair_verified(instance, power, plan, recorder, policy=policy)
            lemmas_ok, attempts = ok, result.attempts
            faults_fired = len(result.faults)
            status = "recovered" if (result.recovered or result.faults) else "clean"
        elif family == "CAPPED_PAIR":
            power = CappedPowerLaw(alpha, s_max=2.5)
            ok, result = run_pair_verified(
                instance, power, plan, recorder, capped=True, policy=policy
            )
            lemmas_ok, attempts = ok, result.attempts
            faults_fired = len(result.faults)
            status = "recovered" if (result.recovered or result.faults) else "clean"
        elif family == "NC_GENERAL":
            power = PowerLaw(alpha)
            context = SimulationContext(power, recorder=recorder)
            context.emit("run_meta", 0.0, "chaos", **_meta_payload(instance, alpha))
            supervisor = Supervisor(power, plan=plan, context=context, policy=policy)
            result = supervisor.run("NC_GENERAL", instance, max_step=5e-2)
            attempts = result.attempts
            faults_fired = len(result.faults)
            status = "recovered" if (result.recovered or result.faults) else "clean"
        else:  # NC_PAR
            power = PowerLaw(alpha)
            context = SimulationContext(power, recorder=recorder)
            context.emit("run_meta", 0.0, "chaos", **_meta_payload(instance, alpha))
            supervisor = Supervisor(power, plan=plan, context=context, policy=policy)
            result = supervisor.run("NC_PAR", instance, machines=machines)
            attempts = result.attempts
            faults_fired = len(result.faults)
            status = "recovered" if (result.recovered or result.faults) else "clean"
    except ReproError as err:
        # Structured terminal failure: the fault and checkpoint are named.
        error = f"{type(err).__name__}: {err}"
        checkpoint = (
            str(err.context.get("checkpoint")) if err.context.get("checkpoint") else None
        )
        attempts = int(err.context.get("attempts", 0) or 0)
        status = "failed"
    if sink is not None:
        header = {
            "run_id": run_id,
            "family": family,
            "seed": derived_seed,
            "plan": plan.describe(),
            "status": status,
        }
        rec2 = MemoryRecorder()
        rec2.emit("run_meta", 0.0, "campaign", **header)
        sink.write(rec2.events[0].to_json() + "\n")
        for event in recorder.events:
            sink.write(event.to_json() + "\n")
    return RunOutcome(
        run_id=run_id,
        family=family,
        seed=derived_seed,
        plan=plan.describe(),
        status=status,
        attempts=attempts,
        faults_fired=faults_fired,
        lemmas_ok=lemmas_ok,
        error=error,
        checkpoint=checkpoint,
        n_events=len(recorder.events),
    )


def format_campaign(report: CampaignReport) -> str:
    lines = [
        f"chaos campaign: seed={report.seed}, {report.n_runs} runs — "
        f"{report.n_clean} clean, {report.n_recovered} recovered, "
        f"{report.n_failed} failed"
    ]
    lines.append("")
    lines.append(
        f"{'run':>4} {'family':<12} {'status':<10} {'attempts':>8} "
        f"{'faults':>6} {'lemmas':>7}  detail"
    )
    for o in report.outcomes:
        lemmas = "-" if o.lemmas_ok is None else ("PASS" if o.lemmas_ok else "FAIL")
        detail = o.error if o.error else o.plan
        lines.append(
            f"{o.run_id:>4} {o.family:<12} {o.status:<10} {o.attempts:>8} "
            f"{o.faults_fired:>6} {lemmas:>7}  {detail}"
        )
    lines.append("")
    lines.append(
        "CAMPAIGN OK: every run survived with guarantees intact"
        if report.ok
        else "CAMPAIGN FAILED: at least one run failed or broke a replayed lemma"
    )
    return "\n".join(lines)
