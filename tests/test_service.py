"""End-to-end tests of the scheduling service (:mod:`repro.service`).

The load-bearing claims:

* **Differential bit-identity** (the ISSUE's acceptance test): a session fed
  jobs through the HTTP API yields schedules bit-identical to driving the
  same instance through :class:`~repro.core.shadow.SimulationContext`
  directly, for every session algorithm — floats compared exactly after a
  full JSON round trip.
* **Isolation**: two sessions with interleaved arrival streams produce the
  same schedules as the same workloads run in isolated sessions.
* **Backpressure**: a batch that would overflow the bounded per-session
  queue is rejected whole with 429 and leaves no partial state behind.
* **Verified reports**: the ``/report`` endpoint replays a traced (C, NC)
  pair through the streaming verifier and the Lemma 3/4 checks hold.
* **Graceful shutdown** flushes per-session trace sinks (on DELETE and on
  service shutdown), and the dependency-free socket server serves the same
  app over real HTTP.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
import urllib.request

import pytest

pytest.importorskip("pydantic")

from repro import io
from repro.core.job import Instance, Job
from repro.core.power import PowerLaw
from repro.core.shadow import SimulationContext
from repro.core.tracing import iter_trace
from repro.service import TestClient, create_app, serve
from repro.service.models import ScheduleModel
from repro.service.sessions import simulate_session_algorithm
from repro.workloads import random_instance

ALPHA = 3.0


@pytest.fixture()
def client():
    with TestClient(create_app()) as c:
        yield c


def _batches(inst: Instance, size: int):
    jobs = [
        {"id": j.job_id, "release": j.release, "volume": j.volume, "density": j.density}
        for j in inst
    ]
    return [jobs[i : i + size] for i in range(0, len(jobs), size)]


def _feed(client: TestClient, session_id: str, inst: Instance, *, batch: int = 3) -> None:
    for chunk in _batches(inst, batch):
        resp = client.post(f"/sessions/{session_id}/jobs", json_body={"jobs": chunk})
        assert resp.status_code == 202, resp.json()


# -- meta / lifecycle ---------------------------------------------------------


def test_health_and_algorithms(client):
    assert client.get("/health").json()["status"] == "ok"
    algos = client.get("/algorithms").json()
    assert algos["session"] == ["C", "NC", "NC_GENERAL"]
    assert algos["campaign"] == ["nc_par", "c_par"]


def test_session_lifecycle(client):
    resp = client.post("/sessions", json_body={"session_id": "s1", "alpha": 2.5})
    assert resp.status_code == 201
    info = resp.json()
    assert info["session_id"] == "s1"
    assert info["alpha"] == 2.5
    assert not info["closed"]

    assert client.get("/sessions/s1").status_code == 200
    listed = client.get("/sessions").json()["sessions"]
    assert [s["session_id"] for s in listed] == ["s1"]

    # Duplicate id conflicts; minted ids don't.
    assert client.post("/sessions", json_body={"session_id": "s1"}).status_code == 409
    minted = client.post("/sessions", json_body={})
    assert minted.status_code == 201
    assert minted.json()["session_id"]

    gone = client.delete("/sessions/s1")
    assert gone.status_code == 200 and gone.json()["closed"]
    assert client.get("/sessions/s1").status_code == 404
    assert client.delete("/sessions/s1").status_code == 404


def test_validation_and_routing_errors(client):
    assert client.get("/nope").status_code == 404
    assert client.request("PUT", "/sessions").status_code == 405
    assert client.post("/sessions", json_body={"alpha": 0.5}).status_code == 422
    assert client.post("/sessions", json_body={"surprise": 1}).status_code == 422
    resp = client.request("POST", "/sessions", json_body=None)
    assert resp.status_code == 201  # empty body is a default session
    sid = resp.json()["session_id"]
    assert client.post(f"/sessions/{sid}/jobs", json_body={"jobs": []}).status_code == 422
    assert client.get(f"/sessions/{sid}/schedule").status_code == 409  # no jobs yet


def test_out_of_order_release_conflicts(client):
    client.post("/sessions", json_body={"session_id": "s"})
    _feed(client, "s", Instance([Job(0, 0.0, 1.0), Job(1, 1.0, 1.0)]))
    resp = client.post(
        "/sessions/s/jobs",
        json_body={"jobs": [{"id": 2, "release": 0.5, "volume": 1.0}]},
    )
    assert resp.status_code == 409
    # The rejected arrival left no state behind.
    assert client.get("/sessions/s").json()["jobs_accepted"] == 2


def test_midbatch_conflict_commits_nothing(client):
    """A batch whose *middle* member is invalid is rejected whole: jobs
    before the failure are not committed, jobs after it are not stranded in
    the queue for a later request to commit, and a corrected retry of the
    same ids succeeds."""
    client.post("/sessions", json_body={"session_id": "s"})
    _feed(client, "s", Instance([Job(0, 0.0, 1.0), Job(1, 1.0, 1.0)]))
    bad = {"jobs": [
        {"id": 2, "release": 2.0, "volume": 1.0},
        {"id": 3, "release": 0.5, "volume": 1.0},  # out of order mid-batch
        {"id": 4, "release": 3.0, "volume": 1.0},
    ]}
    assert client.post("/sessions/s/jobs", json_body=bad).status_code == 409
    assert client.get("/sessions/s").json()["jobs_accepted"] == 2
    assert client.get("/sessions/s").json()["queue_depth"] == 0
    # Reads between retries must not commit stranded batch members.
    assert client.get("/sessions/s/speeds").status_code == 200
    info = client.get("/sessions/s").json()
    assert info["jobs_accepted"] == 2 and info["clock"] == 1.0
    # The corrected retry reuses the same ids and lands in full.
    good = {"jobs": [
        {"id": 2, "release": 2.0, "volume": 1.0},
        {"id": 3, "release": 2.5, "volume": 1.0},
        {"id": 4, "release": 3.0, "volume": 1.0},
    ]}
    ok = client.post("/sessions/s/jobs", json_body=good)
    assert ok.status_code == 202, ok.json()
    assert ok.json()["jobs_accepted"] == 5


def test_duplicate_id_rejects_whole_batch(client):
    client.post("/sessions", json_body={"session_id": "s"})
    _feed(client, "s", Instance([Job(0, 0.0, 1.0)]))
    # Duplicate against an accepted job, and duplicate within the batch:
    for bad in (
        [{"id": 1, "release": 1.0, "volume": 1.0}, {"id": 0, "release": 2.0, "volume": 1.0}],
        [{"id": 1, "release": 1.0, "volume": 1.0}, {"id": 1, "release": 2.0, "volume": 1.0}],
    ):
        assert client.post("/sessions/s/jobs", json_body={"jobs": bad}).status_code == 409
        assert client.get("/sessions/s").json()["jobs_accepted"] == 1
    ok = client.post(
        "/sessions/s/jobs",
        json_body={"jobs": [{"id": 1, "release": 1.0, "volume": 1.0}]},
    )
    assert ok.status_code == 202 and ok.json()["jobs_accepted"] == 2


def test_future_speed_query_is_side_effect_free(client):
    """``GET /speeds?t=`` beyond the session clock answers speculatively and
    must not advance the committed clock — later arrivals with releases
    before ``t`` (but at/after the last release) stay admissible."""
    client.post("/sessions", json_body={"session_id": "s"})
    _feed(client, "s", Instance([Job(0, 0.0, 4.0)]))
    view = client.get("/sessions/s/speeds", query="t=50.0").json()
    assert view["t"] == 50.0
    assert client.get("/sessions/s").json()["clock"] == 0.0
    ok = client.post(
        "/sessions/s/jobs",
        json_body={"jobs": [{"id": 1, "release": 0.5, "volume": 1.0}]},
    )
    assert ok.status_code == 202, ok.json()


# -- backpressure -------------------------------------------------------------


def test_backpressure_rejects_whole_batch(client):
    client.post("/sessions", json_body={"session_id": "s", "queue_limit": 4})
    too_big = [
        {"id": i, "release": float(i), "volume": 1.0} for i in range(5)
    ]
    resp = client.post("/sessions/s/jobs", json_body={"jobs": too_big})
    assert resp.status_code == 429
    assert "retry" in resp.json()["detail"]
    assert client.get("/sessions/s").json()["jobs_accepted"] == 0
    # A batch that fits is accepted in full afterwards.
    ok = client.post("/sessions/s/jobs", json_body={"jobs": too_big[:4]})
    assert ok.status_code == 202 and ok.json()["accepted"] == 4


# -- the differential acceptance test -----------------------------------------


@pytest.mark.parametrize(
    "algorithm,density",
    [("C", "unit"), ("NC", "unit"), ("NC_GENERAL", "loguniform")],
)
def test_api_schedule_bit_identical_to_direct_drive(client, algorithm, density):
    """Jobs fed via the API produce the byte-for-byte schedule a direct
    ``SimulationContext`` drive of the same instance produces."""
    inst = random_instance(12, seed=21, density=density)
    client.post(
        "/sessions", json_body={"session_id": "s", "algorithm": algorithm, "alpha": ALPHA}
    )
    _feed(client, "s", inst, batch=4)

    resp = client.get("/sessions/s/schedule")
    assert resp.status_code == 200
    body = resp.json()
    assert body["n_jobs"] == len(inst)
    via_api = ScheduleModel.model_validate(body["schedule"]).to_schedule()

    direct = simulate_session_algorithm(
        algorithm, inst, PowerLaw(ALPHA), context=SimulationContext(PowerLaw(ALPHA))
    )
    assert io.schedule_to_dict(via_api) == io.schedule_to_dict(direct)


def test_api_speeds_match_direct_shadow(client):
    inst = random_instance(10, seed=4, density="unit")
    client.post("/sessions", json_body={"session_id": "s", "alpha": ALPHA})
    _feed(client, "s", inst)

    power = PowerLaw(ALPHA)
    shadow = SimulationContext(power).shadow(component="direct")
    for j in inst:
        shadow.insert_job(j.job_id, j.release, j.density, j.volume)
        shadow.advance(j.release)
    t = max(j.release for j in inst) + 0.25
    shadow.advance(t)
    expected_w = shadow.remaining_weight()

    view = client.get("/sessions/s/speeds", query=f"t={t}").json()
    assert view["remaining_weight"] == expected_w
    assert view["speed"] == power.speed(expected_w)
    assert view["active_jobs"] == [
        {"id": jid, "density": den, "remaining_volume": rem}
        for jid, den, rem in shadow.remaining_items()
    ]
    # The live shadow only moves forward.
    assert client.get("/sessions/s/speeds", query="t=0.0").status_code == 409


def test_interleaved_sessions_match_isolated_runs():
    """Two sessions streamed in interleaved order behave exactly like the
    same two workloads in isolated sessions — no shared mutable state."""
    inst_a = random_instance(9, seed=31, density="unit")
    inst_b = random_instance(9, seed=32, density="loguniform")

    def schedules(interleave: bool):
        with TestClient(create_app()) as c:
            c.post("/sessions", json_body={"session_id": "a", "algorithm": "NC"})
            c.post("/sessions", json_body={"session_id": "b", "algorithm": "NC_GENERAL"})
            ba, bb = _batches(inst_a, 2), _batches(inst_b, 2)
            if interleave:
                for i in range(max(len(ba), len(bb))):
                    if i < len(ba):
                        assert c.post("/sessions/a/jobs", json_body={"jobs": ba[i]}).status_code == 202
                    if i < len(bb):
                        assert c.post("/sessions/b/jobs", json_body={"jobs": bb[i]}).status_code == 202
                        # Queries on one session between the other's arrivals
                        # must not disturb either.
                        assert c.get("/sessions/b/speeds").status_code == 200
            else:
                for chunk in ba:
                    assert c.post("/sessions/a/jobs", json_body={"jobs": chunk}).status_code == 202
                for chunk in bb:
                    assert c.post("/sessions/b/jobs", json_body={"jobs": chunk}).status_code == 202
            return (
                c.get("/sessions/a/schedule").json()["schedule"],
                c.get("/sessions/b/schedule").json()["schedule"],
            )

    assert schedules(interleave=True) == schedules(interleave=False)


# -- metrics / gantt / verified report ----------------------------------------


def test_metrics_and_gantt(client):
    inst = random_instance(8, seed=2, density="unit")
    client.post("/sessions", json_body={"session_id": "s"})
    _feed(client, "s", inst)

    metrics = client.get("/sessions/s/metrics").json()
    assert metrics["n_jobs"] == len(inst)
    assert metrics["report"]["energy"] > 0
    assert metrics["counters"]["inserts"] >= len(inst)

    gantt = client.get("/sessions/s/gantt", query="width=48").json()
    assert gantt["width"] == 48
    assert gantt["end_time"] > 0
    assert gantt["chart"]
    assert client.get("/sessions/s/gantt", query="width=2").status_code == 400


def test_verified_report_replays_lemmas(client):
    inst = random_instance(10, seed=9, density="unit")
    client.post("/sessions", json_body={"session_id": "s"})
    _feed(client, "s", inst)

    report = client.get("/sessions/s/report").json()
    assert report["ok"] is True
    names = [c["name"] for c in report["checks"]]
    assert any("Lemma 3" in n for n in names)
    assert any("Lemma 4" in n for n in names)
    assert all(c["holds"] for c in report["checks"])
    assert report["order_violations"] == []
    assert set(report["energies"]) == {"C", "NC"}


def test_verified_report_needs_uniform_density(client):
    client.post("/sessions", json_body={"session_id": "s"})
    client.post(
        "/sessions/s/jobs",
        json_body={"jobs": [
            {"id": 0, "release": 0.0, "volume": 1.0, "density": 2.0},
            {"id": 1, "release": 0.5, "volume": 1.0, "density": 1.0},
        ]},
    )
    assert client.get("/sessions/s/report").status_code == 409


# -- campaigns ----------------------------------------------------------------


def test_campaign_end_to_end(client):
    resp = client.post(
        "/campaigns",
        json_body={"campaign_id": "camp", "machines": 3, "n_jobs": 12, "seed": 5},
    )
    assert resp.status_code == 202
    assert resp.json()["state"] == "running"
    assert client.post(
        "/campaigns", json_body={"campaign_id": "camp"}
    ).status_code == 409

    deadline = time.time() + 30
    status = resp.json()
    while status["state"] == "running" and time.time() < deadline:
        time.sleep(0.05)
        status = client.get("/campaigns/camp").json()
    assert status["state"] == "done", status
    assert status["bit_identical"] is True
    assert status["shards"] >= 1
    assert status["report"]["energy"] > 0
    assert [c["campaign_id"] for c in client.get("/campaigns").json()["campaigns"]] == ["camp"]
    assert client.get("/campaigns/nope").status_code == 404


# -- tracing + shutdown -------------------------------------------------------


def test_delete_flushes_trace_sink(client, tmp_path):
    trace = tmp_path / "session.jsonl"
    client.post(
        "/sessions",
        json_body={"session_id": "s", "trace_path": str(trace)},
    )
    inst = random_instance(6, seed=13, density="unit")
    _feed(client, "s", inst)
    info = client.get("/sessions/s").json()
    assert info["trace_paths"] == [str(trace)]
    client.delete("/sessions/s")

    events = list(iter_trace([trace]))
    kinds = [e.kind for e in events]
    assert "run_meta" in kinds
    assert kinds.count("arrival") == len(inst)
    assert kinds[-1] == "session_close"


def test_service_shutdown_flushes_open_sessions(tmp_path):
    trace = tmp_path / "open-session.jsonl"
    client = TestClient(create_app())
    client.__enter__()
    client.post("/sessions", json_body={"session_id": "s", "trace_path": str(trace)})
    client.post(
        "/sessions/s/jobs",
        json_body={"jobs": [{"id": 0, "release": 0.0, "volume": 1.0}]},
    )
    # No DELETE: the lifespan shutdown must close and flush the sink.
    client.close()
    kinds = [e.kind for e in iter_trace([trace])]
    assert "arrival" in kinds and kinds[-1] == "session_close"


def test_closed_session_rejects_requests(client):
    client.post("/sessions", json_body={"session_id": "s"})
    # Close via the manager (DELETE removes it from the registry entirely).
    manager = client.app.state["manager"]
    client._loop.run_until_complete(manager.get_session("s").close())
    resp = client.post(
        "/sessions/s/jobs",
        json_body={"jobs": [{"id": 0, "release": 0.0, "volume": 1.0}]},
    )
    assert resp.status_code == 409


# -- the dependency-free socket server ----------------------------------------


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _http(method: str, url: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, method=method, headers={"content-type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read() or b"null")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"null")


def test_socket_server_serves_the_app(tmp_path):
    port = _free_port()
    trace = tmp_path / "served.jsonl"
    app = create_app()
    loop = asyncio.new_event_loop()
    ready = asyncio.Event()
    stop = asyncio.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(
            serve(app, "127.0.0.1", port, ready=ready, shutdown_trigger=stop)
        )
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.time() + 10
    while not ready.is_set() and time.time() < deadline:
        time.sleep(0.01)
    assert ready.is_set(), "server never came up"
    base = f"http://127.0.0.1:{port}"

    try:
        status, body = _http("GET", f"{base}/health")
        assert status == 200 and body["status"] == "ok"
        status, body = _http(
            "POST", f"{base}/sessions",
            {"session_id": "over-http", "trace_path": str(trace)},
        )
        assert status == 201
        status, body = _http(
            "POST", f"{base}/sessions/over-http/jobs",
            {"jobs": [{"id": 1, "release": 0.0, "volume": 2.0}]},
        )
        assert status == 202 and body["accepted"] == 1
        status, body = _http("GET", f"{base}/sessions/over-http/speeds")
        assert status == 200 and body["speed"] > 0
        status, body = _http("GET", f"{base}/sessions/missing")
        assert status == 404
        # A malformed Content-Length gets a 400, not a dropped connection.
        with socket.create_connection(("127.0.0.1", port), timeout=10) as raw:
            raw.sendall(b"GET /health HTTP/1.1\r\ncontent-length: nope\r\n\r\n")
            assert raw.recv(1024).startswith(b"HTTP/1.1 400")
        with socket.create_connection(("127.0.0.1", port), timeout=10) as raw:
            raw.sendall(b"GET /health HTTP/1.1\r\ncontent-length: -5\r\n\r\n")
            assert raw.recv(1024).startswith(b"HTTP/1.1 400")
    finally:
        loop.call_soon_threadsafe(stop.set)
        thread.join(timeout=10)
    assert not thread.is_alive()
    # serve()'s shutdown path flushed the session sink.
    kinds = [e.kind for e in iter_trace([trace])]
    assert "arrival" in kinds and kinds[-1] == "session_close"
