"""Certified lower bound on the offline fractional optimum via a convex
relaxation.

Competitive ratios need a denominator.  The true offline optimum for
fractional weighted flow-time plus energy has no closed form beyond a single
job, so we bound it from below with a *time-indexed convex relaxation*:

* slots ``m = 0..M-1`` of width ``delta`` cover ``[0, horizon]``;
* variables ``x[j, m] >= 0`` — the processing rate of job ``j`` in slot ``m``
  (zero forced before the job's release); jobs may run *simultaneously*,
  which only relaxes the problem;
* per-job volume constraints ``sum_m x[j, m] * delta == V[j]``;
* objective ``sum_m delta * P(sum_j x[j, m])  +  sum_j rho_j * sum_m delta *
  (V_j - processed_by_end_of_slot)``.

Any true single-machine schedule induces a feasible ``x`` (slot-average its
rates) whose relaxed objective is **at most** its real cost: energy drops by
Jensen (``P`` convex), and the flow term uses the end-of-slot remaining
volume, which under-counts the integral of a non-increasing ``V_j(t)``.
Hence ``min G <= OPT``.

The relaxation is minimised with projected gradient descent (simplex
projections per job), and then — because a merely *approximate* primal
minimiser is an upper bound on ``min G``, not a lower bound — certified by
the Lagrangian dual: for any multipliers ``lambda``,

    ``g(lambda) = sum_j lambda_j V_j + F0
                  + sum_m delta * min_{S>=0} [ P(S) + kappa_m * S ]``

with ``kappa_m = min_j (f[j,m]/delta - lambda_j)`` over jobs allowed in slot
``m``, and the inner minimum closed-form for ``P = s**alpha``:
``(1-alpha) * (max(0, -kappa)/alpha)**(alpha/(alpha-1))``.  We report
``g(lambda)`` (with ``lambda`` read off the primal KKT conditions) — a
mathematically *certified* lower bound no matter how sloppy the primal solve
was — plus the primal value so callers can see the duality gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConvergenceError
from ..core.job import Instance
from ..core.power import PowerLaw

__all__ = ["ConvexBound", "fractional_lower_bound", "project_simplex", "schedule_from_bound"]


@dataclass(frozen=True)
class ConvexBound:
    """Result of the relaxation solve.

    ``rates`` holds the primal minimiser (jobs × slots processing rates);
    :func:`schedule_from_bound` rounds it into a *feasible* schedule whose
    exact cost upper-bounds OPT, bracketing the optimum between
    ``dual_value`` and that cost.
    """

    dual_value: float  # the certified lower bound g(lambda)
    primal_value: float  # G(x) at the approximate primal minimiser
    horizon: float
    slots: int
    iterations: int
    rates: np.ndarray | None = None  # (n_jobs, slots), job order = instance order

    @property
    def gap(self) -> float:
        """Relative duality gap — a solve-quality diagnostic."""
        if self.primal_value == 0:
            return 0.0
        return (self.primal_value - self.dual_value) / abs(self.primal_value)


def project_simplex(v: np.ndarray, total: float) -> np.ndarray:
    """Euclidean projection of ``v`` onto ``{x >= 0, sum(x) == total}``.

    The classic O(M log M) algorithm (Held, Wolfe, Crowder): sort, find the
    largest prefix whose water-filling threshold keeps entries positive.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    u = np.sort(v)[::-1]
    css = np.cumsum(u) - total
    idx = np.arange(1, v.size + 1)
    cond = u - css / idx > 0
    if not np.any(cond):
        # Degenerate (total == 0 with very negative v): all mass at zero.
        out = np.zeros_like(v)
        return out
    k = idx[cond][-1]
    theta = css[k - 1] / k
    return np.maximum(v - theta, 0.0)


def _default_horizon(instance: Instance, power: PowerLaw) -> float:
    """A horizon provably beyond any reasonable schedule's completion.

    Sequentially finishing each job at its single-job integral-optimal
    duration after ``max_release`` is a feasible schedule, so the optimum
    completes within that span; we pad by 2x for slack.
    """
    span = instance.max_release
    for job in instance:
        t_star = ((power.alpha - 1.0) * job.volume ** (power.alpha - 1.0) / job.density) ** (
            1.0 / power.alpha
        )
        span += t_star
    return 2.0 * span + 1e-9


def fractional_lower_bound(
    instance: Instance,
    power: PowerLaw,
    *,
    slots: int = 400,
    horizon: float | None = None,
    iterations: int = 3000,
    step: float | None = None,
    seed: int = 0,
) -> ConvexBound:
    """Certified lower bound on the offline fractional objective."""
    if not isinstance(power, PowerLaw):
        raise TypeError("the dual closed form requires a PowerLaw")
    alpha = power.alpha
    n = len(instance)
    horizon = _default_horizon(instance, power) if horizon is None else float(horizon)
    if horizon <= instance.max_release:
        raise ValueError("horizon must exceed the last release")
    delta = horizon / slots
    starts = np.arange(slots) * delta

    volumes = np.array([j.volume for j in instance.jobs])
    rhos = np.array([j.density for j in instance.jobs])
    releases = np.array([j.release for j in instance.jobs])

    # allowed[j, m]: slot m overlaps [release_j, horizon).  Overlap (not full
    # containment) is required so that every true schedule induces a feasible
    # x — a job may start mid-slot.
    allowed = (starts[None, :] + delta) > releases[:, None]
    if not np.all(allowed.any(axis=1)):
        raise ValueError("some job has no allowed slot; increase slots or horizon")

    # Flow accounting.  F0 is the flow of processing nothing until the
    # horizon: sum_j rho_j * V_j * (horizon - release_j).  Volume processed in
    # slot m is credited from the slot's *start* — that over-credits relative
    # to the true continuous saving (which accrues from the actual processing
    # instant u >= start_m), so the relaxed flow under-counts the true flow
    # and the lower-bound direction is preserved.  Per-rate-unit coefficient:
    # f[j,m] = -rho_j * (horizon - start_m); flow = F0 + sum(f * x) * delta.
    tail = (horizon - starts)[None, :]
    f = -(rhos[:, None] * tail)
    f0 = float(np.sum(rhos * volumes * (horizon - releases)))

    rng = np.random.default_rng(seed)
    x = np.where(allowed, 1.0, 0.0)
    x *= (volumes / delta / np.maximum(allowed.sum(axis=1), 1))[:, None]
    x += 1e-12 * rng.random(x.shape) * allowed

    if step is None:
        # Lipschitz-ish scale: P''(s) = alpha(alpha-1)s^{alpha-2} at a typical
        # speed; conservative small step with many iterations.
        s_typ = max(float(np.sum(volumes)) / horizon, 1e-9)
        curv = alpha * (alpha - 1.0) * max(s_typ, 1.0) ** (alpha - 2.0) * delta * n
        step = 1.0 / max(curv, 1e-9)

    def primal(xm: np.ndarray) -> float:
        s = xm.sum(axis=0)
        energy = float(np.sum(delta * s**alpha))
        flow = f0 + float(np.sum(f * xm) * delta)
        return energy + flow

    best_x = x.copy()
    best_val = primal(x)
    for it in range(iterations):
        s = x.sum(axis=0)
        grad = delta * alpha * s ** (alpha - 1.0)  # dE/dx (same for all jobs)
        g_full = grad[None, :] + f * delta
        x_new = x - step * g_full
        for j in range(n):
            row = np.where(allowed[j], x_new[j], -np.inf)
            proj = project_simplex(row[allowed[j]] * delta, volumes[j]) / delta
            x_new[j] = 0.0
            x_new[j, allowed[j]] = proj
        x = x_new
        if (it + 1) % 50 == 0:
            val = primal(x)
            if val < best_val:
                best_val = val
                best_x = x.copy()
    val = primal(x)
    if val < best_val:
        best_val, best_x = val, x.copy()
    x = best_x

    # Dual certificate.  KKT: for x[j,m] > 0, grad[j,m] == lambda_j * delta.
    s = x.sum(axis=0)
    grad = delta * alpha * s ** (alpha - 1.0)
    g_full = grad[None, :] + f * delta
    lam = np.empty(n)
    for j in range(n):
        active = allowed[j] & (x[j] > 1e-9 * volumes[j] / delta / max(slots, 1))
        rows = g_full[j, active] if np.any(active) else g_full[j, allowed[j]]
        lam[j] = float(np.median(rows)) / delta

    # kappa_m = min_j (f[j,m] - lambda_j) over allowed jobs; the energy
    # gradient does NOT appear — the dual's inner minimum re-optimises the
    # slot speed S from scratch against the linear coefficient.
    kappa_m = np.min(np.where(allowed, f - lam[:, None], np.inf), axis=0)
    neg = np.maximum(-kappa_m, 0.0)
    inner = (1.0 - alpha) * (neg / alpha) ** (alpha / (alpha - 1.0))
    dual = float(np.sum(lam * volumes) + f0 + np.sum(delta * inner))

    if not math.isfinite(dual):
        raise ConvergenceError(
            "dual value is not finite; adjust horizon/slots",
            horizon=horizon,
            slots=slots,
            value=dual,
        )
    return ConvexBound(
        dual_value=dual,
        primal_value=best_val,
        horizon=horizon,
        slots=slots,
        iterations=iterations,
        rates=x,
    )


def schedule_from_bound(instance: Instance, bound: ConvexBound):
    """Round the relaxation's primal rates into a *feasible* schedule.

    Within each slot the relaxation processes jobs simultaneously at total
    rate ``S``; a real machine achieves the same volumes by running the jobs
    *sequentially* at speed ``S``, each for a time share proportional to its
    rate (highest density first within the slot, which can only reduce the
    fractional flow).  Energy is identical (same speed for the same total
    time); the flow differs from the relaxed value only within slots, so the
    exact cost of the returned schedule converges to OPT as slots grow.

    Per-job volumes are rescaled to remove solver round-off, so the schedule
    passes exact validation.
    """
    from ..core.schedule import ConstantSegment, Schedule

    if bound.rates is None:
        raise ValueError("this ConvexBound carries no primal rates")
    x = np.array(bound.rates, dtype=float)
    delta = bound.horizon / bound.slots
    jobs = list(instance.jobs)
    if x.shape != (len(jobs), bound.slots):
        raise ValueError(f"rates shape {x.shape} does not match instance/slots")
    # Exact volume repair: scale each job's row so volumes match exactly.
    for i, job in enumerate(jobs):
        total = float(x[i].sum()) * delta
        if total <= 0:
            raise ValueError(f"job {job.job_id} received no rate")
        x[i] *= job.volume / total

    segments = []
    for m in range(bound.slots):
        col = x[:, m]
        active = [i for i in range(len(jobs)) if col[i] > 1e-15]
        if not active:
            continue
        slot_start = m * delta
        slot_end = slot_start + delta
        # Partition the slot at interior release points so every piece has a
        # fixed eligible set; this is what makes the rounding release-feasible
        # without spilling across slot boundaries.
        cuts = sorted(
            {slot_start, slot_end}
            | {jobs[i].release for i in active if slot_start < jobs[i].release < slot_end}
        )
        pieces = list(zip(cuts, cuts[1:]))
        # Job i's eligible time inside the slot.
        eligible_len = {
            i: slot_end - max(slot_start, jobs[i].release) for i in active
        }
        for p0, p1 in pieces:
            plen = p1 - p0
            here = [i for i in active if jobs[i].release <= p0 + 1e-15 and eligible_len[i] > 0]
            if not here:
                continue
            # Volume of job i delivered in this piece: its slot volume spread
            # proportionally over its eligible pieces.
            vols = {i: float(col[i]) * delta * plen / eligible_len[i] for i in here}
            total = sum(vols.values())
            if total <= 0:
                continue
            here.sort(key=lambda i: (-jobs[i].density, jobs[i].release, jobs[i].job_id))
            t = p0
            for i in here:
                if vols[i] <= 0:
                    continue
                width = plen * vols[i] / total
                if width <= 0:
                    continue
                segments.append(ConstantSegment(t, t + width, jobs[i].job_id, vols[i] / width))
                t += width
    return Schedule(segments)
