"""E9 — the §7 observation: geometric densities do not force load balancing.

l jobs with densities 1, rho, ..., rho^(l-1), each calibrated so its
single-job offline optimum is c:

* on l machines (one each) the total cost is exactly l*c;
* on ONE machine the paper claims the cost is at most ~4*l*c once rho >= 4 —
  so unlike the uniform case (E8's Omega(k^(1-1/alpha)) blow-up), ignoring
  load balancing across density classes loses only a constant.

We sweep l and rho and print cost / (l*c) for a single machine under
Algorithm C (adding C's own factor-2 slack to the cap we assert).
"""

from __future__ import annotations

from repro import PowerLaw
from repro.algorithms import simulate_clairvoyant
from repro.analysis import format_table
from repro.core import evaluate
from repro.workloads import geometric_density_instance

from conftest import emit

ALPHA = 3.0


def _run():
    power = PowerLaw(ALPHA)
    rows = []
    for rho in (4.0, 5.0, 8.0):
        for l in (2, 4, 8, 12):
            inst = geometric_density_instance(l, rho=rho, unit_cost=1.0, alpha=ALPHA)
            cost = evaluate(
                simulate_clairvoyant(inst, power).schedule, inst, power
            ).fractional_objective
            rows.append([rho, l, cost, cost / l])
    return rows


def test_density_spread(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["rho", "l (jobs)", "one-machine cost", "cost / (l*c)"],
        rows,
        title="§7 — geometric densities on a single machine (c = 1 per job; "
        "l machines would cost exactly l)",
        floatfmt=".3f",
    )
    emit("density_spread", table)
    for rho, l, cost, per in rows:
        # Paper's cap is 4*l*c for the optimum; Algorithm C is 2-competitive,
        # so its cost is at most 8*l*c.  Measured values sit well under 4.
        assert per <= 8.0
        assert per >= 1.0 - 1e-9  # sharing a machine cannot beat l separate optima
