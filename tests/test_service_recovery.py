"""Durability and self-healing tests of the service layer.

The load-bearing claims:

* **Journal integrity**: every journal line is canonical JSON + SHA-256;
  a torn final line (a write that was never acked) is dropped silently,
  while interior corruption, checksum mismatches, and sequence gaps raise
  :class:`~repro.service.journal.JournalCorruption` — a damaged journal is
  quarantined, never silently restored wrong.
* **Bit-identical recovery** (the ISSUE's acceptance test): a server killed
  mid-workload and restarted serves speeds/schedule/metrics/verified-report
  bodies **byte-identical** to a twin that never died — the non-clairvoyant
  model makes the arrival log a complete reconstruction recipe.
* **Bounded store**: TTL/LRU eviction answers 410 (distinct from 404), with
  tombstones that survive restarts; the admission limit answers 503; pruned
  campaigns answer 410 carrying their final status.
* **Traffic policy**: per-client session creation is token-bucketed (429 +
  Retry-After) and every request is bounded by a deadline (504, handler
  cancelled cleanly).
* **No partial state**: a submit racing a close loses cleanly (409, nothing
  journaled or committed); a torn journal write aborts the submit before
  anything mutates; SIGTERM drains and flushes so suspended sessions
  restore on the next start.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import threading
import time
import urllib.request

import pytest

pytest.importorskip("pydantic")

from repro.core.job import Job
from repro.faults.injector import FaultInjector
from repro.faults.plan import SERVICE_KINDS, FaultPlan, FaultSpec, generate_plan
from repro.core.power import PowerLaw
from repro.core.shadow import SimulationContext
from repro.runtime.chaos import (
    _free_port,
    _http,
    _spawn_server,
    _stop_server,
    run_service_campaign,
)
from repro.service import TestClient, create_app, serve
from repro.service.journal import (
    JournalCorruption,
    JournalWriteAborted,
    SessionJournal,
    corrupt_line,
    discover_journals,
    encode_record,
    journal_path,
    read_journal,
)
from repro.service.models import SessionCreateRequest
from repro.service.sessions import (
    RateLimited,
    SessionClosed,
    SessionGone,
    SessionManager,
    StoreFull,
    TokenBucket,
)
from repro.workloads import random_instance

ALPHA = 3.0


def _job_dicts(inst):
    return [
        {"id": j.job_id, "release": j.release, "volume": j.volume, "density": j.density}
        for j in sorted(inst, key=lambda j: (j.release, j.job_id))
    ]


def _batches(inst, size=2):
    jobs = _job_dicts(inst)
    return [jobs[i : i + size] for i in range(0, len(jobs), size)]


def _feed(client, sid, batches):
    for chunk in batches:
        resp = client.post(f"/sessions/{sid}/jobs", json_body={"jobs": chunk})
        assert resp.status_code == 202, resp.json()


def _fingerprint(client, sid):
    out = {}
    for path in ("/speeds", "/schedule", "/metrics", "/report"):
        resp = client.get(f"/sessions/{sid}{path}")
        out[path] = (resp.status_code, resp.body)
    return out


def _run(coro):
    return asyncio.new_event_loop().run_until_complete(coro)


# -- journal format -----------------------------------------------------------


def test_journal_roundtrip(tmp_path):
    path = journal_path(tmp_path, "s")
    journal = SessionJournal(path)
    journal.append({"record": "session_create", "session": "s", "request": {"alpha": 3.0}})
    journal.append({"record": "arrival_batch", "session": "s", "jobs": [[0, 0.0, 1.0, 1.0]]})
    journal.append({"record": "session_close", "session": "s"})
    journal.close()
    records = read_journal(path)
    assert [r["record"] for r in records] == [
        "session_create", "arrival_batch", "session_close",
    ]
    assert [r["seq"] for r in records] == [0, 1, 2]
    assert records[1]["jobs"] == [[0, 0.0, 1.0, 1.0]]


def test_journal_rejects_unknown_record_kind(tmp_path):
    journal = SessionJournal(journal_path(tmp_path, "s"))
    with pytest.raises(ValueError):
        journal.append({"record": "mystery", "session": "s"})
    journal.close()


def test_torn_final_line_is_dropped(tmp_path):
    path = journal_path(tmp_path, "s")
    journal = SessionJournal(path)
    journal.append({"record": "session_create", "session": "s", "request": {}})
    journal.append({"record": "arrival_batch", "session": "s", "jobs": []})
    journal.close()
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"body": "{\\"record\\": \\"arrival_')  # crash mid-write
    records = read_journal(path)
    assert [r["record"] for r in records] == ["session_create", "arrival_batch"]


def test_interior_corruption_raises(tmp_path):
    path = journal_path(tmp_path, "s")
    journal = SessionJournal(path)
    journal.append({"record": "session_create", "session": "s", "request": {}})
    journal.append({"record": "arrival_batch", "session": "s", "jobs": []})
    journal.close()
    lines = path.read_text(encoding="utf-8").splitlines()
    lines[0] = corrupt_line(lines[0])  # interior: a valid line follows
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(JournalCorruption):
        read_journal(path)


def test_checksum_mismatch_raises(tmp_path):
    path = journal_path(tmp_path, "s")
    line = encode_record({"record": "session_close", "session": "s", "seq": 0})
    envelope = json.loads(line)
    envelope["checksum"] = "0" * 64
    path.write_text(json.dumps(envelope) + "\n" + line + "\n", encoding="utf-8")
    with pytest.raises(JournalCorruption):
        read_journal(path)


def test_sequence_gap_raises(tmp_path):
    path = journal_path(tmp_path, "s")
    lines = [
        encode_record({"record": "session_create", "session": "s", "request": {}, "seq": 0}),
        encode_record({"record": "session_close", "session": "s", "seq": 5}),  # gap
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(JournalCorruption):
        read_journal(path)


def test_discover_journals_maps_ids(tmp_path):
    for sid in ("alpha", "beta/slash"):
        journal = SessionJournal(journal_path(tmp_path, sid))
        journal.append({"record": "session_create", "session": sid, "request": {}})
        journal.close()
    found = discover_journals(tmp_path)
    assert set(found) == {"alpha", "beta/slash"}
    assert read_journal(found["beta/slash"])[0]["session"] == "beta/slash"


# -- fault channels: torn writes and corruption -------------------------------


def test_service_kinds_registered():
    assert SERVICE_KINDS == {
        "torn_journal_write", "journal_corruption", "slow_handler", "connection_drop",
    }
    plan = generate_plan(3, n_faults=2, kinds=tuple(sorted(SERVICE_KINDS)), n_jobs=4)
    assert all(s.kind in SERVICE_KINDS for s in plan.faults)


def test_torn_journal_write_aborts_submit(tmp_path):
    """The injector tears an arrival's journal write mid-line: the submit
    fails with nothing committed, the session fails closed (its journal
    ends in a crash-shaped tear), and restore drops exactly the torn line
    — after which the client's resubmitted batch commits."""
    plan = FaultPlan(
        seed=1,
        faults=(FaultSpec(kind="torn_journal_write", after_calls=3, magnitude=0.5),),
    )
    injector = FaultInjector(plan, SimulationContext(PowerLaw(ALPHA)))
    manager = SessionManager(journal_dir=tmp_path, journal_filter=injector.journal_filter())

    async def scenario():
        session = await manager.create_session(
            SessionCreateRequest(session_id="s", alpha=ALPHA)
        )
        await session.submit([Job(0, 0.0, 1.0, 1.0)])  # committed cleanly
        with pytest.raises(JournalWriteAborted):
            await session.submit([Job(1, 1.0, 1.0, 1.0)])
        assert session.jobs_accepted == 1 and session.queue.qsize() == 0
        with pytest.raises(SessionClosed):  # failed closed, not half-alive
            await session.submit([Job(1, 1.0, 1.0, 1.0)])

    _run(scenario())
    assert len(injector.fired) == 1
    fresh = SessionManager(journal_dir=tmp_path)

    async def recover():
        report = await fresh.restore()
        assert report.restored == ["s"] and not report.skipped
        session = fresh.get_session("s")
        assert session.jobs_accepted == 1  # the torn batch was never acked
        assert await session.submit([Job(1, 1.0, 1.0, 1.0)]) == 1  # resubmit

    _run(recover())
    records = read_journal(journal_path(tmp_path, "s"))
    assert [r["record"] for r in records] == [
        "session_create", "arrival_batch", "arrival_batch",
    ]


def test_journal_corruption_fault_detected_on_read(tmp_path):
    plan = FaultPlan(seed=2, faults=(FaultSpec(kind="journal_corruption", after_calls=2),))
    injector = FaultInjector(plan, SimulationContext(PowerLaw(ALPHA)))
    manager = SessionManager(journal_dir=tmp_path, journal_filter=injector.journal_filter())

    async def scenario():
        session = await manager.create_session(
            SessionCreateRequest(session_id="s", alpha=ALPHA)
        )
        await session.submit([Job(0, 0.0, 1.0, 1.0)])  # corrupted on disk
        await session.submit([Job(1, 1.0, 1.0, 1.0)])  # valid line after it

    _run(scenario())
    assert len(injector.fired) == 1
    with pytest.raises(JournalCorruption):
        read_journal(journal_path(tmp_path, "s"))
    report = _run(SessionManager(journal_dir=tmp_path).restore())
    assert list(report.skipped) == ["s"] and not report.restored


# -- crash recovery -----------------------------------------------------------


def test_restore_is_bit_identical(tmp_path):
    """In-process differential: crash (abandon) a journaled manager
    mid-workload, restore into a fresh one, finish the workload, and compare
    all four query bodies byte-for-byte against a never-crashed twin."""
    inst = random_instance(8, 21, density="unit")
    batches = _batches(inst)
    half = len(batches) // 2
    jdir = tmp_path / "journals"

    async def drive(manager, chunks):
        session = await manager.create_session(
            SessionCreateRequest(session_id="s", alpha=ALPHA)
        )
        for chunk in chunks:
            await session.submit([Job(c["id"], c["release"], c["volume"], c["density"]) for c in chunk])

    _run(drive(SessionManager(journal_dir=jdir), batches[:half]))  # no shutdown: a crash
    before = journal_path(jdir, "s").read_bytes()

    restored = SessionManager(journal_dir=jdir)
    with TestClient(create_app(restored)) as client:
        report = client._loop.run_until_complete(restored.restore())
        assert report.restored == ["s"] and not report.skipped
        # Deterministic re-journaling: the rewritten journal is byte-identical.
        assert journal_path(jdir, "s").read_bytes() == before
        _feed(client, "s", batches[half:])
        live = _fingerprint(client, "s")

    with TestClient(create_app(SessionManager())) as twin:
        twin.post("/sessions", json_body={"session_id": "s", "alpha": ALPHA})
        _feed(twin, "s", batches)
        assert _fingerprint(twin, "s") == live
    assert json.loads(live["/report"][1])["ok"] is True


def test_restore_skips_deleted_sessions(tmp_path):
    manager = SessionManager(journal_dir=tmp_path)
    with TestClient(create_app(manager)) as client:
        client.post("/sessions", json_body={"session_id": "s", "alpha": ALPHA})
        client.delete("/sessions/s")
    report = _run(SessionManager(journal_dir=tmp_path).restore())
    assert report.closed == ["s"] and not report.restored


def test_restore_a_hundred_sessions(tmp_path):
    manager = SessionManager(journal_dir=tmp_path)

    async def drive():
        for i in range(100):
            session = await manager.create_session(
                SessionCreateRequest(session_id=f"s{i:03d}", alpha=ALPHA)
            )
            await session.submit([Job(0, 0.0, 1.0 + i, 1.0)])

    _run(drive())
    fresh = SessionManager(journal_dir=tmp_path)
    report = _run(fresh.restore())
    assert len(report.restored) == 100 and not report.skipped
    assert fresh.sessions["s042"].jobs[0].volume == 43.0


# -- bounded store: TTL, LRU, admission ---------------------------------------


def test_ttl_eviction_answers_410(tmp_path):
    clock = {"t": 0.0}
    manager = SessionManager(
        journal_dir=tmp_path, session_ttl=10.0, clock=lambda: clock["t"]
    )
    with TestClient(create_app(manager)) as client:
        client.post("/sessions", json_body={"session_id": "s", "alpha": ALPHA})
        clock["t"] = 11.0
        client._loop.run_until_complete(manager.sweep())
        resp = client.get("/sessions/s")
        assert resp.status_code == 410
        assert "evicted" in resp.json()["detail"]
        assert client.get("/sessions/never").status_code == 404
    # The tombstone is journaled, so it survives a restart.
    fresh = SessionManager(journal_dir=tmp_path)
    report = _run(fresh.restore())
    assert report.evicted == ["s"]
    with pytest.raises(SessionGone):
        fresh.get_session("s")


def test_lru_eviction_and_admission_limit():
    async def scenario():
        strict = SessionManager(max_sessions=1)
        await strict.create_session(SessionCreateRequest(session_id="a", alpha=ALPHA))
        with pytest.raises(StoreFull):
            await strict.create_session(SessionCreateRequest(session_id="b", alpha=ALPHA))

        clock = {"t": 0.0}
        lru = SessionManager(max_sessions=2, evict_lru=True, clock=lambda: clock["t"])
        await lru.create_session(SessionCreateRequest(session_id="old", alpha=ALPHA))
        clock["t"] = 1.0
        await lru.create_session(SessionCreateRequest(session_id="new", alpha=ALPHA))
        clock["t"] = 2.0
        lru.get_session("old")  # touch: "new" becomes least-recently-used
        clock["t"] = 3.0
        await lru.create_session(SessionCreateRequest(session_id="third", alpha=ALPHA))
        assert set(lru.sessions) == {"old", "third"}
        with pytest.raises(SessionGone):
            lru.get_session("new")

    _run(scenario())


def test_store_full_answers_503_and_evicted_410():
    manager = SessionManager(max_sessions=1)
    with TestClient(create_app(manager)) as client:
        assert client.post(
            "/sessions", json_body={"session_id": "a", "alpha": ALPHA}
        ).status_code == 201
        resp = client.post("/sessions", json_body={"session_id": "b", "alpha": ALPHA})
        assert resp.status_code == 503
        assert "full" in resp.json()["detail"]


# -- campaign retention -------------------------------------------------------


def test_pruned_campaign_answers_410_with_final_status():
    manager = SessionManager(campaign_retention=0)
    with TestClient(create_app(manager)) as client:
        client.post(
            "/campaigns",
            json_body={"campaign_id": "c1", "machines": 2, "n_jobs": 6,
                       "seed": 3, "force_serial": True},
        )
        deadline = time.time() + 30
        while time.time() < deadline:
            state = client.get("/campaigns/c1").json()["state"]
            if state != "running":
                break
            time.sleep(0.05)
        assert state == "done"
        # The next launch prunes finished campaigns past retention (0).
        client.post(
            "/campaigns",
            json_body={"campaign_id": "c2", "machines": 2, "n_jobs": 6,
                       "seed": 4, "force_serial": True},
        )
        resp = client.get("/campaigns/c1")
        assert resp.status_code == 410
        final = resp.json()["final"]
        assert final["state"] == "done" and final["bit_identical"] is True
        assert client.get("/campaigns/zzz").status_code == 404


# -- traffic policy: rate limits and deadlines --------------------------------


def test_token_bucket_refills_deterministically():
    clock = {"t": 0.0}
    bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: clock["t"])
    assert bucket.check("k") == 0.0
    assert bucket.check("k") == 0.0
    assert bucket.check("k") == pytest.approx(0.5)  # empty: 1 token / 2 per s
    assert bucket.check("other") == 0.0  # buckets are per-key
    clock["t"] = 0.5
    assert bucket.check("k") == 0.0


def test_create_rate_limit_answers_429_with_retry_after():
    clock = {"t": 0.0}
    manager = SessionManager(create_rate=0.1, create_burst=1, clock=lambda: clock["t"])
    with TestClient(create_app(manager)) as client:
        assert client.post(
            "/sessions", json_body={"session_id": "a", "alpha": ALPHA},
            headers={"x-client-key": "tenant-1"},
        ).status_code == 201
        resp = client.post(
            "/sessions", json_body={"session_id": "b", "alpha": ALPHA},
            headers={"x-client-key": "tenant-1"},
        )
        assert resp.status_code == 429
        assert int(resp.headers["retry-after"]) == 10  # ceil(1 token / 0.1 per s)
        # A different tenant's bucket is untouched.
        assert client.post(
            "/sessions", json_body={"session_id": "c", "alpha": ALPHA},
            headers={"x-client-key": "tenant-2"},
        ).status_code == 201


def test_request_deadline_answers_504():
    app = create_app(SessionManager(), request_timeout=0.05)

    async def stall(request):
        await asyncio.sleep(5.0)

    app.gates.append(stall)
    with TestClient(app) as client:
        t0 = time.monotonic()
        resp = client.get("/health")
        assert resp.status_code == 504
        assert "deadline" in resp.json()["detail"]
        assert time.monotonic() - t0 < 2.0  # cancelled, not awaited


def test_deadline_cancellation_releases_session_lock():
    """A handler cancelled at the deadline must unwind its ``async with
    lock`` — the next request against the same session succeeds."""
    manager = SessionManager()
    app = create_app(manager, request_timeout=0.1)
    gate_state = {"stall": False}

    async def gate(request):
        if gate_state["stall"]:
            gate_state["stall"] = False
            await asyncio.sleep(5.0)

    app.gates.append(gate)
    with TestClient(app) as client:
        client.post("/sessions", json_body={"session_id": "s", "alpha": ALPHA})
        gate_state["stall"] = True
        assert client.post(
            "/sessions/s/jobs",
            json_body={"jobs": [{"id": 0, "release": 0.0, "volume": 1.0}]},
        ).status_code == 504
        resp = client.post(
            "/sessions/s/jobs",
            json_body={"jobs": [{"id": 0, "release": 0.0, "volume": 1.0}]},
        )
        assert resp.status_code == 202, resp.json()


# -- connection drops over a real socket --------------------------------------


def test_connection_drop_tears_the_response(tmp_path):
    plan = FaultPlan(seed=5, faults=(FaultSpec(kind="connection_drop", after_calls=2),))
    injector = FaultInjector(plan, SimulationContext(PowerLaw(ALPHA)))
    app = create_app(SessionManager())
    app.gates.append(injector.service_gate())
    port = _free_port()
    loop = asyncio.new_event_loop()
    ready = asyncio.Event()
    stop = asyncio.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(
            serve(app, "127.0.0.1", port, ready=ready, shutdown_trigger=stop)
        )
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.time() + 10
    while not ready.is_set() and time.time() < deadline:
        time.sleep(0.01)
    assert ready.is_set()
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/health", timeout=10) as r:
            assert r.status == 200  # gated call 1: clean
        with socket.create_connection(("127.0.0.1", port), timeout=10) as raw:
            raw.sendall(b"GET /health HTTP/1.1\r\n\r\n")
            assert raw.recv(1024) == b"HTTP/1.1 "  # torn mid-status-line
            assert raw.recv(1024) == b""  # ...then closed
        assert len(injector.fired) == 1
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/health", timeout=10) as r:
            assert r.status == 200  # budget spent: clean again
    finally:
        loop.call_soon_threadsafe(stop.set)
        thread.join(10)


# -- the submit-vs-close race -------------------------------------------------


def test_submit_racing_close_commits_nothing(tmp_path):
    """A batch parked on the session lock while ``close()`` runs must fail
    with :class:`SessionClosed` — nothing journaled, committed, or stranded
    in the queue."""
    manager = SessionManager(journal_dir=tmp_path)

    async def scenario():
        session = await manager.create_session(
            SessionCreateRequest(session_id="s", alpha=ALPHA)
        )
        await session.submit([Job(0, 0.0, 1.0, 1.0)])
        await session.lock.acquire()  # pin both contenders behind the lock
        close_task = asyncio.ensure_future(session.close())
        await asyncio.sleep(0)
        submit_task = asyncio.ensure_future(session.submit([Job(1, 1.0, 1.0, 1.0)]))
        await asyncio.sleep(0)
        session.lock.release()  # FIFO: close acquires first
        await close_task
        with pytest.raises(SessionClosed):
            await submit_task
        assert session.jobs_accepted == 1
        assert session.queue.qsize() == 0

    _run(scenario())
    records = read_journal(journal_path(tmp_path, "s"))
    assert [r["record"] for r in records] == [
        "session_create", "arrival_batch", "session_close",
    ]
    assert records[1]["jobs"] == [[0, 0.0, 1.0, 1.0]]  # job 1 never journaled


def test_race_maps_to_409_over_http():
    manager = SessionManager()
    with TestClient(create_app(manager)) as client:
        client.post("/sessions", json_body={"session_id": "s", "alpha": ALPHA})
        client._loop.run_until_complete(manager.get_session("s").close())
        resp = client.post(
            "/sessions/s/jobs",
            json_body={"jobs": [{"id": 0, "release": 0.0, "volume": 1.0}]},
        )
        assert resp.status_code == 409


# -- live subprocess: SIGTERM drain and SIGKILL recovery ----------------------


def test_sigterm_drains_and_suspends(tmp_path):
    """SIGTERM must exit 0, flush the trace sink, and leave the journal
    *without* a terminal record — a suspension, so the next start restores
    the session."""
    jdir = tmp_path / "journals"
    trace = tmp_path / "trace.jsonl"
    port = _free_port()
    proc = _spawn_server(port, jdir)
    try:
        status, _ = _http(
            port, "POST", "/sessions",
            {"session_id": "s", "alpha": ALPHA, "trace_path": str(trace)},
        )
        assert status == 201
        status, _ = _http(
            port, "POST", "/sessions/s/jobs",
            {"jobs": [{"id": 0, "release": 0.0, "volume": 1.0}]},
        )
        assert status == 202
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=15) == 0
    finally:
        _stop_server(proc)
    kinds = [json.loads(line)["kind"] for line in trace.read_text().splitlines()]
    assert kinds[-1] == "session_close"  # sink flushed on the way out
    records = read_journal(journal_path(jdir, "s"))
    assert [r["record"] for r in records] == ["session_create", "arrival_batch"]
    report = _run(SessionManager(journal_dir=jdir).restore())
    assert report.restored == ["s"]


def test_sigkill_restart_differential():
    """The acceptance scenario end-to-end: a real server SIGKILLed
    mid-workload, restarted, and byte-compared against a never-killed twin
    (run 0 of the service chaos rotation)."""
    report = run_service_campaign(11, 1, jobs=6, alpha=ALPHA)
    assert report.ok, report.outcomes
    outcome = report.outcomes[0]
    assert outcome.scenario == "kill_restart"
    assert outcome.status == "recovered"
    assert outcome.bit_identical is True
    assert outcome.lemmas_ok is True
    assert outcome.restored == 1


def test_service_campaign_torn_and_corrupt_scenarios(tmp_path):
    """Rotation slots 1 and 2: the torn journal tail restores the committed
    prefix bit-identically; interior corruption is quarantined (404 +
    health count), never silently restored."""
    out = tmp_path / "campaign.jsonl"
    report = run_service_campaign(7, 3, jobs=6, alpha=ALPHA, out=out)
    assert report.ok, report.outcomes
    by_scenario = {o.scenario: o for o in report.outcomes}
    assert by_scenario["torn_tail"].bit_identical is True
    assert by_scenario["corruption"].quarantined == 1
    assert by_scenario["corruption"].restored == 0
    # The campaign trace partitions per run like every other campaign's.
    from repro.runtime.chaos import iter_campaign_runs

    headers = [h for h, _ in iter_campaign_runs(out)]
    assert [h["family"] for h in headers] == [
        "SERVICE_KILL_RESTART", "SERVICE_TORN_TAIL", "SERVICE_CORRUPTION",
    ]
