"""Supervised execution runtime: guards, checkpoints, recovery.

:class:`Supervisor` runs any of the repo's algorithm families under online
invariant *guards* and a :class:`RecoveryPolicy`.  An attempt that raises a
structured error (injected fault, engine stall, convergence failure) or
breaks a guard is rolled back — the shared
:class:`~repro.core.shadow.SimulationContext` is restored to its pre-attempt
:class:`~repro.core.shadow.ContextCheckpoint` — and retried with bounded
exponential backoff and tightened tolerances; after ``degrade_after``
failures an analytic family degrades to the :class:`NumericEngine` path.
The whole story is narrated through trace events (``guard_violation``,
``retry``, ``recovery``, ``degraded_mode``) so
:mod:`repro.analysis.trace_report` can rebuild the fault timeline and
re-verify the paper's guarantees on the surviving attempt.

Differential contract: with an empty fault plan a supervised run is
**bit-identical** (schedule, costs, counters) to the unsupervised run —
checkpoints never bump counters, hooks stay ``None``, and the guards only
read.  ``tests/test_supervisor.py`` enforces this on the golden corpus;
``benchmarks/bench_supervisor_overhead.py`` holds the overhead under 5%.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any

from ..algorithms.clairvoyant import ClairvoyantPolicy, simulate_clairvoyant
from ..algorithms.nc_general import simulate_nc_general
from ..algorithms.nc_uniform import NCUniformPolicy, simulate_nc_uniform
from ..core.engine import NumericEngine
from ..core.errors import (
    ConvergenceError,
    GuardViolationError,
    RecoveryExhaustedError,
    ReproError,
    ScheduleError,
    SimulationError,
)
from ..core.job import Instance
from ..core.metrics import CostReport, evaluate
from ..core.power import PowerLaw
from ..core.schedule import DecaySegment, GrowthSegment, Schedule
from ..core.shadow import ContextCheckpoint, SimulationContext
from ..extensions.bounded_speed import (
    CappedPowerLaw,
    simulate_clairvoyant_capped,
    simulate_nc_uniform_capped,
)
from ..faults.injector import FaultInjector, simulate_nc_par_with_failure
from ..faults.plan import FaultPlan
from ..parallel.nc_par import simulate_nc_par

__all__ = ["ALGORITHMS", "RecoveryPolicy", "SupervisedResult", "Supervisor"]

#: Algorithm families the supervisor knows how to drive.  One entry per
#: family of the paper: clairvoyant, NC-uniform, NC-general (engine),
#: bounded-speed (capped C/NC), and parallel machines.
ALGORITHMS = ("C", "NC", "NC_GENERAL", "C_CAPPED", "NC_CAPPED", "NC_PAR")

#: Errors an attempt may raise that the supervisor treats as recoverable.
_RECOVERABLE = (SimulationError, ConvergenceError, ScheduleError, GuardViolationError)

#: Relative tolerance of the per-segment power/weight guard.
_GUARD_REL_TOL = 1e-9


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the supervisor reacts to a failed attempt.

    ``backoff_base == 0`` disables sleeping (the default: in-process retries
    are already isolated by the checkpoint restore); a positive base gives
    bounded exponential backoff ``min(base * factor**k, max_backoff)``.
    ``tighten_factor`` shrinks the engine ``max_step`` on each retry —
    tightened tolerances for numeric families.  After ``degrade_after``
    failures, analytic families fall back to the :class:`NumericEngine`
    policy path (``degraded_mode``).
    """

    max_retries: int = 3
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    max_backoff: float = 0.25
    tighten_factor: float = 0.5
    degrade_after: int = 2


@dataclass(frozen=True)
class SupervisedResult:
    """Outcome of a successful supervised run."""

    algorithm: str
    instance: Instance
    #: the family-specific run/result object of the surviving attempt
    run: Any
    schedule: Schedule | None
    report: CostReport
    attempts: int
    recovered: bool
    degraded: bool
    #: ``(fault description, sim_time)`` for every fault that fired
    faults: tuple[tuple[str, float], ...]
    #: labels of the checkpoints taken, in order
    checkpoints: tuple[str, ...]
    context: SimulationContext = field(repr=False)


class Supervisor:
    """Run simulations under guards with checkpoint-based recovery.

    One supervisor owns one :class:`SimulationContext`, one
    :class:`~repro.faults.plan.FaultPlan` and one
    :class:`~repro.faults.injector.FaultInjector` whose firing budgets
    persist across retries — the transient-fault model.
    """

    def __init__(
        self,
        power: PowerLaw,
        *,
        plan: FaultPlan | None = None,
        policy: RecoveryPolicy | None = None,
        context: SimulationContext | None = None,
        component: str = "supervisor",
    ) -> None:
        self.power = power
        self.plan = plan if plan is not None else FaultPlan.empty()
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.context = context if context is not None else SimulationContext(power)
        self.component = component
        self.injector = FaultInjector(self.plan, self.context)

    # -- the supervised loop --------------------------------------------------

    def run(
        self,
        algorithm: str,
        instance: Instance,
        *,
        machines: int = 2,
        max_step: float = 1e-2,
        nc_general_kwargs: dict[str, Any] | None = None,
    ) -> SupervisedResult:
        """Run ``algorithm`` on ``instance`` under supervision.

        Returns a :class:`SupervisedResult` on success (possibly after
        recovery); raises :class:`RecoveryExhaustedError` — naming the fault
        and the last good checkpoint — when the retry budget is spent.
        """
        if algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")
        context = self.context
        policy = self.policy
        injector = self.injector
        injector.install()
        checkpoints: list[str] = []
        last_good: ContextCheckpoint = context.checkpoint(label="pre-run", sim_time=0.0)
        checkpoints.append(last_good.label)
        attempts = 0
        failures = 0
        degraded = False
        cur_max_step = max_step
        backoff = policy.backoff_base
        last_error: ReproError | None = None
        try:
            while attempts <= policy.max_retries:
                attempts += 1
                try:
                    run_inst = injector.perturb_instance(instance)
                    run, schedule = self._attempt(
                        algorithm, run_inst, degraded=degraded,
                        max_step=cur_max_step, machines=machines,
                        nc_general_kwargs=nc_general_kwargs,
                    )
                    report = self._check_guards(algorithm, run_inst, run, schedule)
                except _RECOVERABLE as err:
                    failures += 1
                    last_error = err
                    t_err = float(err.context.get("time", 0.0)) if err.context else 0.0
                    if not isinstance(err, GuardViolationError):
                        context.emit(
                            "guard_violation",
                            t_err,
                            self.component,
                            guard="exception",
                            error=type(err).__name__,
                            detail=str(err),
                        )
                    if attempts > policy.max_retries:
                        break
                    # Roll back to the last good checkpoint and retry.
                    context.restore(last_good)
                    if backoff > 0.0:
                        time.sleep(min(backoff, policy.max_backoff))
                        backoff = min(backoff * policy.backoff_factor, policy.max_backoff)
                    cur_max_step *= policy.tighten_factor
                    if not degraded and failures >= policy.degrade_after and algorithm in (
                        "C", "NC"
                    ):
                        degraded = True
                        context.emit(
                            "degraded_mode",
                            0.0,
                            self.component,
                            algorithm=algorithm,
                            reason=type(err).__name__,
                            after_failures=failures,
                        )
                    context.emit(
                        "retry",
                        0.0,
                        _replay_component(algorithm),
                        attempt=attempts + 1,
                        checkpoint=last_good.label,
                        error=type(err).__name__,
                        max_step=cur_max_step,
                    )
                    ckpt_label = f"attempt-{attempts + 1}"
                    last_good = context.checkpoint(label=ckpt_label, sim_time=0.0)
                    checkpoints.append(ckpt_label)
                    continue
                # Success.
                if failures:
                    context.emit(
                        "recovery",
                        0.0,
                        self.component,
                        algorithm=algorithm,
                        attempts=attempts,
                        degraded=degraded,
                        faults=[s.describe() for s, _ in injector.fired],
                    )
                return SupervisedResult(
                    algorithm=algorithm,
                    instance=run_inst,
                    run=run,
                    schedule=schedule,
                    report=report,
                    attempts=attempts,
                    recovered=failures > 0,
                    degraded=degraded,
                    faults=tuple((s.describe(), t) for s, t in injector.fired),
                    checkpoints=tuple(checkpoints),
                    context=context,
                )
        finally:
            injector.uninstall()
        fault_name = (
            injector.fired[-1][0].describe() if injector.fired
            else type(last_error).__name__ if last_error is not None else "unknown"
        )
        raise RecoveryExhaustedError(
            f"supervised {algorithm} run failed after {attempts} attempts: {last_error}",
            algorithm=algorithm,
            attempts=attempts,
            fault=fault_name,
            checkpoint=last_good.label,
            error=type(last_error).__name__ if last_error is not None else None,
        )

    # -- one attempt ----------------------------------------------------------

    def _attempt(
        self,
        algorithm: str,
        instance: Instance,
        *,
        degraded: bool,
        max_step: float,
        machines: int,
        nc_general_kwargs: dict[str, Any] | None,
    ) -> tuple[Any, Schedule | None]:
        context = self.context
        power = self.power
        if algorithm == "C":
            if degraded:
                engine = NumericEngine(power, max_step=max_step, context=context)
                result = engine.run(instance, ClairvoyantPolicy(instance, power))
                return result, result.schedule
            run = simulate_clairvoyant(instance, power, context=context)
            return run, run.schedule
        if algorithm == "NC":
            if degraded:
                engine = NumericEngine(power, max_step=max_step, context=context)
                result = engine.run(instance, NCUniformPolicy(power))
                return result, result.schedule
            run = simulate_nc_uniform(instance, power, context=context)
            return run, run.schedule
        if algorithm == "NC_GENERAL":
            kwargs = dict(nc_general_kwargs or {})
            kwargs.setdefault("max_step", max_step)
            wrapped = self.injector.wrap_power(power)
            run = simulate_nc_general(instance, wrapped, context=context, **kwargs)
            return run, run.schedule
        if algorithm == "C_CAPPED":
            if not isinstance(power, CappedPowerLaw):
                raise TypeError("C_CAPPED requires a CappedPowerLaw")
            run = simulate_clairvoyant_capped(instance, power, context=context)
            return run, run.schedule
        if algorithm == "NC_CAPPED":
            if not isinstance(power, CappedPowerLaw):
                raise TypeError("NC_CAPPED requires a CappedPowerLaw")
            run = simulate_nc_uniform_capped(instance, power, context=context)
            return run, run.schedule
        # NC_PAR: an armed machine failure switches to the failover variant
        # (a retry after the budget is spent runs the plain simulator).
        failure = self.injector.armed_specs("machine_failure")
        if failure:
            spec = failure[0]
            dead = spec.machine if spec.machine is not None else 0
            fail_time = spec.at_time if spec.at_time is not None else 0.5
            run = simulate_nc_par_with_failure(
                instance,
                power,
                machines,
                dead_machine=dead % machines,
                fail_time=fail_time,
                context=context,
                injector=self.injector,
            )
        else:
            run = simulate_nc_par(instance, power, machines, context=context)
        return run, None

    # -- guards ---------------------------------------------------------------

    def _check_guards(
        self,
        algorithm: str,
        instance: Instance,
        run: Any,
        schedule: Schedule | None,
    ) -> CostReport:
        """Online invariant guards over a completed attempt.

        All guards are *reads*: the single :func:`evaluate` call doubles as
        the non-negative-remaining-weight check (``validate=True`` rejects
        any schedule whose processed volumes disagree with the instance), so
        the no-fault path pays one evaluation it needed anyway.
        """
        try:
            if schedule is None:
                # Parallel run: per-machine evaluation, merged.
                report = run.report(validate=True)
            else:
                report = evaluate(schedule, instance, self.power, validate=True)
        except ScheduleError as err:
            raise GuardViolationError(
                f"schedule validation failed: {err}",
                guard="non_negative_remaining",
                algorithm=algorithm,
            ) from err
        self._guard_finite(algorithm, report)
        if schedule is not None:
            self._guard_segments(algorithm, schedule)
        if algorithm in ("NC", "NC_CAPPED"):
            self._guard_fifo(algorithm, instance, report)
        return report

    def _guard_finite(self, algorithm: str, report: CostReport) -> None:
        for name, value in (
            ("energy", report.energy),
            ("fractional_flow", report.fractional_flow),
        ):
            if not math.isfinite(value) or value < 0.0:
                raise GuardViolationError(
                    f"{name} of supervised {algorithm} run is {value}",
                    guard="finite_cost",
                    algorithm=algorithm,
                    metric=name,
                    value=value,
                )

    def _guard_segments(self, algorithm: str, schedule: Schedule) -> None:
        """One pass over the segments for both per-segment guards.

        ``sim_time_monotone`` — segment times never run backwards.

        ``power_weight_relation`` — the speed rules' power/weight coupling,
        checked per closed-form segment: a decay piece starts at ``P(s) ==
        x0`` (C's remaining weight), a growth piece likewise (NC's
        offset-plus-processed weight); the segment's start speed is
        ``x0**(1/alpha)`` by the rule, so the round trip ``(x0**(1/alpha))
        **alpha == x0`` is exactly the relation (and rejects NaN, negative,
        or infinite weights).  Engine-produced constant segments carry no
        closed form — their correctness is covered by the finite-cost and
        validation guards.
        """
        closed_form = (DecaySegment, GrowthSegment)
        inv_exps: dict[float, float] = {}
        prev_end = 0.0
        for seg in schedule.segments:
            t0, t1 = seg.t0, seg.t1
            if t0 < prev_end - 1e-12 * max(1.0, prev_end) or t1 < t0:
                raise GuardViolationError(
                    f"non-monotone schedule time at segment [{t0}, {t1}]",
                    guard="sim_time_monotone",
                    algorithm=algorithm,
                    time=t0,
                )
            prev_end = t1
            if isinstance(seg, closed_form):
                alpha = seg.alpha
                inv = inv_exps.get(alpha)
                if inv is None:
                    inv = inv_exps[alpha] = 1.0 / alpha
                expected = seg.x0
                got = (expected**inv) ** alpha
                if not (abs(got - expected) <= _GUARD_REL_TOL * max(1.0, abs(expected))):
                    raise GuardViolationError(
                        f"power/weight relation broken on segment at t={t0}: "
                        f"P(s)={got} vs weight {expected}",
                        guard="power_weight_relation",
                        algorithm=algorithm,
                        time=t0,
                        job=seg.job_id,
                    )

    def _guard_fifo(self, algorithm: str, instance: Instance, report: CostReport) -> None:
        """NC is FIFO: completion order must follow (release, job_id) order."""
        order = [j.job_id for j in instance]
        prev = -math.inf
        for jid in order:
            ct = report.completion_times.get(jid)
            if ct is None:
                continue
            if ct < prev * (1.0 - 1e-12):
                raise GuardViolationError(
                    f"FIFO order broken: job {jid} completed at {ct} before its "
                    f"predecessor at {prev}",
                    guard="fifo_order",
                    algorithm=algorithm,
                    job=jid,
                    time=ct,
                )
            prev = ct


def _replay_component(algorithm: str) -> str:
    """The trace component whose ``kernel_eval`` stream an algorithm emits —
    the component a ``retry`` event must rewind for replay."""
    return {
        "C": "C",
        "NC": "NC",
        "NC_GENERAL": "nc_general",
        "C_CAPPED": "C_capped",
        "NC_CAPPED": "NC_capped",
        "NC_PAR": "nc_par",
    }[algorithm]
