"""Cross-validation of the exact flow accounting against brute-force
numerical integration.

`evaluate` computes fractional flow from per-segment closed forms; these
tests rebuild the same quantity by sampling remaining volumes on a fine grid
and integrating numerically, over schedules that mix constant, decay and
growth profiles with preemptions and idle gaps.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.core.metrics import evaluate
from repro.core.schedule import Schedule

from conftest import general_instances, uniform_instances


def brute_force_fractional_flow(schedule: Schedule, instance: Instance, samples: int) -> float:
    """Trapezoidal integration of rho_j * V_j(t), gridded per job.

    Each job is integrated on its own grid starting at its release: a shared
    grid from 0 puts the `V_j(t) = 0 for t < r_j` kink between grid points and
    the trapezoid rule then smears weight into the pre-release interval.
    """
    end = schedule.end_time
    total = 0.0
    for job in instance:
        if job.release >= end:
            continue
        ts = np.linspace(job.release, end, samples)
        vals = [
            max(job.volume - schedule.processed_volume_until(job.job_id, float(t)), 0.0)
            for t in ts
        ]
        total += job.density * float(np.trapezoid(vals, ts))
    return total


class TestAgainstQuadrature:
    @given(general_instances(max_jobs=4))
    @settings(max_examples=10, deadline=None)
    def test_clairvoyant_flow(self, inst):
        power = PowerLaw(3.0)
        sched = simulate_clairvoyant(inst, power).schedule
        exact = evaluate(sched, inst, power).fractional_flow
        approx = brute_force_fractional_flow(sched, inst, 4001)
        assert exact == pytest.approx(approx, rel=2e-2, abs=1e-6)

    @given(uniform_instances(max_jobs=4))
    @settings(max_examples=10, deadline=None)
    def test_nc_flow(self, inst):
        power = PowerLaw(2.5)
        sched = simulate_nc_uniform(inst, power).schedule
        exact = evaluate(sched, inst, power).fractional_flow
        approx = brute_force_fractional_flow(sched, inst, 4001)
        assert exact == pytest.approx(approx, rel=2e-2, abs=1e-6)

    def test_idle_gap_instance(self, cube):
        inst = Instance([Job(0, 0.0, 1.0), Job(1, 20.0, 2.0)])
        sched = simulate_clairvoyant(inst, cube).schedule
        exact = evaluate(sched, inst, cube).fractional_flow
        approx = brute_force_fractional_flow(sched, inst, 20001)
        assert exact == pytest.approx(approx, rel=1e-2)

    def test_heavy_preemption_instance(self, cube):
        inst = Instance(
            [Job(0, 0.0, 5.0, 1.0)]
            + [Job(i, 0.3 * i, 0.3, 10.0 + i) for i in range(1, 6)]
        )
        sched = simulate_clairvoyant(inst, cube).schedule
        exact = evaluate(sched, inst, cube).fractional_flow
        approx = brute_force_fractional_flow(sched, inst, 8001)
        assert exact == pytest.approx(approx, rel=1e-2)

    def test_energy_against_quadrature(self, cube):
        from scipy.integrate import quad

        inst = Instance([Job(0, 0.0, 2.0), Job(1, 0.7, 1.0)])
        sched = simulate_clairvoyant(inst, cube).schedule
        exact = evaluate(sched, inst, cube).energy
        approx = sum(
            quad(lambda t, s=s: cube.power(s.speed_at(t)), s.t0, s.t1, limit=200)[0]
            for s in sched
        )
        assert exact == pytest.approx(approx, rel=1e-7)
