"""Tests for per-job flow/slowdown statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.analysis import fleet_statistics, job_statistics
from repro.core import evaluate

from conftest import uniform_instances


class TestJobStatistics:
    def test_single_job_slowdown(self, cube):
        inst = Instance([Job(0, 0.0, 8.0)])
        rep = evaluate(simulate_clairvoyant(inst, cube).schedule, inst, cube)
        stats = job_statistics(rep, inst)
        # Completion at W^beta/beta = 6; ideal at speed 1 is 8 -> slowdown 0.75.
        assert stats.jobs[0].flow_time == pytest.approx(6.0, rel=1e-9)
        assert stats.jobs[0].slowdown == pytest.approx(0.75, rel=1e-9)

    def test_reference_speed_scales_slowdown(self, cube, three_jobs):
        rep = evaluate(simulate_clairvoyant(three_jobs, cube).schedule, three_jobs, cube)
        s1 = job_statistics(rep, three_jobs, reference_speed=1.0)
        s2 = job_statistics(rep, three_jobs, reference_speed=2.0)
        assert s2.jobs[0].slowdown == pytest.approx(2 * s1.jobs[0].slowdown)

    def test_rejects_bad_reference(self, cube, three_jobs):
        rep = evaluate(simulate_clairvoyant(three_jobs, cube).schedule, three_jobs, cube)
        with pytest.raises(ValueError):
            job_statistics(rep, three_jobs, reference_speed=0.0)

    def test_weighted_flow_matches_report(self, cube, three_jobs):
        rep = evaluate(simulate_clairvoyant(three_jobs, cube).schedule, three_jobs, cube)
        stats = job_statistics(rep, three_jobs)
        for js in stats.jobs:
            assert js.weighted_flow == rep.integral_flow_by_job[js.job_id]


class TestFleetStats:
    def test_summaries(self, cube, three_jobs):
        rep = evaluate(simulate_clairvoyant(three_jobs, cube).schedule, three_jobs, cube)
        stats = job_statistics(rep, three_jobs)
        assert stats.max_flow() >= stats.mean_flow() > 0
        assert stats.percentile_slowdown(100) == pytest.approx(
            max(j.slowdown for j in stats.jobs)
        )
        with pytest.raises(ValueError):
            stats.percentile_slowdown(150)

    def test_worst_jobs_ranked(self, cube, three_jobs):
        rep = evaluate(simulate_clairvoyant(three_jobs, cube).schedule, three_jobs, cube)
        stats = job_statistics(rep, three_jobs)
        worst = stats.worst_jobs(2)
        assert len(worst) == 2
        assert worst[0].slowdown >= worst[1].slowdown

    @given(uniform_instances(max_jobs=6))
    @settings(max_examples=15, deadline=None)
    def test_weighted_flow_totals_ordered(self, inst):
        """The guaranteed ordering (Lemma 4): NC's total weighted flow is
        exactly 1/(1-1/alpha) times C's, hence never smaller.  (Per-job or
        unweighted means are NOT ordered in general — NC can finish an
        individual job earlier.)"""
        power = PowerLaw(3.0)
        rc = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power)
        rn = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power)
        fleet = fleet_statistics({"C": rc, "NC": rn}, inst)
        total_c = sum(j.weighted_flow for j in fleet["C"].jobs)
        total_nc = sum(j.weighted_flow for j in fleet["NC"].jobs)
        # Integral flows are not exactly related, but fractional ones are;
        # assert the robust direction on the integral totals with slack via
        # Lemma 8: F_int(NC) >= F_frac(NC) = 1.5 * F_frac(C) >= ... use the
        # report's fractional fields directly for the exact claim.
        assert rn.fractional_flow >= rc.fractional_flow * (1 - 1e-9)
        assert total_c > 0 and total_nc > 0
