"""Tests for the paper-claims verifier."""

from __future__ import annotations

from hypothesis import given, settings

from repro import PowerLaw
from repro.analysis import ClaimCheck, verify_paper_claims

from conftest import uniform_instances


class TestClaimCheck:
    def test_equality_holds(self):
        c = ClaimCheck("L", "s", 1.0, 1.0 + 1e-9, 1e-6, "equality")
        assert c.holds

    def test_equality_fails(self):
        c = ClaimCheck("L", "s", 1.0, 2.0, 1e-6, "equality")
        assert not c.holds

    def test_upper_bound(self):
        assert ClaimCheck("L", "s", 1.0, 2.0, 0.0, "upper-bound").holds
        assert not ClaimCheck("L", "s", 3.0, 2.0, 0.0, "upper-bound").holds

    def test_str_rendering(self):
        s = str(ClaimCheck("Lemma 3", "energy equality", 1.0, 1.0, 1e-6, "equality"))
        assert "Lemma 3" in s and "OK" in s


class TestVerifyUniform:
    def test_all_claims_hold(self, cube, three_jobs):
        results = verify_paper_claims(three_jobs, cube, slots=150, iterations=600)
        assert all(r.holds for r in results), [str(r) for r in results if not r.holds]
        names = {r.claim for r in results}
        assert {"Theorem 1 (identity)", "Lemma 3", "Lemma 4", "Theorem 5", "Theorem 9"} <= names

    def test_parallel_claims_included(self, cube, three_jobs):
        results = verify_paper_claims(
            three_jobs, cube, machines=2, slots=120, iterations=400
        )
        names = {r.claim for r in results}
        assert {"Lemma 20", "Lemma 21", "Lemma 22"} <= names
        assert all(r.holds for r in results), [str(r) for r in results if not r.holds]

    @given(uniform_instances(max_jobs=4))
    @settings(max_examples=6, deadline=None)
    def test_random_instances(self, inst):
        power = PowerLaw(3.0)
        results = verify_paper_claims(inst, power, slots=120, iterations=400)
        assert all(r.holds for r in results), [str(r) for r in results if not r.holds]


class TestVerifyNonUniform:
    def test_only_applicable_claims(self, cube, mixed_density_jobs):
        results = verify_paper_claims(mixed_density_jobs, cube)
        names = {r.claim for r in results}
        assert names == {"Theorem 1 (identity)"}
        assert all(r.holds for r in results)
