"""HTTP routes of the scheduling service.

Thin translation layer: parse/validate the pydantic request model, call the
:class:`~repro.service.sessions.SessionManager`, wrap the result in the
response model.  Domain errors map onto stable statuses:

========================================  ======
condition                                 status
========================================  ======
unknown session / campaign id             404
duplicate id, closed session,             409
out-of-order release, empty session,
non-uniform verified report
evicted session, pruned campaign          410
arrival batch would overflow the queue    429
session-create rate limit exceeded        429 (+ Retry-After)
pydantic validation failure               422
session store at admission limit          503
request exceeded its deadline             504
========================================  ======

404 vs 410 is a real distinction for clients: 404 means the id was never
here (typo, wrong server), 410 means it *was* here and is durably gone
(evicted, or a campaign pruned past retention) — retrying will never help,
recreate instead.
"""

from __future__ import annotations

import math

from ..analysis.gantt import gantt_chart
from ..core.errors import InvalidInstanceError, SimulationError
from ..core.metrics import CostReport
from .asgi import App, HTTPError, Request, Response
from .models import (
    SESSION_ALGORITHMS,
    ActiveJobModel,
    ArrivalAck,
    ArrivalRequest,
    CampaignRequest,
    CampaignStatus,
    GanttResponse,
    InvariantCheckModel,
    JobModel,
    MetricsResponse,
    ReportModel,
    ScheduleModel,
    ScheduleResponse,
    SessionCreateRequest,
    SessionInfo,
    SpeedsResponse,
    VerifiedReportResponse,
)
from .sessions import (
    Backpressure,
    Campaign,
    CampaignPruned,
    RateLimited,
    Session,
    SessionClosed,
    SessionGone,
    SessionManager,
    StoreFull,
)

__all__ = ["register_routes"]


def _session_info(session: Session) -> SessionInfo:
    return SessionInfo(
        session_id=session.session_id,
        algorithm=session.algorithm,
        alpha=session.power.alpha,
        clock=session.clock,
        jobs_accepted=session.jobs_accepted,
        queue_depth=session.queue.qsize(),
        queue_limit=session.queue_limit,
        closed=session.closed,
        trace_paths=session.trace_paths,
    )


def _campaign_status(campaign: Campaign) -> CampaignStatus:
    result = campaign.result or {}
    report = result.get("report")
    return CampaignStatus(
        campaign_id=campaign.campaign_id,
        state=campaign.state,  # type: ignore[arg-type]
        algorithm=campaign.request.algorithm,
        machines=campaign.request.machines,
        n_jobs=result.get("n_jobs", campaign.request.n_jobs),
        shards=result.get("shards"),
        resumed=result.get("resumed"),
        bit_identical=result.get("bit_identical"),
        report=ReportModel.from_report(report) if isinstance(report, CostReport) else None,
        error=campaign.error,
    )


def register_routes(app: App, manager: SessionManager) -> None:
    """Attach every service route to ``app`` against ``manager``."""

    def get_session(request: Request) -> Session:
        sid = request.path_params["session_id"]
        try:
            return manager.get_session(sid)
        except SessionGone as exc:
            raise HTTPError(410, str(exc)) from exc
        except KeyError as exc:
            raise HTTPError(404, str(exc)) from exc

    # -- service meta ---------------------------------------------------------

    @app.route("GET", "/health")
    async def health(request: Request) -> Response:
        await manager.sweep()
        payload: dict[str, object] = {
            "status": "ok",
            "sessions": len(manager.sessions),
            "campaigns": len(manager.campaigns),
            "evicted": len(manager.evicted),
            "pruned_campaigns": len(manager.pruned_campaigns),
        }
        if manager.last_restore is not None:
            payload["restore"] = {
                "restored": len(manager.last_restore.restored),
                "closed": len(manager.last_restore.closed),
                "evicted": len(manager.last_restore.evicted),
                "quarantined": len(manager.last_restore.skipped),
            }
        return Response(payload)

    @app.route("GET", "/algorithms")
    async def algorithms(request: Request) -> Response:
        return Response(
            {
                "session": list(SESSION_ALGORITHMS),
                "campaign": ["nc_par", "c_par"],
            }
        )

    # -- sessions -------------------------------------------------------------

    @app.route("POST", "/sessions")
    async def create_session(request: Request) -> Response:
        spec = SessionCreateRequest.model_validate(request.json())
        client_key = request.headers.get("x-client-key", "anonymous")
        try:
            session = await manager.create_session(spec, client_key=client_key)
        except RateLimited as exc:
            raise HTTPError(
                429,
                str(exc),
                headers={"retry-after": str(max(1, math.ceil(exc.retry_after)))},
            ) from exc
        except StoreFull as exc:
            raise HTTPError(503, str(exc)) from exc
        except KeyError as exc:
            raise HTTPError(409, str(exc)) from exc
        except (SimulationError, InvalidInstanceError) as exc:
            raise HTTPError(409, str(exc)) from exc
        return Response(_session_info(session), status=201)

    @app.route("GET", "/sessions")
    async def list_sessions(request: Request) -> Response:
        return Response(
            {
                "sessions": [
                    _session_info(s).model_dump() for s in manager.sessions.values()
                ]
            }
        )

    @app.route("GET", "/sessions/{session_id}")
    async def session_info(request: Request) -> Response:
        return Response(_session_info(get_session(request)))

    @app.route("DELETE", "/sessions/{session_id}")
    async def delete_session(request: Request) -> Response:
        sid = request.path_params["session_id"]
        try:
            session = await manager.delete_session(sid)
        except SessionGone as exc:
            raise HTTPError(410, str(exc)) from exc
        except KeyError as exc:
            raise HTTPError(404, str(exc)) from exc
        return Response(_session_info(session))

    @app.route("POST", "/sessions/{session_id}/jobs")
    async def stream_jobs(request: Request) -> Response:
        session = get_session(request)
        batch = ArrivalRequest.model_validate(request.json())
        try:
            accepted = await session.submit([j.to_job() for j in batch.jobs])
        except Backpressure as exc:
            raise HTTPError(429, str(exc)) from exc
        except (SessionClosed, SimulationError) as exc:
            raise HTTPError(409, str(exc)) from exc
        return Response(
            ArrivalAck(
                session_id=session.session_id,
                accepted=accepted,
                jobs_accepted=session.jobs_accepted,
                clock=session.clock,
                queue_depth=session.queue.qsize(),
            ),
            status=202,
        )

    @app.route("GET", "/sessions/{session_id}/speeds")
    async def speeds(request: Request) -> Response:
        session = get_session(request)
        try:
            view = await session.speeds(request.query_float("t"))
        except (SessionClosed, SimulationError, InvalidInstanceError) as exc:
            raise HTTPError(409, str(exc)) from exc
        return Response(
            SpeedsResponse(
                session_id=session.session_id,
                t=view["t"],
                remaining_weight=view["remaining_weight"],
                speed=view["speed"],
                active_jobs=[
                    ActiveJobModel(id=jid, density=den, remaining_volume=rem)
                    for jid, den, rem in view["active"]
                ],
            )
        )

    @app.route("GET", "/sessions/{session_id}/schedule")
    async def schedule(request: Request) -> Response:
        session = get_session(request)
        try:
            sched, n_jobs = await session.schedule()
        except (SessionClosed, SimulationError, InvalidInstanceError) as exc:
            raise HTTPError(409, str(exc)) from exc
        return Response(
            ScheduleResponse(
                session_id=session.session_id,
                algorithm=session.algorithm,
                n_jobs=n_jobs,
                schedule=ScheduleModel.from_schedule(sched),
            )
        )

    @app.route("GET", "/sessions/{session_id}/metrics")
    async def metrics(request: Request) -> Response:
        session = get_session(request)
        try:
            report, counters, n_jobs = await session.metrics()
        except (SessionClosed, SimulationError, InvalidInstanceError) as exc:
            raise HTTPError(409, str(exc)) from exc
        return Response(
            MetricsResponse(
                session_id=session.session_id,
                algorithm=session.algorithm,
                n_jobs=n_jobs,
                report=ReportModel.from_report(report),
                counters=counters,
            )
        )

    @app.route("GET", "/sessions/{session_id}/gantt")
    async def gantt(request: Request) -> Response:
        session = get_session(request)
        width = request.query_int("width", 72)
        assert width is not None
        if not 8 <= width <= 1024:
            raise HTTPError(400, f"width must be in [8, 1024], got {width}")
        try:
            sched, _ = await session.schedule()
        except (SessionClosed, SimulationError, InvalidInstanceError) as exc:
            raise HTTPError(409, str(exc)) from exc
        return Response(
            GanttResponse(
                session_id=session.session_id,
                width=width,
                end_time=sched.end_time,
                chart=gantt_chart(sched, width=width),
            )
        )

    @app.route("GET", "/sessions/{session_id}/report")
    async def verified_report(request: Request) -> Response:
        session = get_session(request)
        try:
            trace_report = await session.verified_report()
        except (SessionClosed, SimulationError, InvalidInstanceError) as exc:
            raise HTTPError(409, str(exc)) from exc
        return Response(
            VerifiedReportResponse(
                session_id=session.session_id,
                ok=trace_report.ok,
                n_events=trace_report.n_events,
                checks=[
                    InvariantCheckModel(
                        name=c.name, holds=c.holds, lhs=c.lhs, rhs=c.rhs, detail=c.detail
                    )
                    for c in trace_report.checks
                ],
                energies=dict(trace_report.energies),
                order_violations=list(trace_report.order_violations),
            )
        )

    @app.route("GET", "/sessions/{session_id}/instance")
    async def session_instance(request: Request) -> Response:
        session = get_session(request)
        return Response({"jobs": [JobModel.from_job(j).model_dump() for j in session.jobs]})

    # -- campaigns ------------------------------------------------------------

    @app.route("POST", "/campaigns")
    async def launch_campaign(request: Request) -> Response:
        spec = CampaignRequest.model_validate(request.json())
        try:
            campaign = await manager.launch_campaign(spec)
        except KeyError as exc:
            raise HTTPError(409, str(exc)) from exc
        return Response(_campaign_status(campaign), status=202)

    @app.route("GET", "/campaigns/{campaign_id}")
    async def campaign_status(request: Request) -> Response:
        try:
            campaign = manager.get_campaign(request.path_params["campaign_id"])
        except CampaignPruned as exc:
            return Response({"detail": str(exc), "final": exc.summary}, status=410)
        except KeyError as exc:
            raise HTTPError(404, str(exc)) from exc
        return Response(_campaign_status(campaign))

    @app.route("GET", "/campaigns")
    async def list_campaigns(request: Request) -> Response:
        return Response(
            {
                "campaigns": [
                    _campaign_status(c).model_dump() for c in manager.campaigns.values()
                ]
            }
        )
