"""Golden differential: the refactored shadow layer vs pre-refactor runs.

``tests/data/golden_corpus.json`` was recorded with the pre-refactor
simulators (per-query fresh/resumed clairvoyant shadow runs) on a fixed seed
corpus.  The incremental :mod:`repro.core.shadow` layer must reproduce every
recorded offset, completion time and objective within ``1e-9`` relative —
the refactor's acceptance bar for "same algorithm, faster plumbing".
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.algorithms.nc_general import simulate_nc_general
from repro.algorithms.nc_uniform import simulate_nc_uniform
from repro.core.job import Instance, Job
from repro.core.metrics import evaluate
from repro.core.power import PowerLaw

CORPUS_PATH = pathlib.Path(__file__).parent / "data" / "golden_corpus.json"
REL_TOL = 1e-9


def _corpus() -> dict:
    return json.loads(CORPUS_PATH.read_text())


def _instance(spec: list[list[float]]) -> Instance:
    return Instance(
        [Job(int(j), release, volume, density) for j, release, volume, density in spec]
    )


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * max(1.0, abs(a), abs(b))


_CORPUS = _corpus()
_UNIFORM_KEYS = sorted(k for k in _CORPUS if k.startswith("nc_uniform/"))
_GENERAL_KEYS = sorted(k for k in _CORPUS if k.startswith("nc_general/"))


@pytest.mark.parametrize("key", _UNIFORM_KEYS)
def test_nc_uniform_matches_golden(key):
    entry = _CORPUS[key]
    inst = _instance(entry["instance"])
    run = simulate_nc_uniform(inst, PowerLaw(entry["alpha"]))
    for jid_str, offset in entry["offsets"].items():
        assert _close(run.offsets[int(jid_str)], offset), f"offset of job {jid_str}"
    for jid_str, completion in entry["completions"].items():
        assert _close(run.completion_time(int(jid_str)), completion), (
            f"completion of job {jid_str}"
        )
    rep = evaluate(run.schedule, inst, PowerLaw(entry["alpha"]))
    assert _close(rep.energy, entry["energy"])
    assert _close(rep.fractional_flow, entry["fractional_flow"])


@pytest.mark.parametrize("key", _GENERAL_KEYS)
def test_nc_general_matches_golden(key):
    entry = _CORPUS[key]
    inst = _instance(entry["instance"])
    power = PowerLaw(entry["alpha"])
    run = simulate_nc_general(
        inst,
        power,
        eta=entry["eta"],
        beta=entry["beta"],
        epsilon=entry["epsilon"],
        max_step=entry["max_step"],
    )
    assert run.shadow_mode == "incremental"  # the default, i.e. the new layer
    for jid_str, completion in entry["completions"].items():
        assert _close(run.completion_time(int(jid_str)), completion), (
            f"completion of job {jid_str}"
        )
    rep = evaluate(run.schedule, inst, power)
    assert _close(rep.energy, entry["energy"])
    assert _close(rep.fractional_flow, entry["fractional_flow"])
