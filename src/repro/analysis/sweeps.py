"""Parameter sweeps: one API for "run X across a grid and tabulate".

Benches and notebooks repeatedly want the same thing — vary one knob (alpha,
eta, machine count, cap, workload scale), evaluate a callable at each value
over a fixed set of seeds/instances, and keep the worst/mean statistics.
:func:`sweep` does exactly that, returning typed points the report helpers
render directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Callable, Iterable, Sequence

__all__ = ["SweepPoint", "sweep", "alpha_grid"]


@dataclass(frozen=True)
class SweepPoint:
    """Aggregated measurements at one parameter value."""

    value: float
    samples: tuple[float, ...]

    @property
    def worst(self) -> float:
        return max(self.samples)

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def mean(self) -> float:
        return mean(self.samples)


def sweep(
    values: Iterable[float],
    measure: Callable[[float], Sequence[float]],
) -> list[SweepPoint]:
    """Evaluate ``measure(value) -> samples`` at each grid value.

    ``measure`` returns one number per repetition (seed/instance); empty
    sample sets are rejected so statistics are always defined.
    """
    points = []
    for v in values:
        samples = tuple(float(s) for s in measure(v))
        if not samples:
            raise ValueError(f"measure returned no samples at value {v}")
        points.append(SweepPoint(value=float(v), samples=samples))
    return points


def alpha_grid(
    low: float = 1.5, high: float = 6.0, count: int = 7
) -> tuple[float, ...]:
    """A geometric-ish grid of power exponents covering the practical range
    (alpha = 2..3 for CMOS; the ends probe the theory's limits)."""
    if not (1.0 < low < high) or count < 2:
        raise ValueError("need 1 < low < high and count >= 2")
    step = (high / low) ** (1.0 / (count - 1))
    return tuple(low * step**k for k in range(count))
