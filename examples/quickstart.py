#!/usr/bin/env python3
"""Quickstart: schedule a small job stream with the paper's algorithms.

Runs the clairvoyant baseline (Algorithm C) and the non-clairvoyant algorithm
(Algorithm NC) on the same uniform-density instance, prints both cost
breakdowns, and checks the paper's headline identities live:

* Lemma 3 — the two algorithms consume *identical* energy;
* Lemma 4 — NC's fractional flow-time is exactly C's divided by (1 - 1/alpha);
* Theorem 5 — NC is (2 + 1/(alpha-1))-competitive.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.analysis import format_table
from repro.core import evaluate
from repro.offline import opt_fractional_lower_bound


def main() -> None:
    alpha = 3.0  # the cube law
    power = PowerLaw(alpha)

    # Five jobs, unit density, volumes UNKNOWN to Algorithm NC until each
    # job completes (that is the non-clairvoyant model).
    instance = Instance(
        [
            Job(0, release=0.0, volume=4.0),
            Job(1, release=1.0, volume=2.0),
            Job(2, release=1.5, volume=1.0),
            Job(3, release=4.0, volume=6.0),
            Job(4, release=4.2, volume=0.5),
        ]
    )

    clair = simulate_clairvoyant(instance, power)
    nonclair = simulate_nc_uniform(instance, power)
    rep_c = evaluate(clair.schedule, instance, power)
    rep_nc = evaluate(nonclair.schedule, instance, power)

    print(
        format_table(
            ["algorithm", "energy", "frac flow", "int flow", "G_frac", "G_int"],
            [
                ["C (clairvoyant)", rep_c.energy, rep_c.fractional_flow, rep_c.integral_flow,
                 rep_c.fractional_objective, rep_c.integral_objective],
                ["NC (non-clairvoyant)", rep_nc.energy, rep_nc.fractional_flow,
                 rep_nc.integral_flow, rep_nc.fractional_objective, rep_nc.integral_objective],
            ],
            title=f"Costs under P(s) = s^{alpha:g}",
        )
    )

    print()
    print(f"Lemma 3 (energy equality): |E_NC - E_C| = {abs(rep_nc.energy - rep_c.energy):.2e}")
    ratio = rep_nc.fractional_flow / rep_c.fractional_flow
    print(
        f"Lemma 4 (flow ratio):      F_NC / F_C = {ratio:.12f}"
        f"  (1/(1-1/alpha) = {1 / (1 - 1 / alpha):.12f})"
    )

    bound = opt_fractional_lower_bound(instance, power)
    print(
        f"Theorem 5 (ratio):         G_NC / OPT_lb = "
        f"{rep_nc.fractional_objective / bound.value:.4f}"
        f"  <=  2 + 1/(alpha-1) = {2 + 1 / (alpha - 1):.4f}"
        f"   [bound source: {bound.source}]"
    )

    print()
    print("Per-job completions (NC):")
    for jid, c in sorted(rep_nc.completion_times.items()):
        job = instance[jid]
        print(f"  job {jid}: released {job.release:>4.1f}, volume {job.volume:>4.1f}"
              f" -> completed {c:7.3f}")


if __name__ == "__main__":
    main()
