"""E8 — §6: the Omega(k^(1-1/alpha)) immediate-dispatch lower bound.

Plays the adversary (k^2 indistinguishable jobs; the k on the most-loaded
machine become heavy) against volume-oblivious dispatch rules, sweeps k, and
fits the growth exponent of the measured ratio — it should match 1 - 1/alpha.
"""

from __future__ import annotations

import math

import numpy as np

from repro import PowerLaw
from repro.analysis import format_ascii_chart, format_table
from repro.parallel import adversarial_ratio

from conftest import emit

KS = (2, 3, 4, 6, 8, 12, 16, 24, 32)
ALPHAS = (2.0, 3.0)


def _run():
    results = {}
    for alpha in ALPHAS:
        power = PowerLaw(alpha)
        rows = []
        for k in KS:
            out = adversarial_ratio(k, power, "least_count")
            rows.append([k, out.ratio, k ** (1 - 1 / alpha)])
        ks = np.array(KS, dtype=float)
        ratios = np.array([r[1] for r in rows])
        slope = np.polyfit(np.log(ks), np.log(ratios), 1)[0]
        results[alpha] = (rows, slope)

    # Randomisation does not escape the adaptive adversary: the realised
    # assignment still has a machine with >= k jobs, so the ratio is at
    # least the deterministic one.
    from repro.parallel import seeded_random_rule

    random_rows = []
    power = PowerLaw(3.0)
    for k in (4, 8, 16):
        out = adversarial_ratio(k, power, seeded_random_rule(k))
        random_rows.append([k, out.ratio, k ** (2.0 / 3.0)])
    return results, random_rows


def test_immediate_dispatch_lower_bound(benchmark):
    results, random_rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    out = []
    for alpha, (rows, slope) in results.items():
        out.append(
            format_table(
                ["k", "measured ratio", "k^(1-1/alpha)"],
                rows,
                title=f"alpha = {alpha:g}: fitted exponent {slope:.4f} "
                f"(theory {1 - 1 / alpha:.4f})",
                floatfmt=".3f",
            )
        )
    rows3, _ = results[3.0]
    chart = format_ascii_chart(
        [
            ("measured", [math.log(r[0]) for r in rows3], [math.log(r[1]) for r in rows3]),
            ("k^(2/3)", [math.log(r[0]) for r in rows3], [math.log(r[2]) for r in rows3]),
        ],
        title="log-log: ratio vs k at alpha = 3 (lines coincide)",
        height=10,
    )
    out.append(
        format_table(
            ["k", "randomized-dispatch ratio", "k^(2/3)"],
            random_rows,
            title="randomisation does not help against the adaptive adversary (alpha = 3)",
            floatfmt=".3f",
        )
    )
    emit("lower_bound", "\n\n".join(out) + "\n\n" + chart)

    for alpha, (rows, slope) in results.items():
        assert abs(slope - (1 - 1 / alpha)) < 0.05
        for k, ratio, theory in rows:
            assert abs(ratio - theory) <= 0.08 * theory
    for k, ratio, theory in random_rows:
        # Random assignment is *at least* as lopsided as balanced dispatch
        # (up to the small perturbation from the non-zero light volumes).
        assert ratio >= theory * 0.98
