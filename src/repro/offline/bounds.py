"""Best-available lower bounds on the offline optimum.

The competitive-ratio harness divides an algorithm's measured cost by a
*certified* lower bound on OPT, so every reported empirical ratio upper-bounds
the instance's true ratio.  Sources, best taken pointwise:

* the exact closed form for single-job instances;
* the convex-relaxation dual bound (:mod:`repro.offline.convex`);
* the per-job independence bound: OPT is at least the sum of each job's
  single-job optimum computed *in isolation* divided by... no — that is false
  in general (sharing a machine can only hurt, so the *max* of single-job
  optima is valid, and so is the largest single job's cost).  We use
  ``max_j singlejob(j)`` as a cheap floor.

For parallel machines the relaxation is reused with the pooled power function
``P_k(s) = k * P(s/k)`` — by convexity any k-machine speed vector costs at
least the pooled machine running at the aggregate speed, and the relaxation
already allows arbitrary simultaneous processing.  For ``P = s**alpha`` the
pool is just ``s**alpha * k**(1-alpha)``, handled by rescaling volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.job import Instance
from ..core.metrics import evaluate
from ..core.power import PowerLaw
from .convex import ConvexBound, fractional_lower_bound
from .single_job import single_job_opt_fractional, single_job_opt_integral

__all__ = ["OptBound", "opt_fractional_lower_bound", "opt_integral_lower_bound"]


@dataclass(frozen=True)
class OptBound:
    """A certified lower bound and where it came from."""

    value: float
    source: str
    convex: ConvexBound | None = None


def opt_fractional_lower_bound(
    instance: Instance,
    power: PowerLaw,
    *,
    machines: int = 1,
    slots: int = 400,
    iterations: int = 3000,
    horizon: float | None = None,
) -> OptBound:
    """Certified lower bound on the offline *fractional* optimum.

    With ``machines = k > 1`` the bound is for k identical machines: the
    machine pool is relaxed to one machine with power ``k * P(s/k)``.  For
    ``P = s**alpha`` we have ``k*P(s/k) = (s * k^{(1-alpha)/alpha})**alpha``,
    i.e. the pooled machine is an ordinary power law acting on a rescaled
    speed — equivalently every job's *volume* shrinks by the factor
    ``k**((1-alpha)/alpha)`` while flow weights are preserved by scaling
    densities up by the inverse factor.
    """
    if machines < 1:
        raise ValueError(f"machines must be >= 1, got {machines}")
    work = instance
    if machines > 1:
        # s_pool**alpha * k**(1-alpha): substitute u = s * k**((1-alpha)/alpha)
        # so energy = u**alpha while volumes measured in u-units scale by c.
        c = machines ** ((1.0 - power.alpha) / power.alpha)
        work = Instance(
            j.with_volume(j.volume * c).with_density(j.density / c) for j in instance
        )
        # weight = (v*c) * (rho/c) is unchanged, so flow accounting is intact.

    if len(work) == 1:
        job = work.jobs[0]
        exact = single_job_opt_fractional(job.volume, job.density, power.alpha)
        return OptBound(value=exact.objective, source="single-job closed form")

    cb = fractional_lower_bound(
        work, power, slots=slots, iterations=iterations, horizon=horizon
    )
    candidates = [(cb.dual_value, "convex dual")]
    candidates.append(
        (
            max(single_job_opt_fractional(j.volume, j.density, power.alpha).objective for j in work),
            "max single-job floor",
        )
    )
    if machines == 1:
        # Theorem 1 surrogate: Algorithm C is 2-competitive for the fractional
        # objective (Bansal–Chan–Pruhs), so OPT >= cost(C) / 2.  This leans on
        # a *proved* literature theorem rather than a self-contained
        # certificate, but is much tighter on long instances where the
        # discretised relaxation loses resolution.
        from ..algorithms.clairvoyant import simulate_clairvoyant

        c_cost = evaluate(
            simulate_clairvoyant(work, power).schedule, work, power
        ).fractional_objective
        candidates.append((c_cost / 2.0, "theorem-1 surrogate (cost(C)/2)"))
    value, source = max(candidates)
    return OptBound(value=value, source=source, convex=cb)


def opt_integral_lower_bound(
    instance: Instance,
    power: PowerLaw,
    *,
    machines: int = 1,
    slots: int = 400,
    iterations: int = 3000,
    horizon: float | None = None,
) -> OptBound:
    """Certified lower bound on the offline *integral* optimum.

    Integral flow dominates fractional flow pointwise (each infinitesimal
    piece of a job completes no later than the whole job), so any fractional
    lower bound is also an integral lower bound; the single-job closed form
    tightens it when applicable.
    """
    frac = opt_fractional_lower_bound(
        instance, power, machines=machines, slots=slots, iterations=iterations, horizon=horizon
    )
    if len(instance) == 1 and machines == 1:
        job = instance.jobs[0]
        exact = single_job_opt_integral(job.volume, job.density, power.alpha)
        if exact.objective > frac.value:
            return OptBound(value=exact.objective, source="single-job closed form (integral)")
    return frac
