"""Fault injectors: interpret a :class:`~repro.faults.plan.FaultPlan` against
a concrete run.

One :class:`FaultInjector` is created per supervised run and *shared across
retry attempts*: firing budgets (``FaultSpec.max_firings``) persist, so a
transient fault that fired on attempt 1 stays quiet on attempt 2 — which is
exactly what makes it transient.  Every firing is emitted as a typed
``fault_injected`` trace event through the run's
:class:`~repro.core.shadow.SimulationContext`, so chaos reports can
reconstruct the full fault timeline from the trace alone.

Injection channels
------------------

* instance perturbation — ``release_jitter`` / ``release_duplicate`` /
  ``release_drop`` rewrite the instance before a run starts
  (:meth:`FaultInjector.perturb_instance`);
* volume reveals — ``oracle_lie`` wraps both reveal paths: the analytic
  simulators' ``context.volume_filter`` and the engine's
  :class:`FaultyVolumeOracle` (via ``context.oracle_factory``);
* power queries — ``power_transient`` / ``power_nan`` wrap the power function
  in a :class:`FlakyPowerFunction` (:meth:`FaultInjector.wrap_power`);
* engine steps — ``step_corruption`` installs ``context.step_interceptor``;
* machines — ``machine_failure`` drives
  :func:`simulate_nc_par_with_failure`, the lost-work failover model.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Callable

from ..core.errors import ConvergenceError, InvalidInstanceError, SimulationError
from ..core.job import Instance, Job
from ..core.kernels import growth_time_between
from ..core.oracle import VolumeOracle
from ..core.power import PowerLaw
from ..core.schedule import GrowthSegment, ScheduleBuilder
from ..core.shadow import SimulationContext
from ..parallel.cluster import ClusterRun
from .plan import INSTANCE_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FaultInjector",
    "FaultyVolumeOracle",
    "FlakyPowerFunction",
    "simulate_nc_par_with_failure",
]


class FaultyVolumeOracle(VolumeOracle):
    """A :class:`VolumeOracle` whose completion-time reveals can lie.

    The engine's trusted accessors (``_true_volume``, ``_mark_completed``)
    stay honest — physics is not negotiable — but the volume *reported to the
    policy* at the completion instant goes through the injector's lie filter,
    modelling a telemetry channel that mis-reports how much work a finished
    job contained.
    """

    def __init__(
        self, instance: Instance, lie: Callable[[int, float], float]
    ) -> None:
        super().__init__(instance)
        self._lie = lie

    def _reveal_on_completion(self, job_id: int) -> float:
        return self._lie(job_id, self._instance[job_id].volume)


class FlakyPowerFunction(PowerLaw):
    """A :class:`PowerLaw` whose ``speed`` query transiently fails.

    Counts ``speed`` calls; on the scheduled call it either raises
    :class:`~repro.core.errors.ConvergenceError` (mode ``power_transient``)
    or returns NaN (mode ``power_nan`` — which the engine converts into a
    structured ``SimulationError``, never a silent NaN schedule).  The call
    counter lives on the *injector* budget, so a retry does not re-trip the
    same fault.
    """

    __slots__ = ("_on_speed",)

    def __init__(
        self, alpha: float, on_speed: Callable[[float], float | None]
    ) -> None:
        super().__init__(alpha)
        self._on_speed = on_speed

    def speed(self, power_value: float) -> float:
        override = self._on_speed(power_value)
        if override is not None:
            return override
        return super().speed(power_value)


class FaultInjector:
    """Stateful interpreter of a :class:`FaultPlan` for one supervised run.

    ``install`` wires the context hooks; ``perturb_instance`` /
    ``wrap_power`` transform the run inputs.  ``fired`` records every firing
    as ``(spec, sim_time)`` in order, for reports and assertions.
    """

    def __init__(
        self,
        plan: FaultPlan,
        context: SimulationContext,
        *,
        component: str = "faults",
    ) -> None:
        self.plan = plan
        self.context = context
        self.component = component
        self.fired: list[tuple[FaultSpec, float]] = []
        self._budget: dict[int, int] = {
            i: spec.max_firings for i, spec in enumerate(plan.faults)
        }
        self._power_calls = 0
        self._sim_time = 0.0  # best-effort clock for call-triggered faults

    # -- bookkeeping ----------------------------------------------------------

    def _armed(self, *kinds: str) -> list[tuple[int, FaultSpec]]:
        return [
            (i, spec)
            for i, spec in enumerate(self.plan.faults)
            if spec.kind in kinds and self._budget[i] > 0
        ]

    def _fire(self, index: int, spec: FaultSpec, sim_time: float, **extra: object) -> None:
        self._budget[index] -= 1
        self.fired.append((spec, sim_time))
        self.context.metrics.increment("faults_fired")
        payload = spec.as_payload()
        payload.update(extra)
        self.context.emit("fault_injected", sim_time, self.component, **payload)

    @property
    def exhausted(self) -> bool:
        """True when no fault can fire any more (retries will run clean)."""
        return all(b <= 0 for b in self._budget.values())

    def armed_specs(self, *kinds: str) -> tuple[FaultSpec, ...]:
        """The still-armed specs of the given kinds (budget not yet spent)."""
        return tuple(spec for _, spec in self._armed(*kinds))

    def fire_external(self, kind: str, sim_time: float, **extra: object) -> None:
        """Consume the first armed spec of ``kind`` for a fault realised by
        external machinery (e.g. the machine-failure failover simulator),
        emitting the usual ``fault_injected`` event and spending its budget."""
        for index, spec in self._armed(kind):
            self._fire(index, spec, sim_time, **extra)
            return

    # -- channel: instance perturbation ---------------------------------------

    def perturb_instance(self, instance: Instance) -> Instance:
        """Apply release-stream faults, rebuilding the instance.

        ``release_jitter`` shifts a release by ``magnitude`` (floored at 0);
        ``release_duplicate`` injects a phantom copy under a fresh job id;
        ``release_drop`` removes a job — the drop consumes its budget, so the
        supervisor's retry sees the job again (drop-and-retry).
        """
        specs = self._armed(*INSTANCE_KINDS)
        if not specs:
            return instance
        jobs = list(instance.jobs)
        next_id = max(j.job_id for j in jobs) + 1 if jobs else 0
        for index, spec in specs:
            target = self._pick_job(spec, jobs)
            if target is None:
                continue
            if spec.kind == "release_jitter":
                shifted = max(0.0, target.release + spec.magnitude)
                jobs = [
                    Job(j.job_id, shifted, j.volume, j.density)
                    if j.job_id == target.job_id
                    else j
                    for j in jobs
                ]
                self._fire(index, spec, shifted, target=target.job_id)
            elif spec.kind == "release_duplicate":
                phantom = Job(next_id, target.release, target.volume, target.density)
                jobs.append(phantom)
                self._fire(
                    index, spec, target.release, target=target.job_id, phantom=next_id
                )
                next_id += 1
            elif spec.kind == "release_drop":
                if len(jobs) <= 1:
                    continue  # dropping the only job makes the run vacuous
                jobs = [j for j in jobs if j.job_id != target.job_id]
                self._fire(index, spec, target.release, target=target.job_id)
        return Instance(jobs)

    @staticmethod
    def _pick_job(spec: FaultSpec, jobs: list[Job]) -> Job | None:
        if not jobs:
            return None
        if spec.job_id is not None:
            for j in jobs:
                if j.job_id == spec.job_id:
                    return j
            return jobs[spec.job_id % len(jobs)]
        return jobs[0]

    # -- channel: volume reveals ----------------------------------------------

    def _lie(self, job_id: int, volume: float) -> float:
        for index, spec in self._armed("oracle_lie"):
            if spec.job_id is not None and spec.job_id != job_id:
                continue
            if spec.mode == "withhold":
                self._fire(index, spec, self._sim_time, target=job_id)
                raise SimulationError(
                    f"volume reveal for job {job_id} withheld by fault injection",
                    time=self._sim_time,
                    job=job_id,
                    fault=spec.describe(),
                )
            if spec.mode == "nan":
                self._fire(index, spec, self._sim_time, target=job_id)
                return math.nan
            self._fire(index, spec, self._sim_time, target=job_id)
            return volume * (1.0 + spec.magnitude)
        return volume

    # -- channel: power queries -----------------------------------------------

    def wrap_power(self, power: PowerLaw) -> PowerLaw:
        """Wrap ``power`` in a :class:`FlakyPowerFunction` if any power fault
        is planned (otherwise return it untouched, so the unfaulted path uses
        the exact same object)."""
        if not self._armed("power_transient", "power_nan"):
            return power

        def on_speed(power_value: float) -> float | None:
            self._power_calls += 1
            for index, spec in self._armed("power_transient", "power_nan"):
                if self._power_calls < max(spec.after_calls, 1):
                    continue
                self._fire(index, spec, self._sim_time, call=self._power_calls)
                if spec.kind == "power_transient":
                    raise ConvergenceError(
                        "power function failed to converge (injected)",
                        time=self._sim_time,
                        call=self._power_calls,
                        fault=spec.describe(),
                    )
                return math.nan
            return None

        return FlakyPowerFunction(power.alpha, on_speed)

    # -- channel: session journal ---------------------------------------------

    def journal_filter(self):
        """A line filter for :class:`~repro.service.journal.SessionJournal`.

        Counts journal appends; on the scheduled append it either tears the
        write (``torn_journal_write`` — a ``magnitude``-fraction prefix of
        the line reaches the sink, then :class:`JournalWriteAborted` models
        the crash; the session fails closed and recovers through
        ``SessionManager.restore``, which drops the torn tail) or flips a
        body character post-checksum (``journal_corruption`` — detected as
        interior corruption on the next read and quarantined).  Budgets are
        shared with every other channel.
        """
        from ..service.journal import JournalWriteAborted, corrupt_line

        calls = {"n": 0}

        def line_filter(seq: int, line: str) -> str:
            calls["n"] += 1
            for index, spec in self._armed("torn_journal_write"):
                if calls["n"] < max(spec.after_calls, 1):
                    continue
                self._fire(index, spec, self._sim_time, seq=seq)
                cut = max(1, int(len(line) * min(max(spec.magnitude, 0.05), 0.95)))
                raise JournalWriteAborted(line[:cut])
            for index, spec in self._armed("journal_corruption"):
                if calls["n"] < max(spec.after_calls, 1):
                    continue
                self._fire(index, spec, self._sim_time, seq=seq)
                return corrupt_line(line)
            return line

        return line_filter

    # -- channel: HTTP request gate -------------------------------------------

    def service_gate(self):
        """An async request gate for :class:`~repro.service.asgi.App`.

        Counts gated requests; on the scheduled one it either stalls the
        handler for ``magnitude`` seconds (``slow_handler`` — with a request
        deadline configured, the caller sees 504 and the handler is
        cancelled cleanly) or aborts the connection mid-response
        (``connection_drop`` — the socket server tears the response off).
        """
        import asyncio

        from ..service.asgi import ConnectionAborted

        calls = {"n": 0}

        async def gate(request: object) -> None:
            calls["n"] += 1
            for index, spec in self._armed("slow_handler"):
                if calls["n"] < max(spec.after_calls, 1):
                    continue
                self._fire(index, spec, self._sim_time, call=calls["n"])
                await asyncio.sleep(spec.magnitude)
            for index, spec in self._armed("connection_drop"):
                if calls["n"] < max(spec.after_calls, 1):
                    continue
                self._fire(index, spec, self._sim_time, call=calls["n"])
                raise ConnectionAborted(
                    f"connection dropped mid-response (injected, {spec.describe()})"
                )

        return gate

    # -- channel: engine steps ------------------------------------------------

    def _intercept_step(self, t: float, job_id: int, processed: float) -> float:
        self._sim_time = t
        for index, spec in self._armed("step_corruption"):
            if spec.job_id is not None and spec.job_id != job_id:
                continue
            if spec.at_time is not None and t < spec.at_time:
                continue
            rng = random.Random(self.plan.seed * 1_000_003 + index * 8191 + job_id)
            noise = spec.magnitude * (2.0 * rng.random() - 1.0)
            self._fire(index, spec, t, target=job_id, noise=noise)
            return processed * (1.0 + noise)
        return processed

    # -- wiring ---------------------------------------------------------------

    def install(self) -> None:
        """Wire this injector's channels into the context.

        Only channels the plan actually uses are installed — an empty plan
        leaves every hook ``None``, keeping the unfaulted path bit-identical
        to a context that never met an injector.
        """
        ctx = self.context
        if self.plan.of_kind("oracle_lie"):
            ctx.volume_filter = self._lie
            ctx.oracle_factory = lambda inst: FaultyVolumeOracle(inst, self._lie)
        if self.plan.of_kind("step_corruption"):
            ctx.step_interceptor = self._intercept_step

    def uninstall(self) -> None:
        ctx = self.context
        ctx.volume_filter = None
        ctx.oracle_factory = None
        ctx.step_interceptor = None


def simulate_nc_par_with_failure(
    instance: Instance,
    power: PowerLaw,
    machines: int,
    *,
    dead_machine: int,
    fail_time: float,
    context: SimulationContext | None = None,
    injector: FaultInjector | None = None,
) -> ClusterRun:
    """NC-PAR under the lost-work machine-failure model.

    Machine ``dead_machine`` dies at ``fail_time``: a job whose processing on
    it would extend past the failure is killed there (its partial work is
    lost and *not* recorded — the surviving schedule alone must account for
    its full volume) and re-enters the global FIFO queue at
    ``max(release, fail_time)``; after the failure the machine accepts
    nothing.  Emits a ``fault_injected`` event at the kill and a ``recovery``
    event when the last re-released job lands on a survivor.
    """
    if machines < 2:
        raise InvalidInstanceError("machine failure needs at least 2 machines")
    if not 0 <= dead_machine < machines:
        raise InvalidInstanceError(f"dead_machine {dead_machine} out of range")
    if not instance.is_uniform_density():
        raise InvalidInstanceError("NC-PAR (§6) is defined for uniform densities")
    if context is None:
        context = SimulationContext(power)
    alpha = power.alpha
    survivors = [i for i in range(machines) if i != dead_machine]
    free = [0.0] * machines
    assignments: dict[int, list[int]] = {i: [] for i in range(machines)}
    builders = {i: ScheduleBuilder() for i in range(machines)}
    oracles = [
        context.prefix_oracle(component=f"nc_par.m{i}.prefix") for i in range(machines)
    ]
    dead_alive = True
    requeued: list[int] = []

    def mark_dead(job_id: int | None) -> None:
        # First moment the failure takes effect (mid-flight kill or
        # dead-on-arrival): record it exactly once, through the injector's
        # budget when one is attached.
        context.metrics.increment("machine_failures")
        if injector is not None:
            injector.fire_external(
                "machine_failure", fail_time, machine=dead_machine, job=job_id
            )
        else:
            context.emit(
                "fault_injected",
                fail_time,
                "faults",
                fault="machine_failure",
                machine=dead_machine,
                job=job_id,
                at_time=fail_time,
            )

    todo: list[tuple[float, int, Job]] = [(j.release, j.job_id, j) for j in instance]
    heapq.heapify(todo)
    while todo:
        rel_eff, _, job = heapq.heappop(todo)
        cands = list(range(machines)) if dead_alive else survivors
        idle = [i for i in cands if free[i] <= rel_eff]
        chosen = min(idle) if idle else min(cands, key=lambda i: (free[i], i))
        start = max(rel_eff, free[chosen])
        if chosen == dead_machine and start >= fail_time:
            # Found dead on arrival: requeue among survivors only.
            dead_alive = False
            free[dead_machine] = math.inf
            mark_dead(None)
            heapq.heappush(todo, (rel_eff, job.job_id, job))
            continue
        offset = oracles[chosen].weight_at(rel_eff) if assignments[chosen] else 0.0
        tau = growth_time_between(offset, offset + job.weight, job.density, alpha)
        if chosen == dead_machine and start + tau > fail_time:
            # Killed mid-flight: lost work, machine gone, job re-released.
            dead_alive = False
            free[dead_machine] = math.inf
            requeued.append(job.job_id)
            mark_dead(job.job_id)
            heapq.heappush(
                todo, (max(job.release, fail_time), job.job_id, job)
            )
            continue
        builders[chosen].append(
            GrowthSegment(start, start + tau, job.job_id, offset, job.density, alpha)
        )
        assignments[chosen].append(job.job_id)
        oracles[chosen].add_job(job.job_id, rel_eff, job.density, job.volume)
        free[chosen] = start + tau
        if requeued and job.job_id == requeued[-1]:
            context.emit(
                "recovery",
                start + tau,
                "faults",
                action="machine_failover",
                job=job.job_id,
                machine=chosen,
                from_machine=dead_machine,
            )
    schedules = {i: builders[i].build() for i in range(machines) if assignments[i]}
    return ClusterRun(
        instance=instance,
        power=power,
        machines=machines,
        assignments=assignments,
        schedules=schedules,
    )
