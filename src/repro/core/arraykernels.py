"""Vectorized struct-of-arrays counterparts of the closed-form kernels.

The scalar kernels in :mod:`repro.core.kernels` evaluate one job at a time;
every function here evaluates a whole *population* in one call: all eleven
closed forms accept numpy arrays (or scalars, broadcast as usual) over
``(w0, rho, tau, alpha)`` and return ``float64`` arrays.  The algebra is
identical — ``beta = 1 - 1/alpha`` linearises both dynamics, see
:mod:`repro.core.kernels` — so the two families agree to float rounding
(``tests/test_arraykernels.py`` pins the agreement per kernel and over full
golden-corpus runs).

Three backends provide the same eleven-callable surface through a small
registry:

* ``"numpy"`` (default) — the module-level functions below; one vectorized
  expression per kernel over the whole population.
* ``"scalar"`` — elementwise loops over the scalar twins; bit-identical to
  :mod:`repro.core.kernels` per element and the fallback of last resort.
* ``"numba"`` — optional compiled ufuncs; only registered when ``numba`` is
  importable, otherwise requests for it degrade to ``"numpy"`` (the
  degradation is observable via :func:`numba_available` and the
  ``backend_selected`` trace event).

Selection: :func:`get_backend` honors the ``REPRO_BACKEND`` environment
variable (``scalar`` | ``numpy`` | ``numba``); consumers that take a
``backend=`` parameter resolve it through :func:`resolve_backend`.

:class:`ArrayPopulation` is the struct-of-arrays job-population state the
shadow layer, the numeric engine and the benchmarks share: contiguous
parallel arrays for id, release, density (+ rounded density class), volume
and machine assignment, with amortized append and O(1) id->slot lookup.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from importlib import util as _importlib_util
from typing import Any, Callable, Iterable, cast

import numpy as np
import numpy.typing as npt

from .errors import KernelDomainError
from .job import Job

__all__ = [
    "FloatArray",
    "KernelFn",
    "KernelBackend",
    "ArrayPopulation",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
    "available_backends",
    "numba_available",
    "get_backend",
    "resolve_backend",
    "backend_payload",
    "beta_of",
    "speed_at",
    "decay_weight_after",
    "decay_time_between",
    "decay_time_to_zero",
    "decay_energy_between",
    "decay_flow_integral",
    "growth_weight_after",
    "growth_time_between",
    "growth_energy_between",
    "growth_flow_integral",
]

FloatArray = npt.NDArray[np.float64]
KernelFn = Callable[..., FloatArray]

#: Environment variable consulted when no explicit backend is requested.
BACKEND_ENV_VAR = "REPRO_BACKEND"
#: Backend used when neither a parameter nor the environment names one.
DEFAULT_BACKEND = "numpy"


# ---------------------------------------------------------------------------
# Broadcasting + vectorized domain checks
# ---------------------------------------------------------------------------


def _broadcast(*args: npt.ArrayLike) -> tuple[FloatArray, ...]:
    arrays = [np.asarray(a, dtype=np.float64) for a in args]
    return tuple(cast("list[FloatArray]", np.broadcast_arrays(*arrays)))


def _context_at(
    i: int, x: FloatArray, rho: FloatArray, t: FloatArray | None
) -> dict[str, float | None]:
    return {
        "x": float(x.flat[i]),
        "rho": float(rho.flat[i]),
        "t": None if t is None else float(t.flat[i]),
    }


def _check_arrays(x: FloatArray, rho: FloatArray, t: FloatArray | None = None) -> None:
    """Vectorized twin of ``kernels._check``: one pass over the population,
    reporting the first offending element with its ``{x, rho, t}`` context."""
    bad = (x < 0.0) | ~np.isfinite(x)
    if bad.any():
        i = int(np.flatnonzero(bad.ravel())[0])
        raise KernelDomainError(
            f"weight must be finite and non-negative, got {x.flat[i]}",
            **_context_at(i, x, rho, t),
        )
    bad = (rho <= 0.0) | ~np.isfinite(rho)
    if bad.any():
        i = int(np.flatnonzero(bad.ravel())[0])
        raise KernelDomainError(
            f"density must be finite and positive, got {rho.flat[i]}",
            **_context_at(i, x, rho, t),
        )
    if t is not None:
        bad = (t < 0.0) | ~np.isfinite(t)
        if bad.any():
            i = int(np.flatnonzero(bad.ravel())[0])
            raise KernelDomainError(
                f"time must be finite and non-negative, got {t.flat[i]}",
                **_context_at(i, x, rho, t),
            )


def _check_alpha(alpha: FloatArray) -> None:
    bad = ~(alpha > 1.0)
    if bad.any():
        i = int(np.flatnonzero(bad.ravel())[0])
        raise KernelDomainError(
            f"alpha must exceed 1, got {alpha.flat[i]}", alpha=float(alpha.flat[i])
        )


def _check_upper(lo: FloatArray, hi: FloatArray, what: str) -> None:
    bad = (lo < 0.0) | (lo > hi * (1.0 + 1e-12))
    if bad.any():
        i = int(np.flatnonzero(bad.ravel())[0])
        raise KernelDomainError(
            f"need 0 <= {what}, got {lo.flat[i]} vs {hi.flat[i]}",
            x=float(hi.flat[i]),
            rho=None,
            t=None,
        )


# ---------------------------------------------------------------------------
# The eleven kernels, numpy-vectorized (reference array implementations)
# ---------------------------------------------------------------------------


def beta_of(alpha: npt.ArrayLike) -> FloatArray:
    """Vectorized ``beta = 1 - 1/alpha``."""
    (a,) = _broadcast(alpha)
    _check_alpha(a)
    return cast(FloatArray, 1.0 - 1.0 / a)


def speed_at(weight: npt.ArrayLike, alpha: npt.ArrayLike) -> FloatArray:
    """Vectorized power-equals-weight speed ``s = weight**(1/alpha)``."""
    w, a = _broadcast(weight, alpha)
    _check_alpha(a)
    bad = w < 0.0
    if bad.any():
        i = int(np.flatnonzero(bad.ravel())[0])
        raise KernelDomainError(
            f"weight must be non-negative, got {w.flat[i]}",
            x=float(w.flat[i]),
            rho=None,
            t=None,
        )
    return cast(FloatArray, w ** (1.0 / a))


def decay_weight_after(
    w0: npt.ArrayLike, rho: npt.ArrayLike, t: npt.ArrayLike, alpha: npt.ArrayLike
) -> FloatArray:
    """Vectorized :func:`repro.core.kernels.decay_weight_after`."""
    w0a, rhoa, ta, aa = _broadcast(w0, rho, t, alpha)
    _check_arrays(w0a, rhoa, ta)
    _check_alpha(aa)
    beta = 1.0 - 1.0 / aa
    base = w0a**beta - rhoa * beta * ta
    return cast(FloatArray, np.maximum(base, 0.0) ** (1.0 / beta))


def decay_time_between(
    w0: npt.ArrayLike, w1: npt.ArrayLike, rho: npt.ArrayLike, alpha: npt.ArrayLike
) -> FloatArray:
    """Vectorized :func:`repro.core.kernels.decay_time_between`."""
    w0a, w1a, rhoa, aa = _broadcast(w0, w1, rho, alpha)
    _check_arrays(w0a, rhoa)
    _check_upper(w1a, w0a, "w1 <= w0")
    _check_alpha(aa)
    beta = 1.0 - 1.0 / aa
    return cast(FloatArray, np.maximum(0.0, (w0a**beta - w1a**beta) / (rhoa * beta)))


def decay_time_to_zero(
    w0: npt.ArrayLike, rho: npt.ArrayLike, alpha: npt.ArrayLike
) -> FloatArray:
    """Vectorized :func:`repro.core.kernels.decay_time_to_zero`."""
    return decay_time_between(w0, 0.0, rho, alpha)


def decay_energy_between(
    w0: npt.ArrayLike, w1: npt.ArrayLike, rho: npt.ArrayLike, alpha: npt.ArrayLike
) -> FloatArray:
    """Vectorized :func:`repro.core.kernels.decay_energy_between`."""
    w0a, w1a, rhoa, aa = _broadcast(w0, w1, rho, alpha)
    _check_arrays(w0a, rhoa)
    _check_upper(w1a, w0a, "w1 <= w0")
    _check_alpha(aa)
    beta = 1.0 - 1.0 / aa
    return cast(
        FloatArray,
        np.maximum(
            0.0, (w0a ** (1.0 + beta) - w1a ** (1.0 + beta)) / (rhoa * (1.0 + beta))
        ),
    )


def decay_flow_integral(
    w0: npt.ArrayLike, rho: npt.ArrayLike, tau: npt.ArrayLike, alpha: npt.ArrayLike
) -> FloatArray:
    """Vectorized :func:`repro.core.kernels.decay_flow_integral`."""
    w0a, rhoa, taua, aa = _broadcast(w0, rho, tau, alpha)
    w_end = decay_weight_after(w0a, rhoa, taua, aa)
    energy = decay_energy_between(w0a, w_end, rhoa, aa)
    # Zero-length segments are exactly 0 (scalar twin's ulp round-trip guard).
    return cast(FloatArray, np.where(taua == 0.0, 0.0, (w0a * taua - energy) / rhoa))


def growth_weight_after(
    u0: npt.ArrayLike, rho: npt.ArrayLike, t: npt.ArrayLike, alpha: npt.ArrayLike
) -> FloatArray:
    """Vectorized :func:`repro.core.kernels.growth_weight_after`."""
    u0a, rhoa, ta, aa = _broadcast(u0, rho, t, alpha)
    _check_arrays(u0a, rhoa, ta)
    _check_alpha(aa)
    beta = 1.0 - 1.0 / aa
    return cast(FloatArray, (u0a**beta + rhoa * beta * ta) ** (1.0 / beta))


def growth_time_between(
    u0: npt.ArrayLike, u1: npt.ArrayLike, rho: npt.ArrayLike, alpha: npt.ArrayLike
) -> FloatArray:
    """Vectorized :func:`repro.core.kernels.growth_time_between`."""
    u0a, u1a, rhoa, aa = _broadcast(u0, u1, rho, alpha)
    _check_arrays(u0a, rhoa)
    _check_upper(u0a, u1a, "u0 <= u1")
    _check_alpha(aa)
    beta = 1.0 - 1.0 / aa
    return cast(FloatArray, np.maximum(0.0, (u1a**beta - u0a**beta) / (rhoa * beta)))


def growth_energy_between(
    u0: npt.ArrayLike, u1: npt.ArrayLike, rho: npt.ArrayLike, alpha: npt.ArrayLike
) -> FloatArray:
    """Vectorized :func:`repro.core.kernels.growth_energy_between`."""
    u0a, u1a, rhoa, aa = _broadcast(u0, u1, rho, alpha)
    _check_arrays(u0a, rhoa)
    _check_upper(u0a, u1a, "u0 <= u1")
    _check_alpha(aa)
    beta = 1.0 - 1.0 / aa
    return cast(
        FloatArray,
        np.maximum(
            0.0, (u1a ** (1.0 + beta) - u0a ** (1.0 + beta)) / (rhoa * (1.0 + beta))
        ),
    )


def growth_flow_integral(
    u0: npt.ArrayLike, rho: npt.ArrayLike, tau: npt.ArrayLike, alpha: npt.ArrayLike
) -> FloatArray:
    """Vectorized :func:`repro.core.kernels.growth_flow_integral`."""
    u0a, rhoa, taua, aa = _broadcast(u0, rho, tau, alpha)
    u_end = growth_weight_after(u0a, rhoa, taua, aa)
    energy = growth_energy_between(u0a, u_end, rhoa, aa)
    # Zero-length segments are exactly 0 (scalar twin's ulp round-trip guard).
    return cast(FloatArray, np.where(taua == 0.0, 0.0, (energy - u0a * taua) / rhoa))


_KERNEL_NAMES = (
    "beta_of",
    "speed_at",
    "decay_weight_after",
    "decay_time_between",
    "decay_time_to_zero",
    "decay_energy_between",
    "decay_flow_integral",
    "growth_weight_after",
    "growth_time_between",
    "growth_energy_between",
    "growth_flow_integral",
)


# ---------------------------------------------------------------------------
# ArrayPopulation — struct-of-arrays job-population state
# ---------------------------------------------------------------------------


class ArrayPopulation:
    """Contiguous struct-of-arrays state for a job population.

    Parallel arrays over slots ``[0, count)``: ``job_id``, ``release``,
    ``density``, ``density_class`` (a rounded-density class id; 0 unless the
    producer assigns classes), ``volume`` and ``machine``.  The meaning of
    ``volume`` is the producer's: the shadow layer stores *remaining*
    volumes, the numeric engine stores *processed* volumes.  Appends grow the
    arrays geometrically, so building a population job-by-job is amortized
    O(1) per job; :meth:`slot_of` is an O(1) dict lookup.
    """

    __slots__ = (
        "job_id",
        "release",
        "density",
        "density_class",
        "volume",
        "machine",
        "count",
        "_slot",
    )

    def __init__(self, capacity: int = 16) -> None:
        capacity = max(int(capacity), 1)
        self.job_id: npt.NDArray[np.int64] = np.zeros(capacity, dtype=np.int64)
        self.release: FloatArray = np.zeros(capacity, dtype=np.float64)
        self.density: FloatArray = np.zeros(capacity, dtype=np.float64)
        self.density_class: npt.NDArray[np.int64] = np.zeros(capacity, dtype=np.int64)
        self.volume: FloatArray = np.zeros(capacity, dtype=np.float64)
        self.machine: npt.NDArray[np.int64] = np.zeros(capacity, dtype=np.int64)
        self.count: int = 0
        self._slot: dict[int, int] = {}

    @classmethod
    def from_jobs(cls, jobs: Iterable[Job], *, machine: int = 0) -> "ArrayPopulation":
        """A population whose ``volume`` holds each job's full volume."""
        jobs = list(jobs)
        pop = cls(capacity=max(len(jobs), 1))
        for job in jobs:
            pop.append(job.job_id, job.release, job.density, job.volume, machine=machine)
        return pop

    def _grow(self) -> None:
        new_cap = max(2 * self.job_id.size, 16)
        for name in ("job_id", "release", "density", "density_class", "volume", "machine"):
            old = getattr(self, name)
            fresh = np.zeros(new_cap, dtype=old.dtype)
            fresh[: self.count] = old[: self.count]
            setattr(self, name, fresh)

    def append(
        self,
        job_id: int,
        release: float,
        density: float,
        volume: float,
        *,
        machine: int = 0,
        density_class: int = 0,
    ) -> int:
        """Add one job; returns its slot index."""
        if job_id in self._slot:
            raise ValueError(f"job {job_id} already in the population")
        if self.count >= self.job_id.size:
            self._grow()
        i = self.count
        self.job_id[i] = job_id
        self.release[i] = release
        self.density[i] = density
        self.density_class[i] = density_class
        self.volume[i] = volume
        self.machine[i] = machine
        self.count = i + 1
        self._slot[job_id] = i
        return i

    def __len__(self) -> int:
        return self.count

    def slot_of(self, job_id: int) -> int:
        return self._slot[job_id]

    def ids(self) -> npt.NDArray[np.int64]:
        return self.job_id[: self.count]

    def releases(self) -> FloatArray:
        return self.release[: self.count]

    def densities(self) -> FloatArray:
        return self.density[: self.count]

    def volumes(self) -> FloatArray:
        return self.volume[: self.count]

    def machines(self) -> npt.NDArray[np.int64]:
        return self.machine[: self.count]

    def active_mask(self) -> npt.NDArray[np.bool_]:
        """Slots with positive volume (remaining work, for shadow-style use)."""
        return cast("npt.NDArray[np.bool_]", self.volume[: self.count] > 0.0)

    def weights(self) -> FloatArray:
        """Per-slot fractional weight ``rho * volume``."""
        return cast(FloatArray, self.density[: self.count] * self.volume[: self.count])

    def total_weight(self) -> float:
        """``sum(rho * volume)`` over the live prefix, in one dot product."""
        return float(
            np.dot(self.density[: self.count], self.volume[: self.count])
        )

    def hdf_order(self) -> npt.NDArray[np.intp]:
        """Slot indices in highest-density-first order, FIFO tie-breaking —
        the vectorized counterpart of the per-job ``(-rho, release, id)`` key."""
        n = self.count
        return np.lexsort((self.job_id[:n], self.release[:n], -self.density[:n]))

    def speeds(self, alpha: float) -> FloatArray:
        """Power-equals-weight speeds if each slot ran alone: one
        whole-population kernel dispatch."""
        return speed_at(self.weights(), alpha)


# ---------------------------------------------------------------------------
# Backend registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelBackend:
    """One resolved kernel-evaluation backend.

    ``vector_width`` is the number of population elements a single kernel
    dispatch evaluates natively: 1 for the scalar loop, 0 meaning *unbounded*
    (whole population per call) for the array backends.  The eleven callables
    share the array-in/array-out signature of the module-level kernels.
    """

    name: str
    vector_width: int
    uses_numba: bool
    beta_of: KernelFn
    speed_at: KernelFn
    decay_weight_after: KernelFn
    decay_time_between: KernelFn
    decay_time_to_zero: KernelFn
    decay_energy_between: KernelFn
    decay_flow_integral: KernelFn
    growth_weight_after: KernelFn
    growth_time_between: KernelFn
    growth_energy_between: KernelFn
    growth_flow_integral: KernelFn

    def kernel(self, name: str) -> KernelFn:
        if name not in _KERNEL_NAMES:
            raise KeyError(f"unknown kernel {name!r}")
        return cast(KernelFn, getattr(self, name))


def _elementwise(fn: Callable[..., float]) -> KernelFn:
    """Lift a scalar kernel to the array signature by explicit looping —
    bit-identical to the scalar twin per element."""

    def wrapped(*args: npt.ArrayLike) -> FloatArray:
        arrays = _broadcast(*args)
        out = np.empty(arrays[0].shape, dtype=np.float64)
        flats = [a.ravel() for a in arrays]
        out_flat = out.ravel()
        for i in range(out_flat.size):
            out_flat[i] = fn(*(float(f[i]) for f in flats))
        return out

    return wrapped


def _build_scalar_backend() -> KernelBackend:
    from . import kernels as _k

    return KernelBackend(
        name="scalar",
        vector_width=1,
        uses_numba=False,
        beta_of=_elementwise(_k.beta_of),
        speed_at=_elementwise(_k.speed_at),
        decay_weight_after=_elementwise(_k.decay_weight_after),
        decay_time_between=_elementwise(_k.decay_time_between),
        decay_time_to_zero=_elementwise(_k.decay_time_to_zero),
        decay_energy_between=_elementwise(_k.decay_energy_between),
        decay_flow_integral=_elementwise(_k.decay_flow_integral),
        growth_weight_after=_elementwise(_k.growth_weight_after),
        growth_time_between=_elementwise(_k.growth_time_between),
        growth_energy_between=_elementwise(_k.growth_energy_between),
        growth_flow_integral=_elementwise(_k.growth_flow_integral),
    )


def _build_numpy_backend() -> KernelBackend:
    return KernelBackend(
        name="numpy",
        vector_width=0,
        uses_numba=False,
        beta_of=beta_of,
        speed_at=speed_at,
        decay_weight_after=decay_weight_after,
        decay_time_between=decay_time_between,
        decay_time_to_zero=decay_time_to_zero,
        decay_energy_between=decay_energy_between,
        decay_flow_integral=decay_flow_integral,
        growth_weight_after=growth_weight_after,
        growth_time_between=growth_time_between,
        growth_energy_between=growth_energy_between,
        growth_flow_integral=growth_flow_integral,
    )


def _build_numba_backend() -> KernelBackend | None:
    """Compile the eleven closed forms as numba ufuncs; ``None`` when numba
    is absent or compilation fails (the registry then serves numpy)."""
    try:
        from numba import vectorize  # type: ignore[import-not-found,import-untyped]
    except Exception:
        return None
    try:
        sig2 = ["float64(float64, float64)"]
        sig3 = ["float64(float64, float64, float64)"]
        sig4 = ["float64(float64, float64, float64, float64)"]

        @vectorize(sig2, nopython=True)
        def _speed_at(w: float, alpha: float) -> float:
            return w ** (1.0 / alpha)

        @vectorize(["float64(float64)"], nopython=True)
        def _beta_of(alpha: float) -> float:
            return 1.0 - 1.0 / alpha

        @vectorize(sig4, nopython=True)
        def _dwa(w0: float, rho: float, t: float, alpha: float) -> float:
            beta = 1.0 - 1.0 / alpha
            base = w0**beta - rho * beta * t
            if base <= 0.0:
                return 0.0
            return base ** (1.0 / beta)

        @vectorize(sig4, nopython=True)
        def _dtb(w0: float, w1: float, rho: float, alpha: float) -> float:
            beta = 1.0 - 1.0 / alpha
            return max(0.0, (w0**beta - w1**beta) / (rho * beta))

        @vectorize(sig3, nopython=True)
        def _dtz(w0: float, rho: float, alpha: float) -> float:
            beta = 1.0 - 1.0 / alpha
            return w0**beta / (rho * beta)

        @vectorize(sig4, nopython=True)
        def _deb(w0: float, w1: float, rho: float, alpha: float) -> float:
            beta = 1.0 - 1.0 / alpha
            return max(
                0.0, (w0 ** (1.0 + beta) - w1 ** (1.0 + beta)) / (rho * (1.0 + beta))
            )

        @vectorize(sig4, nopython=True)
        def _dfi(w0: float, rho: float, tau: float, alpha: float) -> float:
            if tau == 0.0:
                return 0.0
            beta = 1.0 - 1.0 / alpha
            base = w0**beta - rho * beta * tau
            w_end = base ** (1.0 / beta) if base > 0.0 else 0.0
            energy = max(
                0.0, (w0 ** (1.0 + beta) - w_end ** (1.0 + beta)) / (rho * (1.0 + beta))
            )
            return (w0 * tau - energy) / rho

        @vectorize(sig4, nopython=True)
        def _gwa(u0: float, rho: float, t: float, alpha: float) -> float:
            beta = 1.0 - 1.0 / alpha
            return (u0**beta + rho * beta * t) ** (1.0 / beta)

        @vectorize(sig4, nopython=True)
        def _gtb(u0: float, u1: float, rho: float, alpha: float) -> float:
            beta = 1.0 - 1.0 / alpha
            return max(0.0, (u1**beta - u0**beta) / (rho * beta))

        @vectorize(sig4, nopython=True)
        def _geb(u0: float, u1: float, rho: float, alpha: float) -> float:
            beta = 1.0 - 1.0 / alpha
            return max(
                0.0, (u1 ** (1.0 + beta) - u0 ** (1.0 + beta)) / (rho * (1.0 + beta))
            )

        @vectorize(sig4, nopython=True)
        def _gfi(u0: float, rho: float, tau: float, alpha: float) -> float:
            if tau == 0.0:
                return 0.0
            beta = 1.0 - 1.0 / alpha
            u_end = (u0**beta + rho * beta * tau) ** (1.0 / beta)
            energy = max(
                0.0, (u_end ** (1.0 + beta) - u0 ** (1.0 + beta)) / (rho * (1.0 + beta))
            )
            return (energy - u0 * tau) / rho

        # Warm the compiled paths once so a broken toolchain fails here, not
        # mid-run, and the registry can fall back cleanly.
        _dwa(1.0, 1.0, 0.5, 3.0)
        _gfi(1.0, 1.0, 0.5, 3.0)
    except Exception:
        return None

    def _checked2(core: Any) -> KernelFn:
        def fn(w: npt.ArrayLike, alpha: npt.ArrayLike) -> FloatArray:
            wa, aa = _broadcast(w, alpha)
            _check_alpha(aa)
            return np.asarray(core(wa, aa), dtype=np.float64)

        return fn

    def _checked_t(core: Any) -> KernelFn:
        def fn(
            x: npt.ArrayLike, rho: npt.ArrayLike, t: npt.ArrayLike, alpha: npt.ArrayLike
        ) -> FloatArray:
            xa, rhoa, ta, aa = _broadcast(x, rho, t, alpha)
            _check_arrays(xa, rhoa, ta)
            _check_alpha(aa)
            return np.asarray(core(xa, rhoa, ta, aa), dtype=np.float64)

        return fn

    def _checked_pair(core: Any, what: str, swap: bool) -> KernelFn:
        def fn(
            a: npt.ArrayLike, b: npt.ArrayLike, rho: npt.ArrayLike, alpha: npt.ArrayLike
        ) -> FloatArray:
            aa_, ba, rhoa, al = _broadcast(a, b, rho, alpha)
            _check_arrays(aa_, rhoa)
            if swap:
                _check_upper(aa_, ba, what)
            else:
                _check_upper(ba, aa_, what)
            _check_alpha(al)
            return np.asarray(core(aa_, ba, rhoa, al), dtype=np.float64)

        return fn

    def _checked3(core: Any) -> KernelFn:
        def fn(x: npt.ArrayLike, rho: npt.ArrayLike, alpha: npt.ArrayLike) -> FloatArray:
            xa, rhoa, aa = _broadcast(x, rho, alpha)
            _check_arrays(xa, rhoa)
            _check_alpha(aa)
            return np.asarray(core(xa, rhoa, aa), dtype=np.float64)

        return fn

    def _beta(alpha: npt.ArrayLike) -> FloatArray:
        (aa,) = _broadcast(alpha)
        _check_alpha(aa)
        return np.asarray(_beta_of(aa), dtype=np.float64)

    return KernelBackend(
        name="numba",
        vector_width=0,
        uses_numba=True,
        beta_of=_beta,
        speed_at=_checked2(_speed_at),
        decay_weight_after=_checked_t(_dwa),
        decay_time_between=_checked_pair(_dtb, "w1 <= w0", swap=False),
        decay_time_to_zero=_checked3(_dtz),
        decay_energy_between=_checked_pair(_deb, "w1 <= w0", swap=False),
        decay_flow_integral=_checked_t(_dfi),
        growth_weight_after=_checked_t(_gwa),
        growth_time_between=_checked_pair(_gtb, "u0 <= u1", swap=True),
        growth_energy_between=_checked_pair(_geb, "u0 <= u1", swap=True),
        growth_flow_integral=_checked_t(_gfi),
    )


_SCALAR_BACKEND = _build_scalar_backend()
_NUMPY_BACKEND = _build_numpy_backend()
_numba_backend_cache: KernelBackend | None = None
_numba_backend_tried = False


def _numba_backend() -> KernelBackend | None:
    global _numba_backend_cache, _numba_backend_tried
    if not _numba_backend_tried:
        _numba_backend_tried = True
        _numba_backend_cache = _build_numba_backend()
    return _numba_backend_cache


def numba_available() -> bool:
    """Whether the optional compiled backend can be imported at all."""
    try:
        return _importlib_util.find_spec("numba") is not None
    except (ImportError, ValueError):
        return False


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend`, usable on this interpreter."""
    names = ["scalar", "numpy"]
    if numba_available():
        names.append("numba")
    return tuple(names)


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve a backend by name.

    ``None`` consults ``REPRO_BACKEND`` and falls back to
    :data:`DEFAULT_BACKEND`.  Requesting ``"numba"`` when numba is missing
    (or fails to compile) degrades to the numpy backend — the fallback
    contract of the feature flag; :func:`backend_payload` makes the
    degradation observable.  Unknown names raise :class:`ValueError`.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip() or DEFAULT_BACKEND
    name = name.lower()
    if name == "scalar":
        return _SCALAR_BACKEND
    if name == "numpy":
        return _NUMPY_BACKEND
    if name == "numba":
        backend = _numba_backend()
        return backend if backend is not None else _NUMPY_BACKEND
    raise ValueError(
        f"unknown kernel backend {name!r}; choose from "
        f"{', '.join(('scalar', 'numpy', 'numba'))}"
    )


def resolve_backend(backend: "str | KernelBackend | None") -> KernelBackend:
    """Normalize a ``backend=`` parameter: pass objects through, resolve
    names (and ``None``, via the environment) through :func:`get_backend`."""
    if isinstance(backend, KernelBackend):
        return backend
    return get_backend(backend)


def backend_payload(backend: KernelBackend) -> dict[str, Any]:
    """The ``backend_selected`` trace-event payload for a resolved backend."""
    return {
        "backend": backend.name,
        "vector_width": backend.vector_width,
        "uses_numba": backend.uses_numba,
        "numba_available": numba_available(),
    }
