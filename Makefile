# Convenience targets for the reproduction.
#
# Every target runs through `PYTHONPATH=src python -m pytest` so a fresh
# clone works without `pip install -e .` — the same invocation CI uses
# (the tier-1 contract in ROADMAP.md).

PYTEST := PYTHONPATH=src python -m pytest
PY := PYTHONPATH=src python

.PHONY: install install-dev install-service test bench bench-smoke bench-scale bench-trace-scale bench-service bench-service-recovery bench-check lint typecheck coverage serve check ci examples reproduce trace chaos chaos-service clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

# The same pinned lists CI installs from (see requirements/README.md).
install-dev:
	pip install -r requirements/base.txt -r requirements/dev.txt

install-service:
	pip install -r requirements/service.txt

test:
	$(PYTEST) -x -q tests/

bench:
	$(PYTEST) benchmarks/ --benchmark-only

# Fast benchmark subset: the shadow-layer speedup gate (writes
# benchmarks/out/BENCH_general_density.json), the eta/beta ablation, the
# tracing zero-overhead gate, and the supervisor-overhead gate.
bench-smoke:
	$(PYTEST) benchmarks/bench_general_density.py benchmarks/bench_ablation_eta_beta.py benchmarks/bench_tracing_overhead.py benchmarks/bench_supervisor_overhead.py benchmarks/bench_shard_scale.py --benchmark-only

# The array-core n-scaling curve (writes benchmarks/out/BENCH_scale.json);
# gated at a 20x fast-vs-scalar floor by check_bench_regression.py.
bench-scale:
	$(PYTEST) benchmarks/bench_scale.py --benchmark-only

# Bounded-memory verification of a >= 10^6-event trace (writes
# benchmarks/out/BENCH_trace_scale.json); the streaming peak-heap ceiling
# and its flatness across event counts are gated by check_bench_regression.py.
bench-trace-scale:
	$(PYTEST) benchmarks/bench_trace_scale.py --benchmark-only

# In-process load test of the scheduling service (writes
# benchmarks/out/BENCH_service_load.json); the p99 request-latency ceiling
# is gated by check_bench_regression.py --max-service-p99-ms.
bench-service:
	$(PYTEST) benchmarks/bench_service_load.py --benchmark-only

# Write-ahead journaling overhead and 100-session crash-recovery timing
# (writes benchmarks/out/BENCH_service_recovery.json); the journal-overhead
# and restore-time ceilings are gated by check_bench_regression.py
# --max-journal-overhead / --max-restore-ms.
bench-service-recovery:
	$(PYTEST) benchmarks/bench_service_recovery.py --benchmark-only

# Diff the freshly written BENCH_*.json against the committed baselines
# (deterministic quantities must match; speedups must stay >= 5x).
bench-check:
	python scripts/check_bench_regression.py

# Lint / type gates. Both tools are optional locally (CI always runs them);
# the || branch makes `make ci` usable on machines without them.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/ tests/ benchmarks/ scripts/ && ruff format --check .; \
	else echo "ruff not installed; skipping (CI runs it)"; fi

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		MYPYPATH=src mypy --strict -p repro.core -p repro.faults -p repro.runtime -p repro.parallel -m repro.analysis.streaming; \
	else echo "mypy not installed; skipping (CI runs it)"; fi

# Branch coverage over src/repro with the CI floor (requires pytest-cov).
coverage:
	$(PYTEST) -q tests/ --cov=src/repro --cov-branch --cov-report=term-missing --cov-fail-under=85

# Serve the scheduling API locally (requires the service extra: pydantic).
serve:
	$(PY) -m repro serve

# The one-stop entrypoint: tier-1 tests, then the benchmark smoke gate.
check: test bench-smoke

# What CI runs, locally: tier-1 tests, bench smoke, regression diff, lint, types.
ci: test bench-smoke bench-check lint typecheck

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/explore_dynamics.py
	$(PY) examples/cloud_scheduling.py
	$(PY) examples/datacenter_cluster.py
	$(PY) examples/adversarial_analysis.py
	$(PY) examples/reproduce_paper.py

reproduce:
	$(PYTEST) -q tests/ 2>&1 | tee test_output.txt
	$(PYTEST) benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Emit and verify a JSONL trace for a small random workload (see
# docs/observability.md).
trace:
	$(PY) -m repro trace --jobs 12 --seed 7 --out repro_trace.jsonl --events 10

# Seeded fault-injection campaign under the supervised runtime (see
# docs/robustness.md). Exits nonzero if any run fails its guarantees.
chaos:
	$(PY) -m repro chaos --seed 0 --n 30

# Service-level chaos: live `repro serve` processes killed / damaged /
# evicted / gated, with recovery verified bit-identical against never-killed
# twins (see docs/robustness.md; requires the service extra: pydantic).
chaos-service:
	$(PY) -m repro chaos --service --seed 0 --n 6 --jobs 6

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
