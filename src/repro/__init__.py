"""repro — a reproduction of *Speed Scaling in the Non-clairvoyant Model*
(Azar, Devanur, Huang, Panigrahi; SPAA 2015).

The package simulates online speed-scaling schedulers that minimise weighted
flow-time plus energy on one or more machines, in both the clairvoyant and
the non-clairvoyant (known density, unknown volume) information models, and
ships the workloads, offline lower bounds and analysis harness needed to
reproduce every table and figure of the paper.

Quickstart::

    from repro import Job, Instance, PowerLaw
    from repro.algorithms import simulate_nc_uniform, simulate_clairvoyant
    from repro.core import evaluate

    power = PowerLaw(3.0)
    inst = Instance([Job(0, 0.0, 4.0), Job(1, 1.0, 2.0)])
    nc = simulate_nc_uniform(inst, power)
    print(evaluate(nc.schedule, inst, power).fractional_objective)
"""

from .core import (
    CUBE_LAW,
    CostReport,
    Instance,
    Job,
    PowerFunction,
    PowerLaw,
    TabulatedPower,
    evaluate,
)

__version__ = "1.0.0"

__all__ = [
    "Job",
    "Instance",
    "PowerFunction",
    "PowerLaw",
    "TabulatedPower",
    "CUBE_LAW",
    "CostReport",
    "evaluate",
    "__version__",
]
