"""Empirical probes of §4.1's deferred analysis machinery.

The extended abstract states three structural facts about Algorithm
NC-general whose proofs (and constants) live in the unpublished full
version:

* **Property (A)** (Lemma 11): for the currently processed job ``j*``, the
  shadow clairvoyant run on the current instance still has a constant
  fraction of ``j*`` left: ``W^C_t(t)[j*] >= zeta * W_t[j*]``.
* **Property (B)** (Lemma 12): over any suffix window ``[t1, t]``, NC has
  processed at least a constant fraction of the volume the shadow run
  processes there: ``V^NC(t1, t) >= gamma * V^C_t(t1, t)``.
* **Lemma 13**: every active job's completion in the shadow run lies well
  beyond ``t``: ``c^C_t[j] - t >= psi * (t - r[j])``.

This module *measures* the constants on a finished NC-general run: it
replays the run's processed-volume state at sample times, re-simulates the
shadow clairvoyant run at each, and reports the worst observed ratios.  The
benches sweep η to show the constants are bounded away from zero above
``eta_threshold`` and collapse at it — exactly the role η plays in the
paper's induction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..algorithms.clairvoyant import simulate_clairvoyant
from ..algorithms.density_rounding import round_density_down
from ..algorithms.nc_general import NCGeneralRun
from ..core.job import Instance, Job

__all__ = ["Section4Trace", "shadow_properties"]


@dataclass(frozen=True)
class Section4Trace:
    """Worst-case observed values of the §4.1 constants over a run."""

    zeta_min: float  # Property (A): min over samples of W^C_t(t)[j*] / W_t[j*]
    gamma_min: float  # Property (B): min over (t1, t) of V^NC(t1,t) / V^C_t(t1,t)
    psi_min: float  # Lemma 13: min over active jobs of (c^C_t[j] - t)/(t - r[j])
    samples: int

    @property
    def properties_hold(self) -> bool:
        """All three constants strictly positive (the paper's requirement)."""
        return self.zeta_min > 0 and self.gamma_min > 0 and self.psi_min > 0


def _current_instance(run: NCGeneralRun, t: float) -> Instance | None:
    jobs = []
    for job in run.instance:
        if job.release > t:
            continue
        done = run.schedule.processed_volume_until(job.job_id, t)
        if done > 0:
            jobs.append(Job(job.job_id, job.release, done, round_density_down(job.density, run.beta)))
    return Instance(jobs) if jobs else None


def shadow_properties(run: NCGeneralRun, *, samples: int = 24) -> Section4Trace:
    """Measure ζ, γ, ψ over a completed NC-general run.

    ``samples`` times are spread over the run's busy span; γ is additionally
    minimised over a triangular grid of window starts ``t1 < t``.
    """
    end = run.schedule.end_time
    times = np.linspace(end * 0.05, end * 0.98, samples)
    zeta = math.inf
    gamma = math.inf
    psi = math.inf

    for t in times:
        t = float(t)
        j_star = run.schedule.job_at(t)
        if j_star is None:
            # The paper's properties are stated for moments when NC is
            # processing (there is an active job); idle samples would make
            # the window ratios degenerate.
            continue
        inst_t = _current_instance(run, t)
        if inst_t is None:
            continue
        shadow = simulate_clairvoyant(inst_t, run.power, until=t)

        # Property (A): remaining fraction of the current job in the shadow.
        if j_star is not None and j_star in inst_t:
            w_t = inst_t[j_star].weight
            w_shadow = inst_t[j_star].density * shadow.remaining.get(j_star, 0.0)
            if w_t > 1e-12:
                zeta = min(zeta, w_shadow / w_t)

        # Property (B): suffix-window volume domination.
        for frac in (0.0, 0.25, 0.5, 0.75):
            t1 = float(frac * t)
            v_nc = sum(
                run.schedule.processed_volume_until(j.job_id, t)
                - run.schedule.processed_volume_until(j.job_id, t1)
                for j in run.instance
            )
            v_c = sum(
                shadow.schedule.processed_volume_until(j.job_id, t)
                - shadow.schedule.processed_volume_until(j.job_id, t1)
                for j in inst_t
            )
            if v_c > 1e-9:
                gamma = min(gamma, v_nc / v_c)

        # Lemma 13: shadow completion of each active job vs its age.
        # Extend the shadow run to completion to read c^C_t[j].
        full_shadow = simulate_clairvoyant(inst_t, run.power)
        for job in inst_t:
            done_by_nc = run.schedule.processed_volume_until(job.job_id, t)
            true_volume = run.instance[job.job_id].volume
            if done_by_nc >= true_volume * (1 - 1e-9):
                continue  # not active any more
            age = t - job.release
            if age <= 1e-9:
                continue
            c_shadow = full_shadow.completion_time(job.job_id)
            psi = min(psi, (c_shadow - t) / age)

    def clean(x: float) -> float:
        return 0.0 if math.isinf(x) else x

    return Section4Trace(
        zeta_min=clean(zeta), gamma_min=clean(gamma), psi_min=clean(psi), samples=samples
    )
