"""Tests for §6: C-PAR, NC-PAR, Lemmas 19-22, Theorem 17 and the
immediate-dispatch lower bound."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Job, PowerLaw
from repro.core.errors import InvalidInstanceError, ScheduleError
from repro.parallel import (
    ClusterRun,
    adversarial_instance,
    adversarial_ratio,
    least_count,
    remaining_weight_on_machine,
    round_robin,
    simulate_c_par,
    simulate_immediate_dispatch,
    simulate_nc_par,
)

from conftest import uniform_instances


class TestClusterRun:
    def test_rejects_partial_assignment(self, cube, three_jobs):
        with pytest.raises(ScheduleError):
            ClusterRun(
                instance=three_jobs,
                power=cube,
                machines=2,
                assignments={0: [0], 1: [1]},  # job 2 missing
                schedules={},
            )

    def test_machine_of(self, cube, three_jobs):
        run = simulate_c_par(three_jobs, cube, 2)
        for jid in three_jobs.job_ids:
            assert jid in run.assignments[run.machine_of(jid)]


class TestCPar:
    def test_single_machine_reduces_to_c(self, cube, three_jobs):
        from repro.algorithms.clairvoyant import simulate_clairvoyant
        from repro.core.metrics import evaluate

        par = simulate_c_par(three_jobs, cube, 1).report()
        solo = evaluate(simulate_clairvoyant(three_jobs, cube).schedule, three_jobs, cube)
        assert par.fractional_objective == pytest.approx(solo.fractional_objective, rel=1e-9)

    def test_simultaneous_jobs_spread(self, cube):
        inst = Instance([Job(i, i * 1e-6, 1.0) for i in range(4)])
        run = simulate_c_par(inst, cube, 4)
        assert all(len(v) == 1 for v in run.assignments.values())

    def test_least_weight_choice(self, cube):
        # Big job to machine 0, then a small one: machine 1 is empty -> gets it;
        # third job arrives while m0 still loaded -> goes to the less loaded.
        inst = Instance([Job(0, 0.0, 10.0), Job(1, 0.1, 0.1), Job(2, 0.2, 1.0)])
        run = simulate_c_par(inst, cube, 2)
        assert run.machine_of(0) == 0
        assert run.machine_of(1) == 1
        assert run.machine_of(2) == 1  # m1's 0.1 job nearly done vs m0's 10

    def test_remaining_weight_empty_machine(self, cube, three_jobs):
        assert remaining_weight_on_machine([], three_jobs, cube, 1.0) == 0.0

    def test_rejects_zero_machines(self, cube, three_jobs):
        with pytest.raises(InvalidInstanceError):
            simulate_c_par(three_jobs, cube, 0)

    def test_flow_equals_energy_per_cluster(self, cube, three_jobs):
        rep = simulate_c_par(three_jobs, cube, 2).report()
        assert rep.fractional_flow == pytest.approx(rep.energy, rel=1e-9)


class TestNCPar:
    def test_rejects_nonuniform(self, cube, mixed_density_jobs):
        with pytest.raises(InvalidInstanceError):
            simulate_nc_par(mixed_density_jobs, cube, 2)

    def test_single_machine_reduces_to_nc(self, cube, three_jobs):
        from repro.algorithms.nc_uniform import simulate_nc_uniform
        from repro.core.metrics import evaluate

        par = simulate_nc_par(three_jobs, cube, 1).report()
        solo = evaluate(simulate_nc_uniform(three_jobs, cube).schedule, three_jobs, cube)
        assert par.fractional_objective == pytest.approx(solo.fractional_objective, rel=1e-9)

    def test_one_job_at_a_time_per_machine(self, cube):
        inst = Instance([Job(i, 0.01 * i, 1.0) for i in range(6)])
        run = simulate_nc_par(inst, cube, 2)
        for m, sched in run.schedules.items():
            segs = sorted(sched.segments, key=lambda s: s.t0)
            for a, b in zip(segs, segs[1:]):
                assert b.t0 >= a.t1 - 1e-9


class TestLemma20AssignmentEquality:
    @given(uniform_instances(max_jobs=8), st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_assignments_identical(self, inst, k):
        power = PowerLaw(3.0)
        c = simulate_c_par(inst, power, k)
        n = simulate_nc_par(inst, power, k)
        assert c.assignments == n.assignments

    def test_assignments_identical_alpha_two(self, square):
        inst = Instance([Job(i, 0.37 * i, 1.0 + (i % 3)) for i in range(9)])
        c = simulate_c_par(inst, square, 3)
        n = simulate_nc_par(inst, square, 3)
        assert c.assignments == n.assignments


class TestLemmas21And22:
    @given(uniform_instances(max_jobs=8), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_energy_equal_and_flow_ratio(self, inst, k):
        alpha = 3.0
        power = PowerLaw(alpha)
        rc = simulate_c_par(inst, power, k).report()
        rn = simulate_nc_par(inst, power, k).report()
        assert rn.energy == pytest.approx(rc.energy, rel=1e-7)
        assert rn.fractional_flow == pytest.approx(
            rc.fractional_flow / (1 - 1 / alpha), rel=1e-7
        )

    def test_theorem17_objective_relation(self, cube, three_jobs):
        """Lemmas 21+22 give G_nc = (1/2 + (1/2)/(1-1/alpha)) * G_c exactly."""
        rc = simulate_c_par(three_jobs, cube, 2).report()
        rn = simulate_nc_par(three_jobs, cube, 2).report()
        expect = 0.5 * (1 + 1 / (1 - 1 / 3.0)) * rc.fractional_objective
        assert rn.fractional_objective == pytest.approx(expect, rel=1e-9)


class TestDispatchRules:
    def test_round_robin(self):
        assert round_robin(3, [10, 11, 12, 13]) == [0, 1, 2, 0]

    def test_least_count_balances(self):
        assert least_count(2, [0, 1, 2, 3]) == [0, 1, 0, 1]

    def test_immediate_dispatch_partition(self, cube, three_jobs):
        run = simulate_immediate_dispatch(three_jobs, cube, 2, "round_robin")
        assigned = sorted(j for jobs in run.assignments.values() for j in jobs)
        assert assigned == sorted(three_jobs.job_ids)

    def test_per_machine_nc(self, cube, three_jobs):
        run = simulate_immediate_dispatch(three_jobs, cube, 2, "least_count", per_machine="NC")
        assert run.report().energy > 0

    def test_bad_rule_rejected(self, cube, three_jobs):
        with pytest.raises(InvalidInstanceError):
            simulate_immediate_dispatch(three_jobs, cube, 2, lambda k, ids: [99] * len(ids))


class TestLowerBound:
    def test_adversary_targets_most_loaded(self):
        inst, loaded = adversarial_instance(2, [0, 0, 0, 1])
        assert loaded == 0
        heavies = [j for j in inst if j.volume == 1.0]
        assert len(heavies) == 2

    def test_ratio_matches_k_to_beta(self, cube):
        """The measured adversarial ratio tracks k^{1-1/alpha}."""
        for k in (2, 4, 8):
            out = adversarial_ratio(k, cube, "least_count")
            assert out.ratio == pytest.approx(k ** (1 - 1 / 3.0), rel=0.05)

    def test_ratio_grows_with_k(self, cube):
        r2 = adversarial_ratio(2, cube).ratio
        r8 = adversarial_ratio(8, cube).ratio
        assert r8 > 2.0 * r2

    def test_round_robin_equally_vulnerable(self, cube):
        out = adversarial_ratio(4, cube, "round_robin")
        assert out.ratio == pytest.approx(4 ** (2 / 3), rel=0.05)

    def test_heavy_jobs_land_on_loaded_machine(self, cube):
        out = adversarial_ratio(3, cube)
        assert out.heavy_on_loaded == 3

    def test_alpha_dependence(self):
        """Higher alpha -> exponent 1-1/alpha closer to 1 -> worse ratio."""
        r_low = adversarial_ratio(8, PowerLaw(2.0)).ratio
        r_high = adversarial_ratio(8, PowerLaw(4.0)).ratio
        assert r_high > r_low

    def test_integral_objective_variant(self, cube):
        out = adversarial_ratio(4, cube, objective="integral")
        assert out.ratio > 1.5

    def test_rejects_bad_objective(self, cube):
        with pytest.raises(ValueError):
            adversarial_ratio(2, cube, objective="weird")


class TestTheorem17Integral:
    """Theorem 17 also covers the integral objective ('extending our proof
    ... is almost identical to the analysis in Section 3.3')."""

    @given(uniform_instances(max_jobs=8), st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_lemma8_per_cluster(self, inst, k):
        """F_int(NC-PAR) <= (2 - 1/alpha) * F_frac(NC-PAR): Lemma 8 applies
        machine by machine, hence to the sums."""
        alpha = 3.0
        power = PowerLaw(alpha)
        rep = simulate_nc_par(inst, power, k).report()
        assert rep.integral_flow <= (2 - 1 / alpha) * rep.fractional_flow * (1 + 1e-9)

    def test_integral_objective_relation_to_c_par(self, cube, three_jobs):
        """G_int(NC-PAR) <= E + (2-1/alpha) * F_frac = bounded in terms of
        C-PAR's objective via Lemmas 21/22."""
        alpha = 3.0
        rc = simulate_c_par(three_jobs, cube, 2).report()
        rn = simulate_nc_par(three_jobs, cube, 2).report()
        bound = rc.energy + (2 - 1 / alpha) * rc.fractional_flow / (1 - 1 / alpha)
        assert rn.integral_objective <= bound * (1 + 1e-9)
