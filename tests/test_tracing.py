"""Tests for the structured tracing layer (`repro.core.tracing`) and the
trace replay/invariant machinery (`repro.analysis.trace_report`).

The contracts under test:

* recorders — NullRecorder is off and free, MemoryRecorder collects typed
  events, JsonlRecorder round-trips losslessly through `read_jsonl`;
* the metrics substrate — `ShadowCounters` is a view over one
  `MetricsRegistry`, so counter bumps and ad-hoc metrics share storage;
* emission — traced runs of C, NC, NC-general and the engine produce events
  in monotone per-(component, kind) sim-time order (rollback boundaries
  excepted) and tracing does not perturb the simulated trajectory;
* replay — a golden-corpus instance's JSONL trace rebuilds both schedules
  and passes the Lemma 3 energy equality at 1e-9 (the paper's invariant,
  checked *from the trace alone*).
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

import pytest

from repro.algorithms.clairvoyant import simulate_clairvoyant
from repro.algorithms.nc_general import simulate_nc_general
from repro.algorithms.nc_uniform import simulate_nc_uniform
from repro.analysis.trace_report import (
    build_report,
    check_event_order,
    instance_from_meta,
    replay_schedule,
)
from repro.core.job import Instance, Job
from repro.core.metrics import evaluate
from repro.core.power import PowerLaw
from repro.core.shadow import ClairvoyantShadow, ShadowCounters, SimulationContext
from repro.core.tracing import (
    EVENT_KINDS,
    NULL_RECORDER,
    FileSink,
    GzipSink,
    JsonlRecorder,
    MemoryRecorder,
    MetricsRegistry,
    NullRecorder,
    RotatingSink,
    TraceEvent,
    TraceRecorder,
    TraceSink,
    follow_jsonl,
    iter_jsonl,
    iter_trace,
    make_sink,
    read_jsonl,
    rotated_paths,
)
from repro.parallel.nc_par import simulate_nc_par
from repro.workloads import random_instance

CORPUS_PATH = pathlib.Path(__file__).parent / "data" / "golden_corpus.json"

ALPHA = 3.0


def _uniform_instance(n: int = 10, seed: int = 7) -> Instance:
    return random_instance(n, seed=seed, volume="exponential", density="unit")


class TestRecorders:
    def test_null_recorder_is_disabled(self):
        assert NULL_RECORDER.enabled is False
        assert NullRecorder().emit("release", 0.0, "engine", job=1) is None

    def test_recorders_satisfy_protocol(self):
        assert isinstance(NULL_RECORDER, TraceRecorder)
        assert isinstance(MemoryRecorder(), TraceRecorder)

    def test_memory_recorder_collects(self):
        rec = MemoryRecorder()
        rec.emit("release", 1.0, "C", job=0, density=2.0)
        rec.emit("completion", 2.0, "C", job=0)
        assert len(rec) == 2
        assert [e.kind for e in rec] == ["release", "completion"]
        assert rec.events_of("release")[0].payload == {"job": 0, "density": 2.0}
        assert rec.events_of("completion", component="NC") == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            MemoryRecorder().emit("not_a_kind", 0.0, "C")

    def test_wall_time_is_monotone(self):
        rec = MemoryRecorder()
        for k in range(5):
            rec.emit("stall_guard_tick", float(k), "engine", stall=k)
        walls = [e.wall_time for e in rec]
        assert walls == sorted(walls)
        assert walls[0] >= 0.0

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlRecorder(path) as rec:
            rec.emit("release", 0.5, "C", job=3, density=1.0)
            rec.emit("kernel_eval", 0.5, "C", profile="decay", t0=0.5, t1=1.0, job=3)
            assert rec.count == 2
        events = read_jsonl(path)
        assert len(events) == 2
        assert events[0] == TraceEvent(
            kind="release",
            sim_time=0.5,
            wall_time=events[0].wall_time,
            component="C",
            payload={"job": 3, "density": 1.0},
        )
        # Full JSON round trip: to_json -> from_json is the identity.
        for e in events:
            assert TraceEvent.from_json(e.to_json()) == e

    def test_jsonl_emit_after_close_raises(self, tmp_path):
        rec = JsonlRecorder(tmp_path / "t.jsonl")
        rec.close()
        with pytest.raises(ValueError, match="closed"):
            rec.emit("release", 0.0, "C", job=0)

    def test_jsonl_validates_kind(self, tmp_path):
        with JsonlRecorder(tmp_path / "t.jsonl") as rec:
            with pytest.raises(ValueError, match="unknown trace event kind"):
                rec.emit("bogus", 0.0, "C")

    def test_memory_recorder_ring_buffer(self):
        rec = MemoryRecorder(maxlen=3)
        for k in range(5):
            rec.emit("stall_guard_tick", float(k), "engine", stall=k)
        assert len(rec) == 3
        assert [e.sim_time for e in rec] == [2.0, 3.0, 4.0]
        assert rec.dropped == 2
        with pytest.raises(ValueError, match="maxlen"):
            MemoryRecorder(maxlen=0)

    def test_jsonl_closed_on_exception(self, tmp_path):
        """The context manager flushes and closes even when the body raises,
        so everything emitted before the crash is durable on disk."""
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with JsonlRecorder(path) as rec:
                rec.emit("release", 0.0, "C", job=0)
                raise RuntimeError("boom")
        assert len(read_jsonl(path)) == 1

    def test_torn_trailing_line_tolerated(self, tmp_path):
        """A writer killed mid-line leaves a torn tail; readers keep every
        complete event and stop cleanly at the tear."""
        path = tmp_path / "t.jsonl"
        with JsonlRecorder(path) as rec:
            rec.emit("release", 0.0, "C", job=0)
            rec.emit("completion", 1.0, "C", job=0)
        full = path.read_bytes()
        path.write_bytes(full[: len(full) - 20])  # tear the final line
        events = read_jsonl(path)
        assert [e.kind for e in events] == ["release"]

    def test_corrupt_interior_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlRecorder(path) as rec:
            rec.emit("release", 0.0, "C", job=0)
            rec.emit("completion", 1.0, "C", job=0)
        lines = path.read_text().splitlines()
        path.write_text(lines[0][:-10] + "\n" + lines[1] + "\n")
        with pytest.raises(ValueError, match="not a trailing tear"):
            read_jsonl(path)


class TestSinks:
    def _emit_n(self, rec: JsonlRecorder, n: int) -> None:
        for k in range(n):
            rec.emit("stall_guard_tick", float(k), "engine", stall=k)

    def test_sinks_satisfy_protocol(self, tmp_path):
        assert isinstance(FileSink(tmp_path / "a.jsonl"), TraceSink)
        assert isinstance(GzipSink(tmp_path / "b.jsonl.gz"), TraceSink)
        assert isinstance(RotatingSink(tmp_path / "c.jsonl", 10), TraceSink)

    def test_make_sink_specs(self, tmp_path):
        assert isinstance(make_sink(tmp_path / "x", "plain"), FileSink)
        assert isinstance(make_sink(tmp_path / "x", "gzip"), GzipSink)
        rot = make_sink(tmp_path / "x.jsonl", "rotate:50")
        assert isinstance(rot, RotatingSink) and rot.max_events == 50
        with pytest.raises(ValueError, match="sink spec"):
            make_sink(tmp_path / "x", "tape")
        with pytest.raises(ValueError, match="max_events"):
            make_sink(tmp_path / "x", "rotate:0")
        with pytest.raises(ValueError, match="rotate"):
            make_sink(tmp_path / "x", "rotate:many")

    def test_gzip_sink_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        with JsonlRecorder(path, sink="gzip") as rec:
            self._emit_n(rec, 25)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        events = read_jsonl(path)  # gzip autodetected by magic bytes
        assert len(events) == 25

    def test_rotating_sink_segments_self_contained(self, tmp_path):
        """Each segment replays the run_meta header, so any single segment is
        independently interpretable; iter_trace strips the replayed headers
        and reconstructs exactly the original stream."""
        path = tmp_path / "t.jsonl"
        with JsonlRecorder(path, sink="rotate:10") as rec:
            rec.emit("run_meta", 0.0, "harness", alpha=3.0)
            self._emit_n(rec, 25)
        segments = rotated_paths(path)
        assert len(segments) == 3
        assert [p.name for p in segments] == [
            "t.00000.jsonl", "t.00001.jsonl", "t.00002.jsonl"
        ]
        assert rec.paths == tuple(segments)
        # Later segments open with a header copy flagged segment_header.
        seg1 = read_jsonl(segments[1])
        assert seg1[0].kind == "run_meta"
        assert seg1[0].payload.get("segment_header") is True
        merged = list(iter_trace(segments))
        assert len(merged) == 26
        assert sum(1 for e in merged if e.kind == "run_meta") == 1

    def test_rotating_sink_without_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlRecorder(path, sink="rotate:4") as rec:
            self._emit_n(rec, 9)
        merged = list(iter_trace(rotated_paths(path)))
        assert [e.payload["stall"] for e in merged] == list(range(9))

    def test_truncated_gzip_stops_cleanly(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        with JsonlRecorder(path, sink="gzip") as rec:
            self._emit_n(rec, 200)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 8])  # chop the gzip trailer
        events = read_jsonl(path)  # no exception; prefix recovered
        assert all(e.kind == "stall_guard_tick" for e in events)

    def test_flush_makes_events_visible_midstream(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rec = JsonlRecorder(path)
        try:
            self._emit_n(rec, 3)
            rec.flush()
            assert len(read_jsonl(path)) == 3
        finally:
            rec.close()

    def test_follow_jsonl_tails_a_finished_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlRecorder(path) as rec:
            self._emit_n(rec, 12)
        events = list(follow_jsonl(path, poll_interval=0.01, idle_timeout=0.05))
        assert len(events) == 12

    def test_follow_jsonl_waits_for_file_to_appear(self, tmp_path):
        path = tmp_path / "late.jsonl"

        def write_late():
            time.sleep(0.05)
            with JsonlRecorder(path) as rec:
                self._emit_n(rec, 7)

        writer = threading.Thread(target=write_late)
        writer.start()
        try:
            events = list(follow_jsonl(path, poll_interval=0.01, idle_timeout=1.0))
        finally:
            writer.join()
        assert len(events) == 7

    def test_follow_jsonl_missing_file_times_out_empty(self, tmp_path):
        events = list(
            follow_jsonl(tmp_path / "never.jsonl", poll_interval=0.01, idle_timeout=0.05)
        )
        assert events == []

    def test_follow_jsonl_stop_callback(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlRecorder(path) as rec:
            self._emit_n(rec, 5)
        seen: list[TraceEvent] = []
        for e in follow_jsonl(
            path, poll_interval=0.01, idle_timeout=5.0, stop=lambda: len(seen) >= 5
        ):
            seen.append(e)
        assert len(seen) == 5


class TestMetricsRegistry:
    def test_increment_and_get(self):
        reg = MetricsRegistry()
        reg.increment("hits")
        reg.increment("hits", 4)
        assert reg.get("hits") == 5
        assert reg.get("misses") == 0
        reg.set("ratio", 0.5)
        assert reg.as_dict() == {"hits": 5, "ratio": 0.5}

    def test_prefix_filter(self):
        reg = MetricsRegistry({"shadow.events": 2, "engine.steps": 7})
        assert reg.as_dict("shadow.") == {"shadow.events": 2}

    def test_counters_are_a_registry_view(self):
        reg = MetricsRegistry()
        counters = ShadowCounters(reg)
        counters.events += 3
        counters.rebuilds = 2
        assert reg.values["events"] == 3
        assert reg.values["rebuilds"] == 2
        # Writes through the registry are visible through the view.
        reg.values["queries"] = 11
        assert counters.queries == 11
        assert counters.as_dict()["queries"] == 11

    def test_counters_share_context_registry(self):
        context = SimulationContext(PowerLaw(ALPHA))
        assert context.metrics is context.counters.registry
        context.counters.inserts += 1
        assert context.metrics.get("inserts") == 1

    def test_counters_equality_unchanged(self):
        a, b = ShadowCounters(), ShadowCounters()
        assert a == b
        a.queries += 1
        assert a != b


class TestEmission:
    def test_context_defaults_to_null_recorder(self):
        context = SimulationContext(PowerLaw(ALPHA))
        assert context.recorder is NULL_RECORDER
        # The shadow's hoisted guard must be None -> zero per-event work.
        shadow = context.shadow()
        assert shadow._rec is None

    def test_traced_run_emits_known_kinds_only(self):
        rec = MemoryRecorder()
        context = SimulationContext(PowerLaw(ALPHA), recorder=rec)
        inst = _uniform_instance()
        simulate_clairvoyant(inst, PowerLaw(ALPHA), context=context)
        simulate_nc_uniform(inst, PowerLaw(ALPHA), context=context)
        assert len(rec) > 0
        assert {e.kind for e in rec} <= EVENT_KINDS

    def test_monotone_sim_time_per_component(self):
        rec = MemoryRecorder()
        context = SimulationContext(PowerLaw(ALPHA), recorder=rec)
        inst = _uniform_instance(n=14, seed=21)
        simulate_clairvoyant(inst, PowerLaw(ALPHA), context=context)
        simulate_nc_uniform(inst, PowerLaw(ALPHA), context=context)
        assert check_event_order(rec.events) == []

    def test_releases_and_completions_counted(self):
        rec = MemoryRecorder()
        context = SimulationContext(PowerLaw(ALPHA), recorder=rec)
        inst = _uniform_instance(n=9, seed=5)
        simulate_clairvoyant(inst, PowerLaw(ALPHA), context=context)
        assert len(rec.events_of("release", component="C")) == len(inst)
        assert len(rec.events_of("completion", component="C")) == len(inst)

    def test_tracing_does_not_perturb_the_run(self):
        inst = _uniform_instance(n=12, seed=9)
        power = PowerLaw(ALPHA)
        plain = simulate_nc_uniform(inst, power)
        traced_ctx = SimulationContext(power, recorder=MemoryRecorder())
        traced = simulate_nc_uniform(inst, power, context=traced_ctx)
        assert plain.offsets == traced.offsets
        assert plain.starts == traced.starts

    def test_nc_general_emits_shadow_lifecycle_events(self):
        rec = MemoryRecorder()
        power = PowerLaw(ALPHA)
        context = SimulationContext(power, recorder=rec)
        inst = random_instance(4, seed=3, volume="uniform", density="loguniform")
        simulate_nc_general(inst, power, max_step=5e-2, context=context)
        kinds = {e.kind for e in rec}
        assert "shadow_checkpoint" in kinds
        assert "shadow_rollback" in kinds
        assert "shadow_rebuild" in kinds
        assert "density_class_switch" in kinds
        assert "speed_change" in kinds
        # Rollback boundaries excepted, the stream is still monotone.
        assert check_event_order(rec.events) == []
        # The engine and the epoch shadows both report through one channel.
        comps = {e.component for e in rec}
        assert "engine" in comps and "nc_general.shadow" in comps

    def test_nc_par_emits_per_machine_components(self):
        rec = MemoryRecorder()
        power = PowerLaw(ALPHA)
        context = SimulationContext(power, recorder=rec)
        inst = _uniform_instance(n=8, seed=13)
        simulate_nc_par(inst, power, machines=2, context=context)
        comps = {e.component for e in rec}
        assert "nc_par.m0" in comps and "nc_par.m1" in comps
        assert check_event_order(rec.events) == []

    def test_shadow_checkpoint_rollback_events(self):
        rec = MemoryRecorder()
        shadow = ClairvoyantShadow(ALPHA, recorder=rec, component="S")
        shadow.insert_job(0, 0.0, 1.0, 2.0)
        shadow.advance(0.5)
        ckpt = shadow.checkpoint()
        shadow.advance(1.0)
        shadow.rollback(ckpt)
        kinds = [e.kind for e in rec]
        assert "shadow_checkpoint" in kinds and "shadow_rollback" in kinds
        rb = rec.events_of("shadow_rollback", component="S")[0]
        assert rb.sim_time == ckpt.clock
        assert rb.payload["from_time"] == pytest.approx(1.0)


class TestReplay:
    def test_replayed_schedule_matches_live_energy(self):
        rec = MemoryRecorder()
        power = PowerLaw(ALPHA)
        context = SimulationContext(power, recorder=rec)
        inst = _uniform_instance(n=11, seed=17)
        live = simulate_clairvoyant(inst, power, context=context)
        replayed = replay_schedule(rec.events, "C")
        assert replayed is not None
        live_rep = evaluate(live.schedule, inst, power)
        replay_rep = evaluate(replayed, inst, power)
        assert replay_rep.energy == pytest.approx(live_rep.energy, rel=1e-12)

    def test_golden_corpus_jsonl_lemma3(self, tmp_path):
        """The acceptance path: golden instance -> JsonlRecorder -> read back
        -> trace_report with Lemma 3 (and 4) passing at 1e-9."""
        corpus = json.loads(CORPUS_PATH.read_text())
        key = sorted(k for k in corpus if k.startswith("nc_uniform/"))[0]
        entry = corpus[key]
        inst = Instance(
            [Job(int(j), r, v, d) for j, r, v, d in entry["instance"]]
        )
        power = PowerLaw(entry["alpha"])
        path = tmp_path / "golden.jsonl"
        with JsonlRecorder(path) as rec:
            context = SimulationContext(power, recorder=rec)
            context.emit(
                "run_meta",
                0.0,
                "harness",
                alpha=entry["alpha"],
                instance=[[j.job_id, j.release, j.volume, j.density] for j in inst],
            )
            simulate_clairvoyant(inst, power, context=context)
            simulate_nc_uniform(inst, power, context=context)
        events = read_jsonl(path)
        meta = instance_from_meta(events)
        assert meta is not None
        report = build_report(events)
        assert report.order_violations == []
        lemma3 = [c for c in report.checks if c.name.startswith("Lemma 3")]
        lemma4 = [c for c in report.checks if c.name.startswith("Lemma 4")]
        assert lemma3 and lemma3[0].holds, lemma3
        assert lemma4 and lemma4[0].holds, lemma4
        # And the replayed energy agrees with the recorded golden value.
        assert lemma3[0].rhs == pytest.approx(entry["energy"], rel=1e-9)

    def test_order_checker_flags_regressions(self):
        rec = MemoryRecorder()
        rec.emit("release", 2.0, "C", job=0)
        rec.emit("release", 1.0, "C", job=1)
        violations = check_event_order(rec.events)
        assert len(violations) == 1 and "C/release" in violations[0]

    def test_order_checker_allows_rollback_rewind(self):
        rec = MemoryRecorder()
        rec.emit("kernel_eval", 5.0, "S", profile="decay")
        rec.emit("shadow_rollback", 1.0, "S", from_time=5.0)
        rec.emit("kernel_eval", 1.5, "S", profile="decay")
        assert check_event_order(rec.events) == []
