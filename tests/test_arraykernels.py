"""Differential suite for the array core (:mod:`repro.core.arraykernels`).

Three layers of agreement are pinned here:

* **Per-kernel** — every vectorized kernel against its scalar twin on a
  boundary-heavy grid (``w -> 0``, ``rho -> 0``, ``alpha`` in {2, 2.5, 3}).
  The elementary kernels are pure float expressions shared with the scalar
  forms and must agree to a few ulp; the flow integrals regroup terms and
  get the documented 1e-12 band.
* **Whole-run** — the fast shadow event loop against the legacy scalar loop
  on random instances (completion sequence identical, times within 1e-12),
  and the golden corpus replayed under both backends at the corpus's 1e-9
  acceptance bar.
* **Registry** — backend resolution, the ``REPRO_BACKEND`` flag, and the
  numba-missing degradation contract.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import arraykernels as ak
from repro.core import kernels as k
from repro.core.arraykernels import (
    BACKEND_ENV_VAR,
    ArrayPopulation,
    available_backends,
    backend_payload,
    get_backend,
    numba_available,
    resolve_backend,
)
from repro.core.errors import KernelDomainError
from repro.core.job import Instance, Job
from repro.core.shadow import ClairvoyantShadow

ALPHAS = (2.0, 2.5, 3.0)
#: boundary-heavy 1-D probe values for weight-like and density arguments.
WEIGHTS = (0.0, 1e-300, 1e-15, 1e-9, 0.5, 1.0, 7.25, 1e6)
RHOS = (1e-12, 1e-6, 0.25, 1.0, 42.0)
TAUS = (0.0, 1e-12, 0.1, 3.0, 1e4)
#: shared-float-expression kernels: agreement to a few ulp.
TIGHT = 5e-15
#: regrouped algebra (flow integrals): the documented band.
BAND = 1e-12
#: conditioned probe grid for the flow integrals: the 1e-12 band is claimed
#: where the segment changes the weight by at least ~1% (see
#: :func:`_flow_conditioned`); below that *both* formulations cancel
#: catastrophically and neither result carries the claimed digits.
FLOW_WEIGHTS = (0.0, 1e-15, 1e-9, 0.5, 1.0, 7.25, 1e3)
FLOW_RHOS = (1e-6, 0.25, 1.0, 42.0)
FLOW_TAUS = (0.0, 1e-12, 0.1, 3.0, 100.0)


def _flow_conditioned(w: float, rho: float, tau: float, alpha: float) -> bool:
    """Whether the flow integral over ``tau`` is well-conditioned: the
    relative change of ``w**beta`` must clear ~1% (tau == 0 is exact by
    the kernels' zero-length guard)."""
    if tau == 0.0 or w == 0.0:
        return True
    beta = 1.0 - 1.0 / alpha
    return rho * beta * tau >= 1e-2 * w**beta


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(1.0, abs(a), abs(b))


def _grid2():
    return [(w, rho) for w in WEIGHTS for rho in RHOS]


def _grid_pair():
    return [(hi, lo) for hi in WEIGHTS for lo in WEIGHTS if lo <= hi]


class TestPerKernelDifferential:
    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_speed_at(self, alpha):
        arr = ak.speed_at(np.array(WEIGHTS), alpha)
        for i, w in enumerate(WEIGHTS):
            assert _rel(float(arr[i]), k.speed_at(w, alpha)) <= TIGHT

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_decay_weight_after(self, alpha):
        for w, rho in _grid2():
            for tau in TAUS:
                got = float(ak.decay_weight_after(w, rho, tau, alpha))
                want = k.decay_weight_after(w, rho, tau, alpha)
                assert _rel(got, want) <= TIGHT, (w, rho, tau)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_decay_time_between(self, alpha):
        for w0, w1 in _grid_pair():
            for rho in RHOS:
                got = float(ak.decay_time_between(w0, w1, rho, alpha))
                want = k.decay_time_between(w0, w1, rho, alpha)
                assert _rel(got, want) <= TIGHT, (w0, w1, rho)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_decay_time_to_zero(self, alpha):
        for w, rho in _grid2():
            got = float(ak.decay_time_to_zero(w, rho, alpha))
            want = k.decay_time_to_zero(w, rho, alpha)
            assert _rel(got, want) <= TIGHT, (w, rho)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_decay_energy_between(self, alpha):
        for w0, w1 in _grid_pair():
            for rho in RHOS:
                got = float(ak.decay_energy_between(w0, w1, rho, alpha))
                want = k.decay_energy_between(w0, w1, rho, alpha)
                assert _rel(got, want) <= TIGHT, (w0, w1, rho)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_decay_flow_integral(self, alpha):
        for w in FLOW_WEIGHTS:
            for rho in FLOW_RHOS:
                for tau in FLOW_TAUS:
                    if not _flow_conditioned(w, rho, tau, alpha):
                        continue
                    got = float(ak.decay_flow_integral(w, rho, tau, alpha))
                    want = k.decay_flow_integral(w, rho, tau, alpha)
                    assert _rel(got, want) <= BAND, (w, rho, tau)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_growth_weight_after(self, alpha):
        for u, rho in _grid2():
            for tau in TAUS:
                got = float(ak.growth_weight_after(u, rho, tau, alpha))
                want = k.growth_weight_after(u, rho, tau, alpha)
                assert _rel(got, want) <= TIGHT, (u, rho, tau)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_growth_time_between(self, alpha):
        for u1, u0 in _grid_pair():
            for rho in RHOS:
                got = float(ak.growth_time_between(u0, u1, rho, alpha))
                want = k.growth_time_between(u0, u1, rho, alpha)
                assert _rel(got, want) <= TIGHT, (u0, u1, rho)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_growth_energy_between(self, alpha):
        for u1, u0 in _grid_pair():
            for rho in RHOS:
                got = float(ak.growth_energy_between(u0, u1, rho, alpha))
                want = k.growth_energy_between(u0, u1, rho, alpha)
                assert _rel(got, want) <= TIGHT, (u0, u1, rho)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_growth_flow_integral(self, alpha):
        for u in FLOW_WEIGHTS:
            for rho in FLOW_RHOS:
                for tau in FLOW_TAUS:
                    if not _flow_conditioned(u, rho, tau, alpha):
                        continue
                    got = float(ak.growth_flow_integral(u, rho, tau, alpha))
                    want = k.growth_flow_integral(u, rho, tau, alpha)
                    assert _rel(got, want) <= BAND, (u, rho, tau)

    @pytest.mark.parametrize("alpha", ALPHAS)
    def test_beta_of(self, alpha):
        assert float(ak.beta_of(alpha)) == k.beta_of(alpha)

    def test_broadcasting_matches_elementwise(self):
        w = np.array(WEIGHTS)[:, None]
        rho = np.array(RHOS)[None, :]
        out = ak.decay_weight_after(w, rho, 0.25, 3.0)
        assert out.shape == (len(WEIGHTS), len(RHOS))
        # numpy may route large arrays through SIMD transcendental loops
        # whose last ulp differs from the scalar libm path, so broadcast
        # and 0-d evaluation agree to a few ulp, not bit-for-bit.
        for i, wi in enumerate(WEIGHTS):
            for j, rj in enumerate(RHOS):
                single = float(np.asarray(ak.decay_weight_after(wi, rj, 0.25, 3.0)))
                assert _rel(float(out[i, j]), single) <= TIGHT

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_backends_agree_on_grid(self, backend_name):
        """Every registered backend within the band of the scalar twins."""
        backend = get_backend(backend_name)
        fn = backend.kernel("decay_weight_after")
        for w, rho in _grid2():
            got = float(np.asarray(fn(w, rho, 0.5, 3.0)))
            want = k.decay_weight_after(w, rho, 0.5, 3.0)
            assert _rel(got, want) <= BAND, (backend_name, w, rho)


class TestDomainErrors:
    def test_scalar_kernel_context(self):
        with pytest.raises(KernelDomainError) as exc:
            k.decay_weight_after(-1.0, 2.0, 0.5, 3.0)
        assert exc.value.context == {"x": -1.0, "rho": 2.0, "t": 0.5}

    def test_scalar_kernel_is_value_error(self):
        with pytest.raises(ValueError):
            k.decay_time_to_zero(1.0, -2.0, 3.0)

    def test_array_kernel_context_first_offender(self):
        x = np.array([1.0, -3.0, -7.0])
        with pytest.raises(KernelDomainError) as exc:
            ak.decay_weight_after(x, 1.0, 0.0, 3.0)
        assert exc.value.context["x"] == -3.0
        assert exc.value.context["rho"] == 1.0

    def test_array_kernel_nan_rejected(self):
        with pytest.raises(KernelDomainError):
            ak.growth_weight_after(np.array([0.0, math.nan]), 1.0, 1.0, 3.0)

    def test_bad_alpha_rejected(self):
        with pytest.raises(KernelDomainError):
            ak.speed_at(1.0, 1.0)
        with pytest.raises(KernelDomainError):
            k.speed_at(1.0, 0.5)

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_every_backend_checks_domain(self, backend_name):
        fn = get_backend(backend_name).kernel("decay_time_to_zero")
        with pytest.raises(KernelDomainError):
            fn(-1.0, 1.0, 3.0)


def _random_rows(n: int, seed: int, *, front: bool) -> list[tuple[int, float, float, float]]:
    rng = np.random.default_rng(seed)
    vols = rng.exponential(1.0, n) + 1e-3
    dens = 10.0 ** rng.uniform(-1.0, 1.0, n)
    rels = np.zeros(n) if front else np.sort(rng.uniform(0.0, 5.0, n))
    return [(i, float(rels[i]), float(dens[i]), float(vols[i])) for i in range(n)]


def _full_run(backend: str, rows, alpha: float = 3.0):
    """Completion events ``(t, job)`` plus final clock under one backend."""
    completions: list[tuple[float, int]] = []
    segments: list[tuple[float, float, int]] = []

    def record(kind: str, t0: float, t1: float, jid: int, w0: float) -> None:
        segments.append((t0, t1, jid))

    shadow = ClairvoyantShadow(alpha, record=record, backend=backend)
    for jid, rel, rho, vol in rows:
        shadow.insert_job(jid, rel, rho, vol)
    shadow.advance(math.inf)
    shadow.materialize()
    for t0, t1, jid in segments:
        completions.append((t1, jid))
    return shadow.clock, segments


class TestShadowFullRunDifferential:
    @pytest.mark.parametrize("front", [True, False])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_fast_matches_scalar(self, front, seed):
        rows = _random_rows(200, seed, front=front)
        clock_f, seg_f = _full_run("numpy", rows)
        clock_s, seg_s = _full_run("scalar", rows)
        assert _rel(clock_f, clock_s) <= BAND
        assert len(seg_f) == len(seg_s)
        for (a0, a1, aj), (b0, b1, bj) in zip(seg_f, seg_s):
            assert aj == bj, "event sequence diverged between backends"
            assert _rel(a0, b0) <= BAND and _rel(a1, b1) <= BAND

    def test_single_job_tail_is_bit_identical(self):
        """The busy-period tail (one job left) re-derives the accumulator
        exactly, so final completion times match the scalar loop bit for
        bit — finite-difference consumers rely on this."""
        rows = [(1, 0.0, 1.0, 1.0), (2, 0.2, 1.0, 2.0 + 1e-7)]
        clock_f, _ = _full_run("numpy", rows)
        clock_s, _ = _full_run("scalar", rows)
        assert clock_f == clock_s


class TestGoldenCorpusUnderBackends:
    """The golden corpus must hold under *both* shipped backends.

    The default-backend run is ``tests/test_golden_differential.py``; this
    re-runs a corpus entry per family with ``REPRO_BACKEND=scalar`` to prove
    the fallback path clears the same 1e-9 bar.
    """

    @pytest.fixture()
    def corpus(self):
        import json
        import pathlib

        return json.loads(
            (pathlib.Path(__file__).parent / "data" / "golden_corpus.json").read_text()
        )

    @pytest.mark.parametrize("prefix", ["nc_uniform/", "nc_general/"])
    def test_scalar_backend_matches_golden(self, corpus, prefix, monkeypatch):
        from repro.algorithms.nc_general import simulate_nc_general
        from repro.algorithms.nc_uniform import simulate_nc_uniform
        from repro.core.power import PowerLaw

        monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
        key = sorted(x for x in corpus if x.startswith(prefix))[0]
        entry = corpus[key]
        inst = Instance(
            [Job(int(j), r, v, d) for j, r, v, d in entry["instance"]]
        )
        power = PowerLaw(entry["alpha"])
        if prefix == "nc_uniform/":
            run = simulate_nc_uniform(inst, power)
        else:
            run = simulate_nc_general(
                inst,
                power,
                eta=entry["eta"],
                beta=entry["beta"],
                epsilon=entry["epsilon"],
                max_step=entry["max_step"],
            )
        for jid_str, completion in entry["completions"].items():
            got = run.completion_time(int(jid_str))
            assert _rel(got, completion) <= 1e-9, f"job {jid_str} under scalar backend"


class TestArrayPopulation:
    def test_append_grow_and_views(self):
        pop = ArrayPopulation(capacity=2)
        for i in range(10):
            pop.append(i, 0.5 * i, 1.0 + i, 0.0)
        assert len(pop) == 10
        assert pop.slot_of(7) == 7
        assert pop.ids().tolist() == list(range(10))
        assert pop.releases()[3] == 1.5
        assert pop.densities()[9] == 10.0

    def test_from_jobs_and_weights(self):
        jobs = [Job(1, 0.0, 2.0, 3.0), Job(2, 1.0, 4.0, 0.5)]
        pop = ArrayPopulation.from_jobs(jobs)
        np.testing.assert_allclose(pop.weights(), [6.0, 2.0])
        assert pop.total_weight() == pytest.approx(8.0, rel=1e-15)

    def test_volume_updates_flow_into_weights(self):
        jobs = [Job(1, 0.0, 2.0, 3.0)]
        pop = ArrayPopulation.from_jobs(jobs)
        pop.volume[pop.slot_of(1)] = 1.5
        # weights() reads remaining volume = true - processed mirrors at the
        # consumer; the population itself just exposes the arrays.
        assert float(pop.volume[0]) == 1.5

    def test_hdf_order_matches_scalar_key(self):
        jobs = [Job(1, 0.0, 1.0, 2.0), Job(2, 0.0, 1.0, 5.0), Job(3, 1.0, 1.0, 5.0)]
        pop = ArrayPopulation.from_jobs(jobs)
        order = [int(pop.ids()[i]) for i in pop.hdf_order()]
        assert order == [2, 3, 1]  # highest density first, FIFO ties


class TestBackendRegistry:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert get_backend().name == "numpy"

    def test_env_flag_selects_scalar(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "scalar")
        backend = get_backend()
        assert backend.name == "scalar"
        assert backend.vector_width == 1

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            get_backend("cuda")

    def test_numba_request_degrades_when_missing(self):
        backend = get_backend("numba")
        if numba_available():
            assert backend.name == "numba" and backend.uses_numba
        else:
            assert backend.name == "numpy" and not backend.uses_numba

    def test_resolve_backend_passthrough(self):
        b = get_backend("scalar")
        assert resolve_backend(b) is b
        assert resolve_backend("numpy").name == "numpy"

    def test_payload_shape(self):
        payload = backend_payload(get_backend("numpy"))
        assert payload["backend"] == "numpy"
        assert set(payload) == {"backend", "vector_width", "uses_numba", "numba_available"}
        assert payload["numba_available"] == numba_available()

    def test_shadow_accepts_backend_objects_and_names(self):
        for spec in ("scalar", "numpy", get_backend("numpy")):
            shadow = ClairvoyantShadow(3.0, backend=spec)
            shadow.insert_job(1, 0.0, 1.0, 1.0)
            shadow.advance(math.inf)
            assert shadow.clock == pytest.approx(1.5, rel=1e-12)
