"""Preemption-interval structure of Algorithm C (Figure 3, §4.1).

While a job ``j*`` waits in Algorithm C, the interval ``[r[j*], c[j*]]``
alternates between stretches where ``j*`` itself runs and *preemption
intervals* where strictly higher-density jobs run.  The §4 amortised analysis
indexes these intervals — start time ``R̂_i``, preempting volume ``V̂_i``, and
the remaining weight ``W̄_i`` just before the interval — and Figure 3 draws
them.  This module extracts exactly that structure from an exact run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.clairvoyant import ClairvoyantRun

__all__ = ["PreemptionInterval", "preemption_intervals"]

_MERGE_TOL = 1e-9


@dataclass(frozen=True)
class PreemptionInterval:
    """One maximal stretch of higher-density processing inside ``j*``'s span."""

    index: int  # 1-based, chronological (the paper's i)
    start: float  # R̂_i
    end: float
    volume: float  # V̂_i: total volume of preempting jobs processed inside
    weight_before: float  # W̄_i: remaining system weight at R̂_i (left limit)
    preempting_jobs: tuple[int, ...]


def preemption_intervals(run: ClairvoyantRun, job_id: int) -> list[PreemptionInterval]:
    """The preemption intervals of ``job_id`` in a completed Algorithm C run."""
    job = run.instance[job_id]
    release = job.release
    completion = run.completion_time(job_id)

    raw: list[tuple[float, float, float, set[int]]] = []  # (t0, t1, volume, jobs)
    for seg in run.schedule:
        if seg.t1 <= release or seg.t0 >= completion:
            continue
        if seg.job_id is None or seg.job_id == job_id:
            continue
        other = run.instance[seg.job_id]
        if other.density <= job.density:
            # HDF ties broken FIFO can interleave equal densities; the paper's
            # preemption intervals are *strictly* higher density.
            continue
        t0, t1 = max(seg.t0, release), min(seg.t1, completion)
        vol = seg.volume_until(t1 - seg.t0) - seg.volume_until(t0 - seg.t0)
        if raw and t0 - raw[-1][1] <= _MERGE_TOL * max(1.0, t0):
            p0, _, pv, pj = raw[-1]
            raw[-1] = (p0, t1, pv + vol, pj | {seg.job_id})
        else:
            raw.append((t0, t1, vol, {seg.job_id}))

    out = []
    for i, (t0, t1, vol, jobs) in enumerate(raw, start=1):
        w_bar = run.remaining_weight_at(t0, include_release_at_t=False)
        out.append(
            PreemptionInterval(
                index=i,
                start=t0,
                end=t1,
                volume=vol,
                weight_before=w_bar,
                preempting_jobs=tuple(sorted(jobs)),
            )
        )
    return out
