"""Structured tracing and metrics for the engine + shadow stack.

The speed rules of the paper are *state-coupled dynamics*: Algorithm C's
remaining weight drives NC-general's speed, NC-uniform's offsets are frozen
reads of a shadow C run, and one mis-ordered event silently changes every
number downstream.  The final :class:`~repro.core.engine.EngineResult` cannot
answer "which kernel fired at t=3.7, and why did NC diverge from C there" —
this module can.  It provides:

* :class:`TraceEvent` — one typed, timestamped record.  Every event carries
  the *simulation* time it describes, the *wall-clock* time it was emitted
  (relative to the recorder's creation, so per-phase wall-time breakdowns
  need no epoch bookkeeping), the emitting ``component`` (``"engine"``,
  ``"C"``, ``"NC"``, ``"shadow"``, ``"nc_general"``, ...) and a ``kind`` from
  :data:`EVENT_KINDS` with a kind-specific payload.
* :class:`TraceRecorder` — the protocol consumers emit through, with three
  implementations: :class:`NullRecorder` (the default; tracing off),
  :class:`MemoryRecorder` (in-process list, optionally a bounded ring
  buffer) and :class:`JsonlRecorder` (one JSON object per line, streamed to
  a pluggable :class:`TraceSink`).
* :class:`TraceSink` — where serialized events land.  :class:`FileSink`
  writes one plain JSONL file, :class:`GzipSink` a gzip-compressed one, and
  :class:`RotatingSink` a sequence of bounded segments.  Rotated segments
  are **self-contained**: the most recent ``run_meta`` header is replayed at
  the top of every new segment (flagged ``segment_header`` in its payload),
  so any single segment can be analyzed without its siblings, and
  :func:`iter_trace` reconstructs the original stream by skipping the
  replayed headers.
* :class:`MetricsRegistry` — a named-counter store.
  :class:`~repro.core.shadow.ShadowCounters` is a *view* over one of these,
  so ad-hoc counter ints and trace events share a single metrics substrate.

Durability contract
-------------------

``JsonlRecorder`` flushes and closes its sink on ``close()`` and on every
exit from its context manager — including exception exits — so a run that
dies mid-simulation leaves every fully emitted event on disk.  A process
killed outright (SIGKILL mid-shard) can still tear the *final* line; the
readers (:func:`iter_jsonl`, :func:`read_jsonl`, :func:`follow_jsonl`)
therefore tolerate one trailing partial line (and a truncated gzip stream),
yielding every complete event and dropping the torn tail — a truncated
trace is parseable, never poison.

Zero-overhead-when-off contract
-------------------------------

Hot loops must hoist the recorder once and guard every emission::

    rec = context.recorder
    rec = rec if rec.enabled else None
    ...
    if rec is not None:
        rec.emit("kernel_eval", t, "shadow", profile="decay", ...)

:class:`NullRecorder` advertises ``enabled = False``, so a run with tracing
off pays exactly one attribute read at setup — no event objects, no payload
dicts, no wall-clock calls.  ``benchmarks/bench_tracing_overhead.py`` holds
this to within a few percent of the untraced baseline.

Ordering contract
-----------------

Within one ``(component, kind)`` stream, events are emitted in nondecreasing
``sim_time`` order — except across a ``shadow_rollback`` / ``shadow_rebuild``
/ ``retry`` boundary, which by construction rewinds the emitting component's
clock (the whole point of those events is to mark exactly where time was
rewound; ``retry`` is the supervisor restarting a failed attempt from a
checkpoint).  ``tests/test_tracing.py`` enforces this.
"""

from __future__ import annotations

import gzip
import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    Protocol,
    Sequence,
    TextIO,
    runtime_checkable,
)

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "TraceRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "MemoryRecorder",
    "JsonlRecorder",
    "TraceSink",
    "FileSink",
    "GzipSink",
    "RotatingSink",
    "make_sink",
    "rotated_paths",
    "MetricsRegistry",
    "read_jsonl",
    "iter_jsonl",
    "iter_trace",
    "follow_jsonl",
]

#: The closed set of event kinds.  ``run_meta`` is the self-description header
#: a harness writes before a traced run (instance, alpha, algorithm) so a
#: JSONL trace is replayable without out-of-band context, and
#: ``backend_selected`` records which kernel backend (scalar / numpy / numba;
#: see :mod:`repro.core.arraykernels`) produced the run, with its vector
#: width and numba availability.  ``fault_injected``
#: marks every firing of a :mod:`repro.faults` injector, and
#: ``guard_violation`` / ``retry`` / ``recovery`` / ``degraded_mode`` narrate
#: the supervisor's response (:mod:`repro.runtime.supervisor`).
#:
#: The shard lifecycle kinds narrate the sharded parallel-machine layer
#: (:mod:`repro.runtime.pool`, :mod:`repro.parallel.shard`): a
#: ``shard_dispatch`` per shard handed to a worker, ``worker_heartbeat``
#: liveness ticks, ``worker_lost`` when a worker dies or times out,
#: ``shard_redispatch`` when its shard is retried elsewhere,
#: ``pool_degraded`` when the pool falls back to the serial path, and
#: ``shard_checkpoint`` for durable per-shard snapshot saves/loads.
#: ``run_timeout`` marks a chaos-campaign run cut off by its wall-clock
#: budget (:mod:`repro.runtime.chaos`).
#:
#: The service kinds narrate :mod:`repro.service` sessions: one ``arrival``
#: per job streamed into a live session and a final ``session_close`` when
#: the session's trace sink is flushed (DELETE or service shutdown).
EVENT_KINDS = frozenset(
    {
        "run_meta",
        "backend_selected",
        "release",
        "completion",
        "speed_change",
        "kernel_eval",
        "shadow_checkpoint",
        "shadow_rollback",
        "shadow_rebuild",
        "density_class_switch",
        "stall_guard_tick",
        "fault_injected",
        "guard_violation",
        "retry",
        "recovery",
        "degraded_mode",
        "shard_dispatch",
        "worker_heartbeat",
        "worker_lost",
        "shard_redispatch",
        "pool_degraded",
        "shard_checkpoint",
        "run_timeout",
        "arrival",
        "session_close",
        "session_evicted",
    }
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record.

    ``sim_time`` is the simulation clock the event describes; ``wall_time``
    is seconds since the recorder was created (monotone within a trace);
    ``component`` names the emitter; ``payload`` is kind-specific data, JSON
    representable by construction.
    """

    kind: str
    sim_time: float
    wall_time: float
    component: str
    payload: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "sim_time": self.sim_time,
                "wall_time": self.wall_time,
                "component": self.component,
                "payload": self.payload,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        raw = json.loads(line)
        return cls(
            kind=raw["kind"],
            sim_time=float(raw["sim_time"]),
            wall_time=float(raw["wall_time"]),
            component=raw["component"],
            payload=dict(raw.get("payload", {})),
        )


@runtime_checkable
class TraceRecorder(Protocol):
    """What the engine, shadow layer and algorithms emit through.

    ``enabled`` is the zero-overhead switch: consumers read it once per run
    (or per hot loop) and skip event construction entirely when it is False.
    ``emit`` stamps the wall clock and stores/serializes the event.
    """

    enabled: bool

    def emit(self, kind: str, sim_time: float, component: str, **payload: Any) -> None: ...


class NullRecorder:
    """Tracing off: ``enabled`` is False and ``emit`` is a no-op.

    Consumers that honor the hoist-and-guard idiom never even call ``emit``;
    the method exists so un-hoisted call sites stay correct, just slower.
    """

    enabled: bool = False

    def emit(self, kind: str, sim_time: float, component: str, **payload: Any) -> None:
        return None


#: Shared default recorder — stateless, so one instance serves every context.
NULL_RECORDER = NullRecorder()


class MemoryRecorder:
    """Collect events in an in-process list (tests, ad-hoc analysis).

    With ``maxlen`` set the store becomes a bounded ring buffer: the
    recorder keeps only the most recent ``maxlen`` events, so a long
    supervised session with in-process recording cannot grow without bound.
    Eviction silently drops the *oldest* events — replay-style consumers
    (schedule rebuild, lemma checks) need the full stream and should either
    leave ``maxlen`` unset or record through a :class:`JsonlRecorder`.
    ``dropped`` counts evictions so a consumer can tell a complete stream
    from a windowed one.
    """

    enabled: bool = True

    def __init__(self, maxlen: int | None = None) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError(f"maxlen must be >= 1 or None, got {maxlen}")
        self.maxlen = maxlen
        self.events: list[TraceEvent] | deque[TraceEvent] = (
            [] if maxlen is None else deque(maxlen=maxlen)
        )
        self.dropped = 0
        self._origin = time.perf_counter()

    def emit(self, kind: str, sim_time: float, component: str, **payload: Any) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        if self.maxlen is not None and len(self.events) == self.maxlen:
            self.dropped += 1
        self.events.append(
            TraceEvent(
                kind=kind,
                sim_time=float(sim_time),
                wall_time=time.perf_counter() - self._origin,
                component=component,
                payload=payload,
            )
        )

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def events_of(self, kind: str, component: str | None = None) -> list[TraceEvent]:
        return [
            e
            for e in self.events
            if e.kind == kind and (component is None or e.component == component)
        ]


# -- sinks: where serialized events land --------------------------------------


@runtime_checkable
class TraceSink(Protocol):
    """Destination for serialized trace lines.

    ``write`` receives the event ``kind`` alongside the serialized line so
    structure-aware sinks (rotation) can honor the run_meta-per-segment
    contract without re-parsing every event.  ``flush``/``close`` are the
    explicit durability points; ``close`` must be idempotent.  ``paths``
    lists every file the sink has produced, in write order.
    """

    def write(self, kind: str, line: str) -> None: ...

    def flush(self) -> None: ...

    def close(self) -> None: ...

    @property
    def paths(self) -> tuple[Path, ...]: ...


class FileSink:
    """One plain JSONL file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: TextIO | None = self.path.open("w", encoding="utf-8")

    def write(self, kind: str, line: str) -> None:
        if self._fh is None:
            raise ValueError(f"FileSink({self.path}) is closed")
        self._fh.write(line + "\n")

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def paths(self) -> tuple[Path, ...]:
        return (self.path,)


class GzipSink:
    """One gzip-compressed JSONL file (``*.jsonl.gz`` by convention).

    The readers autodetect compression from the gzip magic bytes, so the
    suffix is cosmetic; the path is used exactly as given.
    """

    def __init__(self, path: str | Path, *, compresslevel: int = 6) -> None:
        self.path = Path(path)
        self._fh: TextIO | None = gzip.open(  # type: ignore[assignment]
            self.path, "wt", encoding="utf-8", compresslevel=compresslevel
        )

    def write(self, kind: str, line: str) -> None:
        if self._fh is None:
            raise ValueError(f"GzipSink({self.path}) is closed")
        self._fh.write(line + "\n")

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    @property
    def paths(self) -> tuple[Path, ...]:
        return (self.path,)


class RotatingSink:
    """Bounded JSONL segments: ``trace.jsonl`` → ``trace.00000.jsonl``, ...

    A new segment starts once the current one holds ``max_events`` lines.
    Every segment after the first opens with a replay of the most recent
    ``run_meta`` event (its payload flagged ``"segment_header": true``), so
    each segment is *self-contained*: an analyzer holding only segment k
    still knows the instance and power function.  :func:`iter_trace` skips
    the flagged replays when stitching segments back into the original
    stream, so a report built over all segments is identical to one built
    over an unrotated file.
    """

    def __init__(self, path: str | Path, max_events: int) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.base = Path(path)
        self.max_events = max_events
        self._segment = -1
        self._count = 0
        self._fh: TextIO | None = None
        self._paths: list[Path] = []
        self._header: dict[str, Any] | None = None
        self._closed = False
        self._open_next()

    def _segment_path(self, index: int) -> Path:
        return self.base.with_name(f"{self.base.stem}.{index:05d}{self.base.suffix}")

    def _open_next(self) -> None:
        if self._fh is not None:
            self._fh.close()
        self._segment += 1
        path = self._segment_path(self._segment)
        self._fh = path.open("w", encoding="utf-8")
        self._paths.append(path)
        self._count = 0
        if self._segment > 0 and self._header is not None:
            replay = dict(self._header)
            replay["payload"] = {**dict(replay.get("payload", {})), "segment_header": True}
            self._fh.write(json.dumps(replay, sort_keys=True) + "\n")
            self._count = 1

    def write(self, kind: str, line: str) -> None:
        if self._closed or self._fh is None:
            raise ValueError(f"RotatingSink({self.base}) is closed")
        if kind == "run_meta":
            self._header = json.loads(line)
        if self._count >= self.max_events:
            self._open_next()
        self._fh.write(line + "\n")
        self._count += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True

    @property
    def paths(self) -> tuple[Path, ...]:
        return tuple(self._paths)


def make_sink(path: str | Path, spec: str) -> TraceSink:
    """Build a sink from a CLI-style spec: ``plain`` | ``gzip`` | ``rotate:N``."""
    if spec == "plain":
        return FileSink(path)
    if spec == "gzip":
        return GzipSink(path)
    if spec.startswith("rotate:"):
        try:
            max_events = int(spec.split(":", 1)[1])
        except ValueError as err:
            raise ValueError(f"bad rotate spec {spec!r}: expected rotate:<int>") from err
        return RotatingSink(path, max_events)
    raise ValueError(f"unknown sink spec {spec!r} (expected plain, gzip, or rotate:N)")


def rotated_paths(base: str | Path) -> tuple[Path, ...]:
    """Segment files a :class:`RotatingSink` produced for ``base``, in order."""
    base = Path(base)
    pattern = f"{base.stem}.[0-9][0-9][0-9][0-9][0-9]{base.suffix}"
    return tuple(sorted(base.parent.glob(pattern)))


class JsonlRecorder:
    """Stream events as JSON lines through a :class:`TraceSink`.

    ``JsonlRecorder(path)`` keeps the historical behavior (one plain JSONL
    file); pass ``sink="gzip"``/``sink="rotate:N"`` (or a ready
    :class:`TraceSink`) for compressed or bounded-segment output.  Usable as
    a context manager — the sink is flushed and closed on *every* exit,
    exception paths included, so a crashed run still leaves a parseable
    trace.  :func:`read_jsonl` / :func:`iter_jsonl` round-trip the output
    back into :class:`TraceEvent` objects; for rotated output, read
    ``recorder.paths`` back through :func:`iter_trace`.
    """

    enabled: bool = True

    def __init__(self, path: str | Path, *, sink: TraceSink | str = "plain") -> None:
        self.path = Path(path)
        self._sink: TraceSink | None = (
            make_sink(path, sink) if isinstance(sink, str) else sink
        )
        self._origin = time.perf_counter()
        self._final_paths: tuple[Path, ...] = ()
        self.count = 0

    def emit(self, kind: str, sim_time: float, component: str, **payload: Any) -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        if self._sink is None:
            raise ValueError(f"JsonlRecorder({self.path}) is closed")
        event = TraceEvent(
            kind=kind,
            sim_time=float(sim_time),
            wall_time=time.perf_counter() - self._origin,
            component=component,
            payload=payload,
        )
        self._sink.write(kind, event.to_json())
        self.count += 1

    @property
    def paths(self) -> tuple[Path, ...]:
        """Every file written (one, or the rotated segments); survives close."""
        if self._sink is None:
            return self._final_paths
        return self._sink.paths

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            self._final_paths = self._sink.paths
            self._sink.flush()
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- readers ------------------------------------------------------------------

_GZIP_MAGIC = b"\x1f\x8b"


def _open_trace(path: Path) -> TextIO:
    with path.open("rb") as probe:
        magic = probe.read(2)
    if magic == _GZIP_MAGIC:
        fh: TextIO = gzip.open(path, "rt", encoding="utf-8")  # type: ignore[assignment]
        return fh
    return path.open("r", encoding="utf-8")


def iter_jsonl(path: str | Path) -> Iterator[TraceEvent]:
    """Stream a trace file (plain or gzip) one :class:`TraceEvent` at a time.

    Tolerates exactly one torn *trailing* line (a process killed mid-write)
    and a truncated gzip stream — every complete event before the tear is
    yielded, the tear itself is dropped.  A malformed line *followed by more
    data* is corruption, not truncation, and raises ``ValueError``.
    """
    path = Path(path)
    with _open_trace(path) as fh:
        pending_error: Exception | None = None
        try:
            for line in fh:
                if pending_error is not None:
                    raise ValueError(
                        f"corrupt trace line in {path} (not a trailing tear)"
                    ) from pending_error
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    event = TraceEvent.from_json(stripped)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as err:
                    pending_error = err
                    continue
                yield event
        except (EOFError, gzip.BadGzipFile):
            # Truncated gzip stream: a SIGKILLed writer never finished the
            # member. Everything decoded so far is intact; stop cleanly.
            return


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a trace written by :class:`JsonlRecorder` (see :func:`iter_jsonl`)."""
    return list(iter_jsonl(path))


def iter_trace(paths: Sequence[str | Path] | str | Path) -> Iterator[TraceEvent]:
    """Stream one logical trace from one file or a sequence of rotated segments.

    Replayed segment headers (``run_meta`` events flagged
    ``segment_header``) are skipped, so the reconstructed stream is exactly
    the stream that was emitted — a report built over rotated segments is
    identical to one built over a single file.
    """
    seq: Sequence[str | Path]
    if isinstance(paths, (str, Path)):
        seq = [paths]
    else:
        seq = paths
    for i, path in enumerate(seq):
        for event in iter_jsonl(path):
            if i > 0 and event.kind == "run_meta" and event.payload.get("segment_header"):
                continue
            yield event


def follow_jsonl(
    path: str | Path,
    *,
    poll_interval: float = 0.2,
    idle_timeout: float | None = 2.0,
    stop: Callable[[], bool] | None = None,
) -> Iterator[TraceEvent]:
    """Tail a live (plain) JSONL trace, yielding events as they are written.

    Re-polls every ``poll_interval`` seconds; returns once no new bytes have
    arrived for ``idle_timeout`` seconds (``None`` tails forever) or once
    ``stop()`` goes true.  A follower may start before the writer has
    created the file — the wait for it to appear counts against the same
    idle budget.  A partial line at the current end of file is buffered
    until its newline arrives — or dropped at stop time, matching the
    torn-tail tolerance of :func:`iter_jsonl`.
    """
    path = Path(path)
    buf = ""
    idle = 0.0
    while not path.exists():
        if stop is not None and stop():
            return
        if idle_timeout is not None and idle >= idle_timeout:
            return
        time.sleep(poll_interval)
        idle += poll_interval
    idle = 0.0
    with path.open("r", encoding="utf-8") as fh:
        while True:
            chunk = fh.read(65536)
            if chunk:
                idle = 0.0
                buf += chunk
                while True:
                    newline = buf.find("\n")
                    if newline < 0:
                        break
                    line = buf[:newline].strip()
                    buf = buf[newline + 1 :]
                    if line:
                        yield TraceEvent.from_json(line)
                continue
            if stop is not None and stop():
                return
            if idle_timeout is not None and idle >= idle_timeout:
                return
            time.sleep(poll_interval)
            idle += poll_interval


class MetricsRegistry:
    """Named integer/float counters shared by a run's observability surface.

    The registry is intentionally plain — a dict with increment semantics —
    so counter bumps in hot loops stay cheap.  Typed views (such as
    :class:`~repro.core.shadow.ShadowCounters`) expose curated subsets as
    attributes; ad-hoc metrics are welcome alongside them.
    """

    __slots__ = ("values",)

    def __init__(self, initial: dict[str, int | float] | None = None) -> None:
        self.values: dict[str, int | float] = dict(initial) if initial else {}

    def increment(self, name: str, amount: int | float = 1) -> None:
        self.values[name] = self.values.get(name, 0) + amount

    def get(self, name: str, default: int | float = 0) -> int | float:
        return self.values.get(name, default)

    def set(self, name: str, value: int | float) -> None:
        self.values[name] = value

    def as_dict(self, prefix: str | None = None) -> dict[str, int | float]:
        if prefix is None:
            return dict(self.values)
        return {k: v for k, v in self.values.items() if k.startswith(prefix)}

    def names(self) -> Iterable[str]:
        return self.values.keys()

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.values.items()))
        return f"MetricsRegistry({inner})"
