"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's artifacts (table, figure or
section-level claim) and *prints* the rows/series.  pytest captures stdout,
so :func:`emit` writes through to the real terminal (visible in
``pytest benchmarks/ --benchmark-only | tee bench_output.txt``) and archives
a copy under ``benchmarks/out/``.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a bench artifact to the real stdout and archive it."""
    banner = f"\n===== {name} =====\n"
    sys.__stdout__.write(banner + text + "\n")
    sys.__stdout__.flush()
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload: dict) -> None:
    """Archive a machine-readable companion to :func:`emit`.

    Written to ``benchmarks/out/BENCH_<name>.json`` — wall-clock numbers,
    shadow-call counters and objective values that downstream tooling (or the
    next session's regression check) can diff without parsing tables.
    """
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"BENCH_{name}.json").write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def cube():
    from repro import PowerLaw

    return PowerLaw(3.0)
