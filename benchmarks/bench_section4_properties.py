"""E17 — measuring §4.1's deferred constants (Properties A/B, Lemma 13).

The extended abstract proves its §4 result via three structural properties
whose constants (ζ, γ, ψ) it leaves to the unpublished full version.  This
bench *measures* them: run NC-general at several η, replay the shadow
clairvoyant simulations at sample times, and report the worst observed
ratios.  Expected shape: all three strictly positive for η above the derived
threshold, ζ and ψ growing with η (the shadow falls further behind), and the
single-job prediction ζ = (c₂−1)/c₂ acting as an upper envelope.
"""

from __future__ import annotations

from repro import PowerLaw
from repro.algorithms import eta_threshold, simulate_nc_general
from repro.analysis import format_table, shadow_properties
from repro.workloads import random_instance

from conftest import emit

ALPHA = 3.0


def _single_job_zeta(eta: float, alpha: float) -> float:
    """The self-similar prediction: on the attracting curve the shadow's
    remaining weight is ((c2-1)/c2)^{1/beta} of the processed weight, with
    c2 the larger root of c^{alpha/(alpha-1)} / (c-1)^{1/(alpha-1)} = eta
    (bisection) and beta = 1 - 1/alpha."""
    q = alpha / (alpha - 1.0)

    def f(c: float) -> float:
        return c**q / (c - 1.0) ** (1.0 / (alpha - 1.0)) - eta

    c_star = alpha / (alpha - 1.0)  # the minimiser; c2 lies to its right
    lo, hi = c_star, c_star
    while f(hi) < 0:
        hi *= 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if f(mid) < 0:
            lo = mid
        else:
            hi = mid
    c2 = 0.5 * (lo + hi)
    beta = 1.0 - 1.0 / alpha
    return ((c2 - 1.0) / c2) ** (1.0 / beta)


def _run():
    power = PowerLaw(ALPHA)
    thr = eta_threshold(ALPHA)
    inst = random_instance(
        8, 31, volume="uniform", density="powers", density_params={"beta": 5.0}
    )
    rows = []
    for mult in (1.05, 1.3, 1.6, 2.0, 3.0):
        eta = mult * thr
        run = simulate_nc_general(inst, power, eta=eta, max_step=2e-2)
        tr = shadow_properties(run, samples=16)
        rows.append(
            [
                f"{mult:.2f} x thr",
                eta,
                tr.zeta_min,
                _single_job_zeta(eta, ALPHA),
                tr.gamma_min,
                tr.psi_min,
            ]
        )
    return rows


def test_section4_properties(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["eta", "value", "zeta_min (A)", "zeta single-job", "gamma_min (B)", "psi_min (L13)"],
        rows,
        title="§4.1's deferred constants, measured (8 jobs, 3 density classes, alpha = 3)",
        floatfmt=".4g",
    )
    emit("section4_properties", table)

    for label, eta, zeta, zeta_pred, gamma, psi in rows:
        assert zeta > 0 and gamma > 0 and psi > 0  # the properties hold
        # The single-job self-similar value upper-bounds the multi-job worst
        # case (with small numerical slack).
        assert zeta <= zeta_pred * 1.05
    zetas = [r[2] for r in rows]
    psis = [r[5] for r in rows]
    assert zetas[-1] > zetas[0]  # larger eta => shadow lags more
    assert psis[-1] > psis[0]
