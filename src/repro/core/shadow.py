"""Incremental clairvoyant shadow oracle and the shared simulation context.

Both non-clairvoyant algorithms of the paper are defined *relative to*
Algorithm C: NC-uniform's speed offset is ``W^C(r[j]-)`` (§3) and NC-general's
speed is ``eta * s^C_{I(t)}(t) + epsilon`` where ``I(t)`` is the evolving
instance of processed amounts (§4).  Re-simulating C from scratch for every
query makes NC-general quadratic-or-worse in events.  This module maintains
Algorithm C's *live* state — the remaining volumes of its active set — and
advances it event-by-event with the closed-form decay kernel, so a query at
time ``t`` costs only the events between the previous query and ``t``:

* :class:`ClairvoyantShadow` — C's live remaining-weight state with
  ``advance(t)``, ``insert_job()`` / ``grow_weight()`` deltas and
  ``checkpoint()`` / ``rollback()`` for the speculative re-runs NC-general
  needs (its current job's weight in ``I(t)`` changes at every engine step).
* :class:`PrefixWeightOracle` — the ``W^C(r[j]-)`` prefix-offset pattern:
  one incrementally-extended C run answering a monotone stream of
  weight-at-time queries (with an automatic from-scratch rebuild when a
  query or insertion goes backwards in time).
* :class:`SimulationContext` — the shared boundary object the engine hands
  to policies via ``bind``; owns the :class:`ShadowCounters` so shadow
  activity is observable per run.

Exactness contract: the event loop below mirrors
``repro.algorithms.clairvoyant.simulate_clairvoyant`` (and its capped
variant in ``repro.extensions.bounded_speed``) operation for operation —
same admission tolerances, same HDF tie-breaking, same kernel-call argument
order, same drop-only-exact-zero rule — so a staged sequence of ``advance``
calls is bit-identical to one fresh run to the same horizon.  The only
latitude taken is *laziness*: a partial decay piece cut by a query horizon is
kept as an anchor ``(piece start, committed state)`` and re-derived on the
next ``advance`` instead of being split at the horizon, which is what makes
many small advances as cheap as one big one.  The piece is committed
("materialized") exactly where the legacy simulator would split it: at a
release event, or on :meth:`ClairvoyantShadow.materialize` /
:meth:`ClairvoyantShadow.checkpoint`.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Any, Callable

from .arraykernels import KernelBackend, backend_payload, resolve_backend
from .errors import SimulationError
from .kernels import decay_time_between, decay_weight_after
from .power import PowerFunction
from .tracing import NULL_RECORDER, MetricsRegistry, TraceRecorder

__all__ = [
    "ShadowCounters",
    "ShadowCheckpoint",
    "ContextCheckpoint",
    "ClairvoyantShadow",
    "PrefixWeightOracle",
    "SimulationContext",
]

#: Same relative tie tolerance as the analytic simulators.  Relative, not
#: absolute: shadow runs legitimately operate at picosecond scales.
_TIE_TOL = 1e-12


def _counter(name: str) -> Any:
    """A :class:`ShadowCounters` attribute backed by a registry slot."""

    def _get(self: "ShadowCounters") -> int:
        return int(self.registry.values.get(name, 0))

    def _set(self: "ShadowCounters", value: int) -> None:
        self.registry.values[name] = value

    return property(_get, _set)


class ShadowCounters:
    """Observability counters shared by the engine and its shadow oracles.

    ``engine_steps`` counts integrator steps; the rest count shadow-oracle
    traffic.  ``events`` is the number of committed scheduler events inside
    shadow runs — the true cost of the incremental scheme — while ``queries``
    is how often a remaining-weight value was read.  ``rebuilds`` counts
    from-scratch reconstructions (epoch changes in NC-general, time
    regressions in prefix oracles); a rebuild-heavy run has lost the
    amortization the layer exists for.

    Since the tracing layer landed this is a *view* over a
    :class:`~repro.core.tracing.MetricsRegistry` rather than a bag of ad-hoc
    ints: ``counters.events += 1`` and ``registry.values["events"]`` read and
    write the same slot, so counters, trace events and any future metrics
    share one substrate per run.
    """

    FIELDS = (
        "engine_steps",
        "queries",
        "advances",
        "events",
        "inserts",
        "checkpoints",
        "rollbacks",
        "rebuilds",
    )

    __slots__ = ("registry",)

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        for name in self.FIELDS:
            self.registry.values.setdefault(name, 0)

    engine_steps = _counter("engine_steps")
    queries = _counter("queries")
    advances = _counter("advances")
    events = _counter("events")
    inserts = _counter("inserts")
    checkpoints = _counter("checkpoints")
    rollbacks = _counter("rollbacks")
    rebuilds = _counter("rebuilds")

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.FIELDS}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShadowCounters):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={getattr(self, name)}" for name in self.FIELDS)
        return f"ShadowCounters({inner})"


@dataclass(frozen=True)
class ShadowCheckpoint:
    """Opaque snapshot of a :class:`ClairvoyantShadow` (fully materialized).

    ``w_accum`` is the canonical total weight of ``remaining`` used by the
    array-core fast path (NaN for scalar-backend snapshots, which re-derive
    totals by summation).  Canonicalizing it at checkpoint time makes
    rollback-and-replay bit-identical to the first pass under the
    incremental-accumulator scheme.
    """

    clock: float
    remaining: tuple[tuple[int, float], ...]
    pending: tuple[tuple[float, int, float, float], ...]
    w_accum: float = math.nan


@dataclass(frozen=True)
class ContextCheckpoint:
    """Snapshot of a :class:`SimulationContext`'s mutable run state.

    Extends the shadow-layer checkpoint idea to the whole context: the
    supervisor (:mod:`repro.runtime.supervisor`) takes one before every
    attempt and restores it before a retry, so counters and metrics from the
    failed attempt do not leak into the retried run and the empty-fault-plan
    supervised path stays bit-identical to an unsupervised run.
    """

    label: str
    sim_time: float
    metrics: tuple[tuple[str, int | float], ...]


class ClairvoyantShadow:
    """Algorithm C's live state, advanced incrementally.

    ``s_max=None`` gives the pure power-law dynamics; a finite ``s_max``
    reproduces the bounded-speed variant (saturated linear phase above
    ``P(s_max)``, decay below).  ``record`` — if given — is called as
    ``record(kind, t0, t1, job_id, value)`` for every committed piece with
    ``kind`` in ``{"decay", "const"}`` and ``value`` the piece's starting
    total weight (decay) or the cap speed (const); the analytic simulators
    use it to build their schedules.

    ``recorder`` — if given and enabled — receives structured trace events
    tagged with ``component``: a ``release`` per revealed job, a
    ``kernel_eval`` per committed closed-form piece, a ``completion`` per
    job leaving the active set, and ``shadow_checkpoint`` /
    ``shadow_rollback`` markers.  All emission sites honor the
    zero-overhead-when-off contract of :mod:`repro.core.tracing`.
    """

    __slots__ = (
        "alpha",
        "s_max",
        "clock",
        "counters",
        "component",
        "backend",
        "_fast",
        "_beta",
        "_inv_beta",
        "_heap",
        "_w_accum",
        "_pending_ids",
        "_w_sat",
        "_record",
        "_rec",
        "_t_loop",
        "_remaining",
        "_pending",
        "_next",
        "_rho",
        "_rel",
        "_key",
        "_piece",
    )

    def __init__(
        self,
        alpha: float,
        *,
        s_max: float | None = None,
        counters: ShadowCounters | None = None,
        record: Callable[[str, float, float, int, float], None] | None = None,
        recorder: TraceRecorder | None = None,
        component: str = "shadow",
        backend: str | KernelBackend | None = None,
    ) -> None:
        if not alpha > 1:
            raise ValueError(f"alpha must exceed 1, got {alpha}")
        if s_max is not None and not (s_max > 0 and math.isfinite(s_max)):
            raise ValueError(f"s_max must be finite > 0, got {s_max}")
        self.alpha = float(alpha)
        self.s_max = None if s_max is None else float(s_max)
        self._w_sat = math.inf if s_max is None else self.s_max**self.alpha
        self.counters = counters if counters is not None else ShadowCounters()
        self._record = record
        self.component = component
        #: resolved kernel backend.  ``"scalar"`` runs the legacy O(n)-scan
        #: event loop verbatim (bit-identical fallback); the array backends
        #: run the fast loop: HDF argmin from a heap of precomputed keys and
        #: the total weight from an incremental accumulator, O(log n)/event.
        self.backend = resolve_backend(backend)
        self._fast = self.backend.name != "scalar"
        #: hoisted per-run kernel constants (beta = 1 - 1/alpha), so the hot
        #: loop evaluates the closed forms without per-event re-derivation.
        self._beta = 1.0 - 1.0 / self.alpha
        self._inv_beta = 1.0 / self._beta
        #: fast-path structures: min-heap of HDF keys over the active set and
        #: the incremental total fractional weight of ``_remaining``.  The
        #: accumulator is reset to exactly 0.0 whenever the active set drains
        #: and re-canonicalized (exact fsum) at every checkpoint, so replay
        #: from a checkpoint is bit-identical to the first pass.
        self._heap: list[tuple[float, float, int]] = []
        self._w_accum = 0.0
        #: fast-path pending-id set (O(1) duplicate checks); None in scalar
        #: mode, which keeps the legacy linear scan.
        self._pending_ids: set[int] | None = set() if self._fast else None
        #: hoisted zero-overhead guard: None unless tracing is actually on.
        self._rec = recorder if (recorder is not None and recorder.enabled) else None
        #: time of the last *committed* event; the anchored partial piece (if
        #: any) spans (_t_loop, clock].
        self._t_loop = 0.0
        self.clock = 0.0
        #: admitted, uncompleted jobs: id -> remaining volume, in admission
        #: order (== the legacy simulator's dict order).
        self._remaining: dict[int, float] = {}
        #: not-yet-admitted jobs as (release, id, density, volume), sorted;
        #: consumed by index so checkpoints can snapshot the tail cheaply.
        self._pending: list[tuple[float, int, float, float]] = []
        self._next = 0
        #: per-job metadata (survives completion; needed for HDF keys).
        self._rho: dict[int, float] = {}
        self._rel: dict[int, float] = {}
        #: precomputed HDF sort key per job (-density, release, id).
        self._key: dict[int, tuple[float, float, int]] = {}
        #: cache of the anchored piece, ``(current job, its density, total
        #: weight at _t_loop)``, filled at the lazy horizon cut so reads and
        #: materialization need not re-derive it.  None when state is
        #: materialized or the cache was invalidated.
        self._piece: tuple[int, float, float] | None = None

    # -- deltas ---------------------------------------------------------------

    def insert_job(self, job_id: int, release: float, density: float, volume: float) -> None:
        """Reveal a job to the shadow.

        ``release`` may lie at or before the current clock (but not before the
        last committed event minus the tie tolerance): the shadow then
        re-derives the anchored piece with the proper split at ``release``,
        exactly as a fresh run seeing the job would have.
        """
        if volume <= 0:
            raise ValueError(f"job {job_id}: volume must be > 0, got {volume}")
        if density <= 0:
            raise ValueError(f"job {job_id}: density must be > 0, got {density}")
        if release < self._t_loop * (1.0 - _TIE_TOL) - 1e-300:
            raise SimulationError(
                f"job {job_id} released at {release}, before the shadow's "
                f"committed past (t={self._t_loop}); rollback first"
            )
        pending_ids = self._pending_ids
        if job_id in self._remaining or (
            job_id in pending_ids
            if pending_ids is not None
            else any(e[1] == job_id for e in self._pending[self._next :])
        ):
            raise SimulationError(f"job {job_id} already known to the shadow")
        self._rho[job_id] = density
        self._rel[job_id] = release
        self._key[job_id] = (-density, release, job_id)
        entry = (release, job_id, density, volume)
        i = bisect_right(self._pending, entry, lo=self._next)
        self._pending.insert(i, entry)
        if pending_ids is not None:
            pending_ids.add(job_id)
        self.counters.inserts += 1
        if self._rec is not None:
            self._rec.emit(
                "release", release, self.component, job=job_id, density=density, volume=volume
            )
        if release <= self.clock * (1.0 + _TIE_TOL):
            # Catch the state up: the loop splits the anchored piece at the
            # new release and admits the job, mirroring a fresh run.
            self._run_loop(self.clock)

    def grow_weight(self, job_id: int, delta_volume: float) -> None:
        """Grow a *pending* (not yet admitted) job's volume by ``delta_volume``.

        Once a job has been admitted its past processing depends on its
        volume, so growing it would rewrite history — rollback to a
        checkpoint before its admission instead.
        """
        if delta_volume < 0:
            raise ValueError(f"delta_volume must be >= 0, got {delta_volume}")
        for i in range(self._next, len(self._pending)):
            rel, jid, rho, vol = self._pending[i]
            if jid == job_id:
                self._pending[i] = (rel, jid, rho, vol + delta_volume)
                return
        if job_id in self._remaining:
            raise SimulationError(
                f"job {job_id} is already admitted; its weight can no longer "
                "grow in place — rollback to before its admission"
            )
        raise SimulationError(f"job {job_id} is not known to the shadow")

    # -- time -----------------------------------------------------------------

    def advance(self, horizon: float) -> None:
        """Advance Algorithm C's state to ``horizon`` (monotone; may be inf)."""
        if horizon <= self.clock:
            return
        self._run_loop(horizon)

    def _admit(self, now: float) -> None:
        pending = self._pending
        fast = self._fast
        while self._next < len(pending) and pending[self._next][0] <= now * (1.0 + _TIE_TOL):
            _, jid, rho, vol = pending[self._next]
            self._remaining[jid] = vol
            if fast:
                heappush(self._heap, self._key[jid])
                self._w_accum += rho * vol
                assert self._pending_ids is not None
                self._pending_ids.discard(jid)
            self._next += 1

    def _run_loop(self, horizon: float) -> None:
        if self._fast:
            self._run_loop_fast(horizon)
        else:
            self._run_loop_scalar(horizon)

    def _run_loop_scalar(self, horizon: float) -> None:
        """The legacy event loop, verbatim, with lazy horizon cuts."""
        rem = self._remaining
        rho_of = self._rho
        key_of = self._key
        alpha = self.alpha
        s_max = self.s_max
        w_sat = self._w_sat
        record = self._record
        rec = self._rec
        comp = self.component
        counters = self.counters
        dtb = decay_time_between
        dwa = decay_weight_after
        pending = self._pending
        n_pending = len(pending)
        nxt = self._next
        counters.advances += 1
        self._piece = None
        t = self._t_loop
        if t >= self.clock:
            # Not anchored inside a piece: mirror the legacy entry admission.
            bound = t * (1.0 + _TIE_TOL)
            while nxt < n_pending and pending[nxt][0] <= bound:
                rem[pending[nxt][1]] = pending[nxt][3]
                nxt += 1
        while t < horizon and (rem or nxt < n_pending):
            if not rem:
                t = min(pending[nxt][0], horizon)
                bound = t * (1.0 + _TIE_TOL)
                while nxt < n_pending and pending[nxt][0] <= bound:
                    rem[pending[nxt][1]] = pending[nxt][3]
                    nxt += 1
                continue
            cur = min(rem, key=key_of.__getitem__)
            rho = rho_of[cur]
            w_total = sum(rho_of[j] * v for j, v in rem.items())
            if w_total <= 0:
                raise SimulationError("active set with zero weight")
            t_next = pending[nxt][0] if nxt < n_pending else math.inf
            if s_max is not None and rho * rem[cur] <= 1e-15 * w_total:
                # Underflow against the total: in the saturated branch the
                # processing time would round to zero.  Finish instantly.
                del rem[cur]
                counters.events += 1
                if rec is not None:
                    rec.emit("completion", t, comp, job=cur)
                continue
            w_end = w_total - rho * rem[cur]

            if w_total > w_sat * (1.0 + _TIE_TOL):
                # Saturated phase: constant speed s_max, weight falls linearly.
                target = max(w_sat, w_end)
                tau_phase = (w_total - target) / (rho * s_max)
                t_stop = min(t + tau_phase, t_next, horizon)
                if t_stop <= t:
                    # tau_phase underflows against t: no representable time
                    # can make progress (the legacy loop spins forever here).
                    # Apply the sliver instantly and move on.
                    rem[cur] = max(rem[cur] - (w_total - target) / rho, 0.0)
                    if rem[cur] <= 0.0:
                        del rem[cur]
                        if rec is not None:
                            rec.emit("completion", t, comp, job=cur)
                    counters.events += 1
                    continue
                if (
                    t_stop >= horizon
                    and t_stop < t + tau_phase
                    and not t_next <= horizon * (1.0 + _TIE_TOL)
                ):
                    self._t_loop = t
                    self.clock = horizon
                    self._next = nxt
                    self._piece = (cur, rho, w_total)
                    return
                tau = t_stop - t
                if tau > 0:
                    if record is not None:
                        record("const", t, t_stop, cur, s_max)
                    if rec is not None:
                        rec.emit(
                            "kernel_eval",
                            t,
                            comp,
                            profile="const",
                            t0=t,
                            t1=t_stop,
                            job=cur,
                            speed=s_max,
                            rho=rho,
                            alpha=alpha,
                        )
                    dv = s_max * tau
                    rem[cur] = max(rem[cur] - dv, 0.0)
                    if rem[cur] <= 0.0:
                        del rem[cur]
                        if rec is not None:
                            rec.emit("completion", t_stop, comp, job=cur)
                    counters.events += 1
                t = t_stop
                bound = t * (1.0 + _TIE_TOL)
                while nxt < n_pending and pending[nxt][0] <= bound:
                    rem[pending[nxt][1]] = pending[nxt][3]
                    nxt += 1
                continue

            tau_complete = dtb(w_total, max(w_end, 0.0), rho, alpha)
            t_stop = min(t + tau_complete, t_next, horizon)
            if t_stop >= t + tau_complete * (1.0 - _TIE_TOL):
                # The current job completes first.
                if record is not None:
                    record("decay", t, t + tau_complete, cur, w_total)
                if rec is not None:
                    rec.emit(
                        "kernel_eval",
                        t,
                        comp,
                        profile="decay",
                        t0=t,
                        t1=t + tau_complete,
                        job=cur,
                        x0=w_total,
                        rho=rho,
                        alpha=alpha,
                    )
                t = t + tau_complete
                del rem[cur]
                counters.events += 1
                if rec is not None:
                    rec.emit("completion", t, comp, job=cur)
            else:
                if t_stop >= horizon and not t_next <= horizon * (1.0 + _TIE_TOL):
                    # Cut only by the query horizon with no admission due:
                    # keep the piece anchored instead of splitting it here.
                    self._t_loop = t
                    self.clock = horizon
                    self._next = nxt
                    self._piece = (cur, rho, w_total)
                    return
                tau = t_stop - t
                if tau > 0:
                    w_after = dwa(w_total, rho, tau, alpha)
                    dv = (w_total - w_after) / rho
                    if record is not None:
                        record("decay", t, t_stop, cur, w_total)
                    if rec is not None:
                        rec.emit(
                            "kernel_eval",
                            t,
                            comp,
                            profile="decay",
                            t0=t,
                            t1=t_stop,
                            job=cur,
                            x0=w_total,
                            rho=rho,
                            alpha=alpha,
                        )
                    rem[cur] = max(rem[cur] - dv, 0.0)
                    # Only drop exact zeros — a 1e-15 remainder is usually the
                    # analytically correct value (see simulate_clairvoyant).
                    if rem[cur] <= 0.0:
                        del rem[cur]
                        if rec is not None:
                            rec.emit("completion", t_stop, comp, job=cur)
                    counters.events += 1
                t = t_stop
            bound = t * (1.0 + _TIE_TOL)
            while nxt < n_pending and pending[nxt][0] <= bound:
                rem[pending[nxt][1]] = pending[nxt][3]
                nxt += 1
        self._t_loop = t
        self._next = nxt
        # Natural exit: work exhausted before the horizon leaves the clock at
        # the last event, like the legacy run; an event landing at or past
        # the horizon (completion overshoot within the tie tolerance) also
        # reports that time.
        self.clock = t

    def _run_loop_fast(self, horizon: float) -> None:
        """The event loop on the array-core fast path.

        Same event structure, tie tolerances and kernel algebra as
        :meth:`_run_loop_scalar`, with the two O(n)-per-event scans replaced:
        the HDF argmin comes from a min-heap of the precomputed ``_key``
        tuples (only the minimum-key job ever completes, so pops stay aligned
        with the dict) and the total weight from an incremental accumulator
        updated by the weight each committed event removes or admits.  The
        accumulator is reset to exactly 0.0 whenever the active set drains
        and re-canonicalized at every :meth:`checkpoint`, bounding float
        drift to ~1e-15 relative per busy period (``tests/test_arraykernels``
        pins full-run agreement with the scalar loop at 1e-12).  Trace events
        are buffered per advance and flushed in emission order on exit —
        batched, but replay-equivalent for ``trace_report``.
        """
        rem = self._remaining
        rho_of = self._rho
        key_of = self._key
        alpha = self.alpha
        beta = self._beta
        inv_beta = self._inv_beta
        s_max = self.s_max
        w_sat = self._w_sat
        record = self._record
        rec = self._rec
        comp = self.component
        counters = self.counters
        heap = self._heap
        w_accum = self._w_accum
        pend_ids = self._pending_ids
        pending = self._pending
        n_pending = len(pending)
        nxt = self._next
        counters.advances += 1
        self._piece = None
        events: list[tuple[str, float, dict[str, Any]]] = []

        def flush() -> None:
            if rec is not None and events:
                emit = rec.emit
                for kind, st, payload in events:
                    emit(kind, st, comp, **payload)
                events.clear()

        t = self._t_loop
        if t >= self.clock:
            # Not anchored inside a piece: mirror the legacy entry admission.
            bound = t * (1.0 + _TIE_TOL)
            while nxt < n_pending and pending[nxt][0] <= bound:
                _, jid, rho_j, vol = pending[nxt]
                rem[jid] = vol
                heappush(heap, key_of[jid])
                w_accum += rho_j * vol
                if pend_ids is not None:
                    pend_ids.discard(jid)
                nxt += 1
        while t < horizon and (rem or nxt < n_pending):
            if not rem:
                w_accum = 0.0
                t = min(pending[nxt][0], horizon)
                bound = t * (1.0 + _TIE_TOL)
                while nxt < n_pending and pending[nxt][0] <= bound:
                    _, jid, rho_j, vol = pending[nxt]
                    rem[jid] = vol
                    heappush(heap, key_of[jid])
                    w_accum += rho_j * vol
                    if pend_ids is not None:
                        pend_ids.discard(jid)
                    nxt += 1
                continue
            cur = heap[0][2]
            rho = rho_of[cur]
            if len(rem) == 1:
                # Single-job tail: the dict sum is one product, so re-derive
                # it exactly (matching the scalar loop's per-event fsum).
                # Without this, ``w_end`` below carries the accumulator's
                # ~1e-16 residue where the true value is exactly 0, and
                # ``w_end**beta`` amplifies that into a ~1e-11 error on the
                # busy period's final completion time.
                w_accum = rho * rem[cur]
            w_total = w_accum
            if w_total <= 0:
                # Accumulator drift can momentarily dip a near-empty total
                # below zero; re-derive it exactly before declaring failure.
                w_accum = w_total = math.fsum(rho_of[j] * v for j, v in rem.items())
                if w_total <= 0:
                    raise SimulationError("active set with zero weight")
            t_next = pending[nxt][0] if nxt < n_pending else math.inf
            if s_max is not None and rho * rem[cur] <= 1e-15 * w_total:
                w_accum -= rho * rem[cur]
                del rem[cur]
                heappop(heap)
                if not rem:
                    w_accum = 0.0
                counters.events += 1
                if rec is not None:
                    events.append(("completion", t, {"job": cur}))
                continue
            w_end = w_total - rho * rem[cur]

            if w_total > w_sat * (1.0 + _TIE_TOL):
                # Saturated phase: constant speed s_max, weight falls linearly.
                target = max(w_sat, w_end)
                tau_phase = (w_total - target) / (rho * s_max)
                t_stop = min(t + tau_phase, t_next, horizon)
                if t_stop <= t:
                    old = rem[cur]
                    new_v = max(old - (w_total - target) / rho, 0.0)
                    if new_v <= 0.0:
                        del rem[cur]
                        heappop(heap)
                        w_accum = w_accum - rho * old if rem else 0.0
                        if rec is not None:
                            events.append(("completion", t, {"job": cur}))
                    else:
                        rem[cur] = new_v
                        w_accum -= rho * (old - new_v)
                    counters.events += 1
                    continue
                if (
                    t_stop >= horizon
                    and t_stop < t + tau_phase
                    and not t_next <= horizon * (1.0 + _TIE_TOL)
                ):
                    self._t_loop = t
                    self.clock = horizon
                    self._next = nxt
                    self._piece = (cur, rho, w_total)
                    self._w_accum = w_accum
                    flush()
                    return
                tau = t_stop - t
                if tau > 0:
                    if record is not None:
                        record("const", t, t_stop, cur, s_max)
                    if rec is not None:
                        events.append(
                            (
                                "kernel_eval",
                                t,
                                {
                                    "profile": "const",
                                    "t0": t,
                                    "t1": t_stop,
                                    "job": cur,
                                    "speed": s_max,
                                    "rho": rho,
                                    "alpha": alpha,
                                },
                            )
                        )
                    dv = s_max * tau
                    old = rem[cur]
                    new_v = max(old - dv, 0.0)
                    if new_v <= 0.0:
                        del rem[cur]
                        heappop(heap)
                        w_accum = w_accum - rho * old if rem else 0.0
                        if rec is not None:
                            events.append(("completion", t_stop, {"job": cur}))
                    else:
                        rem[cur] = new_v
                        w_accum -= rho * (old - new_v)
                    counters.events += 1
                t = t_stop
                bound = t * (1.0 + _TIE_TOL)
                while nxt < n_pending and pending[nxt][0] <= bound:
                    _, jid, rho_j, vol = pending[nxt]
                    rem[jid] = vol
                    heappush(heap, key_of[jid])
                    w_accum += rho_j * vol
                    if pend_ids is not None:
                        pend_ids.discard(jid)
                    nxt += 1
                continue

            # Hoisted closed forms — same float expressions as the kernels
            # with beta precomputed once per run.
            w_end_c = w_end if w_end > 0.0 else 0.0
            tau_complete = (w_total**beta - w_end_c**beta) / (rho * beta)
            if tau_complete < 0.0:
                tau_complete = 0.0
            t_stop = min(t + tau_complete, t_next, horizon)
            if t_stop >= t + tau_complete * (1.0 - _TIE_TOL):
                # The current job completes first.
                if record is not None:
                    record("decay", t, t + tau_complete, cur, w_total)
                if rec is not None:
                    events.append(
                        (
                            "kernel_eval",
                            t,
                            {
                                "profile": "decay",
                                "t0": t,
                                "t1": t + tau_complete,
                                "job": cur,
                                "x0": w_total,
                                "rho": rho,
                                "alpha": alpha,
                            },
                        )
                    )
                t = t + tau_complete
                w_accum -= rho * rem[cur]
                del rem[cur]
                heappop(heap)
                if not rem:
                    w_accum = 0.0
                counters.events += 1
                if rec is not None:
                    events.append(("completion", t, {"job": cur}))
            else:
                if t_stop >= horizon and not t_next <= horizon * (1.0 + _TIE_TOL):
                    # Cut only by the query horizon with no admission due:
                    # keep the piece anchored instead of splitting it here.
                    self._t_loop = t
                    self.clock = horizon
                    self._next = nxt
                    self._piece = (cur, rho, w_total)
                    self._w_accum = w_accum
                    flush()
                    return
                tau = t_stop - t
                if tau > 0:
                    base = w_total**beta - rho * beta * tau
                    w_after = base**inv_beta if base > 0.0 else 0.0
                    dv = (w_total - w_after) / rho
                    if record is not None:
                        record("decay", t, t_stop, cur, w_total)
                    if rec is not None:
                        events.append(
                            (
                                "kernel_eval",
                                t,
                                {
                                    "profile": "decay",
                                    "t0": t,
                                    "t1": t_stop,
                                    "job": cur,
                                    "x0": w_total,
                                    "rho": rho,
                                    "alpha": alpha,
                                },
                            )
                        )
                    old = rem[cur]
                    new_v = max(old - dv, 0.0)
                    # Only drop exact zeros — a 1e-15 remainder is usually the
                    # analytically correct value (see simulate_clairvoyant).
                    if new_v <= 0.0:
                        del rem[cur]
                        heappop(heap)
                        w_accum = w_accum - rho * old if rem else 0.0
                        if rec is not None:
                            events.append(("completion", t_stop, {"job": cur}))
                    else:
                        rem[cur] = new_v
                        w_accum -= rho * (old - new_v)
                    counters.events += 1
                t = t_stop
            bound = t * (1.0 + _TIE_TOL)
            while nxt < n_pending and pending[nxt][0] <= bound:
                _, jid, rho_j, vol = pending[nxt]
                rem[jid] = vol
                heappush(heap, key_of[jid])
                w_accum += rho_j * vol
                if pend_ids is not None:
                    pend_ids.discard(jid)
                nxt += 1
        self._t_loop = t
        self._next = nxt
        self.clock = t
        self._w_accum = w_accum
        flush()

    def materialize(self) -> None:
        """Commit the anchored partial piece (if any) at the current clock.

        After this the state equals what a fresh legacy run to ``clock``
        reports, including the split of the in-progress piece at ``clock``.
        """
        rem = self._remaining
        if self.clock <= self._t_loop or not rem:
            self._t_loop = max(self._t_loop, self.clock)
            return
        fast = self._fast
        rho_of = self._rho
        key_of = self._key
        if self._piece is not None:
            cur, rho, w_total = self._piece
        elif fast:
            cur = self._heap[0][2]
            rho = rho_of[cur]
            if len(rem) == 1:
                # Same single-job exact tail as the fast loop.
                w_total = self._w_accum = rho * rem[cur]
            else:
                w_total = self._w_accum
            if w_total <= 0:
                w_total = self._w_accum = math.fsum(
                    rho_of[j] * v for j, v in rem.items()
                )
        else:
            cur = min(rem, key=key_of.__getitem__)
            rho = rho_of[cur]
            w_total = sum(rho_of[j] * v for j, v in rem.items())
        tau = self.clock - self._t_loop
        rec = self._rec
        if self.s_max is not None and w_total > self._w_sat * (1.0 + _TIE_TOL):
            if self._record is not None:
                self._record("const", self._t_loop, self.clock, cur, self.s_max)
            if rec is not None:
                rec.emit(
                    "kernel_eval",
                    self._t_loop,
                    self.component,
                    profile="const",
                    t0=self._t_loop,
                    t1=self.clock,
                    job=cur,
                    speed=self.s_max,
                    rho=rho,
                    alpha=self.alpha,
                )
            dv = self.s_max * tau
        else:
            w_after = decay_weight_after(w_total, rho, tau, self.alpha)
            dv = (w_total - w_after) / rho
            if self._record is not None:
                self._record("decay", self._t_loop, self.clock, cur, w_total)
            if rec is not None:
                rec.emit(
                    "kernel_eval",
                    self._t_loop,
                    self.component,
                    profile="decay",
                    t0=self._t_loop,
                    t1=self.clock,
                    job=cur,
                    x0=w_total,
                    rho=rho,
                    alpha=self.alpha,
                )
        old = rem[cur]
        new_v = max(old - dv, 0.0)
        if new_v <= 0.0:
            del rem[cur]
            if fast:
                heappop(self._heap)
                self._w_accum = self._w_accum - rho * old if rem else 0.0
            if rec is not None:
                rec.emit("completion", self.clock, self.component, job=cur)
        else:
            rem[cur] = new_v
            if fast:
                self._w_accum -= rho * (old - new_v)
        self.counters.events += 1
        self._t_loop = self.clock
        self._piece = None
        self._admit(self.clock)

    # -- reads (non-destructive) ----------------------------------------------

    def _peek_current(self) -> tuple[int, float] | None:
        """The in-progress job and its would-be remaining volume at ``clock``,
        without committing the anchored piece."""
        rem = self._remaining
        if self.clock <= self._t_loop or not rem:
            return None
        rho_of = self._rho
        key_of = self._key
        if self._piece is not None:
            cur, rho, w_total = self._piece
        elif self._fast:
            cur = self._heap[0][2]
            rho = rho_of[cur]
            if len(rem) == 1:
                # Same single-job exact tail as the fast loop.
                w_total = self._w_accum = rho * rem[cur]
            else:
                w_total = self._w_accum
            if w_total <= 0:
                w_total = self._w_accum = math.fsum(
                    rho_of[j] * v for j, v in rem.items()
                )
        else:
            cur = min(rem, key=key_of.__getitem__)
            rho = rho_of[cur]
            w_total = sum(rho_of[j] * v for j, v in rem.items())
        tau = self.clock - self._t_loop
        if self.s_max is not None and w_total > self._w_sat * (1.0 + _TIE_TOL):
            dv = self.s_max * tau
        else:
            w_after = decay_weight_after(w_total, rho, tau, self.alpha)
            dv = (w_total - w_after) / rho
        return cur, max(rem[cur] - dv, 0.0)

    def remaining_weight(self) -> float:
        """``W^C(clock)`` — total remaining fractional weight, live state."""
        self.counters.queries += 1
        rho_of = self._rho
        if self._fast:
            # O(1): the committed accumulator, minus the anchored piece's
            # decay on the current job.  Clamped at 0.0 — accumulator drift
            # must never hand a negative weight to the growth kernels.
            peek = self._peek_current()
            total = self._w_accum
            if peek is not None:
                cur, val = peek
                total -= rho_of[cur] * (self._remaining[cur] - val)
            return total if total > 0.0 else 0.0
        peek = self._peek_current()
        if peek is None:
            return sum(rho_of[j] * v for j, v in self._remaining.items())
        cur, val = peek
        # Same accumulation order as a sum over the materialized dict; a
        # completed current job contributes 0.0, exactly as its deleted entry
        # would be absent from that sum.
        return sum(
            rho_of[j] * (val if j == cur else v) for j, v in self._remaining.items()
        )

    def remaining_items(self) -> list[tuple[int, float, float]]:
        """Materialized-equivalent ``(job_id, density, remaining volume)`` at
        ``clock``, in admission order, completed jobs omitted."""
        self.counters.queries += 1
        rho_of = self._rho
        peek = self._peek_current()
        out = []
        for j, v in self._remaining.items():
            if peek is not None and j == peek[0]:
                v = peek[1]
                if v <= 0.0:
                    continue
            out.append((j, rho_of[j], v))
        return out

    def remaining_dict(self) -> dict[int, float]:
        """Copy of the remaining-volume map (call :meth:`materialize` first if
        an anchored piece should be included)."""
        return dict(self._remaining)

    # -- checkpoint / rollback ------------------------------------------------

    def checkpoint(self) -> ShadowCheckpoint:
        """Materialize and snapshot the state for later :meth:`rollback`."""
        self.materialize()
        self.counters.checkpoints += 1
        if self._rec is not None:
            self._rec.emit(
                "shadow_checkpoint",
                self.clock,
                self.component,
                active=len(self._remaining),
                pending=len(self._pending) - self._next,
            )
        if self._fast:
            # Canonicalize the accumulator at the snapshot boundary: replay
            # from this checkpoint then becomes a deterministic function of
            # the committed state, bit-identical on every restore.
            rho_of = self._rho
            self._w_accum = (
                math.fsum(rho_of[j] * v for j, v in self._remaining.items())
                if self._remaining
                else 0.0
            )
        return ShadowCheckpoint(
            clock=self.clock,
            remaining=tuple(self._remaining.items()),
            pending=tuple(self._pending[self._next :]),
            w_accum=self._w_accum if self._fast else math.nan,
        )

    def rollback(self, ckpt: ShadowCheckpoint) -> None:
        """Restore a snapshot taken by :meth:`checkpoint`.

        Jobs inserted after the checkpoint vanish from the active/pending
        sets (their metadata is kept; re-inserting them is allowed)."""
        self.counters.rollbacks += 1
        if self._rec is not None:
            self._rec.emit(
                "shadow_rollback", ckpt.clock, self.component, from_time=self.clock
            )
        self.clock = ckpt.clock
        self._t_loop = ckpt.clock
        self._remaining = dict(ckpt.remaining)
        self._pending = list(ckpt.pending)
        self._next = 0
        self._piece = None
        if self._fast:
            self._restore_fast(ckpt)

    def _restore_fast(self, ckpt: ShadowCheckpoint) -> None:
        """Rebuild the fast-path structures after a snapshot restore."""
        key_of = self._key
        self._heap = [key_of[j] for j, _ in ckpt.remaining]
        heapify(self._heap)
        if math.isnan(ckpt.w_accum):
            # Snapshot taken by a scalar-backend shadow: derive the canonical
            # total the same way checkpoint() would have.
            rho_of = self._rho
            self._w_accum = (
                math.fsum(rho_of[j] * v for j, v in ckpt.remaining)
                if ckpt.remaining
                else 0.0
            )
        else:
            self._w_accum = ckpt.w_accum
        self._pending_ids = {e[1] for e in ckpt.pending}

    def query_with_job(
        self,
        base: ShadowCheckpoint,
        t: float,
        job_id: int | None,
        release: float,
        density: float,
        volume: float,
    ) -> float:
        """Speculative query: remaining weight at ``t`` starting from ``base``
        with one extra job.

        Equivalent to ``rollback(base)``, ``insert_job(...)``, ``advance(t)``,
        ``remaining_weight()`` fused into one call — the NC-general inner
        loop, where every engine step re-asks "what would C's weight be now if
        the current job's processed amount entered its run at its release".
        ``job_id=None`` skips the insertion (nothing of the job processed yet).
        """
        counters = self.counters
        counters.rollbacks += 1
        if self._rec is not None:
            self._rec.emit(
                "shadow_rollback",
                base.clock,
                self.component,
                from_time=self.clock,
                speculative=True,
            )
        self.clock = self._t_loop = base.clock
        rem = self._remaining = dict(base.remaining)
        pending = self._pending = list(base.pending)
        self._next = 0
        self._piece = None
        fast = self._fast
        if fast:
            self._restore_fast(base)
        if job_id is not None:
            self._rho[job_id] = density
            self._rel[job_id] = release
            self._key[job_id] = (-density, release, job_id)
            counters.inserts += 1
            if release <= base.clock * (1.0 + _TIE_TOL):
                # The base is materialized with no admission due, so the
                # job joins the active set directly, as _admit would place it.
                rem[job_id] = volume
                if fast:
                    heappush(self._heap, self._key[job_id])
                    self._w_accum += density * volume
            else:
                entry = (release, job_id, density, volume)
                pending.insert(bisect_right(pending, entry), entry)
                if fast:
                    assert self._pending_ids is not None
                    self._pending_ids.add(job_id)
        if t > self.clock:
            self._run_loop(t)
        return self.remaining_weight()

    # -- warm start (used by the analytic simulators' resume path) ------------

    def load_state(
        self, clock: float, remaining: list[tuple[int, float, float, float]]
    ) -> None:
        """Seed the shadow from an external checkpoint.

        ``remaining`` is ``(job_id, density, release, volume)`` in the order
        the jobs should occupy the active set.  Must be called before any
        insert or advance."""
        if self._rho or self._pending:
            raise SimulationError("load_state on a non-fresh shadow")
        self.clock = self._t_loop = float(clock)
        for jid, rho, rel, vol in remaining:
            self._rho[jid] = rho
            self._rel[jid] = rel
            self._key[jid] = (-rho, rel, jid)
            self._remaining[jid] = vol
        if self._fast:
            self._heap = [self._key[jid] for jid, _, _, _ in remaining]
            heapify(self._heap)
            self._w_accum = (
                math.fsum(rho * vol for _, rho, _, vol in remaining)
                if remaining
                else 0.0
            )


class PrefixWeightOracle:
    """One incrementally-extended Algorithm C run answering ``W^C(t)`` queries.

    This is the paper's ``W^C(r[j]-)`` pattern (§3, §6): the speed-rule
    offsets of NC-uniform and of the per-machine NC-PAR runs are remaining
    weights of C simulated over an ever-growing prefix of completed jobs.
    Queries and insertions are expected mostly in nondecreasing time order —
    then each query costs only the events since the previous one.  A query or
    insertion that goes backwards in time triggers a from-scratch rebuild
    (counted in :attr:`ShadowCounters.rebuilds`), which reproduces exactly
    what a fresh legacy simulation would report.
    """

    def __init__(
        self,
        alpha: float,
        *,
        s_max: float | None = None,
        counters: ShadowCounters | None = None,
        recorder: TraceRecorder | None = None,
        component: str = "shadow",
        backend: str | KernelBackend | None = None,
    ) -> None:
        self.alpha = alpha
        self.s_max = s_max
        self.counters = counters if counters is not None else ShadowCounters()
        self.component = component
        self.backend = resolve_backend(backend)
        self._recorder = recorder
        self._rec = recorder if (recorder is not None and recorder.enabled) else None
        self._jobs: list[tuple[float, int, float, float]] = []  # (release, id, rho, vol)
        self._shadow = ClairvoyantShadow(
            alpha,
            s_max=s_max,
            counters=self.counters,
            recorder=recorder,
            component=component,
            backend=self.backend,
        )
        self._dirty = False

    def add_job(self, job_id: int, release: float, density: float, volume: float) -> None:
        self._jobs.append((release, job_id, density, volume))
        if self._dirty:
            return
        if release < self._shadow._t_loop * (1.0 - _TIE_TOL) - 1e-300:
            self._dirty = True
        else:
            self._shadow.insert_job(job_id, release, density, volume)

    def _settle(self, t: float) -> ClairvoyantShadow:
        if self._dirty or t < self._shadow.clock:
            self.counters.rebuilds += 1
            if self._rec is not None:
                self._rec.emit(
                    "shadow_rebuild",
                    t,
                    self.component,
                    from_time=self._shadow.clock,
                    jobs=len(self._jobs),
                    reason="dirty" if self._dirty else "time_regression",
                )
            self._shadow = ClairvoyantShadow(
                self.alpha,
                s_max=self.s_max,
                counters=self.counters,
                recorder=self._recorder,
                component=self.component,
                backend=self.backend,
            )
            for release, jid, rho, vol in sorted(self._jobs):
                self._shadow.insert_job(jid, release, rho, vol)
            self._dirty = False
        self._shadow.advance(t)
        return self._shadow

    def weight_at(self, t: float) -> float:
        """``W^C(t)`` over the jobs added so far (left limit at releases ==
        ``t``: a job released exactly at ``t`` counts at full weight)."""
        return self._settle(t).remaining_weight()

    def remaining_items_at(self, t: float) -> list[tuple[int, float, float]]:
        """``(job_id, density, remaining volume)`` of C's live state at ``t``."""
        return self._settle(t).remaining_items()


class SimulationContext:
    """Shared boundary object between the engine and scheduling algorithms.

    Owns the power function, the per-run :class:`ShadowCounters` and (once a
    run starts) the :class:`~repro.core.oracle.VolumeOracle`.  Policies
    receive it via ``SchedulingPolicy.bind`` and obtain their shadow oracles
    from the factories below so all shadow traffic lands in one counter set.
    """

    def __init__(
        self,
        power: PowerFunction,
        *,
        counters: ShadowCounters | None = None,
        recorder: TraceRecorder | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        self.power = power
        self.counters = counters if counters is not None else ShadowCounters()
        #: the run's metrics substrate — counters are a view over it.
        self.metrics = self.counters.registry
        self.recorder: TraceRecorder = recorder if recorder is not None else NULL_RECORDER
        #: the kernel backend every shadow oracle built from this context
        #: runs on (``None`` defers to the ``REPRO_BACKEND`` environment
        #: variable, then the numpy default).
        self.backend: KernelBackend = resolve_backend(backend)
        if self.recorder.enabled:
            # One structured header per run: which backend was selected, its
            # vector width and whether the compiled path was available.
            self.recorder.emit(
                "backend_selected", 0.0, "context", **backend_payload(self.backend)
            )
        self.oracle = None  # set by the engine at run start
        #: fault-injection hooks, wired by :mod:`repro.faults`.  All default
        #: to inert (``None``) so an unfaulted run pays one attribute read.
        #: ``oracle_factory`` lets the engine build a (possibly faulty)
        #: oracle; ``volume_filter`` perturbs volumes revealed to analytic
        #: NC simulators; ``step_interceptor`` corrupts the engine's
        #: per-step processed volume.
        self.oracle_factory: Callable[[Any], Any] | None = None
        self.volume_filter: Callable[[int, float], float] | None = None
        self.step_interceptor: Callable[[float, int, float], float] | None = None

    def reveal_volume(self, job_id: int, volume: float) -> float:
        """Route a completed job's volume reveal through the fault filter.

        Identity when no :attr:`volume_filter` is installed — the analytic
        simulators call this at every completion, so the no-fault path must
        return ``volume`` unchanged (same float object, bit-identical)."""
        f = self.volume_filter
        return volume if f is None else f(job_id, volume)

    # -- checkpoint / restore (supervised runtime) ---------------------------

    def checkpoint(self, label: str = "", sim_time: float = 0.0) -> ContextCheckpoint:
        """Snapshot the context's metrics substrate (counters included,
        since :class:`ShadowCounters` is a view over it).  Deliberately does
        not bump any counter: taking a checkpoint must leave the run's
        observable state untouched."""
        return ContextCheckpoint(
            label=label,
            sim_time=float(sim_time),
            metrics=tuple(self.metrics.values.items()),
        )

    def restore(self, ckpt: ContextCheckpoint) -> None:
        """Restore a :meth:`checkpoint` snapshot in place (the counters view
        stays coherent because the registry dict is mutated, not replaced)."""
        self.metrics.values.clear()
        self.metrics.values.update(dict(ckpt.metrics))
        self.oracle = None

    def emit(self, kind: str, sim_time: float, component: str, **payload: Any) -> None:
        """Guarded convenience emit — a no-op when tracing is off.

        Hot loops should still hoist ``context.recorder`` themselves; this is
        for one-shot emissions (run headers, phase markers)."""
        rec = self.recorder
        if rec.enabled:
            rec.emit(kind, sim_time, component, **payload)

    def _shadow_params(self, power: PowerFunction | None = None) -> tuple[float, float | None]:
        power = self.power if power is None else power
        alpha = getattr(power, "alpha", None)
        if alpha is None:
            raise TypeError(
                f"analytic shadow oracles require a PowerLaw, got {power!r}"
            )
        return alpha, getattr(power, "s_max", None)

    def shadow(
        self,
        *,
        power: PowerFunction | None = None,
        record: Callable[[str, float, float, int, float], None] | None = None,
        component: str = "shadow",
    ) -> ClairvoyantShadow:
        """A fresh :class:`ClairvoyantShadow` wired to this context's counters
        and recorder."""
        alpha, s_max = self._shadow_params(power)
        return ClairvoyantShadow(
            alpha,
            s_max=s_max,
            counters=self.counters,
            record=record,
            recorder=self.recorder,
            component=component,
            backend=self.backend,
        )

    def prefix_oracle(
        self, *, power: PowerFunction | None = None, component: str = "shadow"
    ) -> PrefixWeightOracle:
        """A fresh :class:`PrefixWeightOracle` wired to this context's counters
        and recorder."""
        alpha, s_max = self._shadow_params(power)
        return PrefixWeightOracle(
            alpha,
            s_max=s_max,
            counters=self.counters,
            recorder=self.recorder,
            component=component,
            backend=self.backend,
        )
