"""Standard instance suites for tables and benches.

One place defines which instances the empirical Table-1 ratios are measured
over, so tests, benches and docs agree.  Suites are small enough to run in
seconds yet cover the stress regimes: heavy-tailed volumes, bursts,
staircases, and (for the non-uniform suite) spread-out density classes.
"""

from __future__ import annotations

from ..core.job import Instance
from ..workloads import (
    burst_instance,
    escalating_volumes_instance,
    geometric_density_instance,
    random_instance,
    staircase_instance,
)

__all__ = ["uniform_suite", "nonuniform_suite"]


def uniform_suite(*, n: int = 24, seeds: tuple[int, ...] = (1, 2, 3), alpha: float = 3.0) -> list[tuple[str, Instance]]:
    """Unit-density instances for the §3 rows of Table 1."""
    suite: list[tuple[str, Instance]] = []
    for seed in seeds:
        suite.append((f"poisson-exp[{seed}]", random_instance(n, seed, volume="exponential")))
        suite.append((f"poisson-pareto[{seed}]", random_instance(n, 100 + seed, volume="pareto")))
        suite.append((f"poisson-bimodal[{seed}]", random_instance(n, 200 + seed, volume="bimodal")))
    suite.append(("burst", burst_instance(3, max(n // 3, 1), gap=4.0)))
    suite.append(("staircase", staircase_instance(n, alpha=alpha)))
    suite.append(("escalating", escalating_volumes_instance(min(n, 10))))
    return suite


def nonuniform_suite(
    *, n: int = 8, seeds: tuple[int, ...] = (1, 2), alpha: float = 3.0, beta: float = 5.0
) -> list[tuple[str, Instance]]:
    """Non-uniform-density instances for the §4 rows of Table 1.

    Kept small: Algorithm NC-general integrates numerically with a shadow
    simulation per step.
    """
    suite: list[tuple[str, Instance]] = []
    for seed in seeds:
        suite.append(
            (f"loguniform[{seed}]", random_instance(n, 300 + seed, volume="uniform", density="loguniform"))
        )
        suite.append(
            (
                f"powers[{seed}]",
                random_instance(
                    n, 400 + seed, volume="uniform", density="powers", density_params={"beta": beta}
                ),
            )
        )
    suite.append(("geometric", geometric_density_instance(min(n, 5), rho=beta, alpha=alpha)))
    return suite
