"""Tests for the §5 black-box fractional -> integral reduction (Lemma 15)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Job, PowerLaw
from repro.algorithms.integral_conversion import convert, to_integral_schedule
from repro.algorithms.nc_uniform import simulate_nc_uniform
from repro.algorithms.clairvoyant import simulate_clairvoyant

from conftest import uniform_instances

epsilons = st.floats(min_value=0.05, max_value=2.0, allow_nan=False)


class TestConstruction:
    def test_rejects_nonpositive_epsilon(self, cube, three_jobs):
        sched = simulate_nc_uniform(three_jobs, cube).schedule
        with pytest.raises(ValueError):
            to_integral_schedule(sched, three_jobs, 0.0)

    def test_aint_processes_full_volumes(self, cube, three_jobs):
        sched = simulate_nc_uniform(three_jobs, cube).schedule
        integral = to_integral_schedule(sched, three_jobs, 0.5)
        for job in three_jobs:
            assert integral.processed_volume(job.job_id) == pytest.approx(job.volume, rel=1e-9)

    def test_aint_completion_at_fraction_of_afrac(self, cube):
        """A_int finishes j exactly when A_frac has processed V/(1+eps)."""
        eps = 0.5
        inst = Instance([Job(0, 0.0, 3.0)])
        frac = simulate_nc_uniform(inst, cube).schedule
        integral = to_integral_schedule(frac, inst, eps)
        t_int = integral.completion_time(0, 3.0)
        frac_done = frac.processed_volume_until(0, t_int)
        assert frac_done == pytest.approx(3.0 / (1 + eps), rel=1e-9)

    def test_aint_idles_after_finishing(self, cube):
        eps = 1.0
        inst = Instance([Job(0, 0.0, 2.0)])
        frac = simulate_nc_uniform(inst, cube).schedule
        integral = to_integral_schedule(frac, inst, eps)
        # A_int is done strictly before A_frac; after that it is idle.
        t_int = integral.completion_time(0, 2.0)
        assert t_int < frac.completion_time(0, 2.0)
        assert integral.speed_at(t_int + (frac.end_time - t_int) / 2) == 0.0

    def test_processed_weight_coupling(self, cube, three_jobs):
        """Everywhere in time: vol_int(t) == min((1+eps) * vol_frac(t), V)."""
        eps = 0.3
        frac = simulate_nc_uniform(three_jobs, cube).schedule
        integral = to_integral_schedule(frac, three_jobs, eps)
        for t in [0.5, 1.0, 1.7, 2.5, 4.0]:
            for job in three_jobs:
                vf = frac.processed_volume_until(job.job_id, t)
                vi = integral.processed_volume_until(job.job_id, t)
                assert vi == pytest.approx(min((1 + eps) * vf, job.volume), rel=1e-7, abs=1e-9)


class TestLemma15Bounds:
    @given(uniform_instances(max_jobs=6), epsilons)
    @settings(max_examples=30, deadline=None)
    def test_energy_bound(self, inst, eps):
        power = PowerLaw(3.0)
        sched = simulate_nc_uniform(inst, power).schedule
        conv = convert(sched, inst, power, eps)
        assert conv.integral_report.energy <= (1 + eps) ** 3 * conv.fractional_report.energy * (
            1 + 1e-9
        )

    @given(uniform_instances(max_jobs=6), epsilons)
    @settings(max_examples=30, deadline=None)
    def test_integral_flow_bound(self, inst, eps):
        """F_int(A_int) <= (1 + 1/eps) * F_frac(A_frac)."""
        power = PowerLaw(3.0)
        sched = simulate_nc_uniform(inst, power).schedule
        conv = convert(sched, inst, power, eps)
        bound = (1 + 1 / eps) * conv.fractional_report.fractional_flow
        assert conv.integral_report.integral_flow <= bound * (1 + 1e-9)

    @given(uniform_instances(max_jobs=5), epsilons)
    @settings(max_examples=20, deadline=None)
    def test_objective_bound(self, inst, eps):
        """G_int(A_int) <= max((1+eps)^alpha, 1 + 1/eps) * G_frac(A_frac)."""
        alpha = 3.0
        power = PowerLaw(alpha)
        sched = simulate_nc_uniform(inst, power).schedule
        conv = convert(sched, inst, power, eps)
        factor = max((1 + eps) ** alpha, 1 + 1 / eps)
        assert (
            conv.integral_report.integral_objective
            <= factor * conv.fractional_report.fractional_objective * (1 + 1e-9)
        )

    def test_ratio_properties_reported(self, cube, three_jobs):
        sched = simulate_nc_uniform(three_jobs, cube).schedule
        conv = convert(sched, three_jobs, cube, 0.5)
        assert conv.energy_ratio <= 1.5**3 + 1e-9
        assert conv.flow_ratio > 0


class TestWorksOnClairvoyantSchedules:
    """The reduction is schedule-level: it applies to any algorithm."""

    @given(uniform_instances(max_jobs=5))
    @settings(max_examples=15, deadline=None)
    def test_on_algorithm_c(self, inst):
        power = PowerLaw(2.0)
        sched = simulate_clairvoyant(inst, power).schedule
        conv = convert(sched, inst, power, 0.5)
        assert conv.integral_report.energy <= 1.5**2 * conv.fractional_report.energy * (1 + 1e-9)
        bound = 3.0 * conv.fractional_report.fractional_flow
        assert conv.integral_report.integral_flow <= bound * (1 + 1e-9)
