"""Tests for Algorithm NC-general (§4): density rounding + eta-scaled shadow
speed, run on the numeric engine."""

from __future__ import annotations

import math

import pytest

from repro import Instance, Job, PowerLaw
from repro.algorithms.clairvoyant import simulate_clairvoyant
from repro.algorithms.nc_general import NCGeneralPolicy, eta_threshold, simulate_nc_general
from repro.core.metrics import evaluate
from repro.offline.bounds import opt_fractional_lower_bound


class TestEtaThreshold:
    def test_alpha_three_value(self):
        """Derived closed form: (3/2)^{3/2} * 2^{1/2} = 3*sqrt(3)/2."""
        assert eta_threshold(3.0) == pytest.approx(3.0 * math.sqrt(3.0) / 2.0, rel=1e-12)

    def test_alpha_two_value(self):
        assert eta_threshold(2.0) == pytest.approx(4.0, rel=1e-12)

    def test_decreasing_in_alpha(self):
        assert eta_threshold(2.0) > eta_threshold(3.0) > eta_threshold(5.0) > 1.0

    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(ValueError):
            eta_threshold(1.0)

    def test_default_eta_above_threshold(self):
        pol = NCGeneralPolicy(PowerLaw(3.0))
        assert pol.eta > eta_threshold(3.0)


class TestPolicyValidation:
    def test_rejects_eta_below_one(self):
        with pytest.raises(ValueError):
            NCGeneralPolicy(PowerLaw(3.0), eta=0.5)

    def test_rejects_beta_at_most_one(self):
        with pytest.raises(ValueError):
            NCGeneralPolicy(PowerLaw(3.0), beta=1.0)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            NCGeneralPolicy(PowerLaw(3.0), epsilon=0.0)

    def test_requires_power_law(self):
        from repro.core.power import TabulatedPower

        tab = TabulatedPower([0.0, 1.0], [0.0, 1.0])
        with pytest.raises(TypeError):
            NCGeneralPolicy(tab)  # type: ignore[arg-type]


class TestSingleJob:
    def test_completes_and_is_valid(self, cube):
        inst = Instance([Job(0, 0.0, 2.0, 1.0)])
        run = simulate_nc_general(inst, cube, max_step=2e-3)
        rep = evaluate(run.schedule, inst, cube)  # validates volumes
        assert rep.energy > 0

    def test_constant_ratio_vs_opt(self, cube):
        """The single-job ratio is a constant depending only on alpha/eta
        (the c2 self-similar curve); assert it stays under a generous cap."""
        inst = Instance([Job(0, 0.0, 2.0, 1.0)])
        run = simulate_nc_general(inst, cube, max_step=2e-3)
        rep = evaluate(run.schedule, inst, cube)
        lb = opt_fractional_lower_bound(inst, cube)
        assert rep.fractional_objective / lb.value < 3.0 * run.eta**3

    def test_scale_invariance_of_ratio(self, cube):
        """The self-similar dynamics make the cost ratio volume-independent."""
        ratios = []
        for v in (0.5, 4.0):
            inst = Instance([Job(0, 0.0, v, 1.0)])
            rep = evaluate(simulate_nc_general(inst, cube, max_step=1e-3).schedule, inst, cube)
            lb = opt_fractional_lower_bound(inst, cube)
            ratios.append(rep.fractional_objective / lb.value)
        assert ratios[0] == pytest.approx(ratios[1], rel=5e-2)


class TestScheduling:
    def test_hdf_on_rounded_densities(self, cube):
        """A job one *rounded* class above preempts; within a class FIFO wins
        even if the raw density is slightly higher."""
        # densities 6 and 7 share class (beta=5): FIFO; density 26 is higher class.
        inst = Instance(
            [Job(0, 0.0, 1.0, 6.0), Job(1, 0.1, 1.0, 7.0), Job(2, 0.2, 0.3, 26.0)]
        )
        run = simulate_nc_general(inst, cube, beta=5.0, max_step=2e-3)
        # Job 2 (higher class, released last) completes before job 1 (same
        # class as job 0 but later release).
        assert run.completion_time(2) < run.completion_time(1)
        assert run.completion_time(0) < run.completion_time(1)

    def test_completes_all_jobs(self, cube, mixed_density_jobs):
        run = simulate_nc_general(mixed_density_jobs, cube, max_step=5e-3)
        rep = evaluate(run.schedule, mixed_density_jobs, cube)
        assert set(rep.completion_times) == set(mixed_density_jobs.job_ids)

    def test_ratio_vs_clairvoyant_bounded(self, cube, mixed_density_jobs):
        run = simulate_nc_general(mixed_density_jobs, cube, max_step=5e-3)
        rg = evaluate(run.schedule, mixed_density_jobs, cube)
        rc = evaluate(
            simulate_clairvoyant(mixed_density_jobs, cube).schedule, mixed_density_jobs, cube
        )
        # 2^{O(alpha)} constant: at alpha=3 with default eta the blow-up is
        # dominated by eta^alpha ~ 38; leave headroom.
        assert rg.fractional_objective / rc.fractional_objective < 60.0

    def test_convergence_in_max_step(self, cube):
        inst = Instance([Job(0, 0.0, 1.0, 1.0), Job(1, 0.3, 0.5, 5.0)])
        costs = []
        for h in (2e-2, 5e-3, 1.25e-3):
            run = simulate_nc_general(inst, cube, max_step=h)
            costs.append(evaluate(run.schedule, inst, cube).fractional_objective)
        # Successive refinements approach a limit.
        assert abs(costs[2] - costs[1]) < abs(costs[1] - costs[0])

    def test_eta_recorded_in_run(self, cube):
        inst = Instance([Job(0, 0.0, 0.5, 1.0)])
        run = simulate_nc_general(inst, cube, eta=4.0, max_step=5e-3)
        assert run.eta == 4.0

    def test_larger_eta_finishes_sooner(self, cube):
        inst = Instance([Job(0, 0.0, 1.0, 1.0)])
        fast = simulate_nc_general(inst, cube, eta=6.0, max_step=2e-3)
        slow = simulate_nc_general(inst, cube, eta=3.0, max_step=2e-3)
        assert fast.completion_time(0) < slow.completion_time(0)


class TestCurrentInstance:
    def test_current_instance_tracks_processed_volume(self, cube):
        pol = NCGeneralPolicy(cube)
        pol.on_release(0.0, 0, 2.0)
        pol.on_release(0.5, 1, 10.0)
        inst = pol.current_instance({0: 0.7, 1: 0.0})
        assert inst is not None
        assert inst.job_ids == (0,)
        assert inst[0].volume == pytest.approx(0.7)
        # density is rounded down to a power of beta=5: class 0 -> 1.0
        assert inst[0].density == pytest.approx(1.0)

    def test_empty_current_instance(self, cube):
        pol = NCGeneralPolicy(cube)
        pol.on_release(0.0, 0, 1.0)
        assert pol.current_instance({0: 0.0}) is None


class TestShadowCheckpoints:
    def test_bit_identical_with_and_without(self, cube):
        """The checkpointed shadow runs must not change results at all."""
        from repro.core.engine import NumericEngine
        from repro.core.metrics import evaluate
        from repro.workloads import random_instance

        inst = random_instance(8, 23, volume="uniform", density="loguniform")

        def run(ckpt: bool) -> float:
            pol = NCGeneralPolicy(cube, use_checkpoints=ckpt)
            res = NumericEngine(cube, max_step=2e-2, min_step=1e-14).run(inst, pol)
            return evaluate(res.schedule, inst, cube).fractional_objective

        assert run(True) == run(False)

    def test_resume_matches_cold_run(self, cube):
        """simulate_clairvoyant(resume=...) continues exactly where a cold run
        left off."""
        from repro.algorithms.clairvoyant import simulate_clairvoyant

        inst = Instance(
            [Job(0, 0.0, 3.0, 1.0), Job(1, 0.7, 1.0, 5.0), Job(2, 1.4, 2.0, 1.0)]
        )
        t0 = 1.0
        cold_mid = simulate_clairvoyant(inst, cube, until=t0)
        warm = simulate_clairvoyant(inst, cube, resume=(t0, dict(cold_mid.remaining)))
        cold = simulate_clairvoyant(inst, cube)
        assert warm.schedule.end_time == pytest.approx(cold.schedule.end_time, rel=1e-12)
        # The warm schedule covers [t0, end): its per-job volumes equal the
        # cold run's post-t0 volumes, i.e. the checkpoint remainders.
        for jid in inst.job_ids:
            post = cold.schedule.processed_volume(jid) - cold.schedule.processed_volume_until(
                jid, t0
            )
            assert warm.schedule.processed_volume(jid) == pytest.approx(
                post, rel=1e-9, abs=1e-12
            )

    def test_resume_skips_completed_prefix_jobs(self, cube):
        from repro.algorithms.clairvoyant import simulate_clairvoyant

        # Job 0 completed before the checkpoint; only job 1 remains.
        inst = Instance([Job(0, 0.0, 0.1, 1.0), Job(1, 5.0, 1.0, 1.0)])
        run = simulate_clairvoyant(inst, cube, resume=(1.0, {}))
        assert run.schedule.processed_volume(0) == 0.0
        assert run.schedule.processed_volume(1) == pytest.approx(1.0)

    def test_resume_does_not_readmit_checkpointed_jobs(self, cube):
        from repro.algorithms.clairvoyant import simulate_clairvoyant

        inst = Instance([Job(0, 0.0, 2.0, 1.0)])
        # Checkpoint says half of job 0 is left at t=1.
        run = simulate_clairvoyant(inst, cube, resume=(1.0, {0: 1.0}))
        assert run.schedule.processed_volume(0) == pytest.approx(1.0)
