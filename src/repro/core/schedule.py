"""Exact schedule representation.

A :class:`Schedule` is a time-ordered sequence of non-overlapping
:class:`Segment` s on one machine.  Each segment records *which job* ran and
the *analytic speed profile* it ran with, so downstream metrics (energy,
volume, fractional flow-time) are computed in closed form instead of by
re-sampling a trajectory:

* :class:`IdleSegment` — machine off.
* :class:`ConstantSegment` — constant speed (the numeric engine emits these).
* :class:`DecaySegment` — the Algorithm C profile: speed ``X(t)**(1/alpha)``
  with the weight-like quantity ``X`` *decaying* as ``dX/dt = -rho X**(1/alpha)``.
* :class:`GrowthSegment` — the Algorithm NC profile: same but *growing*.

Decay/Growth segments are only meaningful under ``P(s) = s**alpha`` with the
matching ``alpha`` (the profile embeds the power-equals-weight rule); their
``energy`` methods verify this and fall back to quadrature for other power
functions.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator

from scipy.integrate import quad

from . import kernels
from .errors import ScheduleError
from .power import PowerFunction, PowerLaw

__all__ = [
    "Segment",
    "IdleSegment",
    "ConstantSegment",
    "DecaySegment",
    "GrowthSegment",
    "ScaledSegment",
    "Schedule",
    "ScheduleBuilder",
]

_REL_TOL = 1e-9


@dataclass(frozen=True)
class Segment(ABC):
    """A maximal interval ``[t0, t1]`` during which one job (or nothing) runs
    with a single analytic speed profile."""

    t0: float
    t1: float
    job_id: int | None

    def __post_init__(self) -> None:
        if not (math.isfinite(self.t0) and math.isfinite(self.t1)):
            raise ScheduleError(f"segment endpoints must be finite: [{self.t0}, {self.t1}]")
        if self.t1 < self.t0:
            raise ScheduleError(f"segment must have t1 >= t0: [{self.t0}, {self.t1}]")

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @abstractmethod
    def speed_at(self, t: float) -> float:
        """Machine speed at absolute time ``t`` in ``[t0, t1]``."""

    @abstractmethod
    def volume(self) -> float:
        """Total volume processed over the whole segment (``∫ s dt``)."""

    @abstractmethod
    def volume_until(self, tau: float) -> float:
        """Volume processed in the first ``tau`` time units of the segment."""

    @abstractmethod
    def time_to_volume(self, v: float) -> float:
        """Local time offset at which the segment has processed volume ``v``."""

    @abstractmethod
    def energy(self, power: PowerFunction) -> float:
        """Energy ``∫ P(s(t)) dt`` over the segment."""

    @abstractmethod
    def flow_integral(self, tau: float) -> float:
        """``∫_0^tau volume_until(t) dt`` — the double integral needed for
        exact fractional flow-time accounting within the segment."""

    @abstractmethod
    def subsegment(self, la: float, lb: float) -> "Segment":
        """The restriction of this segment to local times ``[la, lb]`` as a
        standalone segment (absolute times preserved)."""

    def _local(self, t: float) -> float:
        if t < self.t0 - _REL_TOL * max(1.0, abs(self.t0)) or t > self.t1 + _REL_TOL * max(1.0, abs(self.t1)):
            raise ScheduleError(f"time {t} outside segment [{self.t0}, {self.t1}]")
        return min(max(t - self.t0, 0.0), self.duration)

    def _clip(self, la: float, lb: float) -> tuple[float, float]:
        la = min(max(la, 0.0), self.duration)
        lb = min(max(lb, 0.0), self.duration)
        if lb < la:
            raise ScheduleError(f"invalid subsegment window [{la}, {lb}]")
        return la, lb


@dataclass(frozen=True)
class IdleSegment(Segment):
    """The machine is off: speed 0, no job. ``job_id`` is always ``None``."""

    job_id: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.job_id is not None:
            raise ScheduleError("IdleSegment cannot carry a job")

    def speed_at(self, t: float) -> float:
        self._local(t)
        return 0.0

    def volume(self) -> float:
        return 0.0

    def volume_until(self, tau: float) -> float:
        return 0.0

    def time_to_volume(self, v: float) -> float:
        if v > 0:
            raise ScheduleError("idle segment processes no volume")
        return 0.0

    def energy(self, power: PowerFunction) -> float:
        return 0.0

    def flow_integral(self, tau: float) -> float:
        return 0.0

    def subsegment(self, la: float, lb: float) -> "IdleSegment":
        la, lb = self._clip(la, lb)
        return IdleSegment(self.t0 + la, self.t0 + lb, None)


@dataclass(frozen=True)
class ConstantSegment(Segment):
    """Constant speed ``s`` on one job."""

    speed: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.speed < 0 or not math.isfinite(self.speed):
            raise ScheduleError(f"speed must be finite >= 0, got {self.speed}")
        if self.job_id is None and self.speed > 0:
            raise ScheduleError("positive speed requires a job")

    def speed_at(self, t: float) -> float:
        self._local(t)
        return self.speed

    def volume(self) -> float:
        return self.speed * self.duration

    def volume_until(self, tau: float) -> float:
        return self.speed * min(max(tau, 0.0), self.duration)

    def time_to_volume(self, v: float) -> float:
        if v < 0 or v > self.volume() * (1 + 1e-9):
            raise ScheduleError(f"volume {v} outside segment range {self.volume()}")
        if self.speed == 0:
            return 0.0
        return min(v / self.speed, self.duration)

    def energy(self, power: PowerFunction) -> float:
        return power.power(self.speed) * self.duration

    def flow_integral(self, tau: float) -> float:
        tau = min(max(tau, 0.0), self.duration)
        return 0.5 * self.speed * tau * tau

    def subsegment(self, la: float, lb: float) -> "ConstantSegment":
        la, lb = self._clip(la, lb)
        return ConstantSegment(self.t0 + la, self.t0 + lb, self.job_id, self.speed)


@dataclass(frozen=True)
class _PowerLawSegment(Segment):
    """Shared plumbing for the decay/growth profiles."""

    x0: float = 0.0  # weight-like state at t0
    rho: float = 1.0  # density of the job driving the dynamics
    alpha: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.x0 < 0 or not math.isfinite(self.x0):
            raise ScheduleError(f"x0 must be finite >= 0, got {self.x0}")
        if self.rho <= 0 or self.alpha <= 1:
            raise ScheduleError(f"need rho > 0 and alpha > 1, got rho={self.rho}, alpha={self.alpha}")
        if self.job_id is None:
            raise ScheduleError("power-law segments must process a job")

    def _numeric_energy(self, power: PowerFunction) -> float:
        val, _ = quad(lambda t: power.power(self.speed_at(self.t0 + t)), 0.0, self.duration, limit=200)
        return float(val)

    def _matches(self, power: PowerFunction) -> bool:
        return isinstance(power, PowerLaw) and math.isclose(power.alpha, self.alpha, rel_tol=1e-12)


@dataclass(frozen=True)
class DecaySegment(_PowerLawSegment):
    """Algorithm C's profile: ``X`` decays from ``x0``; speed ``X**(1/alpha)``.

    ``X`` is the machine's total remaining weight under the power-equals-weight
    rule; the processed job has density ``rho``.
    """

    def weight_at(self, t: float) -> float:
        """The weight-like state ``X`` at absolute time ``t``."""
        return kernels.decay_weight_after(self.x0, self.rho, self._local(t), self.alpha)

    def speed_at(self, t: float) -> float:
        return kernels.speed_at(self.weight_at(t), self.alpha)

    def volume(self) -> float:
        return self.volume_until(self.duration)

    def volume_until(self, tau: float) -> float:
        tau = min(max(tau, 0.0), self.duration)
        x = kernels.decay_weight_after(self.x0, self.rho, tau, self.alpha)
        return (self.x0 - x) / self.rho

    def time_to_volume(self, v: float) -> float:
        if v < 0 or v > self.volume() * (1 + 1e-9):
            raise ScheduleError(f"volume {v} outside segment range {self.volume()}")
        target = max(self.x0 - self.rho * v, 0.0)
        return min(kernels.decay_time_between(self.x0, target, self.rho, self.alpha), self.duration)

    def energy(self, power: PowerFunction) -> float:
        if self._matches(power):
            x_end = kernels.decay_weight_after(self.x0, self.rho, self.duration, self.alpha)
            return kernels.decay_energy_between(self.x0, x_end, self.rho, self.alpha)
        return self._numeric_energy(power)

    def flow_integral(self, tau: float) -> float:
        tau = min(max(tau, 0.0), self.duration)
        return kernels.decay_flow_integral(self.x0, self.rho, tau, self.alpha)

    def subsegment(self, la: float, lb: float) -> "DecaySegment":
        la, lb = self._clip(la, lb)
        x_la = kernels.decay_weight_after(self.x0, self.rho, la, self.alpha)
        return DecaySegment(self.t0 + la, self.t0 + lb, self.job_id, x_la, self.rho, self.alpha)


@dataclass(frozen=True)
class GrowthSegment(_PowerLawSegment):
    """Algorithm NC's profile: ``X`` grows from ``x0``; speed ``X**(1/alpha)``.

    ``X`` is the paper's ``W^C(r[j]-) + W̆[j](t)``; the processed job has
    density ``rho``.
    """

    def weight_at(self, t: float) -> float:
        return kernels.growth_weight_after(self.x0, self.rho, self._local(t), self.alpha)

    def speed_at(self, t: float) -> float:
        return kernels.speed_at(self.weight_at(t), self.alpha)

    def volume(self) -> float:
        return self.volume_until(self.duration)

    def volume_until(self, tau: float) -> float:
        tau = min(max(tau, 0.0), self.duration)
        x = kernels.growth_weight_after(self.x0, self.rho, tau, self.alpha)
        return (x - self.x0) / self.rho

    def time_to_volume(self, v: float) -> float:
        if v < 0 or v > self.volume() * (1 + 1e-9):
            raise ScheduleError(f"volume {v} outside segment range {self.volume()}")
        return min(
            kernels.growth_time_between(self.x0, self.x0 + self.rho * v, self.rho, self.alpha),
            self.duration,
        )

    def energy(self, power: PowerFunction) -> float:
        if self._matches(power):
            x_end = kernels.growth_weight_after(self.x0, self.rho, self.duration, self.alpha)
            return kernels.growth_energy_between(self.x0, x_end, self.rho, self.alpha)
        return self._numeric_energy(power)

    def flow_integral(self, tau: float) -> float:
        tau = min(max(tau, 0.0), self.duration)
        return kernels.growth_flow_integral(self.x0, self.rho, tau, self.alpha)

    def subsegment(self, la: float, lb: float) -> "GrowthSegment":
        la, lb = self._clip(la, lb)
        x_la = kernels.growth_weight_after(self.x0, self.rho, la, self.alpha)
        return GrowthSegment(self.t0 + la, self.t0 + lb, self.job_id, x_la, self.rho, self.alpha)


@dataclass(frozen=True)
class ScaledSegment(Segment):
    """A segment whose speed is ``factor`` times a base segment's speed at the
    same wall-clock instant.

    This is exactly the schedule transformation of the §5 black-box reduction
    (Lemma 15): ``A_int`` runs at ``(1+eps)`` times ``A_frac``'s speed over the
    same time window.  The base segment must span the same ``[t0, t1]``.
    """

    base: Segment = None  # type: ignore[assignment]
    factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base is None:
            raise ScheduleError("ScaledSegment requires a base segment")
        if not (self.factor > 0 and math.isfinite(self.factor)):
            raise ScheduleError(f"factor must be finite > 0, got {self.factor}")
        if not (
            math.isclose(self.base.t0, self.t0, rel_tol=1e-12, abs_tol=1e-12)
            and math.isclose(self.base.t1, self.t1, rel_tol=1e-12, abs_tol=1e-12)
        ):
            raise ScheduleError("ScaledSegment must span the same window as its base")

    def speed_at(self, t: float) -> float:
        return self.factor * self.base.speed_at(t)

    def volume(self) -> float:
        return self.factor * self.base.volume()

    def volume_until(self, tau: float) -> float:
        return self.factor * self.base.volume_until(tau)

    def time_to_volume(self, v: float) -> float:
        return self.base.time_to_volume(v / self.factor)

    def energy(self, power: PowerFunction) -> float:
        if isinstance(power, PowerLaw):
            # P(c*s) = c**alpha * P(s), so the energy scales by c**alpha.
            return self.factor**power.alpha * self.base.energy(power)
        val, _ = quad(lambda t: power.power(self.speed_at(self.t0 + t)), 0.0, self.duration, limit=200)
        return float(val)

    def flow_integral(self, tau: float) -> float:
        return self.factor * self.base.flow_integral(tau)

    def subsegment(self, la: float, lb: float) -> "ScaledSegment":
        la, lb = self._clip(la, lb)
        sub = self.base.subsegment(la, lb)
        return ScaledSegment(sub.t0, sub.t1, self.job_id, sub, self.factor)


class Schedule:
    """An immutable, time-ordered, gap-explicit sequence of segments.

    Gaps between consecutive segments are permitted (treated as idle); overlap
    is not.  Use :class:`ScheduleBuilder` to construct one incrementally.
    """

    def __init__(self, segments: Iterable[Segment]) -> None:
        segs = [s for s in segments if s.duration > 0]
        segs.sort(key=lambda s: s.t0)
        for a, b in zip(segs, segs[1:]):
            if b.t0 < a.t1 - _REL_TOL * max(1.0, abs(a.t1)):
                raise ScheduleError(f"segments overlap: [{a.t0},{a.t1}] then [{b.t0},{b.t1}]")
        self._segments: tuple[Segment, ...] = tuple(segs)

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def segments(self) -> tuple[Segment, ...]:
        return self._segments

    @property
    def end_time(self) -> float:
        return self._segments[-1].t1 if self._segments else 0.0

    # -- queries -------------------------------------------------------------

    def job_segments(self, job_id: int) -> tuple[Segment, ...]:
        return tuple(s for s in self._segments if s.job_id == job_id)

    def processed_volume(self, job_id: int) -> float:
        return sum(s.volume() for s in self.job_segments(job_id))

    def processed_volume_until(self, job_id: int, t: float) -> float:
        """Volume of ``job_id`` processed by absolute time ``t``."""
        total = 0.0
        for s in self._segments:
            if s.job_id != job_id:
                continue
            if s.t1 <= t:
                total += s.volume()
            elif s.t0 < t:
                total += s.volume_until(t - s.t0)
        return total

    def completion_time(self, job_id: int, volume: float) -> float:
        """The time at which cumulative processed volume of ``job_id`` first
        reaches ``volume`` (within relative tolerance)."""
        remaining = volume
        last_end: float | None = None
        for s in self._segments:
            if s.job_id != job_id:
                continue
            v = s.volume()
            if v >= remaining * (1 - 1e-9):
                return s.t0 + s.time_to_volume(min(remaining, v))
            remaining -= v
            last_end = s.t1
        if last_end is not None and remaining <= 1e-6 * max(1.0, volume):
            # Accumulated float shortfall across many segments; the job is
            # complete for every practical purpose at its last touch.
            return last_end
        raise ScheduleError(
            f"job {job_id} never accumulates volume {volume} "
            f"(processed {self.processed_volume(job_id)})"
        )

    def speed_at(self, t: float) -> float:
        """Machine speed at absolute time ``t`` (0 in gaps / outside)."""
        for s in self._segments:
            if s.t0 <= t <= s.t1:
                return s.speed_at(t)
        return 0.0

    def job_at(self, t: float) -> int | None:
        """The job running at absolute time ``t`` (``None`` when idle).

        At segment boundaries the later segment wins, matching the convention
        that completions happen at the instant the boundary is reached.
        """
        answer: int | None = None
        for s in self._segments:
            if s.t0 <= t < s.t1:
                answer = s.job_id
        return answer


class ScheduleBuilder:
    """Incremental, append-only construction of a :class:`Schedule`."""

    def __init__(self) -> None:
        self._segments: list[Segment] = []
        self._clock = 0.0

    @property
    def clock(self) -> float:
        return self._clock

    def append(self, segment: Segment) -> None:
        if segment.t0 < self._clock - _REL_TOL * max(1.0, self._clock):
            raise ScheduleError(
                f"segment starts at {segment.t0} before builder clock {self._clock}"
            )
        if segment.duration > 0:
            self._segments.append(segment)
        self._clock = max(self._clock, segment.t1)

    def build(self) -> Schedule:
        return Schedule(self._segments)
