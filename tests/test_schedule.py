"""Unit and property tests for segments and schedules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.integrate import quad

from repro import PowerLaw
from repro.core.errors import ScheduleError
from repro.core.power import TabulatedPower
from repro.core.schedule import (
    ConstantSegment,
    DecaySegment,
    GrowthSegment,
    IdleSegment,
    ScaledSegment,
    Schedule,
    ScheduleBuilder,
)

from conftest import alphas

pos = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)


class TestIdleSegment:
    def test_basics(self):
        s = IdleSegment(1.0, 3.0, None)
        assert s.duration == 2.0
        assert s.speed_at(2.0) == 0.0
        assert s.volume() == 0.0
        assert s.energy(PowerLaw(3.0)) == 0.0
        assert s.flow_integral(1.0) == 0.0

    def test_rejects_job(self):
        with pytest.raises(ScheduleError):
            IdleSegment(0.0, 1.0, 5)

    def test_rejects_reversed_times(self):
        with pytest.raises(ScheduleError):
            IdleSegment(2.0, 1.0, None)

    def test_time_to_volume(self):
        s = IdleSegment(0.0, 1.0, None)
        assert s.time_to_volume(0.0) == 0.0
        with pytest.raises(ScheduleError):
            s.time_to_volume(0.5)

    def test_subsegment(self):
        s = IdleSegment(0.0, 4.0, None).subsegment(1.0, 2.0)
        assert (s.t0, s.t1) == (1.0, 2.0)


class TestConstantSegment:
    def test_volume_and_energy(self):
        s = ConstantSegment(0.0, 2.0, 1, 3.0)
        assert s.volume() == pytest.approx(6.0)
        assert s.energy(PowerLaw(2.0)) == pytest.approx(18.0)

    def test_volume_until_and_inverse(self):
        s = ConstantSegment(0.0, 2.0, 1, 3.0)
        assert s.volume_until(0.5) == pytest.approx(1.5)
        assert s.time_to_volume(1.5) == pytest.approx(0.5)

    def test_flow_integral(self):
        s = ConstantSegment(0.0, 2.0, 1, 3.0)
        assert s.flow_integral(2.0) == pytest.approx(0.5 * 3.0 * 4.0)

    def test_rejects_speed_without_job(self):
        with pytest.raises(ScheduleError):
            ConstantSegment(0.0, 1.0, None, 1.0)

    def test_zero_speed_time_to_volume(self):
        s = ConstantSegment(0.0, 1.0, 1, 0.0)
        assert s.time_to_volume(0.0) == 0.0

    def test_speed_at_outside_raises(self):
        s = ConstantSegment(0.0, 1.0, 1, 1.0)
        with pytest.raises(ScheduleError):
            s.speed_at(5.0)

    def test_subsegment(self):
        sub = ConstantSegment(0.0, 2.0, 1, 3.0).subsegment(0.5, 1.5)
        assert (sub.t0, sub.t1, sub.speed) == (0.5, 1.5, 3.0)


class TestPowerLawSegments:
    @given(pos, st.floats(min_value=0.2, max_value=5.0), alphas)
    @settings(max_examples=40, deadline=None)
    def test_decay_energy_closed_form_matches_quadrature(self, w0, rho, alpha):
        power = PowerLaw(alpha)
        from repro.core.kernels import decay_time_to_zero

        t1 = 0.8 * decay_time_to_zero(w0, rho, alpha)
        seg = DecaySegment(0.0, t1, 1, w0, rho, alpha)
        num, _ = quad(lambda t: power.power(seg.speed_at(t)), 0.0, t1, limit=200)
        assert seg.energy(power) == pytest.approx(num, rel=1e-6)

    @given(pos, st.floats(min_value=0.2, max_value=5.0), alphas)
    @settings(max_examples=40, deadline=None)
    def test_growth_volume_until_inverse(self, u0, rho, alpha):
        seg = GrowthSegment(0.0, 2.0, 1, u0, rho, alpha)
        v = seg.volume() * 0.37
        tau = seg.time_to_volume(v)
        assert seg.volume_until(tau) == pytest.approx(v, rel=1e-9)

    @given(pos, st.floats(min_value=0.2, max_value=5.0), alphas)
    @settings(max_examples=40, deadline=None)
    def test_decay_volume_until_inverse(self, w0, rho, alpha):
        from repro.core.kernels import decay_time_to_zero

        t1 = 0.9 * decay_time_to_zero(w0, rho, alpha)
        seg = DecaySegment(0.0, t1, 1, w0, rho, alpha)
        v = seg.volume() * 0.61
        tau = seg.time_to_volume(v)
        assert seg.volume_until(tau) == pytest.approx(v, rel=1e-9)

    def test_decay_weight_at_endpoints(self):
        seg = DecaySegment(1.0, 2.0, 1, 8.0, 1.0, 3.0)
        assert seg.weight_at(1.0) == pytest.approx(8.0)
        assert seg.weight_at(2.0) < 8.0

    def test_growth_speed_increases(self):
        seg = GrowthSegment(0.0, 2.0, 1, 1.0, 1.0, 3.0)
        assert seg.speed_at(2.0) > seg.speed_at(0.0)

    def test_decay_speed_decreases(self):
        seg = DecaySegment(0.0, 1.0, 1, 8.0, 1.0, 3.0)
        assert seg.speed_at(1.0) < seg.speed_at(0.0)

    def test_requires_job(self):
        with pytest.raises(ScheduleError):
            DecaySegment(0.0, 1.0, None, 1.0, 1.0, 3.0)

    def test_energy_numeric_fallback_for_other_power(self):
        seg = GrowthSegment(0.0, 1.0, 1, 1.0, 1.0, 3.0)
        tab = TabulatedPower([0.0, 1.0, 2.0, 4.0], [0.0, 1.0, 8.0, 64.0])
        # Fallback is quadrature; just verify it is finite and positive.
        assert seg.energy(tab) > 0

    def test_subsegment_continuity(self):
        seg = GrowthSegment(0.0, 2.0, 1, 1.0, 1.0, 3.0)
        sub = seg.subsegment(0.5, 1.5)
        assert sub.speed_at(0.7) == pytest.approx(seg.speed_at(0.7), rel=1e-12)
        assert sub.volume() == pytest.approx(
            seg.volume_until(1.5) - seg.volume_until(0.5), rel=1e-9
        )

    def test_decay_subsegment_continuity(self):
        seg = DecaySegment(0.0, 1.0, 1, 8.0, 1.0, 3.0)
        sub = seg.subsegment(0.25, 0.75)
        assert sub.speed_at(0.5) == pytest.approx(seg.speed_at(0.5), rel=1e-12)


class TestScaledSegment:
    def base(self) -> GrowthSegment:
        return GrowthSegment(0.0, 2.0, 1, 1.0, 1.0, 3.0)

    def test_speed_and_volume_scale(self):
        b = self.base()
        s = ScaledSegment(0.0, 2.0, 1, b, 1.5)
        assert s.speed_at(1.0) == pytest.approx(1.5 * b.speed_at(1.0))
        assert s.volume() == pytest.approx(1.5 * b.volume())

    def test_energy_scales_by_factor_to_alpha(self):
        b = self.base()
        power = PowerLaw(3.0)
        s = ScaledSegment(0.0, 2.0, 1, b, 1.5)
        assert s.energy(power) == pytest.approx(1.5**3 * b.energy(power), rel=1e-12)

    def test_time_to_volume(self):
        b = self.base()
        s = ScaledSegment(0.0, 2.0, 1, b, 2.0)
        v = s.volume() * 0.4
        assert s.volume_until(s.time_to_volume(v)) == pytest.approx(v, rel=1e-9)

    def test_requires_matching_window(self):
        with pytest.raises(ScheduleError):
            ScaledSegment(0.0, 1.0, 1, self.base(), 1.5)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ScheduleError):
            ScaledSegment(0.0, 2.0, 1, self.base(), 0.0)

    def test_subsegment(self):
        s = ScaledSegment(0.0, 2.0, 1, self.base(), 1.5)
        sub = s.subsegment(0.5, 1.0)
        assert sub.speed_at(0.75) == pytest.approx(s.speed_at(0.75), rel=1e-12)


class TestSchedule:
    def test_rejects_overlap(self):
        with pytest.raises(ScheduleError):
            Schedule(
                [ConstantSegment(0.0, 2.0, 1, 1.0), ConstantSegment(1.0, 3.0, 2, 1.0)]
            )

    def test_allows_gaps(self):
        s = Schedule([ConstantSegment(0.0, 1.0, 1, 1.0), ConstantSegment(2.0, 3.0, 2, 1.0)])
        assert s.speed_at(1.5) == 0.0
        assert s.end_time == 3.0

    def test_drops_zero_duration(self):
        s = Schedule([ConstantSegment(0.0, 0.0, 1, 1.0)])
        assert len(s) == 0

    def test_processed_volume_until(self):
        s = Schedule([ConstantSegment(0.0, 2.0, 1, 1.0), ConstantSegment(2.0, 4.0, 1, 2.0)])
        assert s.processed_volume(1) == pytest.approx(6.0)
        assert s.processed_volume_until(1, 3.0) == pytest.approx(4.0)

    def test_completion_time_spanning_segments(self):
        s = Schedule([ConstantSegment(0.0, 2.0, 1, 1.0), ConstantSegment(3.0, 5.0, 1, 1.0)])
        assert s.completion_time(1, 3.0) == pytest.approx(4.0)

    def test_completion_time_unreachable_raises(self):
        s = Schedule([ConstantSegment(0.0, 1.0, 1, 1.0)])
        with pytest.raises(ScheduleError):
            s.completion_time(1, 5.0)

    def test_job_at(self):
        s = Schedule([ConstantSegment(0.0, 1.0, 1, 1.0), ConstantSegment(1.0, 2.0, 2, 1.0)])
        assert s.job_at(0.5) == 1
        assert s.job_at(1.0) == 2  # boundary: later segment wins
        assert s.job_at(5.0) is None

    def test_job_segments(self):
        s = Schedule([ConstantSegment(0.0, 1.0, 1, 1.0), ConstantSegment(1.0, 2.0, 2, 1.0)])
        assert len(s.job_segments(1)) == 1


class TestScheduleBuilder:
    def test_appends_in_order(self):
        b = ScheduleBuilder()
        b.append(ConstantSegment(0.0, 1.0, 1, 1.0))
        b.append(ConstantSegment(1.0, 2.0, 2, 1.0))
        assert len(b.build()) == 2
        assert b.clock == 2.0

    def test_rejects_backwards_append(self):
        b = ScheduleBuilder()
        b.append(ConstantSegment(0.0, 2.0, 1, 1.0))
        with pytest.raises(ScheduleError):
            b.append(ConstantSegment(1.0, 3.0, 2, 1.0))

    def test_gap_append_allowed(self):
        b = ScheduleBuilder()
        b.append(ConstantSegment(0.0, 1.0, 1, 1.0))
        b.append(ConstantSegment(5.0, 6.0, 2, 1.0))
        assert b.build().end_time == 6.0
