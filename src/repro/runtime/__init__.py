"""Supervised execution runtime: invariant guards, checkpoint recovery, the
fault-tolerant worker pool, and chaos campaigns (scalar and sharded)."""

from .chaos import (
    CampaignReport,
    RunOutcome,
    ShardCampaignReport,
    ShardRunOutcome,
    format_campaign,
    format_shard_campaign,
    run_campaign,
    run_pair_verified,
    run_shard_campaign,
)
from .pool import PoolPolicy, PoolStats, WorkerPool
from .supervisor import ALGORITHMS, RecoveryPolicy, SupervisedResult, Supervisor

__all__ = [
    "ALGORITHMS",
    "CampaignReport",
    "PoolPolicy",
    "PoolStats",
    "RecoveryPolicy",
    "RunOutcome",
    "ShardCampaignReport",
    "ShardRunOutcome",
    "SupervisedResult",
    "Supervisor",
    "WorkerPool",
    "format_campaign",
    "format_shard_campaign",
    "run_campaign",
    "run_pair_verified",
    "run_shard_campaign",
]
