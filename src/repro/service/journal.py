"""Per-session write-ahead journals: durability for the scheduling service.

The non-clairvoyant model is what makes journaling *sufficient*: the paper's
NC algorithms consult only released weights, never remaining sizes, so a
session's entire observable state — speeds, schedules, metrics, verified
reports — is a deterministic function of its arrival log.  Journal the
arrivals, replay them through the normal :class:`~repro.service.sessions.
Session` drive, and the recovered session is **bit-identical** to one that
never crashed.

Format: one record per line, each line a canonical-JSON envelope

``{"body": "<canonical JSON of the record>", "checksum": "<sha256(body)>"}``

mirroring :class:`~repro.parallel.shard.ShardCheckpointStore` — the checksum
is taken over the exact serialized body, so any post-write corruption is
detected on read.  Records carry a monotonically increasing ``seq`` so a
missing or reordered line is also detected.  Lines land in any
:class:`~repro.core.tracing.TraceSink` (``plain | gzip | rotate:N``), flushed
after every append: a record is durable *before* ``submit`` acknowledges.

Read semantics mirror :func:`~repro.core.tracing.iter_jsonl`: exactly one
torn *trailing* line (a process SIGKILLed mid-write) is dropped — that write
was never acknowledged, so dropping it is correct, not lossy — while a
malformed or checksum-mismatching line *followed by more data* is interior
corruption and raises :class:`JournalCorruption`; recovery quarantines such
a journal instead of silently restoring a wrong session.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence
from urllib.parse import quote, unquote

from ..core.tracing import TraceSink, make_sink

__all__ = [
    "JOURNAL_SUFFIX",
    "RECORD_KINDS",
    "JournalError",
    "JournalCorruption",
    "JournalWriteAborted",
    "SessionJournal",
    "journal_path",
    "discover_journals",
    "read_journal",
    "encode_record",
    "corrupt_line",
]

#: Every journal file ends with this suffix; the stem is the URL-quoted
#: session id, so any legal session id maps to exactly one filename.
JOURNAL_SUFFIX = ".journal.jsonl"

#: The closed set of journal record kinds.
#:
#: ``session_create``  — the validated create request (seed jobs excluded:
#:                       they are journaled as a normal ``arrival_batch``).
#: ``arrival_batch``   — one committed batch, written *before* the ack.
#: ``session_close``   — explicit DELETE; the session is finished, not lost.
#: ``session_evicted`` — TTL/LRU eviction; the id answers 410 after restart.
RECORD_KINDS = frozenset(
    {"session_create", "arrival_batch", "session_close", "session_evicted"}
)


class JournalError(ValueError):
    """Structural problem with a journal file."""


class JournalCorruption(JournalError):
    """A journal line failed its checksum or integrity check away from the
    tail — corruption, not a torn write; the journal must be quarantined."""


class JournalWriteAborted(RuntimeError):
    """A journal append crashed mid-write (fault injection): ``partial`` is
    the prefix that reached the sink before the simulated crash.  The caller
    must treat the record as never written — nothing may be committed."""

    def __init__(self, partial: str) -> None:
        super().__init__(
            f"journal write torn after {len(partial)} bytes (injected crash)"
        )
        self.partial = partial


def journal_path(directory: str | Path, session_id: str) -> Path:
    """The canonical journal path for ``session_id`` under ``directory``."""
    return Path(directory) / f"{quote(session_id, safe='')}{JOURNAL_SUFFIX}"


def encode_record(record: dict[str, Any]) -> str:
    """One journal line: canonical-JSON body + its SHA-256, envelope sorted.

    Canonical means ``sort_keys`` + compact separators, so the same record
    always produces the same bytes — what makes a restore's re-journaled
    file byte-identical to the committed prefix it replayed.
    """
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    checksum = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return json.dumps(
        {"body": body, "checksum": checksum}, sort_keys=True, separators=(",", ":")
    )


def corrupt_line(line: str) -> str:
    """Flip one character inside the body *after* the checksum was taken —
    the same post-checksum bit-rot :class:`ShardCheckpointStore`'s
    ``checkpoint_corruption`` fault models."""
    mid = len(line) // 2
    flipped = "X" if line[mid] != "X" else "Y"
    return line[:mid] + flipped + line[mid + 1 :]


class SessionJournal:
    """Append-only WAL for one session over a :class:`TraceSink`.

    Every ``append`` serializes the record with its next ``seq``, runs the
    optional ``line_filter`` (the fault-injection seam: it may corrupt the
    line or raise :class:`JournalWriteAborted` after a partial write), then
    writes and **flushes** — the durability point the submit ack sits behind.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        sink: TraceSink | str = "plain",
        line_filter: Callable[[int, str], str] | None = None,
    ) -> None:
        self.path = Path(path)
        self._sink: TraceSink | None = (
            make_sink(path, sink) if isinstance(sink, str) else sink
        )
        self.line_filter = line_filter
        self.seq = 0

    def append(self, record: dict[str, Any]) -> None:
        kind = record.get("record")
        if kind not in RECORD_KINDS:
            raise JournalError(f"unknown journal record kind {kind!r}")
        if self._sink is None:
            raise JournalError(f"journal {self.path} is closed")
        line = encode_record({**record, "seq": self.seq})
        if self.line_filter is not None:
            try:
                line = self.line_filter(self.seq, line)
            except JournalWriteAborted as tear:
                # The crash model: a prefix of the line reaches the disk,
                # then the process dies.  Flush the tear so the on-disk state
                # is exactly what a SIGKILL would leave, then propagate — the
                # caller never acks, so the torn record was never committed.
                self._sink.write(str(kind), tear.partial)
                self._sink.flush()
                raise
        self._sink.write(str(kind), line)
        self._sink.flush()
        self.seq += 1

    @property
    def paths(self) -> tuple[Path, ...]:
        return self._sink.paths if self._sink is not None else ()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.flush()
            self._sink.close()
            self._sink = None


# -- readers ------------------------------------------------------------------

_GZIP_MAGIC = b"\x1f\x8b"


def _iter_lines(path: Path) -> Iterator[str]:
    """Raw journal lines, tolerating a truncated gzip stream (SIGKILLed
    writer) the same way :func:`~repro.core.tracing.iter_jsonl` does."""
    with path.open("rb") as probe:
        magic = probe.read(2)
    fh = (
        gzip.open(path, "rt", encoding="utf-8")
        if magic == _GZIP_MAGIC
        else path.open("r", encoding="utf-8")
    )
    with fh:
        try:
            for line in fh:
                stripped = line.strip()
                if stripped:
                    yield stripped
        except (EOFError, gzip.BadGzipFile):
            return


def read_journal(paths: Sequence[str | Path] | str | Path) -> list[dict[str, Any]]:
    """Decode a journal back into its records, verifying every line.

    Accepts one path or a sequence of rotated segments (in order).  Exactly
    one malformed *final* line is dropped as a torn tail; a malformed line,
    checksum mismatch, or ``seq`` gap anywhere else raises
    :class:`JournalCorruption` naming the offending line.
    """
    seq: Sequence[str | Path] = (
        [paths] if isinstance(paths, (str, Path)) else list(paths)
    )
    lines: list[tuple[Path, str]] = []
    for p in seq:
        p = Path(p)
        lines.extend((p, line) for line in _iter_lines(p))
    records: list[dict[str, Any]] = []
    for i, (path, line) in enumerate(lines):
        is_last = i == len(lines) - 1
        try:
            envelope = json.loads(line)
        except json.JSONDecodeError:
            if is_last:
                break  # torn tail: the write was never acked; drop it
            raise JournalCorruption(
                f"{path} line {i}: malformed journal line away from the tail"
            ) from None
        if (
            not isinstance(envelope, dict)
            or not isinstance(envelope.get("body"), str)
            or not isinstance(envelope.get("checksum"), str)
        ):
            raise JournalCorruption(f"{path} line {i}: not a journal envelope")
        body = envelope["body"]
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        if digest != envelope["checksum"]:
            raise JournalCorruption(
                f"{path} line {i}: checksum mismatch "
                f"(expected {envelope['checksum'][:12]}…, got {digest[:12]}…)"
            )
        try:
            record = json.loads(body)
        except json.JSONDecodeError as err:  # checksum passed ⇒ impossible tear
            raise JournalCorruption(f"{path} line {i}: unparseable body") from err
        if not isinstance(record, dict) or record.get("record") not in RECORD_KINDS:
            raise JournalCorruption(f"{path} line {i}: unknown record kind")
        if record.get("seq") != i:
            raise JournalCorruption(
                f"{path} line {i}: seq {record.get('seq')} out of order "
                "(missing or duplicated record)"
            )
        records.append(record)
    return records


def discover_journals(directory: str | Path) -> dict[str, tuple[Path, ...]]:
    """Map every session id journaled under ``directory`` to its file(s).

    Plain and gzip journals are single files named
    ``<quoted-id>.journal.jsonl``; rotating journals contribute their
    ``<quoted-id>.journal.NNNNN.jsonl`` segments, grouped and ordered.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return {}
    found: dict[str, tuple[Path, ...]] = {}
    for path in sorted(directory.glob(f"*{JOURNAL_SUFFIX}")):
        sid = unquote(path.name[: -len(JOURNAL_SUFFIX)])
        found[sid] = (path,)
    segment_glob = "*.journal.[0-9][0-9][0-9][0-9][0-9].jsonl"
    segments: dict[str, list[Path]] = {}
    for path in sorted(directory.glob(segment_glob)):
        stem = path.name.rsplit(".", 3)[0]  # "<quoted-id>" from "<id>.journal.NNNNN.jsonl"
        segments.setdefault(unquote(stem), []).append(path)
    for sid, paths in segments.items():
        if sid not in found:  # a plain journal under the same id wins
            found[sid] = tuple(paths)
    return found
