"""Tests for the speed-bounded extension."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.core import evaluate
from repro.core.errors import InvalidInstanceError, InvalidPowerFunctionError
from repro.extensions import (
    CappedPowerLaw,
    simulate_clairvoyant_capped,
    simulate_nc_uniform_capped,
)

from conftest import uniform_instances


class TestCappedPowerLaw:
    def test_clip_inverse(self):
        p = CappedPowerLaw(3.0, 2.0)
        assert p.speed(1.0) == pytest.approx(1.0)
        assert p.speed(1000.0) == pytest.approx(2.0)

    def test_power_rejects_infeasible_speed(self):
        p = CappedPowerLaw(3.0, 2.0)
        with pytest.raises(ValueError):
            p.power(3.0)

    def test_saturation_weight(self):
        assert CappedPowerLaw(3.0, 2.0).saturation_weight == pytest.approx(8.0)

    def test_rejects_bad_cap(self):
        with pytest.raises(InvalidPowerFunctionError):
            CappedPowerLaw(3.0, 0.0)

    def test_equality(self):
        assert CappedPowerLaw(3.0, 2.0) == CappedPowerLaw(3.0, 2.0)
        assert CappedPowerLaw(3.0, 2.0) != CappedPowerLaw(3.0, 3.0)
        assert CappedPowerLaw(3.0, 2.0) != PowerLaw(3.0)


class TestCappedClairvoyant:
    def test_cap_respected(self, three_jobs):
        p = CappedPowerLaw(3.0, 1.1)
        run = simulate_clairvoyant_capped(three_jobs, p)
        assert run.max_observed_speed() <= 1.1 + 1e-9

    def test_loose_cap_reduces_to_uncapped(self, three_jobs):
        p = CappedPowerLaw(3.0, 100.0)
        capped = evaluate(simulate_clairvoyant_capped(three_jobs, p).schedule, three_jobs, p)
        plain = evaluate(
            simulate_clairvoyant(three_jobs, PowerLaw(3.0)).schedule, three_jobs, PowerLaw(3.0)
        )
        assert capped.fractional_objective == pytest.approx(plain.fractional_objective, rel=1e-12)

    def test_tight_cap_costs_more_flow(self, three_jobs):
        loose = CappedPowerLaw(3.0, 100.0)
        tight = CappedPowerLaw(3.0, 0.8)
        f_loose = evaluate(
            simulate_clairvoyant_capped(three_jobs, loose).schedule, three_jobs, loose
        ).fractional_flow
        f_tight = evaluate(
            simulate_clairvoyant_capped(three_jobs, tight).schedule, three_jobs, tight
        ).fractional_flow
        assert f_tight > f_loose

    def test_saturated_phase_is_linear(self):
        """While W > P(s_max), weight decreases at rate rho*s_max."""
        p = CappedPowerLaw(3.0, 1.0)  # saturation weight 1.0
        inst = Instance([Job(0, 0.0, 5.0)])
        run = simulate_clairvoyant_capped(inst, p)
        # first 4 volume units at speed 1 -> 4 time units saturated
        seg = run.schedule.segments[0]
        assert seg.speed_at(seg.t0) == pytest.approx(1.0)
        assert seg.duration == pytest.approx(4.0, rel=1e-9)

    def test_until_horizon(self, three_jobs):
        p = CappedPowerLaw(3.0, 1.0)
        run = simulate_clairvoyant_capped(three_jobs, p, until=1.0)
        assert run.clock == pytest.approx(1.0)
        assert sum(run.remaining.values()) > 0

    def test_requires_capped_power(self, three_jobs):
        with pytest.raises(TypeError):
            simulate_clairvoyant_capped(three_jobs, PowerLaw(3.0))  # type: ignore[arg-type]

    @given(uniform_instances(max_jobs=5), st.floats(min_value=0.5, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_valid_schedules(self, inst, s_max):
        p = CappedPowerLaw(3.0, s_max)
        run = simulate_clairvoyant_capped(inst, p)
        rep = evaluate(run.schedule, inst, p)
        assert set(rep.completion_times) == set(inst.job_ids)


class TestCappedNC:
    def test_cap_respected(self, three_jobs):
        p = CappedPowerLaw(3.0, 1.1)
        run = simulate_nc_uniform_capped(three_jobs, p)
        assert run.max_observed_speed() <= 1.1 + 1e-9

    def test_loose_cap_reduces_to_uncapped(self, three_jobs):
        p = CappedPowerLaw(3.0, 100.0)
        capped = evaluate(simulate_nc_uniform_capped(three_jobs, p).schedule, three_jobs, p)
        plain = evaluate(
            simulate_nc_uniform(three_jobs, PowerLaw(3.0)).schedule, three_jobs, PowerLaw(3.0)
        )
        assert capped.fractional_objective == pytest.approx(plain.fractional_objective, rel=1e-9)

    def test_rejects_nonuniform(self, mixed_density_jobs):
        p = CappedPowerLaw(3.0, 1.0)
        with pytest.raises(InvalidInstanceError):
            simulate_nc_uniform_capped(mixed_density_jobs, p)

    @given(
        uniform_instances(max_jobs=6),
        st.floats(min_value=0.5, max_value=4.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_energy_equality_survives_the_cap(self, inst, s_max):
        """The Lemma-3 analogue in the bounded-speed model: the clipped NC
        profile is still a rearrangement of the clipped C profile, so the
        energies agree exactly."""
        p = CappedPowerLaw(3.0, s_max)
        e_nc = evaluate(simulate_nc_uniform_capped(inst, p).schedule, inst, p).energy
        e_c = evaluate(simulate_clairvoyant_capped(inst, p).schedule, inst, p).energy
        assert e_nc == pytest.approx(e_c, rel=1e-7)

    @given(uniform_instances(max_jobs=5), st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=20, deadline=None)
    def test_flow_ratio_at_most_uncapped(self, inst, s_max):
        """The cap compresses the flow gap: ratio <= 1/(1-1/alpha)."""
        alpha = 3.0
        p = CappedPowerLaw(alpha, s_max)
        f_nc = evaluate(simulate_nc_uniform_capped(inst, p).schedule, inst, p).fractional_flow
        f_c = evaluate(simulate_clairvoyant_capped(inst, p).schedule, inst, p).fractional_flow
        assert f_nc <= f_c / (1 - 1 / alpha) * (1 + 1e-7)
        assert f_nc >= f_c * (1 - 1e-9)  # NC is never better than C on flow
