"""Tests for Algorithm C: HDF order, the power-equals-weight rule, Theorem 1's
flow==energy identity, and the Lemma 2 relations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Job, PowerLaw
from repro.algorithms.clairvoyant import hdf_key, simulate_clairvoyant
from repro.core.kernels import decay_time_to_zero
from repro.core.metrics import evaluate

from conftest import alphas, general_instances, uniform_instances


class TestHdfKey:
    def test_orders_by_density_then_release(self):
        a = Job(0, 1.0, 1.0, 5.0)
        b = Job(1, 0.0, 1.0, 1.0)
        c = Job(2, 0.5, 1.0, 5.0)
        assert sorted([a, b, c], key=hdf_key) == [c, a, b]


class TestSingleJob:
    @given(
        st.floats(min_value=0.1, max_value=50.0),
        st.floats(min_value=0.2, max_value=5.0),
        alphas,
    )
    @settings(max_examples=40, deadline=None)
    def test_lemma2_completion_time(self, volume, rho, alpha):
        """Lemma 2.2: rho*(1-1/alpha)*t = W^{1-1/alpha} for a lone job."""
        power = PowerLaw(alpha)
        inst = Instance([Job(0, 0.0, volume, rho)])
        run = simulate_clairvoyant(inst, power)
        t = run.completion_time(0)
        w = rho * volume
        assert rho * (1 - 1 / alpha) * t == pytest.approx(w ** (1 - 1 / alpha), rel=1e-9)

    @given(
        st.floats(min_value=0.1, max_value=50.0),
        st.floats(min_value=0.2, max_value=5.0),
        alphas,
    )
    @settings(max_examples=40, deadline=None)
    def test_flow_equals_energy(self, volume, rho, alpha):
        power = PowerLaw(alpha)
        inst = Instance([Job(0, 0.0, volume, rho)])
        rep = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power)
        assert rep.fractional_flow == pytest.approx(rep.energy, rel=1e-9)

    def test_initial_speed_is_power_inverse_of_weight(self, cube):
        inst = Instance([Job(0, 0.0, 8.0, 1.0)])
        run = simulate_clairvoyant(inst, cube)
        assert run.schedule.speed_at(0.0) == pytest.approx(8.0 ** (1 / 3), rel=1e-9)


class TestFlowEqualsEnergy:
    """Theorem 1's structural identity holds for *every* instance."""

    @given(uniform_instances(max_jobs=7))
    @settings(max_examples=30, deadline=None)
    def test_uniform(self, inst):
        power = PowerLaw(3.0)
        rep = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power)
        assert rep.fractional_flow == pytest.approx(rep.energy, rel=1e-7)

    @given(general_instances(max_jobs=6))
    @settings(max_examples=30, deadline=None)
    def test_general_densities(self, inst):
        power = PowerLaw(2.5)
        rep = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power)
        assert rep.fractional_flow == pytest.approx(rep.energy, rel=1e-7)


class TestHdfBehaviour:
    def test_high_density_preempts(self, cube):
        inst = Instance([Job(0, 0.0, 10.0, 1.0), Job(1, 0.5, 1.0, 100.0)])
        run = simulate_clairvoyant(inst, cube)
        assert run.schedule.job_at(0.25) == 0
        assert run.schedule.job_at(0.6) == 1
        assert run.completion_time(1) < run.completion_time(0)

    def test_equal_density_fifo(self, cube):
        inst = Instance([Job(0, 0.0, 2.0), Job(1, 0.5, 2.0)])
        run = simulate_clairvoyant(inst, cube)
        assert run.completion_time(0) < run.completion_time(1)

    def test_idle_gap(self, cube):
        inst = Instance([Job(0, 0.0, 0.5), Job(1, 50.0, 0.5)])
        run = simulate_clairvoyant(inst, cube)
        assert run.completion_time(0) < 50.0
        assert run.schedule.speed_at(25.0) == 0.0

    def test_speed_jumps_at_release(self, cube):
        inst = Instance([Job(0, 0.0, 10.0), Job(1, 1.0, 10.0)])
        run = simulate_clairvoyant(inst, cube)
        before = run.schedule.speed_at(0.999)
        after = run.schedule.speed_at(1.001)
        assert after > before


class TestRemainingWeight:
    def test_initial_total(self, cube, three_jobs):
        run = simulate_clairvoyant(three_jobs, cube)
        assert run.remaining_weight_at(0.0) == pytest.approx(4.0)

    def test_left_limit_excludes_release(self, cube):
        inst = Instance([Job(0, 0.0, 5.0), Job(1, 1.0, 5.0)])
        run = simulate_clairvoyant(inst, cube)
        with_j1 = run.remaining_weight_at(1.0)
        without_j1 = run.remaining_weight_at(1.0, include_release_at_t=False)
        assert with_j1 == pytest.approx(without_j1 + 5.0, rel=1e-9)

    def test_monotone_between_releases(self, cube, three_jobs):
        run = simulate_clairvoyant(three_jobs, cube)
        ts = [2.0, 2.5, 3.0, 3.5]
        ws = [run.remaining_weight_at(t) for t in ts]
        assert all(a >= b - 1e-9 for a, b in zip(ws, ws[1:]))

    def test_zero_after_completion(self, cube, three_jobs):
        run = simulate_clairvoyant(three_jobs, cube)
        assert run.remaining_weight_at(run.schedule.end_time + 1.0) == pytest.approx(0.0)


class TestUntilHorizon:
    def test_stops_at_horizon(self, cube, three_jobs):
        run = simulate_clairvoyant(three_jobs, cube, until=1.2)
        assert run.clock == pytest.approx(1.2)
        assert run.schedule.end_time <= 1.2 + 1e-9

    def test_remaining_dict_consistent_with_full_run(self, cube, three_jobs):
        t = 1.7
        part = simulate_clairvoyant(three_jobs, cube, until=t)
        full = simulate_clairvoyant(three_jobs, cube)
        w_part = sum(three_jobs[j].density * v for j, v in part.remaining.items())
        assert w_part == pytest.approx(full.remaining_weight_at(t), rel=1e-9)

    def test_until_zero(self, cube, three_jobs):
        run = simulate_clairvoyant(three_jobs, cube, until=0.0)
        assert run.remaining == {0: 4.0}  # only job 0 released at 0

    @given(uniform_instances(max_jobs=5), st.floats(min_value=0.1, max_value=30.0))
    @settings(max_examples=25, deadline=None)
    def test_prefix_property(self, inst, t):
        """The until-run is a prefix of the full run (same processed volumes
        at the horizon)."""
        power = PowerLaw(3.0)
        part = simulate_clairvoyant(inst, power, until=t)
        full = simulate_clairvoyant(inst, power)
        for job in inst:
            a = part.schedule.processed_volume_until(job.job_id, t)
            b = full.schedule.processed_volume_until(job.job_id, t)
            assert a == pytest.approx(b, rel=1e-7, abs=1e-9)


class TestScheduleValidity:
    @given(general_instances(max_jobs=6))
    @settings(max_examples=30, deadline=None)
    def test_valid_schedule(self, inst):
        power = PowerLaw(3.0)
        run = simulate_clairvoyant(inst, power)
        rep = evaluate(run.schedule, inst, power)  # evaluate validates
        assert rep.energy > 0

    def test_requires_power_law(self, three_jobs):
        from repro.core.power import TabulatedPower

        tab = TabulatedPower([0.0, 1.0, 2.0], [0.0, 1.0, 4.0])
        with pytest.raises(TypeError):
            simulate_clairvoyant(three_jobs, tab)  # type: ignore[arg-type]

    def test_no_processing_before_release(self, cube):
        inst = Instance([Job(0, 0.0, 1.0), Job(1, 3.0, 1.0)])
        run = simulate_clairvoyant(inst, cube)
        for seg in run.schedule.job_segments(1):
            assert seg.t0 >= 3.0 - 1e-12

    def test_solo_completion_matches_kernel(self, cube):
        inst = Instance([Job(0, 0.0, 2.0, 1.5)])
        run = simulate_clairvoyant(inst, cube)
        assert run.completion_time(0) == pytest.approx(
            decay_time_to_zero(3.0, 1.5, 3.0), rel=1e-12
        )
