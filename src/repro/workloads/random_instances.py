"""Seeded random workload generators.

The paper has no testbed traces — evaluation instances are synthetic.  These
generators cover the regimes the analysis cares about: memoryless arrivals,
heavy-tailed volumes (where non-clairvoyance hurts most — the algorithm
cannot see the elephant coming), and several density models for the
non-uniform case.  Everything is driven by ``numpy.random.default_rng`` so
instances are exactly reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

from ..core.job import Instance, Job

__all__ = [
    "poisson_releases",
    "VOLUME_MODELS",
    "DENSITY_MODELS",
    "random_instance",
]


def poisson_releases(n: int, rate: float, rng: np.random.Generator) -> np.ndarray:
    """``n`` arrival times of a Poisson process with the given rate."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    return np.cumsum(rng.exponential(1.0 / rate, size=n))


def _volumes_exponential(n: int, rng: np.random.Generator, mean: float = 1.0) -> np.ndarray:
    return rng.exponential(mean, size=n)


def _volumes_pareto(
    n: int, rng: np.random.Generator, shape: float = 1.5, scale: float = 0.5
) -> np.ndarray:
    """Heavy-tailed volumes: Pareto with the given tail index (shape < 2 has
    infinite variance — the adversarial regime for non-clairvoyance)."""
    return scale * (1.0 + rng.pareto(shape, size=n))


def _volumes_uniform(n: int, rng: np.random.Generator, low: float = 0.2, high: float = 2.0) -> np.ndarray:
    return rng.uniform(low, high, size=n)


def _volumes_bimodal(
    n: int,
    rng: np.random.Generator,
    small: float = 0.1,
    large: float = 5.0,
    p_large: float = 0.2,
) -> np.ndarray:
    """Mice and elephants: mostly small jobs with occasional huge ones."""
    picks = rng.random(size=n) < p_large
    return np.where(picks, large, small) * rng.uniform(0.8, 1.2, size=n)


VOLUME_MODELS = {
    "exponential": _volumes_exponential,
    "pareto": _volumes_pareto,
    "uniform": _volumes_uniform,
    "bimodal": _volumes_bimodal,
}


def _densities_unit(n: int, rng: np.random.Generator) -> np.ndarray:
    return np.ones(n)


def _densities_loguniform(
    n: int, rng: np.random.Generator, low: float = 0.1, high: float = 10.0
) -> np.ndarray:
    return np.exp(rng.uniform(np.log(low), np.log(high), size=n))


def _densities_powers(
    n: int, rng: np.random.Generator, beta: float = 5.0, classes: int = 4
) -> np.ndarray:
    """Densities already on the rounded grid beta**k — isolates NC-general's
    scheduling behaviour from the rounding loss."""
    ks = rng.integers(0, classes, size=n)
    return beta ** ks.astype(float)


DENSITY_MODELS = {
    "unit": _densities_unit,
    "loguniform": _densities_loguniform,
    "powers": _densities_powers,
}


def random_instance(
    n: int,
    seed: int,
    *,
    rate: float = 1.0,
    volume: str = "exponential",
    density: str = "unit",
    volume_params: dict | None = None,
    density_params: dict | None = None,
) -> Instance:
    """A reproducible random instance.

    ``volume`` selects from :data:`VOLUME_MODELS`, ``density`` from
    :data:`DENSITY_MODELS`; extra distribution parameters go in the
    ``*_params`` dicts.
    """
    rng = np.random.default_rng(seed)
    releases = poisson_releases(n, rate, rng)
    vols = VOLUME_MODELS[volume](n, rng, **(volume_params or {}))
    dens = DENSITY_MODELS[density](n, rng, **(density_params or {}))
    return Instance(
        Job(i, float(releases[i]), float(max(vols[i], 1e-9)), float(dens[i])) for i in range(n)
    )
