"""Extension: deadline-constrained energy minimisation (Yao–Demers–Shenker).

The paper's related work (§1.3, ref [3]) contrasts its flow-time-plus-energy
objective with the *deadline* model: every job carries a deadline and the
scheduler minimises energy alone subject to finishing each job inside its
window.  This module implements that substrate on the same exact simulation
machinery:

* :func:`yds_schedule` — the classic **YDS** algorithm: repeatedly extract
  the maximum-*intensity* critical interval (total contained volume divided
  by available length), run its jobs there at exactly the intensity (EDF
  order), collapse the interval, recurse.  Offline **optimal** for any
  convex power function.
* :func:`avr_schedule` — the online **AVR** (average rate) heuristic: each
  job contributes rate ``v_j/(d_j - r_j)`` throughout its window; the machine
  runs at the sum of contributions, processing by earliest deadline.
* :func:`deadline_energy_lower_bound` — a discretised convex program (same
  projected-gradient + simplex machinery as the flow relaxation) that lower
  bounds the offline optimum, used to verify YDS's optimality numerically.

Deadline jobs are ordinary :class:`~repro.core.job.Job` objects plus a
deadline map; schedules come back as exact constant-speed segments, so
energies are computed by the standard metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import InvalidInstanceError, SimulationError
from ..core.job import Instance, Job
from ..core.power import PowerLaw
from ..core.schedule import ConstantSegment, Schedule
from ..offline.convex import project_simplex

__all__ = [
    "DeadlineInstance",
    "yds_schedule",
    "avr_schedule",
    "deadline_energy_lower_bound",
    "validate_deadlines",
]


@dataclass(frozen=True)
class DeadlineInstance:
    """Jobs plus a deadline per job (``deadline > release``)."""

    instance: Instance
    deadlines: dict[int, float]

    def __post_init__(self) -> None:
        for job in self.instance:
            d = self.deadlines.get(job.job_id)
            if d is None:
                raise InvalidInstanceError(f"job {job.job_id} has no deadline")
            if not (d > job.release and math.isfinite(d)):
                raise InvalidInstanceError(
                    f"job {job.job_id}: deadline {d} must be finite and exceed release {job.release}"
                )

    def window(self, job_id: int) -> tuple[float, float]:
        job = self.instance[job_id]
        return job.release, self.deadlines[job_id]

    @property
    def horizon(self) -> float:
        return max(self.deadlines.values())


def validate_deadlines(schedule: Schedule, di: DeadlineInstance, tol: float = 1e-6) -> None:
    """Check the schedule finishes every job inside its window."""
    for job in di.instance:
        done = schedule.processed_volume(job.job_id)
        if abs(done - job.volume) > tol * max(1.0, job.volume):
            raise SimulationError(f"job {job.job_id}: processed {done} of {job.volume}")
        c = schedule.completion_time(job.job_id, job.volume)
        if c > di.deadlines[job.job_id] * (1 + 1e-9) + 1e-12:
            raise SimulationError(
                f"job {job.job_id} completes at {c}, after deadline {di.deadlines[job.job_id]}"
            )
        for seg in schedule.job_segments(job.job_id):
            if seg.t0 < job.release - 1e-9:
                raise SimulationError(f"job {job.job_id} runs before release")


# ---------------------------------------------------------------------------
# YDS
# ---------------------------------------------------------------------------


def _available_length(t1: float, t2: float, blocked: list[tuple[float, float]]) -> float:
    """Length of [t1, t2] minus already-extracted critical intervals."""
    length = t2 - t1
    for b0, b1 in blocked:
        lo, hi = max(t1, b0), min(t2, b1)
        if hi > lo:
            length -= hi - lo
    return length


def _free_subintervals(
    t1: float, t2: float, blocked: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """The parts of [t1, t2] not covered by extracted intervals, in order."""
    pieces = []
    cursor = t1
    for b0, b1 in sorted(blocked):
        if b1 <= cursor or b0 >= t2:
            continue
        if b0 > cursor:
            pieces.append((cursor, min(b0, t2)))
        cursor = max(cursor, b1)
        if cursor >= t2:
            break
    if cursor < t2:
        pieces.append((cursor, t2))
    return [(a, b) for a, b in pieces if b > a]


def _edf_fill(
    group: list[tuple[Job, float]],  # (job, deadline)
    pieces: list[tuple[float, float]],
    speed: float,
) -> list[ConstantSegment]:
    """Preemptive EDF at a fixed speed over the given free pieces.

    Feasible whenever ``speed`` is at least the group's critical intensity —
    guaranteed by YDS's choice of the *maximum*-intensity interval.
    """
    remaining = {job.job_id: job.volume for job, _ in group}
    info = {job.job_id: (job.release, dl) for job, dl in group}
    segments: list[ConstantSegment] = []
    for p0, p1 in pieces:
        t = p0
        while t < p1 - 1e-15:
            ready = [
                jid
                for jid, (r, _) in info.items()
                if remaining.get(jid, 0.0) > 1e-15 and r <= t + 1e-12
            ]
            if not ready:
                # Jump to the next release inside the piece.
                future = [
                    info[jid][0]
                    for jid in remaining
                    if remaining[jid] > 1e-15 and info[jid][0] > t
                ]
                if not future:
                    break
                t = min(min(future), p1)
                continue
            jid = min(ready, key=lambda j: (info[j][1], j))  # earliest deadline
            # Run until completion, the piece's end, or the next release.
            dt_complete = remaining[jid] / speed
            future = [
                info[k][0]
                for k in remaining
                if remaining[k] > 1e-15 and t < info[k][0] < t + dt_complete
            ]
            t_stop = min(t + dt_complete, p1, min(future) if future else math.inf)
            if t_stop <= t:
                raise SimulationError("EDF made no progress (infeasible speed?)")
            segments.append(ConstantSegment(t, t_stop, jid, speed))
            remaining[jid] -= speed * (t_stop - t)
            if remaining[jid] <= 1e-12 * max(1.0, remaining.get(jid, 1.0)):
                remaining[jid] = 0.0
            t = t_stop
    leftovers = {j: v for j, v in remaining.items() if v > 1e-9}
    if leftovers:
        raise SimulationError(f"EDF left volume unscheduled: {leftovers}")
    return segments


def yds_schedule(di: DeadlineInstance) -> Schedule:
    """The optimal offline schedule for energy under deadlines (YDS).

    Runs in O(n^3) over the release/deadline grid — fine for the instance
    sizes this package targets.
    """
    jobs = {j.job_id: j for j in di.instance}
    deadlines = dict(di.deadlines)
    blocked: list[tuple[float, float]] = []
    segments: list[ConstantSegment] = []

    while jobs:
        starts = sorted({j.release for j in jobs.values()})
        ends = sorted({deadlines[jid] for jid in jobs})
        best = None  # (intensity, t1, t2, contained_ids)
        for t1 in starts:
            for t2 in ends:
                if t2 <= t1:
                    continue
                contained = [
                    jid
                    for jid, j in jobs.items()
                    if j.release >= t1 - 1e-12 and deadlines[jid] <= t2 + 1e-12
                ]
                if not contained:
                    continue
                avail = _available_length(t1, t2, blocked)
                if avail <= 1e-15:
                    raise SimulationError("no available time in a candidate interval")
                intensity = sum(jobs[jid].volume for jid in contained) / avail
                if best is None or intensity > best[0] + 1e-15:
                    best = (intensity, t1, t2, contained)
        assert best is not None
        intensity, t1, t2, contained = best
        pieces = _free_subintervals(t1, t2, blocked)
        group = [(jobs[jid], deadlines[jid]) for jid in sorted(contained)]
        segments.extend(_edf_fill(group, pieces, intensity))
        for jid in contained:
            del jobs[jid]
        blocked.extend(pieces)

    return Schedule(segments)


# ---------------------------------------------------------------------------
# AVR (online)
# ---------------------------------------------------------------------------


def avr_schedule(di: DeadlineInstance) -> Schedule:
    """The online AVR heuristic: speed = sum of active average rates, EDF.

    Known to be at most ``2^{alpha-1} * alpha^alpha``-competitive in energy;
    always deadline-feasible (each job's share alone finishes it on time, and
    EDF only helps).
    """
    jobs = list(di.instance.jobs)
    events = sorted(
        {j.release for j in jobs} | {di.deadlines[j.job_id] for j in jobs}
    )
    rates = {
        j.job_id: j.volume / (di.deadlines[j.job_id] - j.release) for j in jobs
    }
    remaining = {j.job_id: j.volume for j in jobs}
    segments: list[ConstantSegment] = []
    for e0, e1 in zip(events, events[1:]):
        t = e0
        while t < e1 - 1e-15:
            active_rate = sum(
                rates[j.job_id]
                for j in jobs
                if j.release <= t + 1e-12 and di.deadlines[j.job_id] > t + 1e-12
            )
            ready = [
                j.job_id
                for j in jobs
                if remaining[j.job_id] > 1e-15 and j.release <= t + 1e-12
            ]
            if not ready or active_rate <= 0:
                break
            jid = min(ready, key=lambda j: (di.deadlines[j], j))
            dt = min(remaining[jid] / active_rate, e1 - t)
            segments.append(ConstantSegment(t, t + dt, jid, active_rate))
            remaining[jid] -= active_rate * dt
            if remaining[jid] <= 1e-12:
                remaining[jid] = 0.0
            t += dt
    leftovers = {j: v for j, v in remaining.items() if v > 1e-9}
    if leftovers:
        raise SimulationError(f"AVR left volume unscheduled: {leftovers}")
    return Schedule(segments)


# ---------------------------------------------------------------------------
# Verification lower bound
# ---------------------------------------------------------------------------


def deadline_energy_lower_bound(
    di: DeadlineInstance,
    power: PowerLaw,
    *,
    slots: int = 400,
    iterations: int = 2000,
) -> float:
    """Discretised convex lower bound on the optimal energy.

    Same construction as the flow relaxation, with the flow term removed and
    slots restricted to each job's *window* (slots overlapping the window,
    so every true schedule maps to a feasible point; Jensen gives
    ``relaxed energy <= true energy``).  Used by the tests to certify YDS's
    optimality within discretisation error.
    """
    if not isinstance(power, PowerLaw):
        raise TypeError("the lower bound is implemented for power laws")
    alpha = power.alpha
    horizon = di.horizon
    delta = horizon / slots
    starts = np.arange(slots) * delta
    jobs = list(di.instance.jobs)
    n = len(jobs)
    volumes = np.array([j.volume for j in jobs])
    allowed = np.zeros((n, slots), dtype=bool)
    for i, j in enumerate(jobs):
        d = di.deadlines[j.job_id]
        allowed[i] = (starts + delta > j.release) & (starts < d)
    if not np.all(allowed.any(axis=1)):
        raise InvalidInstanceError("a job has no allowed slot; increase slots")

    x = np.where(allowed, 1.0, 0.0)
    x *= (volumes / delta / np.maximum(allowed.sum(axis=1), 1))[:, None]
    # Curvature reference speed: the average is not enough — a job whose
    # window forces a high rate (large volume, tight deadline) makes the
    # iterates visit speeds near the sum of the forced per-window rates, and
    # a step sized for the average diverges there (the dual certificate then
    # collapses far below the optimum).  Use the worst of the average and the
    # total forced rate.
    s_typ = max(float(volumes.sum()) / horizon, 1e-9)
    forced = float(np.sum(volumes / (delta * np.maximum(allowed.sum(axis=1), 1))))
    s_ref = max(s_typ, forced, 1.0)
    curv = alpha * (alpha - 1.0) * s_ref ** (alpha - 2.0) * delta * n
    step = 1.0 / max(curv, 1e-9)

    for _ in range(iterations):
        s = x.sum(axis=0)
        grad = delta * alpha * s ** (alpha - 1.0)
        x_new = x - step * grad[None, :]
        for i in range(n):
            proj = project_simplex(
                np.where(allowed[i], x_new[i], -np.inf)[allowed[i]] * delta, volumes[i]
            ) / delta
            x_new[i] = 0.0
            x_new[i, allowed[i]] = proj
        x = x_new

    # Dual certificate: lambda from KKT; inner minimum as in the flow bound
    # with f = 0 (kappa_m = min_j over allowed of -lambda_j).
    s = x.sum(axis=0)
    grad = delta * alpha * s ** (alpha - 1.0)
    lam = np.empty(n)
    for i in range(n):
        active = allowed[i] & (x[i] > 1e-12)
        rows = grad[active] if np.any(active) else grad[allowed[i]]
        lam[i] = float(np.median(rows)) / delta
    kappa_m = np.min(np.where(allowed, -lam[:, None], np.inf), axis=0)
    neg = np.maximum(-kappa_m, 0.0)
    inner = (1.0 - alpha) * (neg / alpha) ** (alpha / (alpha - 1.0))
    dual = float(np.sum(lam * volumes) + np.sum(delta * inner))
    return dual
