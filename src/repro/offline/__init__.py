"""Offline optima and certified lower bounds used as competitive-ratio
denominators: closed-form single-job optima and a convex time-indexed
relaxation with a Lagrangian dual certificate."""

from .bounds import OptBound, opt_fractional_lower_bound, opt_integral_lower_bound
from .convex import ConvexBound, fractional_lower_bound, project_simplex, schedule_from_bound
from .single_job import SingleJobOptimum, single_job_opt_fractional, single_job_opt_integral

__all__ = [
    "SingleJobOptimum",
    "single_job_opt_fractional",
    "single_job_opt_integral",
    "ConvexBound",
    "fractional_lower_bound",
    "project_simplex",
    "schedule_from_bound",
    "OptBound",
    "opt_fractional_lower_bound",
    "opt_integral_lower_bound",
]
