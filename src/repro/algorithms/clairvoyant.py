"""Algorithm C — the clairvoyant baseline (Bansal, Chan, Pruhs; SODA 2009).

Scheduling rule: **highest density first** (HDF), ties broken FIFO (the
paper's §4 convention).  Speed rule: **power equals remaining weight**,
``P(s(t)) = W(t)`` where ``W(t) = Σ_j rho[j]·V[j](t)`` over active jobs.

Theorem 1: Algorithm C is 2-competitive for fractional weighted flow-time plus
energy, and its total fractional flow-time *equals* its total energy — both
are ``∫ W(t) dt``.

This module simulates Algorithm C *exactly* for ``P(s)=s**alpha`` by driving
the incremental :class:`~repro.core.shadow.ClairvoyantShadow` — the closed-form
weight decay between scheduler events (releases and completions); see
:mod:`repro.core.kernels` — and recording one :class:`DecaySegment` per event.
For general power functions use :class:`ClairvoyantPolicy` on the numeric
engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.arraykernels import ArrayPopulation, KernelBackend
from ..core.engine import SchedulingPolicy
from ..core.job import Instance, Job
from ..core.power import PowerFunction, PowerLaw
from ..core.schedule import DecaySegment, Schedule, ScheduleBuilder
from ..core.shadow import ClairvoyantShadow, SimulationContext

__all__ = ["ClairvoyantRun", "simulate_clairvoyant", "ClairvoyantPolicy", "hdf_key"]

_TIE_TOL = 1e-12


def hdf_key(job: Job) -> tuple[float, float, int]:
    """Sort key for highest-density-first with FIFO tie-breaking."""
    return (-job.density, job.release, job.job_id)


@dataclass(frozen=True)
class ClairvoyantRun:
    """The outcome of an exact Algorithm C simulation.

    ``clock`` is the time the simulation stopped: the last completion, or the
    ``until`` horizon if one was given.  ``remaining`` maps job id to remaining
    volume at ``clock`` (empty when the run finished all jobs).
    """

    instance: Instance
    power: PowerLaw
    schedule: Schedule
    clock: float
    remaining: dict[int, float]

    def remaining_weight_at(self, t: float, *, include_release_at_t: bool = True) -> float:
        """Total remaining fractional weight ``W(t)`` at time ``t``.

        With ``include_release_at_t=False`` this is the left limit
        ``W(t-)`` — the quantity Algorithm NC reads at a release instant.
        """
        total = 0.0
        for job in self.instance:
            if job.release > t or (not include_release_at_t and job.release >= t):
                continue
            done = self.schedule.processed_volume_until(job.job_id, t)
            left = job.volume - done
            # Clamp float residue from completed jobs: a 1e-16 leftover gets
            # amplified by the 1/beta exponent wherever this feeds a kernel.
            if left <= 1e-15 * job.volume:
                left = 0.0
            total += job.density * left
        return total

    def remaining_volume_at(self, job_id: int, t: float) -> float:
        job = self.instance[job_id]
        if job.release > t:
            return job.volume
        return max(job.volume - self.schedule.processed_volume_until(job_id, t), 0.0)

    def completion_time(self, job_id: int) -> float:
        return self.schedule.completion_time(job_id, self.instance[job_id].volume)

    def weight_profile(self, samples: int = 256) -> tuple[list[float], list[float]]:
        """``(times, W(t))`` sampled densely over the run — Fig. 1a / Fig. 2b
        material."""
        end = self.schedule.end_time
        times = [end * k / (samples - 1) for k in range(samples)]
        return times, [self.remaining_weight_at(t) for t in times]


def simulate_clairvoyant(
    instance: Instance,
    power: PowerLaw,
    *,
    until: float | None = None,
    resume: tuple[float, dict[int, float]] | None = None,
    context: SimulationContext | None = None,
    component: str = "C",
    backend: str | KernelBackend | None = None,
) -> ClairvoyantRun:
    """Exact event-driven simulation of Algorithm C under ``P(s)=s**alpha``.

    With ``until`` given, the simulation stops at that time (useful for the
    shadow simulations of Algorithm NC, which only need the state of C at the
    current moment); otherwise it runs to the last completion.

    ``resume=(t0, remaining)`` warm-starts the run from a checkpoint: the
    clock begins at ``t0`` with the given remaining volumes already admitted.
    Instance jobs in ``remaining`` are never re-admitted; jobs released
    strictly before ``t0`` and absent from ``remaining`` are treated as
    already completed; jobs released at or after ``t0`` are admitted as
    usual.  Used by Algorithm NC-general to avoid re-simulating the invariant
    prefix of its shadow runs.

    ``context`` — if given — routes the shadow's counters into that
    :class:`~repro.core.shadow.SimulationContext` for observability.

    ``backend`` overrides the kernel backend for the inner shadow (it wins
    over the context's backend).  Pass ``"scalar"`` when the caller needs the
    legacy sequential accumulation order — e.g. to keep warm-started
    (``resume``) runs bit-identical to cold runs, which the fast backends only
    guarantee to within the documented ``1e-12`` band.
    """
    if not isinstance(power, PowerLaw):
        raise TypeError("analytic Algorithm C requires a PowerLaw; use ClairvoyantPolicy otherwise")
    alpha = power.alpha
    horizon = math.inf if until is None else float(until)

    builder = ScheduleBuilder()

    def record(kind: str, t0: float, t1: float, jid: int, w0: float) -> None:
        builder.append(DecaySegment(t0, t1, jid, w0, instance[jid].density, alpha))

    shadow = ClairvoyantShadow(
        alpha,
        record=record,
        counters=context.counters if context is not None else None,
        recorder=context.recorder if context is not None else None,
        component=component,
        backend=backend if backend is not None else (context.backend if context is not None else None),
    )
    if resume is not None:
        t0, ckpt = resume
        shadow.load_state(
            t0,
            [
                (j, instance[j].density, instance[j].release, v)
                for j, v in ckpt.items()
                if v > 0.0
            ],
        )
        covered = set(ckpt.keys())
        for job in instance.jobs:
            if job.job_id not in covered and job.release >= t0 * (1.0 - _TIE_TOL) - 1e-300:
                shadow.insert_job(job.job_id, job.release, job.density, job.volume)
    else:
        for job in instance.jobs:
            shadow.insert_job(job.job_id, job.release, job.density, job.volume)

    shadow.advance(horizon)
    shadow.materialize()
    return ClairvoyantRun(
        instance=instance,
        power=power,
        schedule=builder.build(),
        clock=shadow.clock,
        remaining=shadow.remaining_dict(),
    )


class ClairvoyantPolicy(SchedulingPolicy):
    """Algorithm C as a policy for the generic numeric engine.

    Being clairvoyant, it is constructed with the true instance (this is the
    *baseline*, not a non-clairvoyant algorithm) and works for any power
    function.  Its speed rule is a dot product over the population, so it
    implements the engine's vectorized protocol: one
    ``rho . max(true - processed, 0)`` array pass per probe instead of a
    Python sum over active jobs.
    """

    vectorized = True

    def __init__(self, instance: Instance, power: PowerFunction) -> None:
        self.instance = instance
        self.power = power
        self._active: set[int] = set()
        #: per-slot true volumes aligned with the engine's population mirror,
        #: rebuilt lazily when new slots appear (releases are rare relative
        #: to integrator steps).
        self._true: np.ndarray = np.zeros(0, dtype=np.float64)

    def on_release(self, t: float, job_id: int, density: float) -> None:
        self._active.add(job_id)

    def on_completion(self, t: float, job_id: int, volume: float) -> None:
        self._active.discard(job_id)

    def select_job(self, t: float) -> int | None:
        if not self._active:
            return None
        return min((self.instance[j] for j in self._active), key=hdf_key).job_id

    def speed(self, t: float, processed: dict[int, float]) -> float:
        w = sum(
            self.instance[j].density * max(self.instance[j].volume - processed.get(j, 0.0), 0.0)
            for j in self._active
        )
        return self.power.speed(w)

    def speed_population(self, t: float, pop: ArrayPopulation) -> float:
        n = pop.count
        if self._true.size != n:
            self._true = np.array(
                [self.instance[int(j)].volume for j in pop.job_id[:n]], dtype=np.float64
            )
        # Completed jobs sit exactly at their true volume, so they contribute
        # an exact 0 — no active mask needed.
        remaining = np.maximum(self._true - pop.volume[:n], 0.0)
        return self.power.speed(float(np.dot(pop.density[:n], remaining)))
