"""Coverage for the PowerFunction.validate probe and misuse paths."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidPowerFunctionError
from repro.core.power import PowerFunction, PowerLaw


class NonZeroOrigin(PowerFunction):
    def power(self, speed):
        return speed + 1.0

    def speed(self, power):
        return max(power - 1.0, 0.0)

    def marginal_power(self, speed):
        return 1.0


class Decreasing(PowerFunction):
    def power(self, speed):
        return -speed

    def speed(self, power):
        return -power

    def marginal_power(self, speed):
        return -1.0


class Concave(PowerFunction):
    def power(self, speed):
        return speed**0.5

    def speed(self, power):
        return power**2

    def marginal_power(self, speed):
        return 0.5 * speed**-0.5 if speed > 0 else float("inf")


class TestValidateProbe:
    def test_nonzero_origin_rejected(self):
        with pytest.raises(InvalidPowerFunctionError, match="P\\(0\\)"):
            NonZeroOrigin().validate()

    def test_decreasing_rejected(self):
        with pytest.raises(InvalidPowerFunctionError, match="monotone"):
            Decreasing().validate()

    def test_concave_rejected(self):
        with pytest.raises(InvalidPowerFunctionError, match="convex"):
            Concave().validate()

    def test_power_law_passes_all(self):
        for alpha in (1.5, 2.0, 3.0, 4.0):
            PowerLaw(alpha).validate()

    def test_default_power_array_fallback(self):
        """The ABC's elementwise power_array works for custom subclasses."""
        import numpy as np

        class Quartic(PowerFunction):
            def power(self, speed):
                return speed**4

            def speed(self, power):
                return power**0.25

            def marginal_power(self, speed):
                return 4 * speed**3

        q = Quartic()
        np.testing.assert_allclose(q.power_array(np.array([0.0, 1.0, 2.0])), [0.0, 1.0, 16.0])
        q.validate()
