"""§7 open problem: non-uniform densities on parallel machines — a prototype.

The paper closes by asking whether its results extend to non-uniform
densities on identical machines, and sketches the natural candidates:

* a **non-clairvoyant** policy that "follows HDF (probably with rounded
  densities) and dispatches only as needed to follow this rule", and
* a **clairvoyant** comparator whose greedy dispatch "considers only jobs of
  equal or higher density to calculate the increase in the cost".

It also explains why the Lemma-20 equivalence should break: "jobs released
later could affect the machine a job is assigned to in the non-clairvoyant
algorithm whereas they do not in the clairvoyant algorithm."

This module implements both candidates faithfully enough to *probe* that
question empirically (see ``benchmarks/bench_open_problem.py``):

* :func:`simulate_nc_hdf_par` — NC-HDF-PAR: densities rounded down to powers
  of ``beta``; a global queue ordered by (rounded density desc, release);
  whenever a machine has completed everything assigned to it, it takes the
  current queue head.  While a machine processes job ``j`` it uses Algorithm
  NC's speed rule on its machine-local history (``P(s) = W^C(r[j]-) + W̆[j]``
  with the shadow run over the machine's previously completed jobs).
* :func:`simulate_c_hdf_par` — C-HDF-PAR: immediate dispatch of each arrival
  to the machine with the least remaining *same-or-higher rounded density*
  weight; per-machine Algorithm C.

These are research prototypes of a conjectured algorithm, not proved-
competitive ones — exactly the status the paper gives them.
"""

from __future__ import annotations

from ..algorithms.clairvoyant import simulate_clairvoyant
from ..algorithms.density_rounding import round_density_down
from ..core.errors import InvalidInstanceError
from ..core.job import Instance
from ..core.kernels import growth_time_between
from ..core.power import PowerLaw
from ..core.schedule import GrowthSegment, ScheduleBuilder
from ..core.shadow import SimulationContext
from .cluster import ClusterRun

__all__ = ["simulate_nc_hdf_par", "simulate_c_hdf_par"]


def simulate_nc_hdf_par(
    instance: Instance,
    power: PowerLaw,
    machines: int,
    *,
    beta: float = 5.0,
    context: SimulationContext | None = None,
) -> ClusterRun:
    """The §7 non-clairvoyant candidate NC-HDF-PAR (event-driven, exact)."""
    if machines < 1:
        raise InvalidInstanceError(f"machines must be >= 1, got {machines}")
    alpha = power.alpha
    rounded = {j.job_id: round_density_down(j.density, beta) for j in instance}
    if context is None:
        context = SimulationContext(power)

    free = [0.0] * machines
    assignments: dict[int, list[int]] = {i: [] for i in range(machines)}
    builders = {i: ScheduleBuilder() for i in range(machines)}
    # Per-machine shadow runs of Algorithm C.  Unlike NC-PAR the HDF queue is
    # *not* FIFO, so a machine's offset queries can regress in time; the
    # oracle then rebuilds from scratch (counted in ``counters.rebuilds``),
    # which is exactly the legacy per-query fresh simulation.
    oracles = [context.prefix_oracle() for _ in range(machines)]
    waiting: list[int] = []  # job ids, re-sorted on every decision point
    pending = list(instance.jobs)  # release order
    next_rel = 0
    clock = 0.0

    def queue_key(jid: int) -> tuple[float, float, int]:
        return (-rounded[jid], instance[jid].release, jid)

    while next_rel < len(pending) or waiting:
        # Admit releases up to the current clock.
        while next_rel < len(pending) and pending[next_rel].release <= clock + 1e-15:
            waiting.append(pending[next_rel].job_id)
            next_rel += 1
        idle = [i for i in range(machines) if free[i] <= clock + 1e-15]
        if not waiting or not idle:
            # Advance to the next decision point: a release or a machine
            # becoming free.
            candidates = []
            if next_rel < len(pending):
                candidates.append(pending[next_rel].release)
            if waiting:
                candidates.append(min(f for f in free if f > clock + 1e-15))
            if not candidates:
                break
            clock = min(candidates)
            continue
        # Assign the HDF head of the queue to the lowest-index idle machine.
        waiting.sort(key=queue_key)
        jid = waiting.pop(0)
        job = instance[jid]
        machine = idle[0]
        start = max(clock, job.release)

        offset = oracles[machine].weight_at(job.release) if assignments[machine] else 0.0
        # Speed rule on the *rounded* density, matching NC-general's rounding.
        rho = rounded[jid]
        w = rho * job.volume
        tau = growth_time_between(offset, offset + w, rho, alpha)
        builders[machine].append(GrowthSegment(start, start + tau, jid, offset, rho, alpha))
        assignments[machine].append(jid)
        oracles[machine].add_job(jid, job.release, job.density, job.volume)
        free[machine] = start + tau

    schedules = {i: builders[i].build() for i in range(machines) if assignments[i]}
    return ClusterRun(
        instance=instance,
        power=power,
        machines=machines,
        assignments=assignments,
        schedules=schedules,
    )


def simulate_c_hdf_par(
    instance: Instance,
    power: PowerLaw,
    machines: int,
    *,
    beta: float = 5.0,
    context: SimulationContext | None = None,
) -> ClusterRun:
    """The §7 clairvoyant comparator C-HDF-PAR (immediate dispatch)."""
    if machines < 1:
        raise InvalidInstanceError(f"machines must be >= 1, got {machines}")
    rounded = {j.job_id: round_density_down(j.density, beta) for j in instance}
    assignments: dict[int, list[int]] = {i: [] for i in range(machines)}
    if context is None:
        context = SimulationContext(power)
    # Immediate dispatch queries every machine at each release, in release
    # order — a monotone stream, so each per-machine shadow advances once.
    oracles = [context.prefix_oracle() for _ in range(machines)]

    def high_density_weight(machine: int, jid: int, at: float) -> float:
        """Remaining weight on ``machine`` at time ``at``, counting only jobs
        of the same or higher rounded density than ``jid``."""
        if not assignments[machine]:
            return 0.0
        cls = rounded[jid]
        return sum(
            rho * v
            for k, rho, v in oracles[machine].remaining_items_at(at)
            if rounded[k] >= cls
        )

    for job in instance:  # immediate dispatch in release order
        weights = [
            (high_density_weight(i, job.job_id, job.release), i) for i in range(machines)
        ]
        _, chosen = min(weights)
        assignments[chosen].append(job.job_id)
        oracles[chosen].add_job(job.job_id, job.release, job.density, job.volume)

    schedules = {}
    for i in range(machines):
        if assignments[i]:
            sub = instance.subset(assignments[i])
            assert sub is not None
            schedules[i] = simulate_clairvoyant(sub, power).schedule
    return ClusterRun(
        instance=instance,
        power=power,
        machines=machines,
        assignments=assignments,
        schedules=schedules,
    )
