"""ASCII Gantt charts of schedules.

Terminal-friendly timelines: one row per machine (or a single row for a
single-machine schedule), one glyph per job.  Intended for examples and
debugging — the exact numbers always come from
:func:`repro.core.metrics.evaluate`.
"""

from __future__ import annotations

from ..core.schedule import Schedule
from ..parallel.cluster import ClusterRun

__all__ = ["gantt_line", "gantt_chart", "cluster_gantt"]

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _glyph(job_id: int) -> str:
    return _GLYPHS[job_id % len(_GLYPHS)]


def gantt_line(schedule: Schedule, *, width: int = 72, t_end: float | None = None) -> str:
    """One schedule as a single character row (``.`` = idle).

    Each column shows the job occupying the column's *midpoint* instant; jobs
    shorter than a column may not appear — enlarge ``width`` to zoom.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    end = schedule.end_time if t_end is None else t_end
    if end <= 0:
        return "." * width
    cells = []
    for c in range(width):
        t = (c + 0.5) / width * end
        job = schedule.job_at(t)
        cells.append("." if job is None else _glyph(job))
    return "".join(cells)


def gantt_chart(schedule: Schedule, *, width: int = 72) -> str:
    """A single-machine Gantt chart with a time axis and a legend."""
    end = schedule.end_time
    line = gantt_line(schedule, width=width, t_end=end)
    jobs = sorted({s.job_id for s in schedule if s.job_id is not None})
    legend = "  ".join(f"{_glyph(j)}=job {j}" for j in jobs)
    axis = f"0{' ' * (width - len(f'{end:.3g}') - 1)}{end:.3g}"
    return "\n".join([line, axis, legend])


def cluster_gantt(run: ClusterRun, *, width: int = 72) -> str:
    """A machine-per-row Gantt chart for a parallel run (common time axis)."""
    end = max((s.end_time for s in run.schedules.values()), default=0.0)
    lines = []
    for machine in range(run.machines):
        sched = run.schedules.get(machine)
        if sched is None:
            row = "." * width
        else:
            row = gantt_line(sched, width=width, t_end=end)
        lines.append(f"m{machine:<2d} |{row}|")
    axis = " " * 5 + f"0{' ' * (width - len(f'{end:.3g}') - 1)}{end:.3g}"
    lines.append(axis)
    jobs = sorted(run.instance.job_ids)
    if len(jobs) <= 24:
        lines.append("     " + "  ".join(f"{_glyph(j)}=j{j}" for j in jobs))
    return "\n".join(lines)
