"""E8 — tracing overhead: the zero-overhead-when-off contract, measured.

Runs the general-density workload (the hottest path in the repo: NC-general's
per-engine-step speculative shadow queries) three ways on identical
instances — the untraced default context, an explicit ``NullRecorder``
context, and a ``MemoryRecorder`` context — interleaved round by round with
GC paused, best-of-N per variant.

Acceptance: the ``NullRecorder`` run stays within 3% of the untraced
baseline.  Both paths execute literally the same guarded code (the recorder
is hoisted to ``None`` once per loop), so a failure here means the guard
regressed — an unguarded ``emit`` crept into a hot loop, or
``NullRecorder.enabled`` stopped being False.  The ``MemoryRecorder`` column
is informational: it prices what tracing *on* costs.
"""

from __future__ import annotations

import gc
import time

from repro import PowerLaw
from repro.algorithms import simulate_nc_general
from repro.analysis import format_table
from repro.core.shadow import SimulationContext
from repro.core.tracing import MemoryRecorder, NullRecorder
from repro.workloads import random_instance

from conftest import emit, emit_json

ALPHA = 3.0
CASES = ((40, 301),)
#: acceptance ceiling: NullRecorder wall-clock / untraced wall-clock.
MAX_NULL_OVERHEAD = 1.03
_TIMING_ROUNDS = 7


def _contexts() -> dict[str, object]:
    power = PowerLaw(ALPHA)
    return {
        "untraced": lambda: None,
        "null_recorder": lambda: SimulationContext(power, recorder=NullRecorder()),
        "memory_recorder": lambda: SimulationContext(power, recorder=MemoryRecorder()),
    }


def _time_variants():
    power = PowerLaw(ALPHA)
    records = []
    for n, seed in CASES:
        inst = random_instance(n, seed=seed, volume="uniform", density="loguniform")
        best: dict[str, float] = {}
        events: dict[str, int] = {}
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(_TIMING_ROUNDS):
                for name, make in _contexts().items():
                    context = make()
                    t0 = time.perf_counter()
                    simulate_nc_general(inst, power, max_step=2e-2, context=context)
                    dt = time.perf_counter() - t0
                    if name not in best or dt < best[name]:
                        best[name] = dt
                    if context is not None and context.recorder.enabled:
                        events[name] = len(context.recorder.events)
        finally:
            if gc_was_enabled:
                gc.enable()
        records.append(
            {
                "jobs": n,
                "seed": seed,
                "wall_clock_s": best,
                "null_overhead": best["null_recorder"] / best["untraced"],
                "memory_overhead": best["memory_recorder"] / best["untraced"],
                "memory_events": events.get("memory_recorder", 0),
            }
        )
    return records


def test_tracing_overhead(benchmark):
    records = benchmark.pedantic(_time_variants, rounds=1, iterations=1)
    rows = [
        [
            f"n={r['jobs']} seed={r['seed']}",
            r["wall_clock_s"]["untraced"],
            r["wall_clock_s"]["null_recorder"],
            r["null_overhead"],
            r["wall_clock_s"]["memory_recorder"],
            r["memory_overhead"],
            r["memory_events"],
        ]
        for r in records
    ]
    table = format_table(
        [
            "case",
            "untraced [s]",
            "NullRecorder [s]",
            "ratio",
            "MemoryRecorder [s]",
            "ratio",
            "events",
        ],
        rows,
        title=f"tracing overhead on NC-general (best of {_TIMING_ROUNDS}, "
        f"gate: NullRecorder ratio <= {MAX_NULL_OVERHEAD})",
        floatfmt=".3f",
    )
    emit("tracing_overhead", table)
    emit_json(
        "tracing_overhead",
        {"alpha": ALPHA, "max_null_overhead": MAX_NULL_OVERHEAD, "cases": records},
    )

    for r in records:
        assert r["null_overhead"] <= MAX_NULL_OVERHEAD, (
            f"NullRecorder run {r['null_overhead']:.3f}x the untraced baseline "
            f"at n={r['jobs']} — an unguarded emit is in a hot loop"
        )
        # Tracing on must actually record the hot path.
        assert r["memory_events"] > 0
