"""Property tests for the closed-form kernels against numeric quadrature/ODEs.

These are the defence against algebra slips: every closed form is compared to
an independent numerical evaluation of the same quantity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.integrate import quad, solve_ivp

from repro.core import kernels

from conftest import alphas

weights = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
rhos = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


class TestBetaAndSpeed:
    def test_beta_of(self):
        assert kernels.beta_of(2.0) == pytest.approx(0.5)
        assert kernels.beta_of(3.0) == pytest.approx(2.0 / 3.0)

    def test_beta_rejects_alpha_at_most_one(self):
        with pytest.raises(ValueError):
            kernels.beta_of(1.0)

    def test_speed_at(self):
        assert kernels.speed_at(8.0, 3.0) == pytest.approx(2.0)
        assert kernels.speed_at(0.0, 3.0) == 0.0

    def test_speed_rejects_negative(self):
        with pytest.raises(ValueError):
            kernels.speed_at(-1.0, 3.0)


class TestDecayClosedForms:
    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_weight_after_solves_ode(self, w0, rho, alpha):
        """Closed form matches scipy's integration of dW/dt = -rho W^{1/a}."""
        horizon = 0.5 * kernels.decay_time_to_zero(w0, rho, alpha)
        sol = solve_ivp(
            lambda t, w: [-rho * max(w[0], 0.0) ** (1.0 / alpha)],
            (0.0, horizon),
            [w0],
            rtol=1e-10,
            atol=1e-12,
        )
        assert kernels.decay_weight_after(w0, rho, horizon, alpha) == pytest.approx(
            sol.y[0][-1], rel=1e-6
        )

    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_time_between_inverts_weight_after(self, w0, rho, alpha):
        w1 = w0 * 0.3
        t = kernels.decay_time_between(w0, w1, rho, alpha)
        assert kernels.decay_weight_after(w0, rho, t, alpha) == pytest.approx(w1, rel=1e-9)

    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_energy_matches_quadrature(self, w0, rho, alpha):
        """Energy = ∫ W dt along the decay (power-equals-weight rule)."""
        w1 = w0 * 0.2
        tau = kernels.decay_time_between(w0, w1, rho, alpha)
        val, _ = quad(lambda t: kernels.decay_weight_after(w0, rho, t, alpha), 0.0, tau, limit=200)
        assert kernels.decay_energy_between(w0, w1, rho, alpha) == pytest.approx(val, rel=1e-7)

    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_flow_integral_matches_quadrature(self, w0, rho, alpha):
        tau = 0.7 * kernels.decay_time_to_zero(w0, rho, alpha)

        def processed(t):
            return (w0 - kernels.decay_weight_after(w0, rho, t, alpha)) / rho

        val, _ = quad(processed, 0.0, tau, limit=200)
        assert kernels.decay_flow_integral(w0, rho, tau, alpha) == pytest.approx(val, rel=1e-7)

    def test_time_to_zero_finite(self):
        assert np.isfinite(kernels.decay_time_to_zero(100.0, 1.0, 3.0))

    def test_weight_after_clamps_to_zero(self):
        t_end = kernels.decay_time_to_zero(1.0, 1.0, 3.0)
        assert kernels.decay_weight_after(1.0, 1.0, 2 * t_end, 3.0) == 0.0

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            kernels.decay_time_between(1.0, 2.0, 1.0, 3.0)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            kernels.decay_weight_after(-1.0, 1.0, 1.0, 3.0)
        with pytest.raises(ValueError):
            kernels.decay_weight_after(1.0, -1.0, 1.0, 3.0)
        with pytest.raises(ValueError):
            kernels.decay_weight_after(1.0, 1.0, -1.0, 3.0)


class TestGrowthClosedForms:
    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_weight_after_solves_ode(self, u0, rho, alpha):
        horizon = kernels.growth_time_between(u0, 2 * u0, rho, alpha)
        sol = solve_ivp(
            lambda t, u: [rho * max(u[0], 0.0) ** (1.0 / alpha)],
            (0.0, horizon),
            [u0],
            rtol=1e-10,
            atol=1e-12,
        )
        assert kernels.growth_weight_after(u0, rho, horizon, alpha) == pytest.approx(
            sol.y[0][-1], rel=1e-6
        )

    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_time_between_inverts_weight_after(self, u0, rho, alpha):
        u1 = u0 * 2.5
        t = kernels.growth_time_between(u0, u1, rho, alpha)
        assert kernels.growth_weight_after(u0, rho, t, alpha) == pytest.approx(u1, rel=1e-9)

    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_energy_matches_quadrature(self, u0, rho, alpha):
        u1 = u0 * 3.0
        tau = kernels.growth_time_between(u0, u1, rho, alpha)
        val, _ = quad(lambda t: kernels.growth_weight_after(u0, rho, t, alpha), 0.0, tau, limit=200)
        assert kernels.growth_energy_between(u0, u1, rho, alpha) == pytest.approx(val, rel=1e-7)

    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_flow_integral_matches_quadrature(self, u0, rho, alpha):
        tau = kernels.growth_time_between(u0, 2 * u0, rho, alpha)

        def processed(t):
            return (kernels.growth_weight_after(u0, rho, t, alpha) - u0) / rho

        val, _ = quad(processed, 0.0, tau, limit=200)
        assert kernels.growth_flow_integral(u0, rho, tau, alpha) == pytest.approx(
            val, rel=1e-7, abs=1e-12
        )

    def test_growth_from_zero_is_positive(self):
        """The degenerate ODE's non-trivial solution: growth from 0 works."""
        u = kernels.growth_weight_after(0.0, 1.0, 1.0, 3.0)
        assert u > 0.0

    def test_growth_from_zero_is_time_reversed_decay(self):
        """Fig 1b: NC's power curve is C's curve reversed.  Growing from 0 for
        time t and decaying from the result for time t both land where they
        started."""
        alpha, rho, t = 3.0, 1.0, 2.0
        u = kernels.growth_weight_after(0.0, rho, t, alpha)
        assert kernels.decay_time_to_zero(u, rho, alpha) == pytest.approx(t, rel=1e-9)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            kernels.growth_time_between(2.0, 1.0, 1.0, 3.0)


class TestEnergySymmetry:
    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_growth_and_decay_energy_agree(self, w, rho, alpha):
        """The single-job core of Lemma 3: traversing the same weight range
        costs the same energy forwards (NC) and backwards (C)."""
        up = kernels.growth_energy_between(0.0, w, rho, alpha)
        down = kernels.decay_energy_between(w, 0.0, rho, alpha)
        assert up == pytest.approx(down, rel=1e-12)

    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_durations_agree(self, w, rho, alpha):
        up = kernels.growth_time_between(0.0, w, rho, alpha)
        down = kernels.decay_time_between(w, 0.0, rho, alpha)
        assert up == pytest.approx(down, rel=1e-12)

    @given(weights, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_single_job_flow_energy_ratio(self, w, rho, alpha):
        """§1.2's crucial observation: for P = s^alpha the ratio of NC's
        flow-time area to its energy area depends only on alpha.

        Flow above the growth curve = W * T - energy; the closed forms give
        flow / energy = 1/(alpha-1) * ... — concretely, energy = (1-1/alpha)
        * W * T / (2-1/alpha) ... we simply assert the ratio is independent
        of the weight by comparing two different weights.
        """
        t1 = kernels.growth_time_between(0.0, w, rho, alpha)
        e1 = kernels.growth_energy_between(0.0, w, rho, alpha)
        flow1 = w * t1 - e1  # area above the power curve (Fig 1b)
        w2 = w * 7.3
        t2 = kernels.growth_time_between(0.0, w2, rho, alpha)
        e2 = kernels.growth_energy_between(0.0, w2, rho, alpha)
        flow2 = w2 * t2 - e2
        assert flow1 / e1 == pytest.approx(flow2 / e2, rel=1e-9)

    def test_flow_energy_ratio_value(self):
        """At alpha = 3 the Fig-1b area ratio is concrete: with W**beta linear
        in t, energy/(W*T) = (1+beta)^{-1} * (1+1/beta)... assert the derived
        constant flow/energy = 1/(1+beta) / (beta/(1+beta)) = 1/beta - ...
        (value checked numerically)."""
        alpha, rho, w = 3.0, 1.0, 5.0
        t = kernels.growth_time_between(0.0, w, rho, alpha)
        e = kernels.growth_energy_between(0.0, w, rho, alpha)
        beta = 1.0 - 1.0 / alpha
        # E = W*T*beta/(1+beta)  (from the closed forms); flow = W*T/(1+beta).
        assert e == pytest.approx(w * t * beta / (1 + beta), rel=1e-12)
        assert (w * t - e) / e == pytest.approx(1.0 / beta, rel=1e-12)
