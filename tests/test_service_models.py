"""Round-trip stability of the service's pydantic models.

The models mirror :mod:`repro.io` field for field, and these tests pin the
sharper claim the differential endpoint test builds on: a full
``object -> model -> JSON -> model -> object`` cycle is *bit-stable* — every
float comes back identical, verified against the ``repro.io`` dictionaries
(the repo's canonical serialization).
"""

from __future__ import annotations

import pytest

pytest.importorskip("pydantic")

from repro import io
from repro.core.job import Instance, Job
from repro.core.metrics import evaluate
from repro.core.power import PowerLaw
from repro.core.schedule import (
    ConstantSegment,
    DecaySegment,
    GrowthSegment,
    IdleSegment,
    ScaledSegment,
    Schedule,
)
from repro.algorithms import (
    simulate_clairvoyant,
    simulate_nc_general,
    simulate_nc_uniform,
)
from repro.service.models import (
    InstanceModel,
    JobModel,
    ReportModel,
    ScheduleModel,
)
from repro.workloads import random_instance

ALPHA = 3.0


def _roundtrip(model_cls, model):
    """model -> JSON -> model, through the exact-float JSON path."""
    return model_cls.model_validate_json(model.model_dump_json())


# -- instances ----------------------------------------------------------------


@pytest.mark.parametrize("density", ["unit", "loguniform", "powers"])
def test_instance_roundtrip_bit_stable(density):
    inst = random_instance(25, seed=11, volume="pareto", density=density)
    back = _roundtrip(InstanceModel, InstanceModel.from_instance(inst)).to_instance()
    # Bit-stable against the repo's canonical serialization.
    assert io.instance_to_dict(back) == io.instance_to_dict(inst)
    assert [(j.job_id, j.release, j.volume, j.density) for j in back] == [
        (j.job_id, j.release, j.volume, j.density) for j in inst
    ]


def test_job_model_validation():
    from pydantic import ValidationError

    with pytest.raises(ValidationError):
        JobModel(id=1, release=-0.1, volume=1.0)
    with pytest.raises(ValidationError):
        JobModel(id=1, release=0.0, volume=0.0)
    with pytest.raises(ValidationError):
        JobModel(id=1, release=0.0, volume=1.0, density=-2.0)


# -- schedules ----------------------------------------------------------------


@pytest.mark.parametrize(
    "algorithm,density",
    [("C", "unit"), ("NC", "unit"), ("NC_GENERAL", "loguniform")],
)
def test_schedule_roundtrip_bit_stable(algorithm, density):
    inst = random_instance(10, seed=7, density=density)
    power = PowerLaw(ALPHA)
    if algorithm == "C":
        sched = simulate_clairvoyant(inst, power).schedule
    elif algorithm == "NC":
        sched = simulate_nc_uniform(inst, power).schedule
    else:
        sched = simulate_nc_general(inst, power, max_step=2e-2).schedule
    back = _roundtrip(ScheduleModel, ScheduleModel.from_schedule(sched)).to_schedule()
    assert io.schedule_to_dict(back) == io.schedule_to_dict(sched)
    # The reconstructed schedule is also *behaviorally* identical: its exact
    # cost report matches bit for bit.
    assert evaluate(back, inst, power) == evaluate(sched, inst, power)


def test_schedule_roundtrip_all_segment_kinds():
    # Hand-built schedule covering every segment kind, including the nested
    # scaled case no single algorithm emits.
    base = DecaySegment(0.0, 1.0, 3, 2.0, 1.0, ALPHA)
    sched = Schedule(
        [
            base,
            ScaledSegment(1.0, 1.5, 3, DecaySegment(1.0, 1.5, 3, 1.2, 1.0, ALPHA), 0.5),
            GrowthSegment(1.5, 2.0, 4, 0.7, 1.0, ALPHA),
            ConstantSegment(2.0, 2.5, 4, 1.25),
            IdleSegment(2.5, 3.0, None),
        ]
    )
    back = _roundtrip(ScheduleModel, ScheduleModel.from_schedule(sched)).to_schedule()
    assert io.schedule_to_dict(back) == io.schedule_to_dict(sched)
    for t in (0.0, 0.5, 1.2, 1.7, 2.2, 2.7):
        assert back.speed_at(t) == sched.speed_at(t)


# -- reports ------------------------------------------------------------------


def test_report_roundtrip_bit_stable():
    inst = random_instance(12, seed=3, density="unit")
    power = PowerLaw(ALPHA)
    sched = simulate_nc_uniform(inst, power).schedule
    report = evaluate(sched, inst, power)
    back = _roundtrip(ReportModel, ReportModel.from_report(report)).to_report()
    assert back == report
    assert io.report_to_dict(back) == io.report_to_dict(report)
    # The precomputed aggregates in the model match the source exactly too.
    model = ReportModel.from_report(report)
    assert model.fractional_objective == report.fractional_objective
    assert model.integral_objective == report.integral_objective


def test_instance_model_matches_io_dict_shape():
    # The JSON the API serves can be fed straight back through repro.io.
    inst = Instance([Job(0, 0.0, 2.0, 1.0), Job(1, 0.5, 1.0, 1.0)])
    payload = InstanceModel.from_instance(inst).model_dump()
    as_io = io.instance_from_dict(
        {"schema": payload["schema_version"], "jobs": payload["jobs"]}
    )
    assert io.instance_to_dict(as_io) == io.instance_to_dict(inst)
