"""The cloud-computing workload from the paper's introduction.

A customer pays ``lambda - rho * t_delay`` per unit volume; the only term the
scheduler controls is the penalty ``rho * F_int[j] * V[j]`` — weighted
flow-time with weight ``rho[j] * V[j]``, i.e. *density* ``rho[j]``.  The
penalty rate is in the contract (known at release); the job's volume is
whatever the customer submitted (unknown until it finishes): exactly the
known-density, unknown-volume model.

:func:`cloud_instance` builds a multi-tenant stream — tenants differ in SLA
penalty rate and job-size profile — and :func:`billing_summary` converts a
schedule's cost report back into the revenue language of the introduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.job import Instance, Job
from ..core.metrics import CostReport

__all__ = ["Tenant", "cloud_instance", "billing_summary", "BillingSummary"]


@dataclass(frozen=True, slots=True)
class Tenant:
    """A cloud customer: payment rate ``lam``, SLA penalty rate ``penalty``
    (the job density), and a lognormal job-size profile."""

    name: str
    lam: float
    penalty: float
    mean_volume: float
    sigma: float = 0.8
    submit_rate: float = 1.0


DEFAULT_TENANTS = (
    Tenant("batch-analytics", lam=2.0, penalty=0.25, mean_volume=4.0, submit_rate=0.4),
    Tenant("web-backend", lam=5.0, penalty=4.0, mean_volume=0.3, submit_rate=2.0),
    Tenant("ml-training", lam=3.0, penalty=1.0, mean_volume=2.0, submit_rate=0.6),
)


def cloud_instance(
    jobs_per_tenant: int,
    seed: int,
    tenants: tuple[Tenant, ...] = DEFAULT_TENANTS,
) -> tuple[Instance, dict[int, Tenant]]:
    """A merged multi-tenant job stream; returns the instance and the job ->
    tenant mapping (for billing)."""
    if jobs_per_tenant < 1:
        raise ValueError(f"need jobs_per_tenant >= 1, got {jobs_per_tenant}")
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    owner: dict[int, Tenant] = {}
    jid = 0
    for tenant in tenants:
        releases = np.cumsum(rng.exponential(1.0 / tenant.submit_rate, size=jobs_per_tenant))
        mu = np.log(tenant.mean_volume) - tenant.sigma**2 / 2.0
        volumes = rng.lognormal(mu, tenant.sigma, size=jobs_per_tenant)
        for r, v in zip(releases, volumes):
            jobs.append(Job(jid, float(r), float(max(v, 1e-9)), tenant.penalty))
            owner[jid] = tenant
            jid += 1
    return Instance(jobs), owner


@dataclass(frozen=True)
class BillingSummary:
    """Revenue accounting for one schedule (the intro's payment model)."""

    gross_payment: float  # sum of lambda * V over jobs
    delay_penalty: float  # sum of rho * F_int * V == the integral flow-time
    energy_cost: float

    @property
    def net(self) -> float:
        return self.gross_payment - self.delay_penalty - self.energy_cost


def billing_summary(
    report: CostReport, instance: Instance, owner: dict[int, Tenant]
) -> BillingSummary:
    """Translate a :class:`CostReport` into the intro's revenue terms.

    The delay penalty for job ``j`` is ``rho_j * V_j * (c_j - r_j)`` — the
    report's integral flow-time (weight = density * volume).
    """
    gross = sum(owner[j.job_id].lam * j.volume for j in instance)
    return BillingSummary(
        gross_payment=gross,
        delay_penalty=report.integral_flow,
        energy_cost=report.energy,
    )
