"""E11 — n-scaling of the array-core shadow versus the legacy scalar loop.

Drives :class:`repro.core.shadow.ClairvoyantShadow` to completion on
synthetic populations of 10^4–10^5 jobs under both kernel backends.  The
legacy scalar loop pays two O(n) scans per event (the HDF argmin and the
``fsum`` total weight), i.e. O(n^2) per busy period; the fast path replaces
them with a min-heap and an incremental accumulator, O(n log n) total.  The
benchmark pins both the wall-clock separation and the numerical agreement:

* ``scale_speedup`` — scalar / fast wall clock at the gated point
  (n = 10^4, all jobs released at t=0 so the active set *is* the
  population).  Gated at a 20x floor by
  ``scripts/check_bench_regression.py --min-scale-speedup`` (the ISSUE's
  acceptance criterion; typical measured separation is >100x).
* ``max_rel_diff`` — relative disagreement of the final clock between the
  two backends at every point where both run; asserted ≤ 1e-11 here and
  recorded as a deterministic artifact.  The per-kernel agreement band is
  1e-12 (``tests/test_arraykernels.py``); a full run compounds it over
  10^4 completion events, so the whole-run clock gets one extra decade.
* The n = 10^5 point runs on the fast path only (the scalar loop would
  take minutes there); its clock and event count are recorded so a future
  regression that silently changes the event sequence at scale is caught
  by the baseline diff.

Profiles: ``front`` releases everything at t=0 (worst case for the scalar
scans); ``bursty`` staggers releases in 10 dense bursts so admissions
interleave with completions (exercises the heap/accumulator transitions).
"""

from __future__ import annotations

import gc
import math
import time

import numpy as np

from repro.analysis import format_table
from repro.core.shadow import ClairvoyantShadow

from conftest import emit, emit_json

ALPHA = 3.0
SEED = 1107
#: (n, profile, run_scalar); the first entry is the gated point.
GRID = (
    (10_000, "front", True),
    (10_000, "bursty", True),
    (100_000, "front", False),
)
MIN_SCALE_SPEEDUP = 20.0
#: full-run clock band: per-kernel 1e-12 compounded over ~1e4 events.
AGREEMENT_BAND = 1e-11


def _population(n: int, profile: str) -> list[tuple[int, float, float, float]]:
    """``(job_id, release, density, volume)`` rows, reproducible per (n, profile)."""
    rng = np.random.default_rng(SEED + n)
    vols = rng.exponential(1.0, n) + 1e-3
    dens = 10.0 ** rng.uniform(-1.0, 1.0, n)
    if profile == "front":
        rels = np.zeros(n)
    else:
        # 10 bursts, each a tight cluster: admissions land mid-decay.
        burst = rng.integers(0, 10, size=n).astype(float)
        rels = burst * 5.0 + rng.uniform(0.0, 0.1, n)
        rels.sort()
    return [(i, float(rels[i]), float(dens[i]), float(vols[i])) for i in range(n)]


def _run(backend: str, rows: list[tuple[int, float, float, float]]) -> tuple[float, float, int]:
    """Advance a fresh shadow to completion; ``(wall_s, clock, events)``."""
    shadow = ClairvoyantShadow(ALPHA, backend=backend)
    for jid, rel, rho, vol in rows:
        shadow.insert_job(jid, rel, rho, vol)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = time.perf_counter()
        shadow.advance(math.inf)
        wall = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    assert not shadow.remaining_dict(), "run did not drain the population"
    return wall, shadow.clock, shadow.counters.events


def _time_grid() -> list[dict]:
    records = []
    for n, profile, run_scalar in GRID:
        rows = _population(n, profile)
        fast_wall, fast_clock, fast_events = _run("numpy", rows)
        rec: dict = {
            "n": n,
            "profile": profile,
            "fast_wall_s": fast_wall,
            "clock": fast_clock,
            "events": fast_events,
        }
        if run_scalar:
            scalar_wall, scalar_clock, scalar_events = _run("scalar", rows)
            rec["scalar_wall_s"] = scalar_wall
            rec["scale_speedup"] = scalar_wall / fast_wall
            rec["max_rel_diff"] = abs(fast_clock - scalar_clock) / scalar_clock
            assert scalar_events == fast_events, (
                f"event-count mismatch at n={n}/{profile}: "
                f"scalar {scalar_events} vs fast {fast_events}"
            )
        records.append(rec)
    return records


def test_scale(benchmark):
    records = benchmark.pedantic(_time_grid, rounds=1, iterations=1)

    table = format_table(
        ["n", "profile", "scalar s", "fast s", "speedup", "rel diff"],
        [
            [
                r["n"],
                r["profile"],
                f"{r['scalar_wall_s']:.3f}" if "scalar_wall_s" in r else "—",
                f"{r['fast_wall_s']:.4f}",
                f"{r['scale_speedup']:.1f}x" if "scale_speedup" in r else "—",
                f"{r['max_rel_diff']:.2e}" if "max_rel_diff" in r else "—",
            ]
            for r in records
        ],
    )
    emit("scale", table)
    emit_json("scale", {"grid": records, "speedup_floor": MIN_SCALE_SPEEDUP})

    for r in records:
        if "max_rel_diff" in r:
            assert r["max_rel_diff"] <= AGREEMENT_BAND, (
                f"backend disagreement {r['max_rel_diff']:.2e} beyond the "
                f"{AGREEMENT_BAND:g} band at n={r['n']}/{r['profile']}"
            )
        if "scale_speedup" in r:
            assert r["scale_speedup"] >= MIN_SCALE_SPEEDUP, (
                f"fast path only {r['scale_speedup']:.1f}x over scalar at "
                f"n={r['n']}/{r['profile']} — below the {MIN_SCALE_SPEEDUP:g}x floor"
            )
