"""Tests for the §4 density rounding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Job
from repro.algorithms.density_rounding import (
    density_class_index,
    density_classes,
    round_density_down,
    rounded_instance,
)


class TestClassIndex:
    def test_exact_powers(self):
        assert density_class_index(1.0, 5.0) == 0
        assert density_class_index(5.0, 5.0) == 1
        assert density_class_index(25.0, 5.0) == 2
        assert density_class_index(0.2, 5.0) == -1

    def test_between_powers_rounds_down(self):
        assert density_class_index(4.99, 5.0) == 0
        assert density_class_index(5.01, 5.0) == 1
        assert density_class_index(24.0, 5.0) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            density_class_index(0.0, 5.0)
        with pytest.raises(ValueError):
            density_class_index(1.0, 1.0)
        with pytest.raises(ValueError):
            density_class_index(-2.0, 5.0)

    @given(
        st.floats(min_value=1e-6, max_value=1e6),
        st.floats(min_value=1.5, max_value=10.0),
    )
    @settings(max_examples=100)
    def test_bracket_property(self, rho, beta):
        """beta**k <= rho < beta**(k+1) up to float slack."""
        k = density_class_index(rho, beta)
        assert beta**k <= rho * (1 + 1e-9)
        assert rho < beta ** (k + 1) * (1 + 1e-9)

    @given(st.integers(min_value=-20, max_value=20), st.floats(min_value=1.5, max_value=8.0))
    @settings(max_examples=100)
    def test_exact_power_is_own_class(self, k, beta):
        rho = float(beta) ** k
        assert density_class_index(rho, beta) == k


class TestRounding:
    @given(
        st.floats(min_value=1e-4, max_value=1e4),
        st.floats(min_value=2.0, max_value=8.0),
    )
    @settings(max_examples=100)
    def test_rounds_down_within_beta(self, rho, beta):
        r = round_density_down(rho, beta)
        assert r <= rho * (1 + 1e-9)
        assert rho < r * beta * (1 + 1e-9)

    def test_rounded_instance_preserves_everything_else(self):
        inst = Instance([Job(0, 1.0, 2.0, 7.0), Job(1, 2.0, 3.0, 24.0)])
        rounded = rounded_instance(inst, 5.0)
        assert rounded[0].density == pytest.approx(5.0)
        assert rounded[1].density == pytest.approx(5.0)
        assert rounded[0].volume == 2.0
        assert rounded[0].release == 1.0

    def test_rounding_idempotent(self):
        inst = Instance([Job(0, 0.0, 1.0, 7.0)])
        once = rounded_instance(inst, 5.0)
        twice = rounded_instance(once, 5.0)
        assert once[0].density == twice[0].density


class TestClasses:
    def test_grouping_fifo_within_class(self):
        inst = Instance(
            [
                Job(0, 0.0, 1.0, 6.0),
                Job(1, 1.0, 1.0, 7.0),
                Job(2, 2.0, 1.0, 1.0),
            ]
        )
        classes = density_classes(inst, 5.0)
        assert classes == {1: [0, 1], 0: [2]}
