"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import math

import pytest
from hypothesis import strategies as st

from repro import Instance, Job, PowerLaw

# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

#: alpha values spanning the paper's regime (alpha >= 2 typical, >1 required).
alphas = st.floats(min_value=1.2, max_value=6.0, allow_nan=False, allow_infinity=False)

#: alphas for *exact-equality* assertions.  Near alpha = 1 the exponent
#: 1/beta = alpha/(alpha-1) amplifies float cancellation (a 1e-16 error in a
#: remaining weight surfaces as ~1e-16**beta in a completion time), so
#: machine-precision identities are only checkable away from 1.
robust_alphas = st.floats(min_value=1.5, max_value=6.0, allow_nan=False, allow_infinity=False)

#: strictly positive, well-scaled quantities (volumes, weights, densities).
positives = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)

#: release times.
releases = st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False)


@st.composite
def uniform_instances(draw, max_jobs: int = 8, density: float | None = 1.0):
    """Random uniform-density instances with distinct releases."""
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    rel = sorted(
        draw(
            st.lists(releases, min_size=n, max_size=n, unique_by=lambda r: round(r, 6))
        )
    )
    vols = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=20.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    rho = density if density is not None else draw(positives)
    return Instance(Job(i, rel[i], vols[i], rho) for i in range(n))


@st.composite
def general_instances(draw, max_jobs: int = 6):
    """Random instances with varied densities."""
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    rel = sorted(
        draw(st.lists(releases, min_size=n, max_size=n, unique_by=lambda r: round(r, 6)))
    )
    vols = draw(
        st.lists(st.floats(min_value=0.05, max_value=10.0, allow_nan=False), min_size=n, max_size=n)
    )
    dens = draw(
        st.lists(st.floats(min_value=0.1, max_value=10.0, allow_nan=False), min_size=n, max_size=n)
    )
    return Instance(Job(i, rel[i], vols[i], dens[i]) for i in range(n))


# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def cube() -> PowerLaw:
    return PowerLaw(3.0)


@pytest.fixture
def square() -> PowerLaw:
    return PowerLaw(2.0)


@pytest.fixture
def three_jobs() -> Instance:
    """The smoke-test instance used throughout: staggered unit-density jobs."""
    return Instance([Job(0, 0.0, 4.0), Job(1, 1.0, 2.0), Job(2, 1.5, 1.0)])


@pytest.fixture
def mixed_density_jobs() -> Instance:
    return Instance(
        [Job(0, 0.0, 3.0, 1.0), Job(1, 0.5, 1.0, 10.0), Job(2, 1.0, 0.5, 3.0)]
    )


def assert_close(a: float, b: float, rel: float = 1e-9, abs_: float = 1e-12) -> None:
    assert math.isclose(a, b, rel_tol=rel, abs_tol=abs_), f"{a} != {b} (rel={rel})"
