"""Generality tests: Lemmas 3 and 6 hold for *any* monotone convex power
function (the paper proves them in that generality; only the flow-time
comparison of Lemma 4 needs P = s^alpha).

These run the algorithms through the numeric engine with a tabulated
(piecewise-linear convex) power curve and verify the structural identities
within the engine's discretisation error.
"""

from __future__ import annotations

import pytest

from repro import Instance, Job
from repro.algorithms.baselines import simulate_active_count
from repro.algorithms.clairvoyant import ClairvoyantPolicy
from repro.algorithms.nc_uniform import NCUniformPolicy
from repro.core import NumericEngine, TabulatedPower, evaluate


@pytest.fixture
def tab_power() -> TabulatedPower:
    """A convex non-polynomial power curve (superlinear, kinked).

    The first segment is flat: ``P(s) = 0`` up to ``s = 0.5``.  This mirrors
    the crucial property of ``s**alpha`` that ``P'(0) = 0`` — with a strictly
    positive slope at the origin the power-equals-weight decay would be
    exponential and jobs would never finish in finite time.
    """
    speeds = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0]
    powers = [0.0, 0.0, 1.0, 2.6, 5.0, 12.0, 40.0]
    return TabulatedPower(speeds, powers)


@pytest.fixture
def small_instance() -> Instance:
    return Instance([Job(0, 0.0, 1.5), Job(1, 0.4, 0.8), Job(2, 0.9, 0.5)])


class TestClairvoyantGeneralPower:
    def test_flow_equals_energy(self, tab_power, small_instance):
        """Theorem 1's identity is power-function independent."""
        engine = NumericEngine(tab_power, max_step=1e-3)
        res = engine.run(small_instance, ClairvoyantPolicy(small_instance, tab_power))
        rep = evaluate(res.schedule, small_instance, tab_power)
        assert rep.fractional_flow == pytest.approx(rep.energy, rel=5e-3)

    def test_speed_follows_inverse_power(self, tab_power, small_instance):
        engine = NumericEngine(tab_power, max_step=1e-3)
        res = engine.run(small_instance, ClairvoyantPolicy(small_instance, tab_power))
        w0 = small_instance.jobs[0].weight  # only job 0 active at t=0+
        assert res.schedule.speed_at(1e-4) == pytest.approx(tab_power.speed(w0), rel=1e-2)


class TestNCGeneralPower:
    def test_lemma3_energy_equality(self, tab_power, small_instance):
        """Lemma 3 ('actually true for all power functions') via the engine."""
        engine = NumericEngine(tab_power, max_step=1e-3)
        res_nc = engine.run(small_instance, NCUniformPolicy(tab_power, epsilon=1e-5))
        res_c = NumericEngine(tab_power, max_step=1e-3).run(
            small_instance, ClairvoyantPolicy(small_instance, tab_power)
        )
        e_nc = evaluate(res_nc.schedule, small_instance, tab_power).energy
        e_c = evaluate(res_c.schedule, small_instance, tab_power).energy
        assert e_nc == pytest.approx(e_c, rel=1e-2)

    def test_lemma6_duration_equality(self, tab_power, small_instance):
        """The measure-preserving remap implies equal total span."""
        res_nc = NumericEngine(tab_power, max_step=1e-3).run(
            small_instance, NCUniformPolicy(tab_power, epsilon=1e-5)
        )
        res_c = NumericEngine(tab_power, max_step=1e-3).run(
            small_instance, ClairvoyantPolicy(small_instance, tab_power)
        )
        assert res_nc.schedule.end_time == pytest.approx(res_c.schedule.end_time, rel=1e-2)


class TestBaselinesGeneralPower:
    def test_active_count_works(self, tab_power, small_instance):
        sched = simulate_active_count(small_instance, tab_power)
        rep = evaluate(sched, small_instance, tab_power)
        assert set(rep.completion_times) == set(small_instance.job_ids)
        assert sched.speed_at(1e-6) == pytest.approx(tab_power.speed(1.0))
