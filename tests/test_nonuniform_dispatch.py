"""Tests for the §7 open-problem prototypes (NC-HDF-PAR / C-HDF-PAR)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Job, PowerLaw
from repro.core.errors import InvalidInstanceError
from repro.parallel import (
    simulate_c_hdf_par,
    simulate_c_par,
    simulate_nc_hdf_par,
    simulate_nc_par,
)

from conftest import general_instances, uniform_instances


class TestNCHdfPar:
    def test_all_jobs_completed(self, cube, mixed_density_jobs):
        run = simulate_nc_hdf_par(mixed_density_jobs, cube, 2)
        rep = run.report()
        assert set(rep.completion_times) == set(mixed_density_jobs.job_ids)

    def test_hdf_priority_in_queue(self, cube):
        """With one machine busy, a waiting high-density job is dispatched
        before an earlier-released low-density one."""
        inst = Instance(
            [
                Job(0, 0.0, 5.0, 1.0),  # occupies the single machine
                Job(1, 0.1, 1.0, 1.0),  # low density, earlier
                Job(2, 0.2, 1.0, 30.0),  # high class, later
            ]
        )
        run = simulate_nc_hdf_par(inst, cube, 1)
        assert run.assignments[0].index(2) < run.assignments[0].index(1)

    def test_idle_machine_taken_immediately(self, cube):
        inst = Instance([Job(0, 0.0, 1.0, 1.0), Job(1, 0.05, 1.0, 1.0)])
        run = simulate_nc_hdf_par(inst, cube, 2)
        assert run.machine_of(0) != run.machine_of(1)

    def test_rejects_zero_machines(self, cube, mixed_density_jobs):
        with pytest.raises(InvalidInstanceError):
            simulate_nc_hdf_par(mixed_density_jobs, cube, 0)

    def test_uniform_density_matches_nc_par(self, cube, three_jobs):
        """With one density class the HDF queue degenerates to FIFO, so the
        prototype must coincide with NC-PAR."""
        a = simulate_nc_hdf_par(three_jobs, cube, 2)
        b = simulate_nc_par(three_jobs, cube, 2)
        assert a.assignments == b.assignments
        assert a.report().fractional_objective == pytest.approx(
            b.report().fractional_objective, rel=1e-9
        )

    @given(general_instances(max_jobs=6), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_valid_cluster_runs(self, inst, k):
        power = PowerLaw(3.0)
        run = simulate_nc_hdf_par(inst, power, k)
        rep = run.report()  # validates per-machine schedules
        assert rep.energy > 0


class TestCHdfPar:
    def test_all_jobs_completed(self, cube, mixed_density_jobs):
        rep = simulate_c_hdf_par(mixed_density_jobs, cube, 2).report()
        assert set(rep.completion_times) == set(mixed_density_jobs.job_ids)

    def test_uniform_density_matches_c_par(self, cube, three_jobs):
        """With one class, 'same-or-higher density weight' is just the total
        remaining weight, i.e. C-PAR's rule."""
        a = simulate_c_hdf_par(three_jobs, cube, 2)
        b = simulate_c_par(three_jobs, cube, 2)
        assert a.assignments == b.assignments

    def test_ignores_lower_density_load(self, cube):
        """A machine busy with low-density work looks empty to a high-density
        arrival (the §7 comparator's defining quirk)."""
        inst = Instance(
            [
                Job(0, 0.0, 50.0, 1.0),  # heavy low-density on machine 0
                Job(1, 0.1, 1.0, 30.0),  # high class: machine 0 looks empty...
            ]
        )
        run = simulate_c_hdf_par(inst, cube, 2)
        # ...so ties are broken by index and job 1 lands on machine 0 too.
        assert run.machine_of(1) == 0

    @given(general_instances(max_jobs=6), st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_valid_cluster_runs(self, inst, k):
        power = PowerLaw(3.0)
        rep = simulate_c_hdf_par(inst, power, k).report()
        assert rep.energy > 0


class TestDivergence:
    def test_assignments_can_differ(self, cube):
        """The paper's §7 conjecture: later releases can steer NC-HDF-PAR's
        assignment away from the clairvoyant comparator's.  We exhibit a
        concrete diverging instance found by the probe bench."""
        from repro.workloads import random_instance

        diverged = False
        for seed in range(1, 9):
            inst = random_instance(
                10, 500 + seed, volume="uniform", density="powers",
                density_params={"beta": 5.0, "classes": 3},
            )
            nc = simulate_nc_hdf_par(inst, cube, 3)
            c = simulate_c_hdf_par(inst, cube, 3)
            if nc.assignments != c.assignments:
                diverged = True
                break
        assert diverged, "expected at least one diverging seed (paper §7 intuition)"

    @given(uniform_instances(max_jobs=6), st.integers(min_value=1, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_uniform_never_diverges(self, inst, k):
        """In the uniform case both prototypes collapse to §6's algorithms,
        where Lemma 20 *proves* agreement."""
        power = PowerLaw(3.0)
        nc = simulate_nc_hdf_par(inst, power, k)
        c = simulate_c_hdf_par(inst, power, k)
        assert nc.assignments == c.assignments
