"""Tests for the generic numeric engine, including cross-validation against
the exact analytic simulators — the package's defence against closed-form
algebra errors."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import Instance, Job, PowerLaw
from repro.algorithms.clairvoyant import ClairvoyantPolicy, simulate_clairvoyant
from repro.algorithms.nc_uniform import NCUniformPolicy, simulate_nc_uniform
from repro.core.engine import NumericEngine, SchedulingPolicy
from repro.core.errors import SimulationError
from repro.core.metrics import evaluate

from conftest import uniform_instances


class TestEngineBasics:
    def test_rejects_bad_steps(self, cube):
        with pytest.raises(ValueError):
            NumericEngine(cube, max_step=0.0)
        with pytest.raises(ValueError):
            NumericEngine(cube, max_step=1e-3, min_step=1e-2)

    def test_single_job_completes(self, cube):
        inst = Instance([Job(0, 0.0, 1.0)])
        result = NumericEngine(cube, max_step=1e-3).run(inst, ClairvoyantPolicy(inst, cube))
        assert result.schedule.processed_volume(0) == pytest.approx(1.0, rel=1e-6)

    def test_idle_until_release(self, cube):
        inst = Instance([Job(0, 2.0, 1.0)])
        result = NumericEngine(cube, max_step=1e-3).run(inst, ClairvoyantPolicy(inst, cube))
        assert result.schedule.completion_time(0, 1.0) > 2.0
        assert result.schedule.speed_at(1.0) == 0.0

    def test_oracle_marks_all_completed(self, cube, three_jobs):
        result = NumericEngine(cube, max_step=2e-3).run(
            three_jobs, ClairvoyantPolicy(three_jobs, cube)
        )
        for jid in three_jobs.job_ids:
            assert result.oracle.is_completed(jid)

    def test_selecting_inactive_job_raises(self, cube):
        class BadPolicy(ClairvoyantPolicy):
            def select_job(self, t):
                return 999

        inst = Instance([Job(0, 0.0, 1.0)])
        with pytest.raises(SimulationError):
            NumericEngine(cube, max_step=1e-2).run(inst, BadPolicy(inst, cube))

    def test_invalid_speed_raises(self, cube):
        class NaNPolicy(ClairvoyantPolicy):
            def speed(self, t, processed):
                return float("nan")

        inst = Instance([Job(0, 0.0, 1.0)])
        with pytest.raises(SimulationError):
            NumericEngine(cube, max_step=1e-2).run(inst, NaNPolicy(inst, cube))

    def test_zero_speed_policy_stalls_with_error(self, cube):
        class StalledPolicy(ClairvoyantPolicy):
            def speed(self, t, processed):
                return 0.0

        inst = Instance([Job(0, 0.0, 1.0)])
        with pytest.raises(SimulationError):
            NumericEngine(cube, max_step=1.0).run(inst, StalledPolicy(inst, cube))


class TestCrossValidationClairvoyant:
    def test_three_jobs_objective_matches(self, cube, three_jobs):
        num = NumericEngine(cube, max_step=1e-3).run(
            three_jobs, ClairvoyantPolicy(three_jobs, cube)
        )
        ana = simulate_clairvoyant(three_jobs, cube)
        rn = evaluate(num.schedule, three_jobs, cube)
        ra = evaluate(ana.schedule, three_jobs, cube)
        assert rn.fractional_objective == pytest.approx(ra.fractional_objective, rel=1e-4)
        assert rn.energy == pytest.approx(ra.energy, rel=1e-4)

    def test_error_shrinks_with_step(self, cube, three_jobs):
        ana = evaluate(simulate_clairvoyant(three_jobs, cube).schedule, three_jobs, cube)
        errs = []
        for h in (2e-2, 2e-3):
            num = NumericEngine(cube, max_step=h).run(
                three_jobs, ClairvoyantPolicy(three_jobs, cube)
            )
            rn = evaluate(num.schedule, three_jobs, cube)
            errs.append(abs(rn.fractional_objective - ana.fractional_objective))
        assert errs[1] < errs[0]

    @given(uniform_instances(max_jobs=4))
    @settings(max_examples=15, deadline=None)
    def test_property_agreement(self, inst):
        power = PowerLaw(3.0)
        num = NumericEngine(power, max_step=5e-3).run(inst, ClairvoyantPolicy(inst, power))
        ana = simulate_clairvoyant(inst, power)
        rn = evaluate(num.schedule, inst, power)
        ra = evaluate(ana.schedule, inst, power)
        assert rn.fractional_objective == pytest.approx(ra.fractional_objective, rel=2e-3)

    def test_mixed_densities_agreement(self, cube, mixed_density_jobs):
        num = NumericEngine(cube, max_step=1e-3).run(
            mixed_density_jobs, ClairvoyantPolicy(mixed_density_jobs, cube)
        )
        ana = simulate_clairvoyant(mixed_density_jobs, cube)
        rn = evaluate(num.schedule, mixed_density_jobs, cube)
        ra = evaluate(ana.schedule, mixed_density_jobs, cube)
        assert rn.fractional_objective == pytest.approx(ra.fractional_objective, rel=1e-4)


class TestCrossValidationNCUniform:
    def test_three_jobs_objective_matches(self, cube, three_jobs):
        num = NumericEngine(cube, max_step=1e-3).run(three_jobs, NCUniformPolicy(cube))
        ana = simulate_nc_uniform(three_jobs, cube)
        rn = evaluate(num.schedule, three_jobs, cube)
        ra = evaluate(ana.schedule, three_jobs, cube)
        assert rn.fractional_objective == pytest.approx(ra.fractional_objective, rel=1e-3)
        assert rn.energy == pytest.approx(ra.energy, rel=1e-3)

    @given(uniform_instances(max_jobs=3))
    @settings(max_examples=10, deadline=None)
    def test_property_agreement(self, inst):
        power = PowerLaw(2.0)
        num = NumericEngine(power, max_step=5e-3).run(inst, NCUniformPolicy(power))
        ana = simulate_nc_uniform(inst, power)
        rn = evaluate(num.schedule, inst, power)
        ra = evaluate(ana.schedule, inst, power)
        assert rn.fractional_objective == pytest.approx(ra.fractional_objective, rel=5e-3)


class TestIdlePolicy:
    def test_policy_may_idle_with_active_jobs(self, cube):
        class LazyPolicy(SchedulingPolicy):
            """Idles until t >= 1, then FIFO at fixed power-1 speed."""

            def __init__(self):
                self.active = []

            def on_release(self, t, job_id, density):
                self.active.append(job_id)

            def on_completion(self, t, job_id, volume):
                self.active.remove(job_id)

            def select_job(self, t):
                if t < 1.0 or not self.active:
                    return None
                return self.active[0]

            def speed(self, t, processed):
                return 1.0

        inst = Instance([Job(0, 0.0, 1.0)])
        result = NumericEngine(cube, max_step=1e-2).run(inst, LazyPolicy())
        assert result.schedule.completion_time(0, 1.0) == pytest.approx(2.0, rel=1e-2)
