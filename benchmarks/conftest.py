"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's artifacts (table, figure or
section-level claim) and *prints* the rows/series.  pytest captures stdout,
so :func:`emit` writes through to the real terminal (visible in
``pytest benchmarks/ --benchmark-only | tee bench_output.txt``) and archives
a copy under ``benchmarks/out/``.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, text: str) -> None:
    """Print a bench artifact to the real stdout and archive it."""
    banner = f"\n===== {name} =====\n"
    sys.__stdout__.write(banner + text + "\n")
    sys.__stdout__.flush()
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def cube():
    from repro import PowerLaw

    return PowerLaw(3.0)
