"""Edge-case coverage across modules: error hierarchy, engine step ramp,
extreme parameters, and small behaviours not worth their own file."""

from __future__ import annotations

import math

import pytest

from repro import Instance, Job
from repro.core import errors
from repro.core.engine import NumericEngine
from repro.core.kernels import (
    decay_energy_between,
    decay_time_to_zero,
    growth_time_between,
)
from repro.algorithms.clairvoyant import ClairvoyantPolicy
from repro.parallel import seeded_random_rule


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.InvalidInstanceError,
            errors.InvalidPowerFunctionError,
            errors.ScheduleError,
            errors.ClairvoyanceViolationError,
            errors.SimulationError,
            errors.ConvergenceError,
        ],
    )
    def test_all_subclass_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")


class TestEngineStepRamp:
    def test_small_steps_right_after_release(self, cube):
        """The geometric ramp restarts after an event: the first segment
        following a mid-run release must be far shorter than max_step."""
        inst = Instance([Job(0, 0.0, 2.0), Job(1, 1.0, 1.0)])
        engine = NumericEngine(cube, max_step=1e-2, min_step=1e-12)
        result = engine.run(inst, ClairvoyantPolicy(inst, cube))
        after_release = [
            s for s in result.schedule.segments if s.t0 >= 1.0 and s.t0 < 1.0 + 1e-6
        ]
        assert after_release, "no segments found right after the release"
        assert min(s.duration for s in after_release) < 1e-6

    def test_steps_grow_back_to_max(self, cube):
        inst = Instance([Job(0, 0.0, 2.0)])
        engine = NumericEngine(cube, max_step=1e-2, min_step=1e-10)
        result = engine.run(inst, ClairvoyantPolicy(inst, cube))
        assert max(s.duration for s in result.schedule.segments) >= 0.9e-2


class TestExtremeParameters:
    def test_kernels_large_alpha(self):
        """alpha = 50: beta ~ 1, dynamics nearly linear; closed forms stay
        finite and consistent."""
        t = decay_time_to_zero(10.0, 1.0, 50.0)
        assert math.isfinite(t) and t > 0
        e = decay_energy_between(10.0, 0.0, 1.0, 50.0)
        assert math.isfinite(e) and e > 0
        assert growth_time_between(0.0, 10.0, 1.0, 50.0) == pytest.approx(t, rel=1e-9)

    def test_kernels_tiny_weights(self):
        t = decay_time_to_zero(1e-30, 1.0, 3.0)
        assert math.isfinite(t) and t > 0

    def test_huge_volume_simulation(self, cube):
        from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
        from repro.core import evaluate

        inst = Instance([Job(0, 0.0, 1e6)])
        rc = evaluate(simulate_clairvoyant(inst, cube).schedule, inst, cube)
        rn = evaluate(simulate_nc_uniform(inst, cube).schedule, inst, cube)
        assert rn.energy == pytest.approx(rc.energy, rel=1e-9)

    def test_many_simultaneous_jobs(self, cube):
        from repro.algorithms import simulate_nc_uniform
        from repro.core import evaluate

        inst = Instance([Job(i, i * 1e-9, 0.5) for i in range(50)])
        rep = evaluate(simulate_nc_uniform(inst, cube).schedule, inst, cube)
        assert len(rep.completion_times) == 50


class TestSeededRandomRule:
    def test_deterministic(self):
        rule = seeded_random_rule(7)
        a = rule(4, list(range(16)))
        b = rule(4, list(range(16)))
        assert a == b

    def test_range(self):
        out = seeded_random_rule(1)(3, list(range(30)))
        assert all(0 <= m < 3 for m in out)

    def test_different_seeds_differ(self):
        a = seeded_random_rule(1)(4, list(range(16)))
        b = seeded_random_rule(2)(4, list(range(16)))
        assert a != b


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_star_exports_resolve(self):
        """Every name in each __all__ must actually exist."""
        import repro
        import repro.algorithms
        import repro.analysis
        import repro.core
        import repro.extensions
        import repro.io
        import repro.offline
        import repro.parallel
        import repro.workloads

        for mod in (
            repro,
            repro.core,
            repro.algorithms,
            repro.parallel,
            repro.offline,
            repro.workloads,
            repro.analysis,
            repro.extensions,
            repro.io,
        ):
            for name in mod.__all__:
                assert hasattr(mod, name), f"{mod.__name__}.{name} missing"

    def test_py_typed_marker_exists(self):
        import pathlib

        import repro

        assert (pathlib.Path(repro.__file__).parent / "py.typed").exists()
