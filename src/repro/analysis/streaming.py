"""Single-pass trace aggregators: bounded-memory verification of any-size runs.

:func:`repro.analysis.trace_report.build_report` historically materialized
the whole event list and replayed it several times (once per component, once
per check).  At the scales the vectorized core and the sharded pool produce —
10^5–10^6 jobs, millions of events — that costs memory proportional to the
trace.  The invariants being checked are all expressible as one-pass running
sums, so this module re-derives the *same report* from a single forward
iteration with memory bounded by the number of **jobs**, never the number of
events:

* :class:`OrderingChecker` — the per-``(component, kind)`` watermark
  contract, honoring ``shadow_rollback`` / ``shadow_rebuild`` / ``retry``
  rewind boundaries, exactly as ``check_event_order``.
* :class:`ComponentStatsAggregator` — per-component event counts, kind
  histograms and wall-clock extents.
* :class:`IncrementalScheduleReplayer` — the heart: an online mirror of
  ``replay_schedule`` + ``metrics.evaluate`` for one component.  It keeps the
  online Lemma 3 energy accumulator (segment energies summed in arrival
  order) and the online Lemma 4 flow accumulator (per-job remaining-volume
  integrals advanced segment by segment), retiring each job's closed-form
  state the moment its completion time is fixed.  No segment list is ever
  stored.
* :class:`StreamingReportBuilder` — feeds one event at a time to the above
  and assembles the final :class:`~repro.analysis.trace_report.TraceReport`.

Bit-identity contract
---------------------

The streaming path promises **bit-identical** reports to the in-memory twin
(``build_report_in_memory``) — same floats, same check verdicts, same error
objects in the same order.  That is only possible because the mirrored code
paths perform the *same float operations in the same order*:

* ``ScheduleBuilder.append``'s clock check and ``Schedule``'s overlap check
  run online against the previous appended segment; since builder-fed
  segments arrive with nondecreasing ``t0``, the in-memory stable sort is the
  identity and arrival order *is* schedule order.  A trace whose segments
  violate that (strictly decreasing ``t0``) cannot be verified one-pass
  without reordering sums; it raises :class:`StreamOrderError` directing the
  caller to the in-memory path.
* The energy sum, each job's completion-time scan, and each job's
  remaining-volume integral are accumulated left-to-right exactly as the
  batch code does; per-job arithmetic is independent across jobs, so
  transposing the loops (segment-outer instead of job-outer) reproduces the
  identical operation sequence per job.
* ``evaluate``'s completion fallback (a job finishing by accumulated-float
  shortfall at its last touch) clips the integral at the job's *last*
  processed segment; the replayer snapshots the integral state after every
  processed segment of the job so the finish step can restore exactly that
  clip.
* Error semantics mirror the batch path's control flow: builder/constructor
  errors surface as soon as the batch replay would have raised them,
  validation and completion errors are recorded online and raised at
  ``finish()`` in the batch order (replay C, replay NC, evaluate C,
  evaluate NC, per pair) — so consumers that catch ``ScheduleError`` (the
  chaos harness's lemma guard) observe identical behavior.

``tests/test_streaming.py`` proves the contract differentially on the golden
corpus, including across ``retry`` rewind boundaries and sharded-run event
streams.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..core.errors import ScheduleError
from ..core.job import Instance, Job
from ..core.power import PowerLaw
from ..core.schedule import (
    ConstantSegment,
    DecaySegment,
    GrowthSegment,
    Segment,
)
from ..core.tracing import TraceEvent

# trace_report only imports this module lazily (inside build_report), so the
# top-level import here is acyclic.
from .trace_report import (
    _PAIRS,
    ComponentStats,
    InvariantCheck,
    TraceReport,
    _close,
)

#: The components whose kernel streams feed the lemma replayers.
_PAIR_COMPONENTS = frozenset(c for pair in _PAIRS for c in pair)

__all__ = [
    "StreamOrderError",
    "OrderingChecker",
    "ComponentStatsAggregator",
    "IncrementalScheduleReplayer",
    "StreamingReportBuilder",
]

#: Same tolerance the schedule layer uses for clock/overlap slack.
_REL_TOL = 1e-9
#: Same tolerance ``metrics.validate_schedule`` uses for volume conservation.
_VOL_TOL = 1e-6
#: Pre-``run_meta`` replay events are buffered until the header decides the
#: instance; a real trace writes the header first, so this bound is never
#: approached in practice.  Crossing it means the trace is not header-first at
#: scale — use the in-memory path.
_PRE_META_BUFFER_LIMIT = 65536


class StreamOrderError(ValueError):
    """The stream cannot be verified single-pass with bit-identical results.

    Raised when a component's kernel segments arrive with strictly decreasing
    ``t0`` (the batch path's stable sort would reorder the energy/flow sums)
    or when replay events overflow the pre-``run_meta`` buffer.  Fall back to
    ``build_report_in_memory`` on a materialized event list.
    """


class OrderingChecker:
    """Online port of ``trace_report.check_event_order`` (same messages)."""

    def __init__(self) -> None:
        self._last: dict[tuple[str, str], float] = {}
        self.violations: list[str] = []

    def feed(self, index: int, event: TraceEvent) -> None:
        if event.kind == "retry":
            self._last.clear()
            return
        if event.kind in ("shadow_rollback", "shadow_rebuild"):
            for key in [k for k in self._last if k[0] == event.component]:
                del self._last[key]
            return
        key = (event.component, event.kind)
        prev = self._last.get(key)
        if prev is not None and event.sim_time < prev:
            self.violations.append(
                f"event {index}: {event.component}/{event.kind} at "
                f"sim_time={event.sim_time} after {prev} with no rollback boundary"
            )
        self._last[key] = event.sim_time


class _CompAccum:
    __slots__ = ("events", "by_kind", "wall_start", "wall_end")

    def __init__(self, wall: float) -> None:
        self.events = 0
        self.by_kind: dict[str, int] = {}
        self.wall_start = wall
        self.wall_end = wall


class ComponentStatsAggregator:
    """Running per-component event counts / kind histograms / wall extents."""

    def __init__(self) -> None:
        self._comps: dict[str, _CompAccum] = {}

    def feed(self, event: TraceEvent) -> None:
        acc = self._comps.get(event.component)
        if acc is None:
            acc = self._comps[event.component] = _CompAccum(event.wall_time)
        acc.events += 1
        acc.by_kind[event.kind] = acc.by_kind.get(event.kind, 0) + 1
        if event.wall_time < acc.wall_start:
            acc.wall_start = event.wall_time
        if event.wall_time > acc.wall_end:
            acc.wall_end = event.wall_time

    def finish(self) -> list[ComponentStats]:
        return [
            ComponentStats(
                component=comp,
                events=acc.events,
                by_kind=dict(sorted(acc.by_kind.items())),
                wall_start=acc.wall_start,
                wall_end=acc.wall_end,
            )
            for comp, acc in sorted(self._comps.items())
        ]


class _JobState:
    """Mutable per-job accumulator mirroring one job's arithmetic in
    ``Schedule.completion_time`` and ``metrics._remaining_volume_integral``."""

    __slots__ = (
        "job",
        "got",
        "remaining_ct",
        "last_end",
        "completion",
        "total",
        "cursor",
        "remaining_iv",
        "snap_total",
        "snap_cursor",
        "snap_remaining_iv",
        "frac",
        "done",
    )

    def __init__(self, job: Job) -> None:
        self.job = job
        #: ``Schedule.processed_volume`` mirror (validation + error messages).
        self.got: float = 0
        # completion_time scan state
        self.remaining_ct = job.volume
        self.last_end: float | None = None
        self.completion: float | None = None
        # _remaining_volume_integral state (completion treated as +inf while
        # unknown; the batch path knows it up front, but every segment it
        # clips at the completion boundary is either the completing segment —
        # where we learn the completion *before* the integral step — or a
        # later segment contributing zero, so the transposition is exact)
        self.total = 0.0
        self.cursor = job.release
        self.remaining_iv = job.volume
        # snapshot after each processed segment of this job, for the
        # completion-fallback clip at finish()
        self.snap_total = 0.0
        self.snap_cursor = job.release
        self.snap_remaining_iv = job.volume
        self.frac = 0.0
        self.done = False


class IncrementalScheduleReplayer:
    """Online ``replay_schedule`` + ``evaluate`` for one component.

    Feed ``kernel_eval`` payloads with :meth:`feed`; a supervisor ``retry``
    on the component calls :meth:`reset` (the discarded attempt's segments
    vanish, exactly as the batch replay restarts its builder).  At the end,
    :meth:`finalize_replay` raises any error the batch *replay* would have
    raised, and :meth:`finalize_eval` raises any error the batch *evaluate*
    would have raised — in the batch path's order — then returns the
    component's ``(energy, fractional_flow)``.

    Memory is O(jobs): completed jobs retire from the per-segment update set
    the moment their completion time is fixed, and no segment is retained.
    """

    def __init__(self, component: str, instance: Instance, power: PowerLaw) -> None:
        self.component = component
        self.instance = instance
        self.power = power
        #: Count of replayed kernel events in the surviving attempt (the
        #: batch ``replay_schedule`` returns None — no evaluation — when 0).
        self.n = 0
        #: First error the batch replay iteration would raise (permanent:
        #: the batch path scans every event, retry or not).
        self.poison: Exception | None = None
        self._reset_attempt()

    def _reset_attempt(self) -> None:
        self.n = 0
        self._clock = 0.0  # ScheduleBuilder clock mirror
        self._prev: tuple[float, float] | None = None  # last kept (t0, t1)
        self._max_t0 = float("-inf")
        self._energy: float = 0
        self._build_error: ScheduleError | None = None  # first overlap
        self._seg_violation: ScheduleError | None = None  # first validate hit
        self._jobs: dict[int, _JobState] = {
            job.job_id: _JobState(job) for job in self.instance
        }
        self._active: dict[int, _JobState] = dict(self._jobs)

    def reset(self) -> None:
        """A ``retry`` boundary: discard the failed attempt entirely."""
        self._reset_attempt()

    def feed(self, payload: dict[str, Any]) -> None:
        """One ``kernel_eval`` event of this component."""
        if self.poison is not None:
            return
        try:
            segment = self._make_segment(payload)
            # ScheduleBuilder.append mirror: clock check, then advance.
            if segment.t0 < self._clock - _REL_TOL * max(1.0, self._clock):
                raise ScheduleError(
                    f"segment starts at {segment.t0} before builder clock {self._clock}"
                )
        except (ScheduleError, ValueError) as err:
            self.poison = err
            return
        kept = segment.duration > 0
        self._clock = max(self._clock, segment.t1)
        self.n += 1
        if not kept:
            return
        # Schedule.__init__ mirror: arrival order must be schedule order for
        # the one-pass sums to match the batch path bit for bit.
        if segment.t0 < self._max_t0:
            raise StreamOrderError(
                f"component {self.component!r}: kernel segment t0={segment.t0} "
                f"arrives after t0={self._max_t0}; the batch path would re-sort "
                f"— use build_report_in_memory on a materialized event list"
            )
        self._max_t0 = segment.t0
        if self._prev is not None and self._build_error is None:
            pa, pb = self._prev
            if segment.t0 < pb - _REL_TOL * max(1.0, abs(pb)):
                self._build_error = ScheduleError(
                    f"segments overlap: [{pa},{pb}] then [{segment.t0},{segment.t1}]"
                )
        self._prev = (segment.t0, segment.t1)
        # evaluate mirror, transposed to segment-outer order.
        self._energy += segment.energy(self.power)
        self._validate_segment(segment)
        job_id = segment.job_id
        state = self._jobs.get(job_id) if job_id is not None else None
        if state is not None:
            state.got += segment.volume()
        self._advance_jobs(segment, state)

    def _make_segment(self, p: dict[str, Any]) -> Segment:
        t0, t1, job = float(p["t0"]), float(p["t1"]), int(p["job"])
        profile = p["profile"]
        if profile == "decay":
            return DecaySegment(t0, t1, job, float(p["x0"]), float(p["rho"]), float(p["alpha"]))
        if profile == "growth":
            return GrowthSegment(t0, t1, job, float(p["x0"]), float(p["rho"]), float(p["alpha"]))
        if profile == "const":
            return ConstantSegment(t0, t1, job, float(p["speed"]))
        raise ValueError(f"unknown kernel profile {profile!r} in trace")

    def _validate_segment(self, segment: Segment) -> None:
        """``validate_schedule``'s per-segment loop, first hit recorded."""
        if self._seg_violation is not None or segment.job_id is None:
            return
        if segment.job_id not in self.instance:
            self._seg_violation = ScheduleError(
                f"segment references unknown job {segment.job_id}"
            )
            return
        release = self.instance[segment.job_id].release
        if segment.t0 < release - 1e-9 * max(1.0, release):
            self._seg_violation = ScheduleError(
                f"job {segment.job_id} processed at {segment.t0} before release {release}"
            )

    def _advance_jobs(self, segment: Segment, seg_state: _JobState | None) -> None:
        """Advance every live job's completion scan and flow integral."""
        # Completion-time step first: the batch path knows each completion
        # before its integral pass, and the completing segment is clipped at
        # the completion found *within it*.
        if seg_state is not None and not seg_state.done and seg_state.completion is None:
            v = segment.volume()
            if v >= seg_state.remaining_ct * (1 - 1e-9):
                seg_state.completion = segment.t0 + segment.time_to_volume(
                    min(seg_state.remaining_ct, v)
                )
            else:
                seg_state.remaining_ct -= v
                seg_state.last_end = segment.t1
        retired: list[int] = []
        for job_id, js in self._active.items():
            if self._advance_integral(js, segment):
                retired.append(job_id)
        for job_id in retired:
            del self._active[job_id]

    def _advance_integral(self, js: _JobState, segment: Segment) -> bool:
        """``_remaining_volume_integral``'s loop body for one (job, segment).

        Returns True once the job's integral is final (retire it)."""
        completion = js.completion if js.completion is not None else float("inf")
        if segment.t1 <= js.cursor or segment.t0 >= completion:
            return js.completion is not None
        a = max(segment.t0, js.cursor)
        b = min(segment.t1, completion)
        if b <= a:
            return js.completion is not None
        if a > js.cursor:
            js.total += js.remaining_iv * (a - js.cursor)
        if segment.job_id != js.job.job_id:
            js.total += js.remaining_iv * (b - a)
        else:
            la, lb = a - segment.t0, b - segment.t0
            v_la = segment.volume_until(la)
            v_lb = segment.volume_until(lb)
            inner = (segment.flow_integral(lb) - segment.flow_integral(la)) - v_la * (lb - la)
            js.total += js.remaining_iv * (lb - la) - inner
            js.remaining_iv = max(js.remaining_iv - (v_lb - v_la), 0.0)
        js.cursor = b
        if segment.job_id == js.job.job_id:
            # Fallback-clip snapshot: if the job later completes by the
            # accumulated-shortfall rule, the batch integral ends exactly
            # here (completion = this segment's t1), discarding everything
            # after the last processed segment.
            js.snap_total = js.total
            js.snap_cursor = js.cursor
            js.snap_remaining_iv = js.remaining_iv
            if js.completion is not None:
                # Normal completion: cursor == completion now, so every later
                # segment contributes zero — the integral is final.
                js.frac = js.job.density * js.total
                js.done = True
                return True
        return False

    def finalize_replay(self) -> None:
        """Raise whatever the batch ``replay_schedule`` would have raised."""
        if self.poison is not None:
            raise self.poison
        if self.n and self._build_error is not None:
            raise self._build_error

    def finalize_eval(self) -> tuple[float, float]:
        """Mirror ``evaluate``: validation, completions, then the sums."""
        # validate_schedule: segment loop first, then per-job volumes in
        # instance order.
        if self._seg_violation is not None:
            raise self._seg_violation
        for job in self.instance:
            js = self._jobs[job.job_id]
            if abs(js.got - job.volume) > _VOL_TOL * max(1.0, job.volume):
                raise ScheduleError(
                    f"job {job.job_id} processed volume {js.got}, requires {job.volume}"
                )
        # Per-job completion resolution in instance order.
        for job in self.instance:
            js = self._jobs[job.job_id]
            if js.done:
                continue
            if js.completion is None:
                if js.last_end is not None and js.remaining_ct <= 1e-6 * max(1.0, job.volume):
                    js.completion = js.last_end
                    js.total = js.snap_total
                    js.cursor = js.snap_cursor
                    js.remaining_iv = js.snap_remaining_iv
                else:
                    raise ScheduleError(
                        f"job {job.job_id} never accumulates volume {job.volume} "
                        f"(processed {js.got})"
                    )
            if js.cursor < js.completion:
                js.total += js.remaining_iv * (js.completion - js.cursor)
            js.frac = js.job.density * js.total
            js.done = True
        fractional_flow: float = 0
        for job in self.instance:
            fractional_flow += self._jobs[job.job_id].frac
        return self._energy, fractional_flow


class StreamingReportBuilder:
    """Drive every aggregator from one forward pass and assemble the report.

    ``feed`` each event in order, then ``finish()`` returns a
    :class:`~repro.analysis.trace_report.TraceReport` bit-identical to the
    in-memory twin.  Replay events seen before the ``run_meta`` header are
    buffered (bounded); the *first* header decides the instance, exactly as
    ``instance_from_meta`` does.
    """

    def __init__(self, *, rel_tol: float) -> None:
        self.rel_tol = rel_tol
        self._n = 0
        self._ordering = OrderingChecker()
        self._stats = ComponentStatsAggregator()
        self._meta_decided = False
        self._meta: tuple[Instance, PowerLaw] | None = None
        self._buffer: list[TraceEvent] = []
        self._replayers: dict[str, IncrementalScheduleReplayer] = {}

    def feed(self, event: TraceEvent) -> None:
        self._ordering.feed(self._n, event)
        self._stats.feed(event)
        self._n += 1
        if not self._meta_decided:
            if event.kind == "run_meta":
                self._decide_meta(event)
                return
            if (
                event.kind in ("kernel_eval", "retry")
                and event.component in _PAIR_COMPONENTS
            ):
                if len(self._buffer) >= _PRE_META_BUFFER_LIMIT:
                    raise StreamOrderError(
                        f"more than {_PRE_META_BUFFER_LIMIT} replay events "
                        f"before any run_meta header — use "
                        f"build_report_in_memory on a materialized event list"
                    )
                self._buffer.append(event)
            return
        self._route(event)

    def _decide_meta(self, event: TraceEvent) -> None:
        """``instance_from_meta``: the first ``run_meta`` decides, even when
        it lacks the instance (the batch path stops scanning there too)."""
        self._meta_decided = True
        spec = event.payload.get("instance")
        alpha = event.payload.get("alpha")
        if spec is None or alpha is None:
            self._buffer.clear()
            return
        inst = Instance([Job(int(j), float(r), float(v), float(d)) for j, r, v, d in spec])
        power = PowerLaw(float(alpha))
        self._meta = (inst, power)
        for pair in _PAIRS:
            for comp in pair:
                self._replayers[comp] = IncrementalScheduleReplayer(comp, inst, power)
        buffered, self._buffer = self._buffer, []
        for buffered_event in buffered:
            self._route(buffered_event)

    def _route(self, event: TraceEvent) -> None:
        if self._meta is None:
            return
        replayer = self._replayers.get(event.component)
        if replayer is None:
            return
        if event.kind == "retry":
            replayer.reset()
        elif event.kind == "kernel_eval":
            replayer.feed(event.payload)

    def finish(self) -> TraceReport:
        checks: list[InvariantCheck] = []
        energies: dict[str, float] = {}
        if self._meta is not None:
            _, power = self._meta
            for c_comp, nc_comp in _PAIRS:
                rc = self._replayers[c_comp]
                rn = self._replayers[nc_comp]
                # Batch order: replay C, replay NC, evaluate C, evaluate NC.
                rc.finalize_replay()
                rn.finalize_replay()
                res_c = rc.finalize_eval() if rc.n else None
                if res_c is not None:
                    energies[c_comp] = res_c[0]
                res_nc = rn.finalize_eval() if rn.n else None
                if res_nc is not None:
                    energies[nc_comp] = res_nc[0]
                if res_c is None or res_nc is None:
                    continue
                energy_c, flow_c = res_c
                energy_nc, flow_nc = res_nc
                checks.append(
                    InvariantCheck(
                        name=f"Lemma 3: energy({nc_comp}) == energy({c_comp})",
                        holds=_close(energy_nc, energy_c, self.rel_tol),
                        lhs=energy_nc,
                        rhs=energy_c,
                        detail=f"replayed from kernel_eval events, rel_tol={self.rel_tol:g}",
                    )
                )
                if c_comp == "C":
                    # Lemma 4's exact ratio holds only uncapped (the capped
                    # ratio degrades with the cap; see
                    # extensions.bounded_speed).
                    factor = 1.0 / (1.0 - 1.0 / power.alpha)
                    expected = flow_c * factor
                    checks.append(
                        InvariantCheck(
                            name="Lemma 4: flow(NC) == flow(C) / (1 - 1/alpha)",
                            holds=_close(flow_nc, expected, self.rel_tol),
                            lhs=flow_nc,
                            rhs=expected,
                            detail=f"alpha={power.alpha:g}, factor={factor:.6g}",
                        )
                    )
        return TraceReport(
            n_events=self._n,
            components=self._stats.finish(),
            checks=checks,
            order_violations=self._ordering.violations,
            energies=energies,
        )


def build_report_streaming(events: Iterable[TraceEvent], *, rel_tol: float) -> TraceReport:
    """One-pass report over any event iterable (list, file, gzip, live tail)."""
    builder = StreamingReportBuilder(rel_tol=rel_tol)
    for event in events:
        builder.feed(event)
    return builder.finish()
