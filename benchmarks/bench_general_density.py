"""E6 — §4/§5: Algorithm NC-general on non-uniform densities.

Measures, per suite instance: the fractional ratio of NC-general against a
certified OPT lower bound, the same after the §5 conversion for the integral
objective (Theorem 16), and the ratio against Algorithm C (the constant the
paper proves is 2^{O(alpha)}).

A second experiment times the incremental clairvoyant-shadow layer against
the legacy resume-from-checkpoint shadow on larger instances (n >= 50) and
archives wall-clock, shadow-call counters and objective values to
``out/BENCH_general_density.json``; the two modes must agree exactly and the
incremental layer must be at least 5x faster.
"""

from __future__ import annotations

import gc
import time

from repro import PowerLaw
from repro.algorithms import convert, simulate_clairvoyant, simulate_nc_general
from repro.analysis import format_table, nonuniform_suite
from repro.core import evaluate
from repro.offline import opt_fractional_lower_bound, opt_integral_lower_bound
from repro.workloads import random_instance

from conftest import emit, emit_json

ALPHA = 3.0
#: (jobs, seed) pairs for the shadow-layer timing experiment.
SPEED_CASES = ((50, 301), (80, 301))
#: acceptance floor for the incremental layer at n >= 50.
MIN_SPEEDUP = 5.0
_TIMING_ROUNDS = 5


def _run():
    power = PowerLaw(ALPHA)
    rows = []
    for name, inst in nonuniform_suite(n=6, seeds=(1, 2), alpha=ALPHA):
        run = simulate_nc_general(inst, power, max_step=2e-2)
        rep = evaluate(run.schedule, inst, power)
        conv = convert(run.schedule, inst, power, epsilon=0.5)
        rep_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power)
        lb_f = opt_fractional_lower_bound(inst, power, slots=250, iterations=1000)
        lb_i = opt_integral_lower_bound(inst, power, slots=250, iterations=1000)
        rows.append(
            [
                name,
                len(inst),
                rep.fractional_objective / lb_f.value,
                conv.integral_report.integral_objective / lb_i.value,
                rep.fractional_objective / rep_c.fractional_objective,
            ]
        )
    return rows


def _time_shadow_modes():
    """Best-of-N wall-clock of the two shadow modes on identical instances."""
    power = PowerLaw(ALPHA)
    records = []
    for n, seed in SPEED_CASES:
        inst = random_instance(n, seed=seed, volume="uniform", density="loguniform")
        best: dict[str, float] = {}
        runs = {}
        # Interleave the modes round by round (with GC paused) so load drift
        # on the host penalizes both equally.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(_TIMING_ROUNDS):
                for mode in ("resume", "incremental"):
                    t0 = time.perf_counter()
                    run = simulate_nc_general(
                        inst, power, max_step=2e-2, shadow_mode=mode
                    )
                    dt = time.perf_counter() - t0
                    if mode not in best or dt < best[mode]:
                        best[mode] = dt
                    runs[mode] = run
        finally:
            if gc_was_enabled:
                gc.enable()
        per_mode = {}
        for mode, run in runs.items():
            rep = evaluate(run.schedule, inst, power)
            per_mode[mode] = {
                "wall_clock_s": best[mode],
                "engine_steps": run.engine_steps,
                "counters": run.counters.as_dict(),
                "energy": rep.energy,
                "fractional_flow": rep.fractional_flow,
                "fractional_objective": rep.fractional_objective,
            }
        records.append(
            {
                "jobs": n,
                "seed": seed,
                "modes": per_mode,
                "speedup": per_mode["resume"]["wall_clock_s"]
                / per_mode["incremental"]["wall_clock_s"],
            }
        )
    return records


def test_general_density(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["instance", "jobs", "frac ratio vs OPT_lb", "int ratio vs OPT_lb (Thm16)", "vs C"],
        rows,
        title=f"§4 NC-general (alpha={ALPHA}, default eta/beta); constants are 2^O(alpha)",
        floatfmt=".3f",
    )

    speed = _time_shadow_modes()
    speed_rows = [
        [
            f"n={r['jobs']} seed={r['seed']}",
            r["modes"]["resume"]["wall_clock_s"],
            r["modes"]["incremental"]["wall_clock_s"],
            r["speedup"],
            r["modes"]["incremental"]["counters"]["queries"],
            r["modes"]["incremental"]["counters"]["rebuilds"],
        ]
        for r in speed
    ]
    table += "\n" + format_table(
        ["case", "resume [s]", "incremental [s]", "speedup", "queries", "rebuilds"],
        speed_rows,
        title="incremental shadow layer vs legacy resume (best of "
        f"{_TIMING_ROUNDS}, identical trajectories)",
        floatfmt=".3f",
    )
    emit("general_density", table)
    emit_json(
        "general_density",
        {
            "alpha": ALPHA,
            "competitive_rows": [
                {
                    "instance": row[0],
                    "jobs": row[1],
                    "frac_ratio_vs_opt_lb": row[2],
                    "int_ratio_vs_opt_lb": row[3],
                    "ratio_vs_c": row[4],
                }
                for row in rows
            ],
            "shadow_speed": speed,
        },
    )

    for row in rows:
        # Constant-competitive: generous 2^{O(alpha)} cap, far below any
        # load-dependent blow-up.
        assert row[2] < 200.0
        assert row[3] < 400.0
        assert row[4] < 100.0
    for r in speed:
        res, inc = r["modes"]["resume"], r["modes"]["incremental"]
        # The two shadow modes must drive bit-identical trajectories...
        assert res["engine_steps"] == inc["engine_steps"]
        assert res["fractional_objective"] == inc["fractional_objective"]
        # ...and the incremental layer must actually pay for itself.
        assert r["speedup"] >= MIN_SPEEDUP, (
            f"incremental shadow only {r['speedup']:.2f}x faster at n={r['jobs']}"
        )
