"""E6b — ablation of NC-general's constants eta and beta.

The extended abstract leaves eta ('a constant we determine later') and beta
('choosing beta > 4') to the full version.  This bench sweeps both around the
reproduction's derived threshold eta_min(alpha):

* eta below the threshold degenerates (the shadow clairvoyant run catches up
  and the algorithm crawls at epsilon) — visible as a cost explosion;
* above it, cost first falls then rises again as the eta^alpha energy factor
  dominates: the sweep locates the practical sweet spot;
* beta trades rounding loss (larger beta) against class separation.
"""

from __future__ import annotations

from repro import Instance, Job, PowerLaw
from repro.algorithms import eta_threshold, simulate_nc_general
from repro.analysis import format_table
from repro.core import evaluate
from repro.core.errors import SimulationError

from conftest import emit, emit_json

ALPHA = 3.0


def _instance() -> Instance:
    return Instance(
        [
            Job(0, 0.0, 2.0, 1.0),
            Job(1, 0.4, 0.8, 7.0),
            Job(2, 0.9, 0.5, 2.0),
            Job(3, 1.5, 1.0, 30.0),
        ]
    )


def _run():
    power = PowerLaw(ALPHA)
    inst = _instance()
    thr = eta_threshold(ALPHA)
    eta_rows = []
    for mult in (1.05, 1.2, 1.3, 1.6, 2.0, 3.0):
        run = simulate_nc_general(inst, power, eta=mult * thr, max_step=2e-2)
        rep = evaluate(run.schedule, inst, power)
        eta_rows.append([f"{mult:.2f} x thr", mult * thr, rep.energy, rep.fractional_flow,
                         rep.fractional_objective])
    # Below threshold: the run either stalls (engine error) or crawls; we
    # bound the probe with a small instance and catch the failure mode.
    below = "completed"
    try:
        tiny = Instance([Job(0, 0.0, 0.05, 1.0)])
        simulate_nc_general(tiny, power, eta=0.9 * thr, epsilon=1e-4, max_step=1e-3)
    except SimulationError:
        below = "stalled (engine detected epsilon-crawl)"

    beta_rows = []
    for beta in (4.5, 5.0, 6.0, 8.0, 12.0):
        run = simulate_nc_general(inst, power, beta=beta, max_step=2e-2)
        rep = evaluate(run.schedule, inst, power)
        beta_rows.append([beta, rep.energy, rep.fractional_flow, rep.fractional_objective])
    return eta_rows, below, beta_rows, thr


def test_ablation_eta_beta(benchmark):
    eta_rows, below, beta_rows, thr = benchmark.pedantic(_run, rounds=1, iterations=1)
    out = format_table(
        ["eta", "value", "energy", "frac flow", "G_frac"],
        eta_rows,
        title=f"eta sweep (threshold eta_min({ALPHA:g}) = {thr:.4f}); beta = 5",
        floatfmt=".3f",
    )
    out += f"\n\neta = 0.9 x threshold on a single job: {below}\n\n"
    out += format_table(
        ["beta", "energy", "frac flow", "G_frac"],
        beta_rows,
        title="beta sweep (eta = 1.3 x threshold)",
        floatfmt=".3f",
    )
    emit("ablation_eta_beta", out)
    emit_json(
        "ablation_eta_beta",
        {
            "alpha": ALPHA,
            "eta_threshold": thr,
            "eta_sweep": [
                {
                    "label": r[0],
                    "eta": r[1],
                    "energy": r[2],
                    "fractional_flow": r[3],
                    "fractional_objective": r[4],
                }
                for r in eta_rows
            ],
            "below_threshold_probe": below,
            "beta_sweep": [
                {
                    "beta": r[0],
                    "energy": r[1],
                    "fractional_flow": r[2],
                    "fractional_objective": r[3],
                }
                for r in beta_rows
            ],
        },
    )

    # Larger eta must cost more energy (the eta^alpha factor).
    energies = [r[2] for r in eta_rows]
    assert energies[-1] > energies[0]
    # And every configuration completed with a finite objective.
    for r in eta_rows + beta_rows:
        assert r[-1] > 0
