"""Multi-tenant scheduling sessions and sharded campaigns.

A :class:`Session` is the non-clairvoyant model made operational: jobs
arrive over time with unknown-to-the-algorithm sizes, streamed in through a
*bounded* queue (the backpressure boundary), and the session answers live
queries — current speeds from an incrementally-advanced
:class:`~repro.core.shadow.ClairvoyantShadow`, full schedules/metrics/Gantt
data by running the session's algorithm over the arrivals received so far,
and verified reports that replay a traced (C, NC) pair through the
streaming Lemma 3/4 verifier.

Concurrency model: every session owns one ``asyncio.Lock``; all state
mutation (queue drain into the shadow, schedule computation) happens under
it, so interleaved requests against different sessions never share mutable
state and interleaved requests against one session serialize.  Determinism
is the contract the differential tests pin: a session fed jobs through the
API yields schedules **bit-identical** to driving the same instance through
:class:`~repro.core.shadow.SimulationContext` directly.

Tracing: a session created with ``trace_path`` routes every shadow/algorithm
event through a per-session :class:`~repro.core.tracing.JsonlRecorder`
(any ``plain | gzip | rotate:N`` sink).  :meth:`Session.close` — reached by
``DELETE``, manager shutdown, or server stop — flushes and closes the sink,
so traces survive any graceful exit path.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any

from ..algorithms import simulate_clairvoyant, simulate_nc_general, simulate_nc_uniform
from ..analysis.trace_report import TraceReport, build_report
from ..core.errors import InvalidInstanceError, SimulationError
from ..core.job import Instance, Job
from ..core.metrics import CostReport, evaluate
from ..core.power import PowerLaw
from ..core.schedule import Schedule
from ..core.shadow import SimulationContext
from ..core.tracing import NULL_RECORDER, JsonlRecorder, MemoryRecorder, TraceRecorder
from .models import CampaignRequest, SessionCreateRequest

__all__ = [
    "Backpressure",
    "SessionClosed",
    "Session",
    "Campaign",
    "SessionManager",
    "simulate_session_algorithm",
]


class Backpressure(Exception):
    """The arrival batch would overflow the session's bounded queue."""

    def __init__(self, depth: int, limit: int, batch: int) -> None:
        super().__init__(
            f"queue at depth {depth}/{limit} cannot absorb a batch of {batch}; "
            "retry after the backlog drains"
        )
        self.depth = depth
        self.limit = limit
        self.batch = batch


class SessionClosed(Exception):
    """The session was closed; no further arrivals or queries."""


def simulate_session_algorithm(
    name: str,
    instance: Instance,
    power: PowerLaw,
    *,
    context: SimulationContext | None = None,
    max_step: float = 2e-2,
) -> Schedule:
    """Run a session-servable algorithm, threading the trace context through.

    This is the exact call the differential test mirrors: driving the same
    instance through a fresh :class:`SimulationContext` directly must yield a
    bit-identical schedule.
    """
    if name == "C":
        return simulate_clairvoyant(instance, power, context=context).schedule
    if name == "NC":
        return simulate_nc_uniform(instance, power, context=context).schedule
    if name == "NC_GENERAL":
        return simulate_nc_general(
            instance, power, context=context, max_step=max_step
        ).schedule
    raise InvalidInstanceError(f"unknown session algorithm {name!r}")


class Session:
    """One live scheduling session (see module docstring).

    All public coroutines acquire :attr:`lock`; synchronous helpers prefixed
    ``_`` assume it is held.
    """

    def __init__(self, session_id: str, request: SessionCreateRequest) -> None:
        self.session_id = session_id
        self.algorithm = request.algorithm
        self.power = PowerLaw(request.alpha)
        self.max_step = request.max_step
        self.queue_limit = request.queue_limit
        self.recorder: TraceRecorder = (
            JsonlRecorder(request.trace_path, sink=request.sink)
            if request.trace_path
            else NULL_RECORDER
        )
        self.context = SimulationContext(
            self.power, recorder=self.recorder, backend=request.backend
        )
        self.context.emit(
            "run_meta",
            0.0,
            "service",
            alpha=request.alpha,
            session=session_id,
            algorithms=[request.algorithm],
        )
        #: Algorithm C's live state over the arrivals so far — the substrate
        #: of the speeds endpoint.  Advanced monotonically to each arrival's
        #: release, never rolled back.
        self.shadow = self.context.shadow(component="service.shadow")
        self.lock = asyncio.Lock()
        self.queue: asyncio.Queue[Job] = asyncio.Queue(maxsize=request.queue_limit)
        self.jobs: list[Job] = []
        self.jobs_accepted = 0
        self.closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def clock(self) -> float:
        return self.shadow.clock

    @property
    def trace_paths(self) -> list[str]:
        rec = self.recorder
        return [str(p) for p in rec.paths] if isinstance(rec, JsonlRecorder) else []

    def _check_open(self) -> None:
        if self.closed:
            raise SessionClosed(f"session {self.session_id!r} is closed")

    async def close(self) -> None:
        """Flush and close the session's trace sink; idempotent."""
        async with self.lock:
            if self.closed:
                return
            self.closed = True
            self.context.emit(
                "session_close",
                self.clock,
                "service",
                session=self.session_id,
                jobs=self.jobs_accepted,
            )
            if isinstance(self.recorder, JsonlRecorder):
                self.recorder.close()

    # -- arrivals -------------------------------------------------------------

    async def submit(self, jobs: list[Job]) -> int:
        """Stream a batch of arrivals in; returns the number accepted.

        Batches are all-or-nothing: the whole batch is vetted under the lock
        *before* any state mutation — if it would overflow the bounded queue
        the request fails with :class:`Backpressure`, and if any member is
        out of order or a duplicate the request fails with
        :class:`~repro.core.errors.SimulationError` — and in both cases
        nothing is enqueued or committed, so a corrected retry of the same
        batch succeeds (a partial admit would silently reorder arrivals
        relative to the client's retry).
        """
        async with self.lock:
            self._check_open()
            depth = self.queue.qsize()
            if depth + len(jobs) > self.queue_limit:
                raise Backpressure(depth, self.queue_limit, len(jobs))
            self._validate_batch(jobs)
            for job in jobs:
                self.queue.put_nowait(job)
            self._drain()
        return len(jobs)

    def _validate_batch(self, jobs: list[Job]) -> None:
        """Reject a whole arrival batch before any mutation (lock held).

        Mirrors the shadow's own rejection rules — duplicate ids and
        releases behind the committed clock — plus in-batch release
        monotonicity, so :meth:`_drain` cannot fail partway through and
        leave a prefix of the batch committed with the rest stranded in
        the queue.  (Positive volumes/densities are already enforced by
        the pydantic layer and :class:`~repro.core.job.Job` itself.)
        """
        known = {j.job_id for j in self.jobs}
        clock = self.clock
        for job in jobs:
            if job.job_id in known:
                raise SimulationError(
                    f"job {job.job_id} already known to session "
                    f"{self.session_id!r}; batch rejected, nothing committed"
                )
            if job.release < clock:
                raise SimulationError(
                    f"job {job.job_id} released at {job.release}, before the "
                    f"session clock {clock}; arrivals must be streamed in "
                    "release order — batch rejected, nothing committed"
                )
            known.add(job.job_id)
            clock = job.release

    def _drain(self) -> None:
        """Move queued arrivals into the live shadow (lock held).

        Each arrival is revealed to Algorithm C's shadow and the session
        clock advances to its release — exactly the online order a fresh
        clairvoyant run would see, so session state stays bit-identical to a
        from-scratch simulation over the same prefix.  Only :meth:`submit`
        enqueues, and only after :meth:`_validate_batch` vetted the batch,
        so every queued job here is committable.
        """
        while True:
            try:
                job = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            self.shadow.insert_job(job.job_id, job.release, job.density, job.volume)
            self.shadow.advance(job.release)
            self.jobs.append(job)
            self.jobs_accepted += 1
            self.context.emit(
                "arrival",
                job.release,
                "service",
                session=self.session_id,
                job=job.job_id,
                volume=job.volume,
                density=job.density,
            )

    # -- queries --------------------------------------------------------------

    def _instance(self) -> Instance:
        if not self.jobs:
            raise InvalidInstanceError(
                f"session {self.session_id!r} has no jobs yet; stream arrivals first"
            )
        return Instance(self.jobs)

    async def speeds(self, t: float | None = None) -> dict[str, Any]:
        """Live speed view at ``t`` (default: the session clock).

        Side-effect-free: a query beyond the session clock is answered from
        a fresh replay of the arrivals so far advanced to ``t`` — the exact
        drive a direct :class:`SimulationContext` run performs — so the live
        shadow's committed clock never moves past the last arrival and a
        read can never narrow which future arrivals the session accepts.
        """
        self._check_open()
        async with self.lock:
            at = self.clock if t is None else t
            if at < self.clock:
                raise InvalidInstanceError(
                    f"t={at} is before the session clock {self.clock}; "
                    "the live shadow only moves forward"
                )
            shadow = self.shadow
            if at > self.clock:
                shadow = self._speculative_shadow()
                shadow.advance(at)
            weight = shadow.remaining_weight()
            return {
                "t": at,
                "remaining_weight": weight,
                "speed": self.power.speed(weight),
                "active": shadow.remaining_items(),
            }

    def _speculative_shadow(self):
        """Fresh untraced replay of the arrivals so far (lock held).

        Bit-identical to driving the same prefix through a direct
        :class:`SimulationContext` — the substrate for speculative
        future-``t`` queries, discarded after the read."""
        shadow = SimulationContext(self.power, backend=self.context.backend).shadow(
            component="service.speculative"
        )
        for job in self.jobs:
            shadow.insert_job(job.job_id, job.release, job.density, job.volume)
            shadow.advance(job.release)
        return shadow

    async def schedule(self) -> tuple[Schedule, int]:
        """The session algorithm's schedule over all arrivals so far."""
        self._check_open()
        async with self.lock:
            inst = self._instance()
            sched = simulate_session_algorithm(
                self.algorithm,
                inst,
                self.power,
                context=self.context,
                max_step=self.max_step,
            )
            return sched, len(inst)

    async def metrics(self) -> tuple[CostReport, dict[str, int], int]:
        """Exact cost report of the current schedule plus shadow counters."""
        self._check_open()
        async with self.lock:
            inst = self._instance()
            sched = simulate_session_algorithm(
                self.algorithm,
                inst,
                self.power,
                context=self.context,
                max_step=self.max_step,
            )
            report = evaluate(sched, inst, self.power)
            return report, self.context.counters.as_dict(), len(inst)

    async def verified_report(self) -> TraceReport:
        """Trace a (C, NC) pair over the current arrivals and replay it
        through the streaming verifier (Lemma 3 energy equality, Lemma 4
        flow ratio, per-component ordering) — verification from the trace
        alone, exactly the ``repro trace`` pipeline."""
        self._check_open()
        async with self.lock:
            inst = self._instance()
            if not inst.is_uniform_density():
                raise InvalidInstanceError(
                    "verified reports replay the Lemma 3/4 pair, which needs "
                    "uniform densities; non-uniform sessions expose metrics instead"
                )
            rec = MemoryRecorder()
            context = SimulationContext(
                self.power, recorder=rec, backend=self.context.backend
            )
            context.emit(
                "run_meta",
                0.0,
                "service",
                alpha=self.power.alpha,
                session=self.session_id,
                instance=[[j.job_id, j.release, j.volume, j.density] for j in inst],
                algorithms=["C", "NC"],
            )
            simulate_clairvoyant(inst, self.power, context=context)
            simulate_nc_uniform(inst, self.power, context=context)
            return build_report(iter(rec))


class Campaign:
    """One sharded campaign: a ``run_sharded`` call tracked as a task."""

    def __init__(self, campaign_id: str, request: CampaignRequest) -> None:
        self.campaign_id = campaign_id
        self.request = request
        self.state = "running"
        self.error: str | None = None
        self.result: dict[str, Any] | None = None
        self.task: asyncio.Task[None] | None = None

    def _instance(self) -> Instance:
        if self.request.jobs:
            return Instance(j.to_job() for j in self.request.jobs)
        from ..workloads import random_instance

        return random_instance(self.request.n_jobs, self.request.seed, density="unit")

    def _run_blocking(self) -> dict[str, Any]:
        """The worker-thread body: shard, execute, merge, differential-check."""
        from ..parallel.shard import run_sharded
        from ..runtime.pool import PoolPolicy

        req = self.request
        inst = self._instance()
        power = PowerLaw(req.alpha)
        result = run_sharded(
            inst,
            power,
            req.machines,
            algorithm=req.algorithm,
            n_shards=req.n_shards,
            policy=PoolPolicy(workers=req.workers),
            force_serial=req.force_serial,
        )
        serial = result.cluster.report()
        return {
            "shards": len(result.shards),
            "resumed": result.resumed,
            "bit_identical": result.report == serial,
            "report": result.report,
            "n_jobs": len(inst),
        }

    async def run(self) -> None:
        try:
            self.result = await asyncio.to_thread(self._run_blocking)
            self.state = "done"
        except Exception as exc:  # noqa: BLE001 — campaign failures are data
            self.state = "failed"
            self.error = f"{type(exc).__name__}: {exc}"


class SessionManager:
    """The service's root object: sessions and campaigns keyed by id."""

    def __init__(self) -> None:
        self.sessions: dict[str, Session] = {}
        self.campaigns: dict[str, Campaign] = {}
        self._ids = itertools.count(1)
        self._lock = asyncio.Lock()

    def _mint_id(self, prefix: str) -> str:
        return f"{prefix}-{next(self._ids):06d}"

    async def create_session(self, request: SessionCreateRequest) -> Session:
        async with self._lock:
            sid = request.session_id or self._mint_id("session")
            if sid in self.sessions:
                raise KeyError(f"session {sid!r} already exists")
            session = Session(sid, request)
            self.sessions[sid] = session
        if request.jobs:
            await session.submit([j.to_job() for j in request.jobs])
        return session

    def get_session(self, session_id: str) -> Session:
        try:
            return self.sessions[session_id]
        except KeyError:
            raise KeyError(f"no session {session_id!r}") from None

    async def delete_session(self, session_id: str) -> Session:
        session = self.get_session(session_id)
        await session.close()
        async with self._lock:
            self.sessions.pop(session_id, None)
        return session

    async def launch_campaign(self, request: CampaignRequest) -> Campaign:
        async with self._lock:
            cid = request.campaign_id or self._mint_id("campaign")
            if cid in self.campaigns:
                raise KeyError(f"campaign {cid!r} already exists")
            campaign = Campaign(cid, request)
            self.campaigns[cid] = campaign
        campaign.task = asyncio.create_task(campaign.run())
        return campaign

    def get_campaign(self, campaign_id: str) -> Campaign:
        try:
            return self.campaigns[campaign_id]
        except KeyError:
            raise KeyError(f"no campaign {campaign_id!r}") from None

    async def shutdown(self) -> None:
        """Graceful shutdown: settle campaigns, close every session (flushing
        trace sinks).  Called from the app's ASGI lifespan hook."""
        for campaign in self.campaigns.values():
            if campaign.task is not None and not campaign.task.done():
                try:
                    await campaign.task
                except Exception:  # noqa: BLE001 — state captured in run()
                    pass
        for session in list(self.sessions.values()):
            await session.close()
