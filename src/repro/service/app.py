"""Application factory of the scheduling service.

``create_app()`` wires a fresh :class:`~repro.service.sessions.SessionManager`
into the route table and registers graceful shutdown: when the ASGI lifespan
(or the built-in server, or a :class:`~repro.service.asgi.TestClient` exit)
signals shutdown, every open session is closed and its trace sink flushed,
and in-flight campaigns are allowed to settle.
"""

from __future__ import annotations

from .asgi import App
from .routes import register_routes
from .sessions import SessionManager

__all__ = ["create_app"]


def create_app(
    manager: SessionManager | None = None,
    *,
    request_timeout: float | None = None,
) -> App:
    """Build the service's ASGI application.

    Pass an explicit ``manager`` to share sessions across apps (tests); by
    default each app owns a fresh one.  ``request_timeout`` bounds every
    request: a handler still running at the deadline is cancelled cleanly
    (locks released by ``async with``) and the client sees 504.
    """
    app = App(request_timeout=request_timeout)
    mgr = manager if manager is not None else SessionManager()
    app.state["manager"] = mgr
    register_routes(app, mgr)

    async def _shutdown() -> None:
        await mgr.shutdown()

    app.on_shutdown.append(_shutdown)
    return app
