"""E9 — supervisor overhead: the no-fault supervised run priced and gated.

Runs NC-uniform two ways on identical instances — the plain simulator plus
its :func:`evaluate` call (the work a supervised run must do anyway) and a
:class:`~repro.runtime.supervisor.Supervisor` run with an **empty fault
plan** — interleaved round by round with GC paused.  The gated statistic is
the **median of the per-round ratios**: each round times the two variants
back to back, so slow-machine drift (CPU frequency, container neighbours)
hits both sides of a ratio and cancels, where a ratio of per-variant bests
would not.

Acceptance: the supervised run stays within 5% of the unsupervised
baseline.  The differential contract already makes the two *bit-identical*
in outputs (``tests/test_supervisor.py``); this benchmark holds the price of
that contract — one checkpoint, ``None`` hook reads, and read-only guards —
to near zero.  ``scripts/check_bench_regression.py`` enforces the same
ceiling on the emitted ``supervised_overhead`` value in CI.
"""

from __future__ import annotations

import gc
import statistics
import time

from repro import PowerLaw
from repro.algorithms import simulate_nc_uniform
from repro.analysis import format_table
from repro.core.metrics import evaluate
from repro.runtime.supervisor import Supervisor
from repro.workloads import random_instance

from conftest import emit, emit_json

ALPHA = 3.0
CASES = ((1000, 401), (2000, 402))
#: acceptance ceiling: supervised wall-clock / unsupervised wall-clock.
MAX_SUPERVISED_OVERHEAD = 1.05
_TIMING_ROUNDS = 31


def _time_variants():
    power = PowerLaw(ALPHA)
    records = []
    for n, seed in CASES:
        inst = random_instance(n, seed=seed, volume="uniform")

        def baseline():
            run = simulate_nc_uniform(inst, power)
            evaluate(run.schedule, inst, power, validate=True)

        def supervised():
            Supervisor(power).run("NC", inst)

        best = {"baseline": float("inf"), "supervised": float("inf")}
        ratios = []
        baseline()  # warm caches before the timed rounds
        supervised()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            variants = (("baseline", baseline), ("supervised", supervised))
            for i in range(_TIMING_ROUNDS):
                round_times = {}
                # Alternate which variant runs first so a systematic
                # second-position effect (cache warmth, allocator state)
                # cannot bias the paired ratio.
                for name, fn in variants if i % 2 == 0 else variants[::-1]:
                    t0 = time.perf_counter()
                    fn()
                    dt = time.perf_counter() - t0
                    round_times[name] = dt
                    if dt < best[name]:
                        best[name] = dt
                ratios.append(round_times["supervised"] / round_times["baseline"])
        finally:
            if gc_was_enabled:
                gc.enable()
        records.append(
            {
                "jobs": n,
                "seed": seed,
                "wall_clock_s": dict(best),
                "supervised_overhead": statistics.median(ratios),
            }
        )
    return records


def test_supervisor_overhead(benchmark):
    records = benchmark.pedantic(_time_variants, rounds=1, iterations=1)
    rows = [
        [
            f"n={r['jobs']} seed={r['seed']}",
            r["wall_clock_s"]["baseline"],
            r["wall_clock_s"]["supervised"],
            r["supervised_overhead"],
        ]
        for r in records
    ]
    table = format_table(
        ["case", "unsupervised [s]", "supervised [s]", "ratio"],
        rows,
        title=f"supervisor overhead on NC (median ratio over {_TIMING_ROUNDS} "
        f"paired rounds, gate: ratio <= {MAX_SUPERVISED_OVERHEAD})",
        floatfmt=".4f",
    )
    emit("supervisor_overhead", table)
    emit_json(
        "supervisor_overhead",
        {
            "alpha": ALPHA,
            "max_supervised_overhead": MAX_SUPERVISED_OVERHEAD,
            "cases": records,
        },
    )

    for r in records:
        assert r["supervised_overhead"] <= MAX_SUPERVISED_OVERHEAD, (
            f"supervised no-fault run {r['supervised_overhead']:.3f}x the "
            f"unsupervised baseline at n={r['jobs']} — the supervisor is doing "
            f"work on the hot path"
        )
