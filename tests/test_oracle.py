"""Tests for the non-clairvoyance boundary."""

from __future__ import annotations

import pytest

from repro import Instance, Job
from repro.core.errors import ClairvoyanceViolationError
from repro.core.oracle import VolumeOracle


@pytest.fixture
def oracle(three_jobs) -> VolumeOracle:
    return VolumeOracle(three_jobs)


class TestReleaseInfo:
    def test_release_info_exposes_density_not_volume(self, oracle):
        info = oracle.release_info(0)
        assert info.release == 0.0
        assert info.density == 1.0
        assert not hasattr(info, "volume")

    def test_releases_in_fifo_order(self, oracle):
        assert [r.job_id for r in oracle.releases()] == [0, 1, 2]


class TestVolumeChannel:
    def test_active_volume_is_hidden(self, oracle):
        with pytest.raises(ClairvoyanceViolationError):
            oracle.revealed_volume(0)

    def test_completed_volume_is_revealed(self, oracle):
        oracle._mark_completed(0)
        assert oracle.revealed_volume(0) == 4.0

    def test_is_completed_transitions(self, oracle):
        assert not oracle.is_completed(1)
        oracle._mark_completed(1)
        assert oracle.is_completed(1)

    def test_double_completion_rejected(self, oracle):
        oracle._mark_completed(0)
        with pytest.raises(ClairvoyanceViolationError):
            oracle._mark_completed(0)

    def test_audit_log_records_queries(self, oracle):
        oracle.is_completed(2)
        try:
            oracle.revealed_volume(2)
        except ClairvoyanceViolationError:
            pass
        assert ("is_completed", 2) in oracle.audit_log
        assert ("revealed_volume", 2) in oracle.audit_log


class TestAlgorithmsStayHonest:
    """Static checks: the non-clairvoyant algorithm modules must never touch
    the trusted underscore accessors or a job's ``.volume`` except through the
    documented channels."""

    @pytest.mark.parametrize(
        "module",
        ["nc_uniform", "nc_general"],
    )
    def test_no_trusted_accessor_usage(self, module):
        import pathlib

        import repro.algorithms as pkg

        src = (pathlib.Path(pkg.__file__).parent / f"{module}.py").read_text()
        assert "_true_volume" not in src
        assert "_mark_completed" not in src

    def test_engine_policies_learn_volumes_only_on_completion(self):
        """Run NC-general through the engine and confirm the oracle's audit
        trail never revealed an active job's volume."""
        from repro import PowerLaw
        from repro.algorithms.nc_general import NCGeneralPolicy
        from repro.core.engine import NumericEngine

        inst = Instance([Job(0, 0.0, 0.6, 1.0), Job(1, 0.2, 0.4, 5.0)])
        power = PowerLaw(2.0)
        engine = NumericEngine(power, max_step=5e-3)
        result = engine.run(inst, NCGeneralPolicy(power, epsilon=1e-4))
        # The policy never calls revealed_volume at all (it gets volumes via
        # on_completion), so the audit log must contain no reveal entries.
        reveals = [e for e in result.oracle.audit_log if e[0] == "revealed_volume"]
        assert reveals == []
