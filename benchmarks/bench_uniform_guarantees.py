"""E5 — §3 guarantees across alpha: Lemmas 3/4 as measured identities and
Theorems 5/9 as measured ratios.

For each alpha, runs Algorithm NC and Algorithm C over a stress instance and
reports: the measured energy ratio (theory: exactly 1), the measured flow
ratio (theory: exactly 1/(1-1/alpha)), and the measured competitive ratios
against certified OPT lower bounds next to the 2 + 1/(alpha-1) and
3 + 1/(alpha-1) bounds.
"""

from __future__ import annotations

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.analysis import format_table
from repro.core import evaluate
from repro.offline import opt_fractional_lower_bound, opt_integral_lower_bound

from conftest import emit

ALPHAS = (1.5, 2.0, 2.5, 3.0, 4.0, 6.0)


def _instance() -> Instance:
    return Instance(
        [
            Job(0, 0.0, 5.0),
            Job(1, 0.4, 0.2),
            Job(2, 0.8, 2.0),
            Job(3, 1.0, 0.7),
            Job(4, 3.5, 1.4),
            Job(5, 3.6, 0.3),
        ]
    )


def _run():
    inst = _instance()
    rows = []
    for alpha in ALPHAS:
        power = PowerLaw(alpha)
        rep_nc = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power)
        rep_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power)
        lb_f = opt_fractional_lower_bound(inst, power, slots=250, iterations=1000)
        lb_i = opt_integral_lower_bound(inst, power, slots=250, iterations=1000)
        rows.append(
            [
                alpha,
                rep_nc.energy / rep_c.energy,
                rep_nc.fractional_flow / rep_c.fractional_flow,
                1 / (1 - 1 / alpha),
                rep_nc.fractional_objective / lb_f.value,
                2 + 1 / (alpha - 1),
                rep_nc.integral_objective / lb_i.value,
                3 + 1 / (alpha - 1),
            ]
        )
    return rows


def test_uniform_guarantees(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        [
            "alpha",
            "E_NC/E_C",
            "F_NC/F_C",
            "1/(1-1/a)",
            "frac ratio",
            "Thm5 bound",
            "int ratio",
            "Thm9 bound",
        ],
        rows,
        title="§3 guarantees vs alpha (measured | theory)",
        floatfmt=".4f",
    )
    emit("uniform_guarantees", table)
    for row in rows:
        alpha, e_ratio, f_ratio, f_theory, frac, thm5, integ, thm9 = row
        assert abs(e_ratio - 1.0) < 1e-7
        assert abs(f_ratio - f_theory) < 1e-6 * f_theory
        assert frac <= thm5 + 1e-6
        assert integ <= thm9 + 1e-6
