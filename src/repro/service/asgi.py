"""A dependency-free ASGI micro-framework for :mod:`repro.service`.

The service layer is written FastAPI-style — typed pydantic request/response
models, path-templated routes, JSON errors — but the HTTP plumbing underneath
is this module, not FastAPI: ~200 lines of standard-library ASGI so the
service runs anywhere the core package runs.  The app object produced by
:func:`repro.service.app.create_app` is a *real* ASGI application: point
uvicorn (or any ASGI server, both optional extras) at it for production
serving, use the built-in :func:`serve` asyncio HTTP/1.1 server for
dependency-free deployments and smoke tests, and drive it in-process with
:class:`TestClient` / :func:`asgi_call` for tests and the load benchmark.

Pieces:

* :class:`Request` / :class:`Response` — thin typed wrappers over the ASGI
  ``http`` scope and response messages.
* :class:`HTTPError` — raise anywhere in a handler to produce a JSON error
  body with that status.
* :class:`App` — method + path-template router (``/sessions/{session_id}``)
  with startup/shutdown hooks wired to the ASGI ``lifespan`` protocol.
* :func:`asgi_call` — one in-process request against any ASGI app; the
  substrate of :class:`TestClient` and of ``benchmarks/bench_service_load``.
* :func:`serve` — a minimal asyncio HTTP/1.1 server bridging sockets to the
  ASGI interface (one request per connection, ``Connection: close``).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable
from urllib.parse import parse_qsl, unquote

__all__ = [
    "ConnectionAborted",
    "HTTPError",
    "Request",
    "Response",
    "App",
    "asgi_call",
    "ClientResponse",
    "TestClient",
    "serve",
]

_STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ConnectionAborted(Exception):
    """Tear the connection down without completing the response.

    The escape hatch the ``connection_drop`` service fault uses: unlike
    every other exception, :meth:`App.handle` re-raises it, the socket
    server answers with a torn partial response and closes, and
    :func:`asgi_call` propagates it to the in-process caller.  Session state
    is untouched — the request never reached (or never finished) its
    handler's commit point.
    """


class HTTPError(Exception):
    """Abort the current handler with an HTTP status and a JSON detail.

    ``headers`` ride onto the error response — how 429 carries
    ``Retry-After``.
    """

    def __init__(
        self, status: int, detail: str, *, headers: dict[str, str] | None = None
    ) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.headers = headers


@dataclass
class Request:
    """One parsed HTTP request, path parameters already bound."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    path_params: dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        """The request body as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HTTPError(400, f"invalid JSON body: {exc}") from exc

    def query_float(self, name: str, default: float | None = None) -> float | None:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError as exc:
            raise HTTPError(400, f"query parameter {name!r} must be a number, got {raw!r}") from exc

    def query_int(self, name: str, default: int | None = None) -> int | None:
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise HTTPError(400, f"query parameter {name!r} must be an integer, got {raw!r}") from exc


class Response:
    """A JSON response.  ``payload`` may be a pydantic model, a dict/list, or
    ``None`` (empty body); models are serialized with ``model_dump_json`` so
    floats keep their shortest-repr exact round-trip.  ``headers`` are extra
    response headers (e.g. ``Retry-After`` on a 429)."""

    def __init__(
        self,
        payload: Any = None,
        status: int = 200,
        headers: dict[str, str] | None = None,
    ) -> None:
        self.status = status
        if payload is None:
            self.body = b""
        elif hasattr(payload, "model_dump_json"):
            self.body = payload.model_dump_json().encode("utf-8")
        else:
            self.body = json.dumps(payload).encode("utf-8")
        self.content_type = "application/json"
        self.headers = dict(headers) if headers else {}


Handler = Callable[[Request], Awaitable[Response]]


def _split(path: str) -> tuple[str, ...]:
    return tuple(p for p in path.split("/") if p)


class App:
    """Method + path-template router speaking ASGI ``http`` and ``lifespan``.

    Routes are registered with ``@app.route("GET", "/sessions/{session_id}")``;
    ``{name}`` segments bind into ``request.path_params``.  Handler errors map
    to JSON bodies: :class:`HTTPError` keeps its status, pydantic validation
    errors become 422, anything else a 500 with the exception text.

    ``request_timeout`` is the per-request deadline: a handler (plus the
    ``gates``) exceeding it is **cancelled cleanly** — ``asyncio.wait_for``
    cancels the handler task, its ``async with lock`` blocks unwind — and
    the client gets 504.  ``gates`` are awaited before every matched handler
    inside the same deadline; the service fault injector installs its
    ``slow_handler`` / ``connection_drop`` channels there.
    """

    def __init__(self, *, request_timeout: float | None = None) -> None:
        self._routes: list[tuple[str, tuple[str, ...], Handler]] = []
        self.on_startup: list[Callable[[], Awaitable[None]]] = []
        self.on_shutdown: list[Callable[[], Awaitable[None]]] = []
        self.state: dict[str, Any] = {}
        self.request_timeout = request_timeout
        self.gates: list[Callable[[Request], Awaitable[None]]] = []

    def route(self, method: str, path: str) -> Callable[[Handler], Handler]:
        def register(handler: Handler) -> Handler:
            self._routes.append((method.upper(), _split(path), handler))
            return handler

        return register

    async def startup(self) -> None:
        for hook in self.on_startup:
            await hook()

    async def shutdown(self) -> None:
        for hook in self.on_shutdown:
            await hook()

    # -- routing --------------------------------------------------------------

    def _match(self, method: str, path: str) -> tuple[Handler, dict[str, str]]:
        parts = _split(path)
        path_found = False
        for route_method, pattern, handler in self._routes:
            if len(pattern) != len(parts):
                continue
            params: dict[str, str] = {}
            for pat, got in zip(pattern, parts):
                if pat.startswith("{") and pat.endswith("}"):
                    params[pat[1:-1]] = unquote(got)
                elif pat != got:
                    break
            else:
                path_found = True
                if route_method == method:
                    return handler, params
        if path_found:
            raise HTTPError(405, f"method {method} not allowed on {path}")
        raise HTTPError(404, f"no route for {method} {path}")

    async def handle(self, request: Request) -> Response:
        """Dispatch one request to its handler, mapping errors to JSON."""
        try:
            handler, params = self._match(request.method, request.path)
            request.path_params = params

            async def _invoke() -> Response:
                for gate in self.gates:
                    await gate(request)
                return await handler(request)

            if self.request_timeout is not None:
                try:
                    return await asyncio.wait_for(_invoke(), self.request_timeout)
                except asyncio.TimeoutError:
                    return Response(
                        {
                            "detail": f"request exceeded the "
                            f"{self.request_timeout:g}s deadline; handler cancelled"
                        },
                        status=504,
                    )
            return await _invoke()
        except ConnectionAborted:
            raise  # the server layer tears the connection down
        except HTTPError as exc:
            return Response({"detail": exc.detail}, status=exc.status, headers=exc.headers)
        except Exception as exc:  # noqa: BLE001 — the service must not crash
            if type(exc).__name__ == "ValidationError" and hasattr(exc, "errors"):
                detail = "; ".join(
                    f"{'.'.join(str(p) for p in e.get('loc', ()))}: {e.get('msg', '?')}"
                    for e in exc.errors()
                )
                return Response({"detail": f"validation failed: {detail}"}, status=422)
            return Response(
                {"detail": f"{type(exc).__name__}: {exc}"}, status=500
            )

    # -- ASGI interface -------------------------------------------------------

    async def __call__(self, scope: dict, receive: Callable, send: Callable) -> None:
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await self.startup()
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await self.shutdown()
                    await send({"type": "lifespan.shutdown.complete"})
                    return
        elif scope["type"] == "http":
            body = b""
            while True:
                message = await receive()
                body += message.get("body", b"")
                if not message.get("more_body", False):
                    break
            request = Request(
                method=scope["method"].upper(),
                path=scope["path"],
                query=dict(parse_qsl(scope.get("query_string", b"").decode("latin-1"))),
                headers={
                    k.decode("latin-1").lower(): v.decode("latin-1")
                    for k, v in scope.get("headers", [])
                },
                body=body,
            )
            response = await self.handle(request)
            headers = [
                (b"content-type", response.content_type.encode("latin-1")),
                (b"content-length", str(len(response.body)).encode("latin-1")),
            ]
            headers.extend(
                (k.lower().encode("latin-1"), v.encode("latin-1"))
                for k, v in response.headers.items()
            )
            await send(
                {
                    "type": "http.response.start",
                    "status": response.status,
                    "headers": headers,
                }
            )
            await send({"type": "http.response.body", "body": response.body})
        else:  # pragma: no cover — websockets etc. are out of scope
            raise RuntimeError(f"unsupported ASGI scope type {scope['type']!r}")


# -- in-process client --------------------------------------------------------


@dataclass
class ClientResponse:
    """What :func:`asgi_call` hands back for one request."""

    status_code: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body) if self.body else None


async def asgi_call(
    app: Callable,
    method: str,
    path: str,
    *,
    json_body: Any = None,
    query: str = "",
    headers: dict[str, str] | None = None,
) -> ClientResponse:
    """Run one request through ``app`` without sockets (the ASGI messages are
    exchanged in-process).  This is the hot path of the load benchmark, so it
    allocates as little as the protocol allows."""
    body = b"" if json_body is None else json.dumps(json_body).encode("utf-8")
    raw_headers = [(b"content-type", b"application/json")]
    if headers:
        raw_headers.extend(
            (k.lower().encode("latin-1"), v.encode("latin-1"))
            for k, v in headers.items()
        )
    scope = {
        "type": "http",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "method": method.upper(),
        "path": path,
        "raw_path": path.encode("latin-1"),
        "query_string": query.encode("latin-1"),
        "headers": raw_headers,
    }
    received = False

    async def receive() -> dict:
        nonlocal received
        if received:
            return {"type": "http.disconnect"}
        received = True
        return {"type": "http.request", "body": body, "more_body": False}

    status = 500
    headers: dict[str, str] = {}
    chunks: list[bytes] = []

    async def send(message: dict) -> None:
        nonlocal status
        if message["type"] == "http.response.start":
            status = message["status"]
            headers.update(
                {
                    k.decode("latin-1"): v.decode("latin-1")
                    for k, v in message.get("headers", [])
                }
            )
        elif message["type"] == "http.response.body":
            chunks.append(message.get("body", b""))

    await app(scope, receive, send)
    return ClientResponse(status_code=status, headers=headers, body=b"".join(chunks))


class TestClient:
    """Synchronous in-process client over one private event loop.

    One loop for the client's whole lifetime, so the app's asyncio state
    (locks, queues, background campaign tasks) stays on a single loop across
    requests — the same invariant a real server provides.  Use as a context
    manager to get lifespan startup/shutdown.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, app: App) -> None:
        self.app = app
        self._loop = asyncio.new_event_loop()

    def __enter__(self) -> "TestClient":
        self._loop.run_until_complete(self.app.startup())
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        if self._loop.is_closed():
            return
        self._loop.run_until_complete(self.app.shutdown())
        self._loop.run_until_complete(self._loop.shutdown_asyncgens())
        self._loop.close()

    def request(
        self,
        method: str,
        path: str,
        *,
        json_body: Any = None,
        query: str = "",
        headers: dict[str, str] | None = None,
    ) -> ClientResponse:
        return self._loop.run_until_complete(
            asgi_call(
                self.app, method, path, json_body=json_body, query=query, headers=headers
            )
        )

    def get(self, path: str, *, query: str = "") -> ClientResponse:
        return self.request("GET", path, query=query)

    def post(
        self,
        path: str,
        *,
        json_body: Any = None,
        query: str = "",
        headers: dict[str, str] | None = None,
    ) -> ClientResponse:
        return self.request("POST", path, json_body=json_body, query=query, headers=headers)

    def delete(self, path: str) -> ClientResponse:
        return self.request("DELETE", path)


# -- minimal asyncio HTTP/1.1 server ------------------------------------------


async def _handle_connection(
    app: Callable, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        request_line = await reader.readline()
        if not request_line:
            return
        try:
            method, target, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            writer.write(b"HTTP/1.1 400 Bad Request\r\ncontent-length: 0\r\n\r\n")
            await writer.drain()
            return
        headers: list[tuple[bytes, bytes]] = []
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.partition(b":")
            name = name.strip().lower()
            value = value.strip()
            headers.append((name, value))
            if name == b"content-length":
                try:
                    content_length = int(value)
                    if content_length < 0:
                        raise ValueError(value)
                except ValueError:
                    writer.write(b"HTTP/1.1 400 Bad Request\r\ncontent-length: 0\r\n\r\n")
                    await writer.drain()
                    return
        body = await reader.readexactly(content_length) if content_length else b""
        path, _, query = target.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": unquote(path),
            "raw_path": path.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": headers,
        }
        received = False

        async def receive() -> dict:
            nonlocal received
            if received:
                return {"type": "http.disconnect"}
            received = True
            return {"type": "http.request", "body": body, "more_body": False}

        async def send(message: dict) -> None:
            if message["type"] == "http.response.start":
                status = message["status"]
                phrase = _STATUS_PHRASES.get(status, "Unknown")
                head = [f"HTTP/1.1 {status} {phrase}".encode("latin-1")]
                for k, v in message.get("headers", []):
                    head.append(k + b": " + v)
                head.append(b"connection: close")
                writer.write(b"\r\n".join(head) + b"\r\n\r\n")
            elif message["type"] == "http.response.body":
                writer.write(message.get("body", b""))
                if not message.get("more_body", False):
                    await writer.drain()

        try:
            await app(scope, receive, send)
        except ConnectionAborted:
            # The connection_drop fault: tear the response off mid-status-line
            # so the client sees a truncated response, then close abruptly.
            writer.write(b"HTTP/1.1 ")
            await writer.drain()
    except (asyncio.IncompleteReadError, ConnectionResetError):  # pragma: no cover
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


async def serve(
    app: App,
    host: str = "127.0.0.1",
    port: int = 8176,
    *,
    ready: asyncio.Event | None = None,
    shutdown_trigger: asyncio.Event | None = None,
    drain_timeout: float = 5.0,
) -> None:
    """Serve ``app`` over a plain asyncio socket server until cancelled.

    Runs the app's startup hooks first and its shutdown hooks on the way out
    (including cancellation), so per-session trace sinks and journals are
    flushed whenever the server stops.  ``ready`` is set once the socket is
    listening; ``shutdown_trigger`` — when given — stops the server cleanly
    when set (``repro serve`` wires SIGTERM/SIGINT to it; tests use it
    instead of task cancellation).

    Orderly stop drains: once the trigger fires, the listener closes (no new
    connections) and every in-flight request gets up to ``drain_timeout``
    seconds to finish before the app's shutdown hooks run — an in-progress
    ``submit`` commits (or fails) completely, never half-journaled.
    """
    await app.startup()
    connections: set[asyncio.Task] = set()

    async def _connection(r: asyncio.StreamReader, w: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            connections.add(task)
        try:
            await _handle_connection(app, r, w)
        finally:
            if task is not None:
                connections.discard(task)

    server = await asyncio.start_server(_connection, host, port)
    try:
        if ready is not None:
            ready.set()
        async with server:
            if shutdown_trigger is None:
                await server.serve_forever()
            else:
                await shutdown_trigger.wait()
    finally:
        server.close()
        pending = {t for t in connections if not t.done()}
        if pending:
            _done, still_running = await asyncio.wait(pending, timeout=drain_timeout)
            for task in still_running:
                task.cancel()
        await app.shutdown()
