#!/usr/bin/env python3
"""Step-by-step walkthrough of the two algorithms' decisions.

Prints, for a three-job instance, exactly what each algorithm knows and does
at every event — the pedagogical companion to §1.2/§3 of the paper.  Run it
once and the FIFO-vs-HDF tension, the shadow simulation, and the
power-equals-weight rule stop being abstract.

Usage::

    python examples/explore_dynamics.py
"""

from __future__ import annotations

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.analysis import job_statistics
from repro.core import evaluate


def main() -> None:
    alpha = 3.0
    power = PowerLaw(alpha)
    inst = Instance(
        [
            Job(0, release=0.0, volume=4.0),
            Job(1, release=1.0, volume=0.5),
            Job(2, release=1.2, volume=2.0),
        ]
    )

    print("Instance (densities all 1; volumes hidden from NC until completion):")
    for j in inst:
        print(f"  job {j.job_id}: release {j.release:4.1f}  volume {j.volume:4.1f}")

    print("\n--- Algorithm C (clairvoyant): HDF order, P(speed) = remaining weight ---")
    c = simulate_clairvoyant(inst, power)
    for seg in c.schedule:
        s0, s1 = seg.speed_at(seg.t0), seg.speed_at(seg.t1)
        print(
            f"  [{seg.t0:7.3f}, {seg.t1:7.3f}]  job {seg.job_id}:"
            f" speed {s0:.3f} -> {s1:.3f}"
            f"  (remaining weight {power.power(s0):.3f} -> {power.power(s1):.3f})"
        )

    print("\n--- Algorithm NC (non-clairvoyant): FIFO, P(speed) = W^C(r-) + processed ---")
    nc = simulate_nc_uniform(inst, power)
    for seg in nc.schedule:
        j = seg.job_id
        print(
            f"  [{seg.t0:7.3f}, {seg.t1:7.3f}]  job {j}:"
            f" starts at the shadow offset W^C(r[{j}]-) = {nc.offsets[j]:.4f};"
            f" speed {seg.speed_at(seg.t0):.3f} -> {seg.speed_at(seg.t1):.3f}"
        )
    print(
        "\n  The offset is what a clairvoyant run would still have left at the"
        "\n  job's release — NC can compute it because FIFO means every earlier"
        "\n  job has already completed (volume revealed) when this one starts."
    )

    rep_c = evaluate(c.schedule, inst, power)
    rep_nc = evaluate(nc.schedule, inst, power)
    print("\n--- Outcome ---")
    print(f"  energy:          C {rep_c.energy:9.4f}   NC {rep_nc.energy:9.4f}   (Lemma 3: equal)")
    print(
        f"  fractional flow: C {rep_c.fractional_flow:9.4f}   NC {rep_nc.fractional_flow:9.4f}"
        f"   (Lemma 4: x{1 / (1 - 1 / alpha):.4f})"
    )
    stats_c = job_statistics(rep_c, inst)
    stats_nc = job_statistics(rep_nc, inst)
    print("\n  per-job slowdown (flow / ideal unit-speed time):")
    for a, b in zip(stats_c.jobs, stats_nc.jobs):
        print(f"    job {a.job_id}:  C {a.slowdown:6.3f}   NC {b.slowdown:6.3f}")
    print(
        "\n  Note job 1 (tiny, released early): C preempts nothing for it"
        "\n  (equal densities -> FIFO tie-break), but its *speed* benefits from"
        "\n  the backlog; under NC it waits for job 0 to finish - the price of"
        "\n  probing volumes in FIFO order."
    )


if __name__ == "__main__":
    main()
