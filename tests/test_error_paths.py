"""Tier-1: structured error paths carry actionable context.

Every terminal failure in the stack raises a :class:`ReproError` subclass
whose ``context`` names the simulation time, job id, or solver state — the
"no silent failure" half of the robustness contract.
"""

from __future__ import annotations

import math

import pytest

from repro.core.engine import NumericEngine, SchedulingPolicy
from repro.core.errors import (
    ConvergenceError,
    ReproError,
    SimulationError,
)
from repro.core.job import Instance, Job
from repro.core.power import PowerLaw
from repro.offline.convex import fractional_lower_bound
from repro.workloads import random_instance


class _ZeroSpeedPolicy(SchedulingPolicy):
    """Selects the first active job but never runs it — a stalling policy."""

    def __init__(self):
        self.active = []

    def on_release(self, t, job_id, density):
        self.active.append(job_id)

    def on_completion(self, t, job_id, volume):
        self.active.remove(job_id)

    def select_job(self, t):
        return self.active[0] if self.active else None

    def speed(self, t, processed):
        return 0.0


class _InactiveJobPolicy(_ZeroSpeedPolicy):
    """Selects a job id that was never released."""

    def select_job(self, t):
        return 999 if self.active else None


class TestEngineErrors:
    def test_stall_limit_names_time_and_job(self):
        inst = Instance([Job(0, 0.0, 1.0, 1.0)])
        engine = NumericEngine(PowerLaw(3.0), max_step=1e-2, stall_limit=5)
        with pytest.raises(SimulationError) as exc:
            engine.run(inst, _ZeroSpeedPolicy())
        err = exc.value
        assert "stalled at zero speed" in str(err)
        assert err.context["job"] == 0
        assert err.context["stall_steps"] > 5
        assert "time" in err.context

    def test_inactive_job_selection_names_job(self):
        inst = Instance([Job(0, 0.0, 1.0, 1.0)])
        engine = NumericEngine(PowerLaw(3.0), max_step=1e-2)
        with pytest.raises(SimulationError) as exc:
            engine.run(inst, _InactiveJobPolicy())
        assert exc.value.context["job"] == 999

    def test_invalid_speed_names_speed(self):
        class NanSpeed(_ZeroSpeedPolicy):
            def speed(self, t, processed):
                return math.nan

        inst = Instance([Job(0, 0.0, 1.0, 1.0)])
        engine = NumericEngine(PowerLaw(3.0), max_step=1e-2)
        with pytest.raises(SimulationError) as exc:
            engine.run(inst, NanSpeed())
        assert math.isnan(exc.value.context["speed"])


class TestConvexErrors:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_nonfinite_dual_raises_convergence_error_with_context(self):
        inst = random_instance(3, seed=2, volume="uniform")
        power = PowerLaw(3.0)
        with pytest.raises(ConvergenceError) as exc:
            fractional_lower_bound(inst, power, horizon=math.inf, slots=16, iterations=10)
        err = exc.value
        assert err.context["horizon"] == math.inf
        assert err.context["slots"] == 16
        assert "value" in err.context


class TestReproErrorProtocol:
    def test_context_renders_in_str(self):
        err = SimulationError("boom", time=1.5, job=3)
        assert str(err) == "boom [time=1.5, job=3]"
        assert err.context == {"time": 1.5, "job": 3}

    def test_no_context_is_plain(self):
        assert str(ReproError("plain")) == "plain"

    def test_subclass_hierarchy(self):
        assert issubclass(SimulationError, ReproError)
        assert issubclass(ConvergenceError, ReproError)
