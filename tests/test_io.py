"""Round-trip tests for serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro import PowerLaw
from repro.algorithms import (
    simulate_clairvoyant,
    simulate_nc_uniform,
    to_integral_schedule,
)
from repro.core import evaluate
from repro.io import (
    dump_run,
    instance_from_dict,
    instance_to_dict,
    load_run,
    report_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)

from conftest import general_instances, uniform_instances


class TestInstanceRoundTrip:
    @given(general_instances(max_jobs=8))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_exact(self, inst):
        again = instance_from_dict(instance_to_dict(inst))
        assert again.jobs == inst.jobs

    def test_json_serialisable(self, three_jobs):
        text = json.dumps(instance_to_dict(three_jobs))
        again = instance_from_dict(json.loads(text))
        assert again.jobs == three_jobs.jobs

    def test_default_density(self):
        data = {"jobs": [{"id": 0, "release": 0.0, "volume": 1.0}]}
        inst = instance_from_dict(data)
        assert inst[0].density == 1.0


class TestScheduleRoundTrip:
    @given(uniform_instances(max_jobs=5))
    @settings(max_examples=20, deadline=None)
    def test_clairvoyant_schedule_costs_survive(self, inst):
        """The analytic parameters round-trip exactly, so costs re-evaluate
        bit-for-bit."""
        power = PowerLaw(3.0)
        sched = simulate_clairvoyant(inst, power).schedule
        again = schedule_from_dict(json.loads(json.dumps(schedule_to_dict(sched))))
        a = evaluate(sched, inst, power)
        b = evaluate(again, inst, power)
        assert b.fractional_objective == a.fractional_objective
        assert b.energy == a.energy

    def test_growth_segments(self, cube, three_jobs):
        sched = simulate_nc_uniform(three_jobs, cube).schedule
        again = schedule_from_dict(schedule_to_dict(sched))
        assert evaluate(again, three_jobs, cube).energy == evaluate(
            sched, three_jobs, cube
        ).energy

    def test_scaled_segments(self, cube, three_jobs):
        base = simulate_nc_uniform(three_jobs, cube).schedule
        integral = to_integral_schedule(base, three_jobs, 0.5)
        again = schedule_from_dict(schedule_to_dict(integral))
        assert evaluate(again, three_jobs, cube).integral_objective == pytest.approx(
            evaluate(integral, three_jobs, cube).integral_objective, rel=0
        )

    def test_unknown_kind_rejected(self):
        from repro.core.errors import ScheduleError

        with pytest.raises(ScheduleError):
            schedule_from_dict({"segments": [{"kind": "warp", "t0": 0, "t1": 1, "job": 0}]})


class TestReportExport:
    def test_fields(self, cube, three_jobs):
        rep = evaluate(simulate_clairvoyant(three_jobs, cube).schedule, three_jobs, cube)
        data = report_to_dict(rep)
        assert data["fractional_objective"] == pytest.approx(rep.fractional_objective)
        assert set(data["completion_times"]) == {"0", "1", "2"}
        json.dumps(data)  # JSON-clean


class TestDumpLoad:
    def test_file_roundtrip(self, cube, three_jobs, tmp_path):
        sched = simulate_nc_uniform(three_jobs, cube).schedule
        path = tmp_path / "run.json"
        dump_run(str(path), three_jobs, sched, meta={"algorithm": "NC", "alpha": 3.0})
        inst2, sched2, meta = load_run(str(path))
        assert inst2.jobs == three_jobs.jobs
        assert meta["algorithm"] == "NC"
        assert evaluate(sched2, inst2, cube).fractional_objective == pytest.approx(
            evaluate(sched, three_jobs, cube).fractional_objective, rel=0
        )
