"""Tests for the sweep API."""

from __future__ import annotations

import pytest

from repro.analysis.sweeps import SweepPoint, alpha_grid, sweep


class TestSweepPoint:
    def test_statistics(self):
        pt = SweepPoint(2.0, (1.0, 3.0, 2.0))
        assert pt.worst == 3.0
        assert pt.best == 1.0
        assert pt.mean == pytest.approx(2.0)


class TestSweep:
    def test_evaluates_each_value(self):
        calls = []

        def measure(v):
            calls.append(v)
            return [v, v * 2]

        pts = sweep([1.0, 2.0], measure)
        assert calls == [1.0, 2.0]
        assert pts[1].worst == 4.0

    def test_rejects_empty_samples(self):
        with pytest.raises(ValueError):
            sweep([1.0], lambda v: [])

    def test_coerces_to_float(self):
        pts = sweep([1], lambda v: [2])
        assert isinstance(pts[0].value, float)
        assert isinstance(pts[0].samples[0], float)


class TestAlphaGrid:
    def test_endpoints(self):
        grid = alpha_grid(1.5, 6.0, 7)
        assert grid[0] == pytest.approx(1.5)
        assert grid[-1] == pytest.approx(6.0)
        assert len(grid) == 7

    def test_geometric_spacing(self):
        grid = alpha_grid(2.0, 8.0, 3)
        assert grid[1] == pytest.approx(4.0)

    def test_all_above_one(self):
        assert all(a > 1.0 for a in alpha_grid())

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            alpha_grid(0.5, 6.0)
        with pytest.raises(ValueError):
            alpha_grid(3.0, 2.0)
        with pytest.raises(ValueError):
            alpha_grid(1.5, 6.0, 1)
