"""End-to-end integration tests: full pipelines across modules, the way the
benches and a downstream user combine them."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Job, PowerLaw
from repro.algorithms import (
    convert,
    simulate_active_count,
    simulate_clairvoyant,
    simulate_constant_speed_fifo,
    simulate_nc_general,
    simulate_nc_uniform,
)
from repro.analysis import empirical_ratio, preemption_intervals, uniform_suite
from repro.core import evaluate
from repro.offline import opt_fractional_lower_bound
from repro.parallel import simulate_c_par, simulate_nc_par
from repro.workloads import billing_summary, cloud_instance, random_instance

from conftest import uniform_instances


class TestCrossAlgorithmInvariants:
    """Relations that must hold between *different* algorithms on the same
    instance — the glue the paper's analysis rests on."""

    @given(uniform_instances(max_jobs=6))
    @settings(max_examples=15, deadline=None)
    def test_cost_ordering(self, inst):
        """OPT lower bound <= C <= NC <= NC's theoretical multiple of C."""
        alpha = 3.0
        power = PowerLaw(alpha)
        lb = opt_fractional_lower_bound(inst, power, slots=150, iterations=500)
        g_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power).fractional_objective
        g_nc = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power).fractional_objective
        assert lb.value <= g_c * (1 + 1e-6)
        assert g_c <= g_nc * (1 + 1e-9)  # clairvoyance can only help
        factor = 0.5 * (1 + 1 / (1 - 1 / alpha))
        assert g_nc == pytest.approx(factor * g_c, rel=1e-7)

    @given(uniform_instances(max_jobs=5))
    @settings(max_examples=10, deadline=None)
    def test_all_schedulers_complete_everything(self, inst):
        power = PowerLaw(3.0)
        schedules = [
            simulate_clairvoyant(inst, power).schedule,
            simulate_nc_uniform(inst, power).schedule,
            simulate_active_count(inst, power),
            simulate_constant_speed_fifo(inst, 1.0),
        ]
        for sched in schedules:
            rep = evaluate(sched, inst, power)
            assert set(rep.completion_times) == set(inst.job_ids)

    def test_nc_general_on_uniform_instance_close_to_constant_of_c(self, cube, three_jobs):
        """NC-general also runs on uniform instances (its rounding maps unit
        density to class 0); costs stay a constant over C."""
        g = simulate_nc_general(three_jobs, cube, max_step=1e-2)
        rg = evaluate(g.schedule, three_jobs, cube)
        rc = evaluate(simulate_clairvoyant(three_jobs, cube).schedule, three_jobs, cube)
        assert rg.fractional_objective / rc.fractional_objective < 60.0


class TestTheorem16Pipeline:
    """The full §4 + §5 pipeline: NC-general -> conversion -> integral ratio."""

    def test_end_to_end(self, cube, mixed_density_jobs):
        run = simulate_nc_general(mixed_density_jobs, cube, max_step=1e-2)
        conv = convert(run.schedule, mixed_density_jobs, cube, epsilon=0.5)
        lb = opt_fractional_lower_bound(mixed_density_jobs, cube, slots=200, iterations=800)
        ratio = conv.integral_report.integral_objective / lb.value
        assert ratio < 400.0  # constant depending only on alpha (2^{O(alpha)})
        # the conversion preserves completeness
        for job in mixed_density_jobs:
            assert conv.integral_schedule.processed_volume(job.job_id) == pytest.approx(
                job.volume, rel=1e-6
            )


class TestCloudPipeline:
    def test_billing_pipeline(self, cube):
        inst, owner = cloud_instance(4, seed=5)
        run = simulate_nc_general(inst, cube, max_step=3e-2)
        rep = evaluate(run.schedule, inst, cube)
        bill = billing_summary(rep, inst, owner)
        assert bill.gross_payment > 0
        assert bill.delay_penalty == pytest.approx(rep.integral_flow)
        assert bill.net == pytest.approx(
            bill.gross_payment - bill.delay_penalty - bill.energy_cost
        )


class TestClusterPipeline:
    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_cluster_vs_single_machine(self, k):
        """More machines never increase the optimal-ish cost: NC-PAR on k+1
        machines is at most NC-PAR on k machines for this workload."""
        power = PowerLaw(3.0)
        inst = random_instance(12, seed=3, rate=3.0)
        a = simulate_nc_par(inst, power, k).report().fractional_objective
        b = simulate_nc_par(inst, power, k + 1).report().fractional_objective
        assert b <= a * (1 + 1e-9)

    def test_cluster_energy_flow_identities(self):
        power = PowerLaw(2.0)
        inst = random_instance(15, seed=8, rate=2.0)
        rc = simulate_c_par(inst, power, 3).report()
        rn = simulate_nc_par(inst, power, 3).report()
        assert rn.energy == pytest.approx(rc.energy, rel=1e-8)
        assert rn.fractional_flow == pytest.approx(rc.fractional_flow * 2.0, rel=1e-8)


class TestSuitePipeline:
    def test_empirical_ratio_over_suite(self):
        """The exact loop the Table-1 bench runs, at miniature scale."""
        power = PowerLaw(3.0)
        for name, inst in uniform_suite(n=5, seeds=(1,)):
            res = empirical_ratio("NC", inst, power, slots=100, iterations=300)
            assert res.ratio <= 2.5 + 1e-6, name


class TestFigurePipelines:
    def test_fig3_pipeline_runs_on_suite_instance(self, cube):
        inst = Instance(
            [Job(0, 0.0, 6.0, 1.0), Job(1, 0.6, 0.8, 9.0), Job(2, 2.8, 1.5, 9.0)]
        )
        run = simulate_clairvoyant(inst, cube)
        ivs = preemption_intervals(run, 0)
        assert len(ivs) >= 1
        for iv in ivs:
            assert iv.weight_before >= 0
