"""Golden-value regression tests.

Hand-derived closed-form values at reference parameters, pinned to 12+
digits.  If an engine or kernel change shifts any of these, something
substantive changed.
"""

from __future__ import annotations

import math

import pytest

from repro import Instance, Job, PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.algorithms.nc_general import eta_threshold
from repro.core import evaluate
from repro.core.kernels import (
    decay_energy_between,
    decay_time_to_zero,
    growth_energy_between,
    growth_time_between,
)
from repro.offline.single_job import single_job_opt_fractional, single_job_opt_integral


class TestKernelGoldens:
    """alpha = 3, rho = 1, W = 8: beta = 2/3, W^beta = 4."""

    def test_decay_time(self):
        # t = W^beta / beta = 4 / (2/3) = 6.
        assert decay_time_to_zero(8.0, 1.0, 3.0) == pytest.approx(6.0, rel=1e-12)

    def test_decay_energy(self):
        # E = W^{1+beta} / (1+beta) = 8^{5/3} / (5/3) = 32 * 3/5 = 19.2.
        assert decay_energy_between(8.0, 0.0, 1.0, 3.0) == pytest.approx(19.2, rel=1e-12)

    def test_growth_matches_decay(self):
        assert growth_time_between(0.0, 8.0, 1.0, 3.0) == pytest.approx(6.0, rel=1e-12)
        assert growth_energy_between(0.0, 8.0, 1.0, 3.0) == pytest.approx(19.2, rel=1e-12)


class TestSingleJobGoldens:
    """alpha = 2, rho = 1, V = 1 — small enough to verify by hand."""

    def test_fractional_optimum(self):
        # T: (1/2)^{1/1} * T^2 / 2 = 1  =>  T = 2.
        # E = (1/2)^2 * T^3 / 3 = 8/12 = 2/3; flow = (alpha-1)E = 2/3.
        opt = single_job_opt_fractional(1.0, 1.0, 2.0)
        assert opt.duration == pytest.approx(2.0, rel=1e-12)
        assert opt.energy == pytest.approx(2.0 / 3.0, rel=1e-12)
        assert opt.objective == pytest.approx(4.0 / 3.0, rel=1e-12)

    def test_integral_optimum(self):
        # T* = ((alpha-1) V^{alpha-1} / rho)^{1/alpha} = 1; cost = 1 + 1 = 2.
        opt = single_job_opt_integral(1.0, 1.0, 2.0)
        assert opt.duration == pytest.approx(1.0, rel=1e-12)
        assert opt.objective == pytest.approx(2.0, rel=1e-12)

    def test_c_over_opt_single_job(self):
        # C on (V=1, rho=1, alpha=2): E = W^{3/2}/(3/2) = 2/3; G = 4/3.
        # OPT fractional = 4/3 as well?  No: OPT = alpha*E_opt = 4/3.  The
        # single-job ratio of C to OPT at alpha=2 is exactly 1 — C is optimal
        # for a lone job at alpha=2?  Verify numerically rather than assume.
        power = PowerLaw(2.0)
        inst = Instance([Job(0, 0.0, 1.0, 1.0)])
        g_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power).fractional_objective
        opt = single_job_opt_fractional(1.0, 1.0, 2.0).objective
        assert g_c == pytest.approx(4.0 / 3.0, rel=1e-12)
        assert opt == pytest.approx(4.0 / 3.0, rel=1e-12)

    def test_c_not_optimal_at_alpha_three(self):
        """At alpha = 3 the P=W rule is *not* the single-job optimum:
        G_C = 2 * 3/5 * W^{5/3} vs OPT = 3 * E_opt — check the exact gap."""
        power = PowerLaw(3.0)
        inst = Instance([Job(0, 0.0, 1.0, 1.0)])
        g_c = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power).fractional_objective
        opt = single_job_opt_fractional(1.0, 1.0, 3.0).objective
        assert g_c == pytest.approx(1.2, rel=1e-12)  # 2 * (3/5) * 1
        assert opt < g_c
        assert g_c / opt < 2.0  # Theorem 1


class TestAlgorithmGoldens:
    def test_nc_single_job_costs(self):
        """alpha = 3, V = 1, rho = 1: NC's energy = C's = 3/5; NC's flow =
        (3/5) / (1 - 1/3) = 9/10."""
        power = PowerLaw(3.0)
        inst = Instance([Job(0, 0.0, 1.0, 1.0)])
        rep = evaluate(simulate_nc_uniform(inst, power).schedule, inst, power)
        assert rep.energy == pytest.approx(0.6, rel=1e-12)
        assert rep.fractional_flow == pytest.approx(0.9, rel=1e-12)
        # Integral flow: weight * completion = 1 * t_end = W^beta/beta = 1.5.
        assert rep.integral_flow == pytest.approx(1.5, rel=1e-12)

    def test_two_job_nc_offset(self):
        """Job 1 (W=8) at 0, job 2 at t=3: C's remaining weight at 3- is
        (8^{2/3} - (2/3)*3)^{3/2} = 2^{3/2}."""
        power = PowerLaw(3.0)
        inst = Instance([Job(0, 0.0, 8.0), Job(1, 3.0, 1.0)])
        run = simulate_nc_uniform(inst, power)
        assert run.offsets[1] == pytest.approx(2.0**1.5, rel=1e-12)

    def test_eta_threshold_goldens(self):
        assert eta_threshold(2.0) == pytest.approx(4.0, rel=1e-12)
        assert eta_threshold(3.0) == pytest.approx(1.5**1.5 * math.sqrt(2.0), rel=1e-12)

    def test_flow_equals_energy_golden(self):
        """Two staggered jobs, alpha = 3: flow == energy for C (Theorem 1's
        identity), pinned against drift."""
        power = PowerLaw(3.0)
        inst = Instance([Job(0, 0.0, 8.0), Job(1, 3.0, 1.0)])
        rep = evaluate(simulate_clairvoyant(inst, power).schedule, inst, power)
        assert rep.fractional_flow == pytest.approx(rep.energy, rel=1e-12)


class TestAdversaryGoldens:
    def test_lower_bound_exact_small_volumes(self):
        """With light -> 0, the adversarial ratio converges to exactly
        k^{2 - 1/alpha} / k = k^{1 - 1/alpha} (costs scale as W^{2-1/alpha})."""
        from repro.parallel import adversarial_ratio

        power = PowerLaw(3.0)
        out = adversarial_ratio(4, power, "least_count", light=1e-9)
        assert out.ratio == pytest.approx(4.0 ** (2.0 / 3.0), rel=1e-4)
