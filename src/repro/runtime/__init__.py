"""Supervised execution runtime: invariant guards, checkpoint recovery, chaos."""

from .chaos import CampaignReport, RunOutcome, format_campaign, run_campaign, run_pair_verified
from .supervisor import ALGORITHMS, RecoveryPolicy, SupervisedResult, Supervisor

__all__ = [
    "ALGORITHMS",
    "CampaignReport",
    "RecoveryPolicy",
    "RunOutcome",
    "SupervisedResult",
    "Supervisor",
    "format_campaign",
    "run_campaign",
    "run_pair_verified",
]
