"""Baseline schedulers the paper's Table 1 is measured against.

* :func:`simulate_constant_speed_fifo` — the naive non-clairvoyant strategy: a
  fixed machine speed, FIFO order.  Not competitive (its ratio diverges as the
  adversary scales load), which the benches demonstrate.
* :func:`simulate_active_count` — the known-*weight* non-clairvoyant strategy
  in the spirit of Chan et al. [11] / Albers–Fujiwara [2]: speed set so that
  power equals the number of active jobs, FIFO order.  For unit-weight jobs
  this is the classic ``P = n(t)`` rule; it needs to know weights (here: that
  they are all 1), which the known-density model does not grant — it is the
  *other* non-clairvoyant model of Table 1.
* :func:`simulate_round_robin` — the same ``P = n(t)`` speed rule but with
  round-robin (quantum-based) time sharing, the classical non-clairvoyant
  job-selection rule of Motwani–Phillips–Torng; as the quantum shrinks this
  approaches the processor-sharing algorithm analysed in [11].

All are exact event-driven simulations emitting constant-speed segments
(speeds only change at releases/completions/quantum boundaries).
"""

from __future__ import annotations

import math

from ..core.errors import InvalidInstanceError
from ..core.job import Instance
from ..core.power import PowerFunction
from ..core.schedule import ConstantSegment, Schedule, ScheduleBuilder

__all__ = ["simulate_constant_speed_fifo", "simulate_active_count", "simulate_round_robin"]

_TIE_TOL = 1e-12


def simulate_constant_speed_fifo(instance: Instance, speed: float) -> Schedule:
    """FIFO at a fixed speed.  Exact; independent of the power function."""
    if speed <= 0 or not math.isfinite(speed):
        raise InvalidInstanceError(f"speed must be finite > 0, got {speed}")
    builder = ScheduleBuilder()
    t = 0.0
    for job in instance:  # FIFO order
        start = max(t, job.release)
        dur = job.volume / speed
        builder.append(ConstantSegment(start, start + dur, job.job_id, speed))
        t = start + dur
    return builder.build()


def simulate_active_count(instance: Instance, power: PowerFunction) -> Schedule:
    """FIFO with the power-equals-active-job-count speed rule.

    Between consecutive events (release or completion) the active count is
    constant, so the speed ``P^{-1}(n)`` is too; each event re-evaluates it.
    """
    releases = list(instance.jobs)
    next_rel = 0
    remaining: dict[int, float] = {}
    order: list[int] = []  # FIFO queue of active job ids
    builder = ScheduleBuilder()
    t = 0.0

    def admit(now: float) -> None:
        nonlocal next_rel
        while next_rel < len(releases) and releases[next_rel].release <= now + _TIE_TOL:
            remaining[releases[next_rel].job_id] = releases[next_rel].volume
            order.append(releases[next_rel].job_id)
            next_rel += 1

    admit(t)
    while order or next_rel < len(releases):
        if not order:
            t = releases[next_rel].release
            admit(t)
            continue
        job_id = order[0]
        s = power.speed(float(len(order)))
        if s <= 0:
            raise InvalidInstanceError("power function gives zero speed for positive load")
        t_complete = t + remaining[job_id] / s
        t_next_rel = releases[next_rel].release if next_rel < len(releases) else math.inf
        t_stop = min(t_complete, t_next_rel)
        builder.append(ConstantSegment(t, t_stop, job_id, s))
        remaining[job_id] -= s * (t_stop - t)
        if remaining[job_id] <= _TIE_TOL * max(1.0, instance[job_id].volume):
            del remaining[job_id]
            order.pop(0)
        t = t_stop
        admit(t)
    return builder.build()


def simulate_round_robin(
    instance: Instance, power: PowerFunction, quantum: float = 0.05
) -> Schedule:
    """Round-robin time sharing with the power-equals-active-count speed rule.

    The head of the active queue runs for at most ``quantum`` time, then
    rotates to the back; releases and completions also end a slice.  With the
    ``P(s) = n(t)`` rule this discretises the processor-sharing algorithm of
    Chan et al. [11] for unit-weight jobs (exact in the quantum -> 0 limit).
    """
    if quantum <= 0 or not math.isfinite(quantum):
        raise InvalidInstanceError(f"quantum must be finite > 0, got {quantum}")
    releases = list(instance.jobs)
    next_rel = 0
    remaining: dict[int, float] = {}
    order: list[int] = []
    builder = ScheduleBuilder()
    t = 0.0

    def admit(now: float) -> None:
        nonlocal next_rel
        while next_rel < len(releases) and releases[next_rel].release <= now + _TIE_TOL:
            remaining[releases[next_rel].job_id] = releases[next_rel].volume
            order.append(releases[next_rel].job_id)
            next_rel += 1

    admit(t)
    while order or next_rel < len(releases):
        if not order:
            t = releases[next_rel].release
            admit(t)
            continue
        job_id = order[0]
        s = power.speed(float(len(order)))
        t_complete = t + remaining[job_id] / s
        t_next_rel = releases[next_rel].release if next_rel < len(releases) else math.inf
        t_stop = min(t_complete, t_next_rel, t + quantum)
        if t_stop > t:
            builder.append(ConstantSegment(t, t_stop, job_id, s))
            remaining[job_id] -= s * (t_stop - t)
        if remaining[job_id] <= _TIE_TOL * max(1.0, instance[job_id].volume):
            del remaining[job_id]
            order.pop(0)
        elif t_stop == t + quantum and t_stop < t_next_rel:
            order.append(order.pop(0))  # quantum expiry: rotate
        t = t_stop
        admit(t)
    return builder.build()
