"""Seeded chaos campaigns: inject faults, supervise, re-verify the paper.

A campaign (``repro chaos``) runs ``n`` seeded fault scenarios, rotating
through the algorithm families.  Each run either

* completes **clean** (no fault fired on its surviving attempt),
* completes **recovered** (faults fired; the supervisor rolled back and the
  surviving attempt passes every guard — and for C/NC pair runs, Lemma 3 /
  Lemma 4 re-verified *from the trace* at ``1e-9``), or
* **fails structurally** with a :class:`~repro.core.errors.ReproError`
  naming the fault and the last good checkpoint.

No fourth outcome exists: no hangs, no silent NaN, no negative weights —
that is the campaign's contract, asserted by ``tests/test_chaos.py``.  The
no-hang half is enforced mechanically: with ``run_timeout`` set, a run that
exceeds its wall-clock budget is abandoned (a ``run_timeout`` event marks
it in the trace) and counted as **failed**, so one wedged run cannot wedge
the campaign.

The shard-kill campaign (:func:`run_shard_campaign`, ``repro chaos
--shards``) is the process-level counterpart: each run executes the
parallel family *sharded* on a supervised worker pool
(:mod:`repro.runtime.pool`) while the fault plan SIGKILLs workers
mid-shard (plus rotating shard hangs and checkpoint corruptions), then
verifies that every shard was recovered, the merged report is
**bit-identical** to the serial :class:`~repro.parallel.cluster.ClusterRun`
path, NC-PAR and C-PAR made identical dispatch decisions (Lemma 20), and
Lemma 3 / Lemma 4 still replay from the surviving trace at ``1e-9``.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..analysis.trace_report import REL_TOL, TraceReport, build_report
from ..core.errors import ReproError, ScheduleError
from ..core.shadow import SimulationContext
from ..core.tracing import MemoryRecorder, TraceEvent, TraceSink, iter_trace, make_sink
from ..extensions.bounded_speed import CappedPowerLaw, simulate_clairvoyant_capped
from ..algorithms.clairvoyant import simulate_clairvoyant
from ..algorithms.nc_uniform import simulate_nc_uniform
from ..core.power import PowerLaw
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan, FaultSpec, generate_plan
from ..parallel.c_par import simulate_c_par
from ..parallel.nc_par import simulate_nc_par
from ..parallel.shard import run_sharded
from ..workloads.random_instances import random_instance
from .pool import PoolPolicy
from .supervisor import RecoveryPolicy, Supervisor

__all__ = [
    "RunOutcome",
    "CampaignReport",
    "ShardRunOutcome",
    "ShardCampaignReport",
    "ServiceRunOutcome",
    "ServiceCampaignReport",
    "run_pair_verified",
    "run_campaign",
    "run_shard_campaign",
    "run_service_campaign",
    "format_service_campaign",
    "iter_campaign_runs",
    "RunVerification",
    "verify_campaign_trace",
    "format_campaign",
    "format_shard_campaign",
]

#: Tolerance for trace-replayed Lemma 3 / Lemma 4 on pair runs.
PAIR_REL_TOL = 1e-9

#: Family rotation of a campaign (index ``i % len``): the single-machine NC
#: pair twice (it carries the lemma re-verification), the capped pair, the
#: engine-driven general-density family, and the parallel family.
_ROTATION = ("NC_PAIR", "NC_PAIR", "CAPPED_PAIR", "NC_GENERAL", "NC_PAR")

#: Fault pools per family: pair runs get reveal/release faults (their lies
#: surface as lemma failures); the engine family gets the numeric faults;
#: the parallel family gets machine failures.
_POOLS = {
    "NC_PAIR": ("oracle_lie", "release_jitter", "release_duplicate", "release_drop"),
    "CAPPED_PAIR": ("oracle_lie", "release_drop"),
    "NC_GENERAL": ("power_transient", "power_nan", "step_corruption", "oracle_lie"),
    "NC_PAR": ("machine_failure",),
}


@dataclass(frozen=True)
class RunOutcome:
    """One chaos run's verdict."""

    run_id: int
    family: str
    seed: int
    plan: str
    status: str  # "clean" | "recovered" | "failed"
    attempts: int
    faults_fired: int
    #: pair runs: did Lemma 3/4 replay hold at PAIR_REL_TOL (None otherwise)
    lemmas_ok: bool | None
    error: str | None
    checkpoint: str | None
    n_events: int


@dataclass(frozen=True)
class CampaignReport:
    seed: int
    n_runs: int
    outcomes: tuple[RunOutcome, ...]

    @property
    def n_clean(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "clean")

    @property
    def n_recovered(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "recovered")

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def ok(self) -> bool:
        """Every run survived (clean or recovered) with its lemmas intact;
        structured failures count against the campaign verdict even though
        they satisfy the no-silent-failure contract."""
        return all(
            o.status in ("clean", "recovered") and o.lemmas_ok is not False
            for o in self.outcomes
        )


def _meta_payload(instance, alpha: float) -> dict:
    return {
        "instance": [[j.job_id, j.release, j.volume, j.density] for j in instance],
        "alpha": alpha,
    }


def run_pair_verified(
    instance,
    power: PowerLaw,
    plan: FaultPlan,
    recorder: MemoryRecorder,
    *,
    capped: bool = False,
    policy: RecoveryPolicy | None = None,
) -> tuple[bool, object]:
    """Run the (C, NC) pair traced, NC under supervision, and re-verify
    Lemma 3 / Lemma 4 from the trace at :data:`PAIR_REL_TOL`.

    A lie that slips past the local guards (a scaled volume reveal, a
    jittered release) produces a *valid-looking* NC run whose lemma replay
    fails against C; the harness then emits ``guard_violation`` + ``retry``
    and re-runs NC — the injector's budgets are spent, so the retried
    attempt is clean — and re-verifies.  Returns ``(lemmas_ok, result)``.
    """
    context = SimulationContext(power, recorder=recorder)
    context.emit("run_meta", 0.0, "chaos", **_meta_payload(instance, power.alpha))
    supervisor = Supervisor(power, plan=plan, context=context, policy=policy)
    nc_name = "NC_CAPPED" if capped else "NC"
    if capped:
        assert isinstance(power, CappedPowerLaw)
        simulate_clairvoyant_capped(instance, power, context=context)
    else:
        simulate_clairvoyant(instance, power, context=context)
    result = supervisor.run(nc_name, instance)

    def _lemmas_hold() -> bool:
        try:
            report = build_report(recorder.events, rel_tol=PAIR_REL_TOL)
        except ScheduleError:
            # A phantom/dropped job makes the replayed NC schedule
            # inconsistent with the instance — a lemma failure in disguise.
            return False
        return bool(report.checks) and all(c.holds for c in report.checks)

    ok = _lemmas_hold()
    if not ok:
        # The surviving attempt is self-consistent but wrong against C:
        # escalate to a pair-level retry (fault budgets are spent by now).
        context.emit(
            "guard_violation", 0.0, "supervisor",
            guard="lemma_replay", algorithm=nc_name,
        )
        context.emit("retry", 0.0, "NC_capped" if capped else "NC", reason="lemma_replay")
        result = supervisor.run(nc_name, instance)
        ok = _lemmas_hold()
    return ok, result


def run_campaign(
    seed: int,
    n_runs: int,
    *,
    jobs: int = 8,
    alpha: float = 3.0,
    machines: int = 3,
    out: str | Path | None = None,
    sink_spec: str = "plain",
    policy: RecoveryPolicy | None = None,
    run_timeout: float | None = None,
) -> CampaignReport:
    """Run a seeded campaign of ``n_runs`` fault scenarios.

    With ``out`` given, every run's full trace (including ``fault_injected``
    and ``recovery`` events) is appended to one JSONL sink — plain, gzip, or
    rotating segments per ``sink_spec`` (see
    :func:`~repro.core.tracing.make_sink`); the per-run ``run_meta`` header
    carries ``run_id``/``family``/``plan`` so the file partitions cleanly on
    re-read (:func:`iter_campaign_runs`).

    ``run_timeout`` (seconds) bounds each run's wall clock.  A run that
    exceeds it is abandoned where it stands, marked **failed** with a
    ``run_timeout`` event in its trace slot, and the campaign moves on —
    the timed-out run's thread can never touch the sink, because all sink
    writes happen here after the verdict.
    """
    outcomes: list[RunOutcome] = []
    sink = make_sink(out, sink_spec) if out is not None else None
    try:
        for i in range(n_runs):
            derived = seed * 1_000_003 + i
            family = _ROTATION[i % len(_ROTATION)]
            outcome, events = _execute_run(
                i, family, derived, jobs=jobs, alpha=alpha,
                machines=machines, policy=policy, run_timeout=run_timeout,
            )
            outcomes.append(outcome)
            if sink is not None:
                header = {
                    "run_id": outcome.run_id,
                    "family": outcome.family,
                    "seed": outcome.seed,
                    "plan": outcome.plan,
                    "status": outcome.status,
                }
                _write_run(sink, header, events)
                sink.flush()
    finally:
        if sink is not None:
            sink.close()
    return CampaignReport(seed=seed, n_runs=n_runs, outcomes=tuple(outcomes))


def _write_run(sink: TraceSink, header: dict[str, Any], events: Iterable[TraceEvent]) -> None:
    """One run's slot in a campaign trace: a ``campaign`` header, then the
    run's own events (whose first event is the run's ``run_meta`` with the
    instance)."""
    header_event = TraceEvent(
        kind="run_meta", sim_time=0.0, wall_time=0.0, component="campaign", payload=header
    )
    sink.write("run_meta", header_event.to_json())
    for event in events:
        sink.write(event.kind, event.to_json())


def _campaign_events(
    source: str | Path | Iterable[TraceEvent],
) -> Iterator[TraceEvent]:
    if isinstance(source, (str, Path)):
        return iter_trace(source)
    return iter(source)


def iter_campaign_runs(
    source: str | Path | Iterable[TraceEvent],
) -> Iterator[tuple[dict[str, Any], list[TraceEvent]]]:
    """Split a campaign trace back into its per-run slots.

    Yields ``(header, events)`` for every ``campaign`` ``run_meta`` header in
    the stream; ``source`` may be a written trace path (plain or gzip) or any
    event iterable.  Memory is bounded by the largest single run, not the
    campaign.
    """
    header: dict[str, Any] | None = None
    events: list[TraceEvent] = []
    for event in _campaign_events(source):
        if event.kind == "run_meta" and event.component == "campaign":
            if header is not None:
                yield header, events
            header = dict(event.payload)
            events = []
            continue
        if header is not None:
            events.append(event)
    if header is not None:
        yield header, events


@dataclass(frozen=True)
class RunVerification:
    """Streaming re-verification verdict for one run slot of a campaign trace."""

    header: dict[str, Any]
    report: TraceReport | None
    error: str | None

    @property
    def ok(self) -> bool:
        return self.error is None and self.report is not None and self.report.ok


def verify_campaign_trace(
    source: str | Path | Iterable[TraceEvent], *, rel_tol: float = REL_TOL
) -> list[RunVerification]:
    """Re-verify every run of a written campaign trace in one streaming pass.

    Each run slot gets its own
    :class:`~repro.analysis.streaming.StreamingReportBuilder`, so memory
    stays bounded by one run's job count no matter how long the campaign
    file is.  A run whose replay raises :class:`ScheduleError` (a failed
    run's torn schedule) is reported with the error instead of a report —
    the same judgement the live campaign makes.
    """
    from ..analysis.streaming import StreamingReportBuilder

    results: list[RunVerification] = []
    header: dict[str, Any] | None = None
    builder: StreamingReportBuilder | None = None

    def _finish(hdr: dict[str, Any], b: StreamingReportBuilder) -> None:
        try:
            results.append(RunVerification(header=hdr, report=b.finish(), error=None))
        except ScheduleError as err:
            results.append(RunVerification(header=hdr, report=None, error=str(err)))

    for event in _campaign_events(source):
        if event.kind == "run_meta" and event.component == "campaign":
            if header is not None and builder is not None:
                _finish(header, builder)
            header = dict(event.payload)
            builder = StreamingReportBuilder(rel_tol=rel_tol)
            continue
        if builder is not None:
            try:
                builder.feed(event)
            except ScheduleError as err:
                if header is not None:
                    results.append(
                        RunVerification(header=header, report=None, error=str(err))
                    )
                header = None
                builder = None
    if header is not None and builder is not None:
        _finish(header, builder)
    return results


def _campaign_plan(family: str, derived_seed: int, *, jobs: int, machines: int) -> FaultPlan:
    n = jobs if family != "NC_GENERAL" else max(3, jobs // 2)
    return generate_plan(
        derived_seed,
        n_faults=1,
        kinds=_POOLS[family],
        n_jobs=n,
        machines=machines if family == "NC_PAR" else None,
    )


def _execute_run(
    run_id: int,
    family: str,
    derived_seed: int,
    *,
    jobs: int,
    alpha: float,
    machines: int,
    policy: RecoveryPolicy | None,
    run_timeout: float | None,
) -> tuple[RunOutcome, list[TraceEvent]]:
    """Run one scenario, optionally under a wall-clock budget.

    Python threads cannot be preempted, so a timed-out run is *abandoned*:
    its daemon thread keeps whatever it was doing until process exit, but
    its results and trace are never read — the campaign's record of the run
    is the synthesized ``run_timeout`` failure built here.
    """
    if run_timeout is None:
        return _run_one(
            run_id, family, derived_seed,
            jobs=jobs, alpha=alpha, machines=machines, policy=policy,
        )

    box: list = []

    def target() -> None:
        try:
            box.append(
                _run_one(
                    run_id, family, derived_seed,
                    jobs=jobs, alpha=alpha, machines=machines, policy=policy,
                )
            )
        except BaseException as err:  # noqa: BLE001 — surfaced as a failed run
            box.append(err)

    thread = threading.Thread(target=target, daemon=True, name=f"chaos-run-{run_id}")
    thread.start()
    thread.join(run_timeout)
    if thread.is_alive() or not box:
        plan = _campaign_plan(family, derived_seed, jobs=jobs, machines=machines)
        rec = MemoryRecorder()
        rec.emit(
            "run_timeout", 0.0, "chaos",
            run_id=run_id, family=family, timeout_s=float(run_timeout),
        )
        outcome = RunOutcome(
            run_id=run_id,
            family=family,
            seed=derived_seed,
            plan=plan.describe(),
            status="failed",
            attempts=0,
            faults_fired=0,
            lemmas_ok=None,
            error=f"RunTimeout: run exceeded {run_timeout:.3g}s wall clock",
            checkpoint="run_timeout",
            n_events=len(rec.events),
        )
        return outcome, rec.events
    if isinstance(box[0], BaseException):
        raise box[0]
    return box[0]


def _run_one(
    run_id: int,
    family: str,
    derived_seed: int,
    *,
    jobs: int,
    alpha: float,
    machines: int,
    policy: RecoveryPolicy | None,
) -> tuple[RunOutcome, list[TraceEvent]]:
    recorder = MemoryRecorder()
    n = jobs if family != "NC_GENERAL" else max(3, jobs // 2)
    plan = _campaign_plan(family, derived_seed, jobs=jobs, machines=machines)
    instance = random_instance(n, seed=derived_seed, volume="uniform")
    lemmas_ok: bool | None = None
    status = "failed"
    attempts = 0
    error = None
    checkpoint = None
    faults_fired = 0
    try:
        if family == "NC_PAIR":
            power = PowerLaw(alpha)
            ok, result = run_pair_verified(instance, power, plan, recorder, policy=policy)
            lemmas_ok, attempts = ok, result.attempts
            faults_fired = len(result.faults)
            status = "recovered" if (result.recovered or result.faults) else "clean"
        elif family == "CAPPED_PAIR":
            power = CappedPowerLaw(alpha, s_max=2.5)
            ok, result = run_pair_verified(
                instance, power, plan, recorder, capped=True, policy=policy
            )
            lemmas_ok, attempts = ok, result.attempts
            faults_fired = len(result.faults)
            status = "recovered" if (result.recovered or result.faults) else "clean"
        elif family == "NC_GENERAL":
            power = PowerLaw(alpha)
            context = SimulationContext(power, recorder=recorder)
            context.emit("run_meta", 0.0, "chaos", **_meta_payload(instance, alpha))
            supervisor = Supervisor(power, plan=plan, context=context, policy=policy)
            result = supervisor.run("NC_GENERAL", instance, max_step=5e-2)
            attempts = result.attempts
            faults_fired = len(result.faults)
            status = "recovered" if (result.recovered or result.faults) else "clean"
        else:  # NC_PAR
            power = PowerLaw(alpha)
            context = SimulationContext(power, recorder=recorder)
            context.emit("run_meta", 0.0, "chaos", **_meta_payload(instance, alpha))
            supervisor = Supervisor(power, plan=plan, context=context, policy=policy)
            result = supervisor.run("NC_PAR", instance, machines=machines)
            attempts = result.attempts
            faults_fired = len(result.faults)
            status = "recovered" if (result.recovered or result.faults) else "clean"
    except ReproError as err:
        # Structured terminal failure: the fault and checkpoint are named.
        error = f"{type(err).__name__}: {err}"
        checkpoint = (
            str(err.context.get("checkpoint")) if err.context.get("checkpoint") else None
        )
        attempts = int(err.context.get("attempts", 0) or 0)
        status = "failed"
    outcome = RunOutcome(
        run_id=run_id,
        family=family,
        seed=derived_seed,
        plan=plan.describe(),
        status=status,
        attempts=attempts,
        faults_fired=faults_fired,
        lemmas_ok=lemmas_ok,
        error=error,
        checkpoint=checkpoint,
        n_events=len(recorder.events),
    )
    return outcome, recorder.events


def format_campaign(report: CampaignReport) -> str:
    lines = [
        f"chaos campaign: seed={report.seed}, {report.n_runs} runs — "
        f"{report.n_clean} clean, {report.n_recovered} recovered, "
        f"{report.n_failed} failed"
    ]
    lines.append("")
    lines.append(
        f"{'run':>4} {'family':<12} {'status':<10} {'attempts':>8} "
        f"{'faults':>6} {'lemmas':>7}  detail"
    )
    for o in report.outcomes:
        lemmas = "-" if o.lemmas_ok is None else ("PASS" if o.lemmas_ok else "FAIL")
        detail = o.error if o.error else o.plan
        lines.append(
            f"{o.run_id:>4} {o.family:<12} {o.status:<10} {o.attempts:>8} "
            f"{o.faults_fired:>6} {lemmas:>7}  {detail}"
        )
    lines.append("")
    lines.append(
        "CAMPAIGN OK: every run survived with guarantees intact"
        if report.ok
        else "CAMPAIGN FAILED: at least one run failed or broke a replayed lemma"
    )
    return "\n".join(lines)


# -- the shard-kill campaign --------------------------------------------------


@dataclass(frozen=True)
class ShardRunOutcome:
    """One shard-kill run's verdict.

    ``bit_identical`` is exact equality of the sharded merged report with
    the serial ``ClusterRun.report()`` (no tolerance); ``dispatch_identical``
    is Lemma 20's NC-PAR == C-PAR assignment check; ``lemmas_ok`` is the
    Lemma 3/4 replay of the traced single-machine pair on the same instance.
    """

    run_id: int
    seed: int
    plan: str
    status: str  # "clean" | "recovered" | "failed"
    shards: int
    workers_killed: int
    workers_lost: int
    redispatched: int
    serial_fallback: int
    degraded: bool
    resumed: int
    faults_fired: int
    bit_identical: bool | None
    dispatch_identical: bool | None
    lemmas_ok: bool | None
    error: str | None
    n_events: int


@dataclass(frozen=True)
class ShardCampaignReport:
    seed: int
    n_runs: int
    outcomes: tuple[ShardRunOutcome, ...]

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def total_workers_killed(self) -> int:
        return sum(o.workers_killed for o in self.outcomes)

    @property
    def ok(self) -> bool:
        """Every run survived, every sharded report is bit-identical to the
        serial path, dispatch identity (Lemma 20) held, and the Lemma 3/4
        replay passed — the acceptance contract of the sharded layer."""
        return all(
            o.status in ("clean", "recovered")
            and o.bit_identical is True
            and o.dispatch_identical is True
            and o.lemmas_ok is not False
            for o in self.outcomes
        )


def run_shard_campaign(
    seed: int,
    n_runs: int,
    *,
    jobs: int = 16,
    alpha: float = 3.0,
    machines: int = 4,
    workers: int = 2,
    kills: int = 2,
    shard_hold: float = 0.15,
    checkpoint_dir: str | Path | None = None,
    out: str | Path | None = None,
    sink_spec: str = "plain",
) -> ShardCampaignReport:
    """Run ``n_runs`` shard-kill scenarios against the supervised pool.

    Every run SIGKILLs ``kills`` workers mid-shard (the ``shard_hold``
    synthetic shard duration guarantees the kill lands while the shard is
    computing, so work is genuinely lost and re-dispatched); every third
    run also wedges a shard (``shard_hang``), and — when ``checkpoint_dir``
    is given — every fourth run corrupts a durable checkpoint.  After the
    pool recovers, the run verifies the three-part contract recorded in
    :class:`ShardRunOutcome`.
    """
    outcomes: list[ShardRunOutcome] = []
    sink = make_sink(out, sink_spec) if out is not None else None
    try:
        for i in range(n_runs):
            derived = seed * 1_000_003 + i
            outcome, events = _run_one_sharded(
                i, derived, jobs=jobs, alpha=alpha, machines=machines,
                workers=workers, kills=kills, shard_hold=shard_hold,
                checkpoint_dir=checkpoint_dir,
            )
            outcomes.append(outcome)
            if sink is not None:
                header = {
                    "run_id": outcome.run_id,
                    "family": "NC_PAR_SHARDED",
                    "seed": outcome.seed,
                    "plan": outcome.plan,
                    "status": outcome.status,
                }
                _write_run(sink, header, events)
                sink.flush()
    finally:
        if sink is not None:
            sink.close()
    return ShardCampaignReport(seed=seed, n_runs=n_runs, outcomes=tuple(outcomes))


def _shard_plan(
    run_id: int,
    derived_seed: int,
    *,
    kills: int,
    with_checkpoints: bool,
) -> FaultPlan:
    """The deterministic process-fault plan of one shard-kill run.

    The ``kills`` worker kills target dispatch ordinals ``1..kills`` —
    the first ``kills`` shards handed out, which land on distinct workers
    while every worker is still busy with its first shard.
    """
    faults: list[FaultSpec] = [
        FaultSpec(kind="worker_kill", after_calls=k + 1) for k in range(kills)
    ]
    if run_id % 3 == 2:
        faults.append(FaultSpec(kind="shard_hang", after_calls=kills + 1))
    if with_checkpoints and run_id % 4 == 3:
        faults.append(FaultSpec(kind="checkpoint_corruption", after_calls=1))
    return FaultPlan(seed=derived_seed, faults=tuple(faults))


def _run_one_sharded(
    run_id: int,
    derived_seed: int,
    *,
    jobs: int,
    alpha: float,
    machines: int,
    workers: int,
    kills: int,
    shard_hold: float,
    checkpoint_dir: str | Path | None,
) -> tuple[ShardRunOutcome, list[TraceEvent]]:
    recorder = MemoryRecorder()
    power = PowerLaw(alpha)
    instance = random_instance(jobs, seed=derived_seed, volume="uniform")
    plan = _shard_plan(
        run_id, derived_seed, kills=kills, with_checkpoints=checkpoint_dir is not None
    )
    context = SimulationContext(power, recorder=recorder)
    context.emit("run_meta", 0.0, "chaos", **_meta_payload(instance, alpha))
    injector = FaultInjector(plan, context)

    bit_identical: bool | None = None
    dispatch_identical: bool | None = None
    lemmas_ok: bool | None = None
    status = "failed"
    error = None
    shards = 0
    resumed = 0
    workers_lost = 0
    redispatched = 0
    serial_fallback = 0
    degraded = False
    try:
        # The traced single-machine pair on the same instance: the material
        # the Lemma 3/4 replay audits.
        simulate_clairvoyant(instance, power, context=context)
        simulate_nc_uniform(instance, power, context=context)

        # Serial references, computed without faults or tracing.
        serial_report = simulate_nc_par(instance, power, machines).report()
        c_par_assignments = simulate_c_par(instance, power, machines).assignments

        policy = PoolPolicy(
            workers=workers,
            heartbeat_interval=0.05,
            heartbeat_timeout=10.0,
            shard_timeout=max(2.0, shard_hold * 10.0),
            poll_interval=0.01,
        )
        result = run_sharded(
            instance, power, machines,
            context=context, injector=injector, policy=policy,
            checkpoint_dir=checkpoint_dir, shard_hold=shard_hold,
        )
        shards = len(result.shards)
        resumed = result.resumed
        if result.stats is not None:
            workers_lost = result.stats.workers_lost
            redispatched = result.stats.redispatched
            serial_fallback = result.stats.serial_fallback
            degraded = result.stats.degraded
        bit_identical = result.report == serial_report
        dispatch_identical = result.cluster.assignments == c_par_assignments

        try:
            report = build_report(recorder.events, rel_tol=PAIR_REL_TOL)
            lemmas_ok = bool(report.checks) and all(c.holds for c in report.checks)
        except ScheduleError:
            lemmas_ok = False
        status = "recovered" if injector.fired else "clean"
    except ReproError as err:
        error = f"{type(err).__name__}: {err}"
        status = "failed"
    outcome = ShardRunOutcome(
        run_id=run_id,
        seed=derived_seed,
        plan=plan.describe(),
        status=status,
        shards=shards,
        workers_killed=sum(1 for s, _ in injector.fired if s.kind == "worker_kill"),
        workers_lost=workers_lost,
        redispatched=redispatched,
        serial_fallback=serial_fallback,
        degraded=degraded,
        resumed=resumed,
        faults_fired=len(injector.fired),
        bit_identical=bit_identical,
        dispatch_identical=dispatch_identical,
        lemmas_ok=lemmas_ok,
        error=error,
        n_events=len(recorder.events),
    )
    return outcome, recorder.events


def format_shard_campaign(report: ShardCampaignReport) -> str:
    survived = report.n_runs - report.n_failed
    lines = [
        f"shard-kill campaign: seed={report.seed}, {report.n_runs} runs — "
        f"{survived} survived, {report.n_failed} failed, "
        f"{report.total_workers_killed} workers SIGKILLed"
    ]
    lines.append("")
    lines.append(
        f"{'run':>4} {'status':<10} {'shards':>6} {'killed':>6} {'redisp':>6} "
        f"{'resume':>6} {'bitid':>6} {'L20':>4} {'L3/4':>5}  detail"
    )
    for o in report.outcomes:
        flag = lambda v: "-" if v is None else ("PASS" if v else "FAIL")  # noqa: E731
        detail = o.error if o.error else o.plan
        lines.append(
            f"{o.run_id:>4} {o.status:<10} {o.shards:>6} {o.workers_killed:>6} "
            f"{o.redispatched:>6} {o.resumed:>6} {flag(o.bit_identical):>6} "
            f"{flag(o.dispatch_identical):>4} {flag(o.lemmas_ok):>5}  {detail}"
        )
    lines.append("")
    lines.append(
        "SHARD CAMPAIGN OK: every kill recovered, reports bit-identical, "
        "dispatch identity and lemma replay intact"
        if report.ok
        else "SHARD CAMPAIGN FAILED: a run failed, diverged from serial, or "
        "broke dispatch identity / lemma replay"
    )
    return "\n".join(lines)


# -- the service chaos campaign -----------------------------------------------


#: Scenario rotation of the service campaign (index ``i % len``): two live
#: SIGKILL-and-restart scenarios bracketing a torn journal tail, an interior
#: journal corruption, an LRU eviction cycle, and the two HTTP-level faults.
_SERVICE_ROTATION = (
    "kill_restart",
    "torn_tail",
    "corruption",
    "evict",
    "slow_handler",
    "connection_drop",
)

#: The query endpoints whose response bodies define a session's fingerprint;
#: bit-identity is exact byte equality across all of them.
_FINGERPRINT_PATHS = ("/speeds", "/schedule", "/metrics", "/report")


@dataclass(frozen=True)
class ServiceRunOutcome:
    """One service chaos run's verdict.

    ``bit_identical`` is exact byte equality of the recovered session's
    speeds/schedule/metrics/verified-report bodies with a never-faulted
    twin's (None when the scenario has no twin, e.g. a quarantined
    corruption); ``lemmas_ok`` is the Lemma 3/4 replay served by
    ``GET /report`` on the surviving session.
    """

    run_id: int
    scenario: str
    seed: int
    status: str  # "clean" | "recovered" | "failed"
    faults_fired: int
    bit_identical: bool | None
    lemmas_ok: bool | None
    restored: int
    quarantined: int
    error: str | None
    n_events: int


@dataclass(frozen=True)
class ServiceCampaignReport:
    seed: int
    n_runs: int
    outcomes: tuple[ServiceRunOutcome, ...]

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def ok(self) -> bool:
        """Every scenario recovered, every recovered session is bit-identical
        to its uninterrupted twin, and every lemma replay passed — the
        acceptance contract of the durable service layer."""
        return all(
            o.status in ("clean", "recovered")
            and o.bit_identical is not False
            and o.lemmas_ok is not False
            for o in self.outcomes
        )


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _http(
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    *,
    timeout: float = 10.0,
) -> tuple[int, bytes]:
    """One HTTP exchange against localhost; returns ``(status, body_bytes)``."""
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"content-type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _spawn_server(
    port: int,
    journal_dir: str | Path,
    *,
    extra: tuple[str, ...] = (),
    timeout: float = 30.0,
) -> subprocess.Popen:
    """Start a real ``repro serve`` subprocess and wait until it is healthy."""
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1", "--port", str(port),
        "--journal-dir", str(journal_dir), *extra,
    ]
    proc = subprocess.Popen(
        cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server on port {port} exited with {proc.returncode} before healthy"
            )
        try:
            status, _ = _http(port, "GET", "/health", timeout=1.0)
            if status == 200:
                return proc
        except OSError:
            pass
        time.sleep(0.05)
    proc.kill()
    proc.wait()
    raise RuntimeError(f"server on port {port} not healthy within {timeout:.0f}s")


def _stop_server(proc: subprocess.Popen | None) -> None:
    if proc is None or proc.poll() is not None:
        return
    proc.terminate()
    try:
        proc.wait(timeout=10.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()


def _service_batches(jobs: int, derived_seed: int) -> list[list[dict]]:
    """The deterministic arrival batches of one scenario (unit density, so
    the verified-report lemma replay is servable)."""
    instance = random_instance(jobs, derived_seed, density="unit")
    ordered = sorted(instance, key=lambda j: (j.release, j.job_id))
    return [
        [
            {"id": j.job_id, "release": j.release, "volume": j.volume,
             "density": j.density}
            for j in ordered[i : i + 2]
        ]
        for i in range(0, len(ordered), 2)
    ]


def _expect(status: int, want: int, what: str, body: bytes = b"") -> None:
    if status != want:
        detail = body[:200].decode(errors="replace")
        raise RuntimeError(f"{what}: expected {want}, got {status} ({detail})")


def _fingerprint(port: int, session_id: str) -> dict[str, tuple[int, bytes]]:
    return {
        path: _http(port, "GET", f"/sessions/{session_id}{path}")
        for path in _FINGERPRINT_PATHS
    }


def _lemmas_from_report(fingerprint: dict[str, tuple[int, bytes]]) -> bool:
    status, body = fingerprint["/report"]
    if status != 200:
        return False
    return bool(json.loads(body).get("ok"))


def _restore_counts(port: int) -> tuple[int, int]:
    """(restored, quarantined) from the freshly-restarted server's health."""
    status, body = _http(port, "GET", "/health")
    _expect(status, 200, "health after restart", body)
    restore = json.loads(body).get("restore") or {}
    return int(restore.get("restored", 0)), int(restore.get("quarantined", 0))


def _submit(port: int, session_id: str, batch: list[dict]) -> None:
    status, body = _http(
        port, "POST", f"/sessions/{session_id}/jobs", {"jobs": batch}
    )
    _expect(status, 202, f"submit to {session_id!r}", body)


def _create_session(
    port: int, session_id: str, alpha: float, *, expect: int = 201
) -> None:
    status, body = _http(
        port, "POST", "/sessions",
        {"session_id": session_id, "alpha": alpha, "algorithm": "NC"},
    )
    _expect(status, expect, f"create {session_id!r}", body)


def _run_one_service(
    run_id: int,
    scenario: str,
    derived_seed: int,
    *,
    jobs: int,
    alpha: float,
) -> tuple[ServiceRunOutcome, list[TraceEvent]]:
    recorder = MemoryRecorder()
    recorder.emit(
        "run_meta", 0.0, "chaos",
        run_id=run_id, scenario=scenario, seed=derived_seed,
        alpha=alpha, jobs=jobs,
    )
    faults_fired = 0
    bit_identical: bool | None = None
    lemmas_ok: bool | None = None
    restored = 0
    quarantined = 0
    status = "failed"
    error: str | None = None
    tmp = tempfile.mkdtemp(prefix="repro-service-chaos-")
    try:
        if scenario in ("kill_restart", "torn_tail", "corruption"):
            result = _scenario_kill(
                scenario, derived_seed, Path(tmp), recorder,
                jobs=jobs, alpha=alpha,
            )
        elif scenario == "evict":
            result = _scenario_evict(derived_seed, Path(tmp), recorder, jobs=jobs, alpha=alpha)
        else:  # slow_handler | connection_drop
            result = _scenario_gate(
                scenario, derived_seed, recorder, jobs=jobs, alpha=alpha
            )
        faults_fired, bit_identical, lemmas_ok, restored, quarantined = result
        status = "recovered" if faults_fired else "clean"
        recorder.emit(
            "recovery", 0.0, "service.chaos",
            scenario=scenario, restored=restored, quarantined=quarantined,
        )
    except Exception as err:  # noqa: BLE001 — every breakage is a failed run
        error = f"{type(err).__name__}: {err}"
        status = "failed"
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    outcome = ServiceRunOutcome(
        run_id=run_id,
        scenario=scenario,
        seed=derived_seed,
        status=status,
        faults_fired=faults_fired,
        bit_identical=bit_identical,
        lemmas_ok=lemmas_ok,
        restored=restored,
        quarantined=quarantined,
        error=error,
        n_events=len(recorder.events),
    )
    return outcome, recorder.events


def _scenario_kill(
    scenario: str,
    derived_seed: int,
    tmp: Path,
    recorder: MemoryRecorder,
    *,
    jobs: int,
    alpha: float,
) -> tuple[int, bool | None, bool | None, int, int]:
    """SIGKILL a live journaled server mid-workload, optionally damage the
    journal post-mortem, restart, and differentially compare against a twin.

    ``kill_restart`` — plain crash: the restarted server must serve the
    committed prefix bit-identically, then absorb the rest of the workload
    exactly like a server that never died.

    ``torn_tail`` — the crash additionally tears the journal's final line
    (a write that never completed, hence never acked): restore must drop
    exactly that line and recover the committed prefix.

    ``corruption`` — an *interior* journal line is damaged: restore must
    quarantine the session (404 + health ``quarantined``), never silently
    restore a wrong session.
    """
    from ..service.journal import journal_path

    live_dir, twin_dir = tmp / "live", tmp / "twin"
    batches = _service_batches(jobs, derived_seed)
    half = max(1, len(batches) // 2)
    faults = 1
    proc = twin = None
    try:
        port = _free_port()
        proc = _spawn_server(port, live_dir)
        _create_session(port, "chaos", alpha)
        for batch in batches[:half]:
            _submit(port, "chaos", batch)
        proc.kill()  # SIGKILL: no flush, no shutdown hooks — a real crash
        proc.wait()
        proc = None
        recorder.emit(
            "fault_injected", 0.0, "service.chaos",
            fault="server_sigkill", scenario=scenario, committed_batches=half,
        )

        jpath = journal_path(live_dir, "chaos")
        if scenario == "torn_tail":
            with open(jpath, "a", encoding="utf-8") as fh:
                fh.write('{"body": "{\\"record\\": \\"arrival_batch')  # torn
            recorder.emit(
                "fault_injected", 0.0, "service.chaos",
                fault="torn_journal_write", scenario=scenario,
            )
            faults += 1
        elif scenario == "corruption":
            lines = jpath.read_text(encoding="utf-8").splitlines()
            from ..service.journal import corrupt_line

            lines[0] = corrupt_line(lines[0])  # interior: more lines follow
            jpath.write_text("\n".join(lines) + "\n", encoding="utf-8")
            recorder.emit(
                "fault_injected", 0.0, "service.chaos",
                fault="journal_corruption", scenario=scenario,
            )
            faults += 1

        port2 = _free_port()
        proc = _spawn_server(port2, live_dir)
        restored, quarantined = _restore_counts(port2)

        if scenario == "corruption":
            if restored != 0 or quarantined != 1:
                raise RuntimeError(
                    f"corrupt journal not quarantined: restored={restored}, "
                    f"quarantined={quarantined}"
                )
            status, body = _http(port2, "GET", "/sessions/chaos")
            _expect(status, 404, "quarantined session lookup", body)
            return faults, None, None, restored, quarantined

        if restored != 1:
            raise RuntimeError(f"expected 1 restored session, got {restored}")
        # kill_restart absorbs the rest of the workload after recovery; the
        # torn-tail run stops at the committed prefix (the torn batch was
        # never acked, so the client's replay would resubmit it — here the
        # twin simply never sends it).
        tail = batches[half:] if scenario == "kill_restart" else []
        for batch in tail:
            _submit(port2, "chaos", batch)

        twin_port = _free_port()
        twin = _spawn_server(twin_port, twin_dir)
        _create_session(twin_port, "chaos", alpha)
        for batch in batches[:half] + tail:
            _submit(twin_port, "chaos", batch)

        live_fp = _fingerprint(port2, "chaos")
        twin_fp = _fingerprint(twin_port, "chaos")
        return (
            faults,
            live_fp == twin_fp,
            _lemmas_from_report(live_fp),
            restored,
            quarantined,
        )
    finally:
        _stop_server(proc)
        _stop_server(twin)


def _scenario_evict(
    derived_seed: int,
    tmp: Path,
    recorder: MemoryRecorder,
    *,
    jobs: int,
    alpha: float,
) -> tuple[int, bool | None, bool | None, int, int]:
    """Drive an LRU eviction on a bounded live store, then SIGKILL/restart:
    the evicted id's 410 tombstone must survive the crash (journaled
    ``session_evicted``), and the surviving session must restore to the
    exact pre-crash fingerprint."""
    live_dir = tmp / "live"
    batches = _service_batches(jobs, derived_seed)
    extra = ("--max-sessions", "1", "--evict-lru")
    proc = None
    try:
        port = _free_port()
        proc = _spawn_server(port, live_dir, extra=extra)
        _create_session(port, "victim", alpha)
        _submit(port, "victim", batches[0])
        _create_session(port, "survivor", alpha)  # store full -> evicts victim
        recorder.emit(
            "fault_injected", 0.0, "service.chaos",
            fault="lru_eviction", evicted="victim",
        )
        status, body = _http(port, "GET", "/sessions/victim")
        _expect(status, 410, "evicted session lookup", body)
        for batch in batches:
            _submit(port, "survivor", batch)
        before = _fingerprint(port, "survivor")

        proc.kill()
        proc.wait()
        proc = None
        recorder.emit(
            "fault_injected", 0.0, "service.chaos", fault="server_sigkill",
        )

        port2 = _free_port()
        proc = _spawn_server(port2, live_dir, extra=extra)
        restored, quarantined = _restore_counts(port2)
        if restored != 1:
            raise RuntimeError(f"expected 1 restored session, got {restored}")
        status, body = _http(port2, "GET", "/sessions/victim")
        _expect(status, 410, "evicted tombstone after restart", body)
        after = _fingerprint(port2, "survivor")
        return 2, before == after, _lemmas_from_report(after), restored, quarantined
    finally:
        _stop_server(proc)


def _scenario_gate(
    scenario: str,
    derived_seed: int,
    recorder: MemoryRecorder,
    *,
    jobs: int,
    alpha: float,
) -> tuple[int, bool | None, bool | None, int, int]:
    """Inject an HTTP-level fault (stalled handler past its deadline, or a
    connection dropped mid-response) into an in-thread live socket server,
    then verify the faulted request left no partial state: the retried
    workload ends bit-identical to a twin that never saw the fault."""
    import asyncio

    from ..service.app import create_app
    from ..service.asgi import serve
    from ..service.sessions import SessionManager
    from ..faults.injector import FaultInjector
    from ..faults.plan import FaultPlan, FaultSpec

    plan = FaultPlan(
        seed=derived_seed,
        faults=(FaultSpec(kind=scenario, after_calls=2, magnitude=0.75),),
    )
    context = SimulationContext(PowerLaw(alpha), recorder=recorder)
    injector = FaultInjector(plan, context)
    batches = _service_batches(jobs, derived_seed)

    def _threaded(app) -> tuple[threading.Thread, Any, Any]:
        started = threading.Event()
        box: dict[str, Any] = {}

        def run() -> None:
            async def main() -> None:
                ready = asyncio.Event()
                trigger = asyncio.Event()
                box["loop"] = asyncio.get_running_loop()
                box["trigger"] = trigger
                task = asyncio.ensure_future(
                    serve(
                        app, "127.0.0.1", box["port"],
                        ready=ready, shutdown_trigger=trigger, drain_timeout=2.0,
                    )
                )
                await ready.wait()
                started.set()
                await task

            asyncio.run(main())

        box["port"] = _free_port()
        thread = threading.Thread(target=run, daemon=True, name=f"svc-{scenario}")
        thread.start()
        if not started.wait(10.0):
            raise RuntimeError(f"{scenario} server thread not ready")
        return thread, box["loop"], box

    def _stop(thread: threading.Thread, loop, box) -> None:
        loop.call_soon_threadsafe(box["trigger"].set)
        thread.join(10.0)

    # Faulted server: a tight request deadline turns the stalled handler
    # into a clean 504 (slow_handler); the gate's ConnectionAborted tears
    # the response off mid-status-line (connection_drop).
    app = create_app(SessionManager(), request_timeout=0.25)
    app.gates.append(injector.service_gate())
    thread, loop, box = _threaded(app)
    try:
        port = box["port"]
        _create_session(port, "chaos", alpha)  # gated call 1: clean
        status: int | None = None
        try:
            status, _ = _http(
                port, "POST", "/sessions/chaos/jobs", {"jobs": batches[0]},
                timeout=5.0,
            )
        except (OSError, Exception) as err:  # noqa: BLE001 — torn response
            if scenario != "connection_drop":
                raise
            recorder.emit(
                "retry", 0.0, "service.chaos",
                reason=f"torn response: {type(err).__name__}",
            )
        if scenario == "slow_handler":
            _expect(status or 0, 504, "deadline on stalled handler")
        elif status is not None and status != 202:
            raise RuntimeError(
                f"connection_drop produced a whole {status} response"
            )
        if not injector.fired:
            raise RuntimeError(f"{scenario} fault never fired")
        # Budget spent: the identical retry and the rest of the workload
        # must commit cleanly, exactly once each.
        for batch in batches:
            _submit(port, "chaos", batch)
        live_fp = _fingerprint(port, "chaos")
    finally:
        _stop(thread, loop, box)

    twin_app = create_app(SessionManager(), request_timeout=0.25)
    twin_thread, twin_loop, twin_box = _threaded(twin_app)
    try:
        twin_port = twin_box["port"]
        _create_session(twin_port, "chaos", alpha)
        for batch in batches:
            _submit(twin_port, "chaos", batch)
        twin_fp = _fingerprint(twin_port, "chaos")
    finally:
        _stop(twin_thread, twin_loop, twin_box)

    return (
        len(injector.fired),
        live_fp == twin_fp,
        _lemmas_from_report(live_fp),
        0,
        0,
    )


def run_service_campaign(
    seed: int,
    n_runs: int,
    *,
    jobs: int = 6,
    alpha: float = 3.0,
    out: str | Path | None = None,
    sink_spec: str = "plain",
) -> ServiceCampaignReport:
    """Run ``n_runs`` seeded scenarios against live scheduling services.

    Rotates through :data:`_SERVICE_ROTATION`: real ``repro serve``
    subprocesses are SIGKILLed mid-workload (plain, with a torn journal
    tail, and with interior journal corruption), a bounded store is driven
    through an LRU eviction cycle, and in-thread socket servers absorb
    injected slow handlers and connection drops.  Every recovery is
    verified **differentially**: the surviving session's speeds, schedule,
    metrics, and verified Lemma 3/4 report must be byte-identical to a twin
    service that never saw the fault.  The campaign's trace (``out``)
    partitions per run exactly like the other campaigns'.
    """
    outcomes: list[ServiceRunOutcome] = []
    sink = make_sink(out, sink_spec) if out is not None else None
    try:
        for i in range(n_runs):
            derived = seed * 1_000_003 + i
            scenario = _SERVICE_ROTATION[i % len(_SERVICE_ROTATION)]
            outcome, events = _run_one_service(
                i, scenario, derived, jobs=jobs, alpha=alpha
            )
            outcomes.append(outcome)
            if sink is not None:
                header = {
                    "run_id": outcome.run_id,
                    "family": f"SERVICE_{scenario.upper()}",
                    "seed": outcome.seed,
                    "plan": scenario,
                    "status": outcome.status,
                }
                _write_run(sink, header, events)
                sink.flush()
    finally:
        if sink is not None:
            sink.close()
    return ServiceCampaignReport(seed=seed, n_runs=n_runs, outcomes=tuple(outcomes))


def format_service_campaign(report: ServiceCampaignReport) -> str:
    survived = report.n_runs - report.n_failed
    lines = [
        f"service chaos campaign: seed={report.seed}, {report.n_runs} runs — "
        f"{survived} survived, {report.n_failed} failed"
    ]
    lines.append("")
    lines.append(
        f"{'run':>4} {'scenario':<16} {'status':<10} {'faults':>6} "
        f"{'bitid':>6} {'L3/4':>5} {'rest':>5} {'quar':>5}  detail"
    )
    for o in report.outcomes:
        flag = lambda v: "-" if v is None else ("PASS" if v else "FAIL")  # noqa: E731
        detail = o.error if o.error else f"seed={o.seed}"
        lines.append(
            f"{o.run_id:>4} {o.scenario:<16} {o.status:<10} {o.faults_fired:>6} "
            f"{flag(o.bit_identical):>6} {flag(o.lemmas_ok):>5} "
            f"{o.restored:>5} {o.quarantined:>5}  {detail}"
        )
    lines.append("")
    lines.append(
        "SERVICE CAMPAIGN OK: every crash/evict/drop recovered bit-identical "
        "with lemma replays intact"
        if report.ok
        else "SERVICE CAMPAIGN FAILED: a scenario failed, diverged from its "
        "twin, or broke a lemma replay"
    )
    return "\n".join(lines)
