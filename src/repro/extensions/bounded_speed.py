"""Extension: speed-bounded processors.

The paper's related work (§1.3, citing Bansal–Chan–Lam–Lee [6]) studies the
same objective when the machine has a *maximum speed* ``s_max``.  This module
extends the reproduction to that model:

* :class:`CappedPowerLaw` — ``P(s) = s**alpha`` on ``[0, s_max]``; speeds
  above the cap are infeasible.
* :func:`simulate_clairvoyant_capped` — Algorithm C with the clipped speed
  rule ``s = min(P^{-1}(W), s_max)``: while the remaining weight exceeds
  ``P(s_max)`` the machine saturates at ``s_max`` (weight falls *linearly*),
  then the ordinary decay takes over.  Exact, event-driven.
* :func:`simulate_nc_uniform_capped` — Algorithm NC with the same clip on its
  growth rule ``s = min(P^{-1}(W^C(r-) + W̆), s_max)``.

A structural observation this extension demonstrates empirically (see
``benchmarks/bench_bounded_speed.py``): Lemma 3's **energy equality survives
the cap** — the clipped NC growth profile is still a time-reversed /
rearranged copy of the clipped C decay profile, both saturating at the same
level — while Lemma 4's exact flow ratio degrades gracefully as the cap
tightens (the paper's uncapped `1/(1-1/alpha)` is recovered as
``s_max -> inf``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..algorithms.clairvoyant import hdf_key
from ..core.errors import InvalidInstanceError, InvalidPowerFunctionError, SimulationError
from ..core.job import Instance
from ..core.kernels import decay_time_between, decay_weight_after, growth_time_between
from ..core.power import PowerLaw
from ..core.schedule import ConstantSegment, DecaySegment, GrowthSegment, Schedule, ScheduleBuilder

__all__ = [
    "CappedPowerLaw",
    "CappedRun",
    "simulate_clairvoyant_capped",
    "simulate_nc_uniform_capped",
]

_TIE_TOL = 1e-12


class CappedPowerLaw(PowerLaw):
    """``P(s) = s**alpha`` with a hard maximum speed.

    Subclasses :class:`PowerLaw` so the analytic decay/growth segments (which
    only ever exist *below* the cap) keep their closed-form energies.
    ``power`` rejects infeasible speeds; ``speed`` clips at the cap — the
    natural semantics for the power-equals-weight rule ("run as the rule says,
    but never faster than the hardware allows").
    """

    __slots__ = ("s_max",)

    def __init__(self, alpha: float, s_max: float) -> None:
        super().__init__(alpha)
        if not (s_max > 0 and math.isfinite(s_max)):
            raise InvalidPowerFunctionError(f"s_max must be finite > 0, got {s_max}")
        self.s_max = float(s_max)

    @property
    def saturation_weight(self) -> float:
        """The weight level ``P(s_max)`` above which the machine saturates."""
        return self.s_max**self.alpha

    def power(self, speed: float) -> float:
        if speed > self.s_max * (1 + 1e-9):
            raise ValueError(f"speed {speed} exceeds the cap {self.s_max}")
        return super().power(min(speed, self.s_max))

    def speed(self, power: float) -> float:
        return min(super().speed(power), self.s_max)

    def __repr__(self) -> str:
        return f"CappedPowerLaw(alpha={self.alpha}, s_max={self.s_max})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CappedPowerLaw)
            and other.alpha == self.alpha
            and other.s_max == self.s_max
        )

    def __hash__(self) -> int:
        return hash(("CappedPowerLaw", self.alpha, self.s_max))


@dataclass(frozen=True)
class CappedRun:
    """Outcome of a capped simulation."""

    instance: Instance
    power: CappedPowerLaw
    schedule: Schedule
    clock: float
    remaining: dict[int, float]

    def completion_time(self, job_id: int) -> float:
        return self.schedule.completion_time(job_id, self.instance[job_id].volume)

    def max_observed_speed(self, samples: int = 512) -> float:
        end = self.schedule.end_time
        return max(
            self.schedule.speed_at(end * k / (samples - 1)) for k in range(samples)
        )


def simulate_clairvoyant_capped(
    instance: Instance, power: CappedPowerLaw, *, until: float | None = None
) -> CappedRun:
    """Algorithm C with speed clipped at ``s_max`` (exact, event-driven)."""
    if not isinstance(power, CappedPowerLaw):
        raise TypeError("use simulate_clairvoyant for uncapped power laws")
    alpha = power.alpha
    w_sat = power.saturation_weight
    horizon = math.inf if until is None else float(until)

    releases = list(instance.jobs)
    next_rel = 0
    remaining: dict[int, float] = {}
    builder = ScheduleBuilder()
    t = 0.0

    def admit(now: float) -> None:
        nonlocal next_rel
        while next_rel < len(releases) and releases[next_rel].release <= now * (1 + _TIE_TOL):
            remaining[releases[next_rel].job_id] = releases[next_rel].volume
            next_rel += 1

    admit(t)
    while t < horizon and (remaining or next_rel < len(releases)):
        if not remaining:
            t = min(releases[next_rel].release, horizon)
            admit(t)
            continue
        current = min((instance[j] for j in remaining), key=hdf_key)
        rho = current.density
        w_total = sum(instance[j].density * v for j, v in remaining.items())
        if rho * remaining[current.job_id] <= 1e-15 * w_total:
            # The job's weight share underflows against the total: in the
            # saturated branch its processing time would round to zero and
            # the loop would never advance.  Finish it instantly.
            del remaining[current.job_id]
            continue
        w_end_job = w_total - rho * remaining[current.job_id]
        t_next_event = releases[next_rel].release if next_rel < len(releases) else math.inf

        if w_total > w_sat * (1 + _TIE_TOL):
            # Saturated phase: constant speed s_max, weight falls linearly.
            target = max(w_sat, w_end_job)
            tau_phase = (w_total - target) / (rho * power.s_max)
            t_stop = min(t + tau_phase, t_next_event, horizon)
            tau = t_stop - t
            if tau > 0:
                builder.append(ConstantSegment(t, t_stop, current.job_id, power.s_max))
                dv = power.s_max * tau
                remaining[current.job_id] = max(remaining[current.job_id] - dv, 0.0)
                if remaining[current.job_id] <= 0.0:
                    del remaining[current.job_id]
            t = t_stop
            admit(t)
            continue

        # Unsaturated phase: the ordinary decay dynamics.
        tau_complete = decay_time_between(w_total, max(w_end_job, 0.0), rho, alpha)
        t_stop = min(t + tau_complete, t_next_event, horizon)
        if t_stop >= t + tau_complete * (1.0 - _TIE_TOL):
            builder.append(
                DecaySegment(t, t + tau_complete, current.job_id, w_total, rho, alpha)
            )
            t = t + tau_complete
            del remaining[current.job_id]
        else:
            tau = t_stop - t
            if tau > 0:
                w_after = decay_weight_after(w_total, rho, tau, alpha)
                dv = (w_total - w_after) / rho
                builder.append(DecaySegment(t, t_stop, current.job_id, w_total, rho, alpha))
                remaining[current.job_id] = max(remaining[current.job_id] - dv, 0.0)
                if remaining[current.job_id] <= 0.0:
                    del remaining[current.job_id]
            t = t_stop
        admit(t)

    return CappedRun(
        instance=instance, power=power, schedule=builder.build(), clock=t, remaining=dict(remaining)
    )


def simulate_nc_uniform_capped(instance: Instance, power: CappedPowerLaw) -> CappedRun:
    """Algorithm NC (uniform densities) with speed clipped at ``s_max``.

    While processing job ``j`` the driver ``U = W^C(r[j]-) + W̆[j]`` grows;
    once ``U`` exceeds ``P(s_max)`` the machine saturates and ``U`` grows
    *linearly* to the job's end.  ``W^C(r[j]-)`` is read from a capped
    clairvoyant prefix run so the shadow matches the hardware.
    """
    if not isinstance(power, CappedPowerLaw):
        raise TypeError("use simulate_nc_uniform for uncapped power laws")
    if not instance.is_uniform_density():
        raise InvalidInstanceError("the §3 algorithm requires uniform densities")
    alpha = power.alpha
    u_sat = power.saturation_weight
    builder = ScheduleBuilder()
    t = 0.0
    for job in instance:  # FIFO
        start = max(t, job.release)
        rho = job.density
        prefix = instance.released_before(job.release, strict=True)
        if prefix is None:
            offset = 0.0
        else:
            shadow = simulate_clairvoyant_capped(prefix, power, until=job.release)
            offset = sum(prefix[k].density * v for k, v in shadow.remaining.items())

        u_end = offset + job.weight
        cursor = start
        if offset < u_sat:
            # Growth phase up to the cap (or the job's end).
            u_stop = min(u_end, u_sat)
            tau = growth_time_between(offset, u_stop, rho, alpha)
            if tau > 0:
                builder.append(GrowthSegment(cursor, cursor + tau, job.job_id, offset, rho, alpha))
                cursor += tau
            reached = u_stop
        else:
            reached = offset
        if u_end > reached:
            # Saturated phase: constant speed to the finish line.
            tau = (u_end - reached) / (rho * power.s_max)
            builder.append(ConstantSegment(cursor, cursor + tau, job.job_id, power.s_max))
            cursor += tau
        if cursor <= start:
            raise SimulationError(f"job {job.job_id} made no progress")
        t = cursor
    return CappedRun(
        instance=instance, power=power, schedule=builder.build(), clock=t, remaining={}
    )
