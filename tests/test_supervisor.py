"""Tier-1: the supervised runtime.

Two contracts from the robustness layer (docs/robustness.md):

* **differential** — with an empty fault plan, a supervised run is
  bit-identical (schedule segments, report, counters) to the unsupervised
  run for every algorithm family;
* **recovery** — a transient fault is survived via checkpoint rollback and
  retry; a persistent fault exhausts the retry budget with a structured
  error naming the fault and the last good checkpoint.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.algorithms.nc_general import simulate_nc_general
from repro.core.errors import RecoveryExhaustedError
from repro.core.job import Instance, Job
from repro.core.metrics import evaluate
from repro.core.power import PowerLaw
from repro.core.shadow import SimulationContext
from repro.core.tracing import MemoryRecorder
from repro.extensions.bounded_speed import (
    CappedPowerLaw,
    simulate_clairvoyant_capped,
    simulate_nc_uniform_capped,
)
from repro.faults import FaultPlan, FaultSpec
from repro.parallel.nc_par import simulate_nc_par
from repro.runtime import RecoveryPolicy, Supervisor
from repro.workloads import random_instance

CORPUS_PATH = pathlib.Path(__file__).parent / "data" / "golden_corpus.json"
_CORPUS = json.loads(CORPUS_PATH.read_text())
_UNIFORM_KEYS = sorted(k for k in _CORPUS if k.startswith("nc_uniform/"))


def _instance(spec):
    return Instance(
        [Job(int(j), release, volume, density) for j, release, volume, density in spec]
    )


def _counters(ctx):
    return ctx.metrics.as_dict()


class TestDifferential:
    """Empty plan => supervision is invisible, bit for bit."""

    @pytest.mark.parametrize("key", _UNIFORM_KEYS)
    @pytest.mark.parametrize("algorithm", ["C", "NC"])
    def test_analytic_families_bit_identical(self, key, algorithm):
        entry = _CORPUS[key]
        inst = _instance(entry["instance"])
        power = PowerLaw(entry["alpha"])

        base_ctx = SimulationContext(power)
        simulate = simulate_clairvoyant if algorithm == "C" else simulate_nc_uniform
        base = simulate(inst, power, context=base_ctx)
        base_report = evaluate(base.schedule, inst, power, validate=True)

        sup = Supervisor(power)
        result = sup.run(algorithm, inst)

        assert result.schedule.segments == base.schedule.segments
        assert result.report.energy == base_report.energy
        assert result.report.fractional_flow == base_report.fractional_flow
        assert result.report.completion_times == base_report.completion_times
        assert result.attempts == 1
        assert not result.recovered and not result.degraded
        assert result.faults == ()
        assert _counters(sup.context) == _counters(base_ctx)

    def test_nc_general_bit_identical(self):
        inst = random_instance(6, seed=19, volume="uniform")
        power = PowerLaw(3.0)
        base_ctx = SimulationContext(power)
        base = simulate_nc_general(inst, power, max_step=1e-2, context=base_ctx)
        base_report = evaluate(base.schedule, inst, power, validate=True)

        sup = Supervisor(power)
        result = sup.run("NC_GENERAL", inst, max_step=1e-2)
        assert result.schedule.segments == base.schedule.segments
        assert result.report.energy == base_report.energy
        assert result.report.fractional_flow == base_report.fractional_flow
        assert _counters(sup.context) == _counters(base_ctx)

    def test_capped_families_bit_identical(self):
        inst = random_instance(8, seed=23, volume="uniform")
        power = CappedPowerLaw(3.0, 1.5)
        for algorithm, simulate in (
            ("C_CAPPED", simulate_clairvoyant_capped),
            ("NC_CAPPED", simulate_nc_uniform_capped),
        ):
            base_ctx = SimulationContext(power)
            base = simulate(inst, power, context=base_ctx)
            base_report = evaluate(base.schedule, inst, power, validate=True)
            sup = Supervisor(power)
            result = sup.run(algorithm, inst)
            assert result.schedule.segments == base.schedule.segments
            assert result.report.energy == base_report.energy
            assert result.report.fractional_flow == base_report.fractional_flow
            assert _counters(sup.context) == _counters(base_ctx)

    def test_nc_par_bit_identical(self):
        inst = random_instance(10, seed=31, volume="uniform")
        power = PowerLaw(3.0)
        base_ctx = SimulationContext(power)
        base = simulate_nc_par(inst, power, 3, context=base_ctx)
        base_report = base.report(validate=True)

        sup = Supervisor(power)
        result = sup.run("NC_PAR", inst, machines=3)
        assert result.schedule is None
        assert result.run.assignments == base.assignments
        for m in range(3):
            if m in base.schedules:
                assert result.run.schedules[m].segments == base.schedules[m].segments
        assert result.report.energy == base_report.energy
        assert result.report.fractional_flow == base_report.fractional_flow
        assert _counters(sup.context) == _counters(base_ctx)

    def test_empty_plan_installs_no_hooks(self):
        sup = Supervisor(PowerLaw(3.0))
        sup.run("NC", random_instance(4, seed=1, volume="uniform"))
        ctx = sup.context
        assert ctx.volume_filter is None
        assert ctx.oracle_factory is None
        assert ctx.step_interceptor is None


class TestRecovery:
    def test_transient_power_fault_recovers(self):
        inst = random_instance(5, seed=3, volume="uniform")
        power = PowerLaw(3.0)
        plan = FaultPlan(0, (FaultSpec(kind="power_transient", after_calls=5),))
        ctx = SimulationContext(power, recorder=MemoryRecorder())
        sup = Supervisor(power, plan=plan, context=ctx)
        result = sup.run("NC_GENERAL", inst, max_step=5e-2)

        assert result.recovered
        assert result.attempts == 2
        assert len(result.faults) == 1 and "power_transient" in result.faults[0][0]
        assert result.report.energy > 0
        kinds = [e.kind for e in ctx.recorder.events]
        assert "fault_injected" in kinds
        assert "guard_violation" in kinds
        assert "retry" in kinds
        assert "recovery" in kinds
        retry = ctx.recorder.events_of(kind="retry")[0]
        assert retry.component == "nc_general"
        assert retry.payload["checkpoint"] == "pre-run"
        assert retry.payload["attempt"] == 2
        # tolerances tightened on retry
        assert retry.payload["max_step"] == pytest.approx(5e-2 * 0.5)

    def test_transient_nan_fault_recovers(self):
        inst = random_instance(5, seed=4, volume="uniform")
        power = PowerLaw(2.5)
        plan = FaultPlan(1, (FaultSpec(kind="power_nan", after_calls=3),))
        sup = Supervisor(power, plan=plan)
        result = sup.run("NC_GENERAL", inst, max_step=5e-2)
        assert result.recovered
        assert result.report.energy > 0

    def test_checkpoint_labels_are_ordered(self):
        inst = random_instance(5, seed=3, volume="uniform")
        plan = FaultPlan(0, (FaultSpec(kind="power_transient", after_calls=5),))
        sup = Supervisor(PowerLaw(3.0), plan=plan)
        result = sup.run("NC_GENERAL", inst, max_step=5e-2)
        assert result.checkpoints[0] == "pre-run"
        assert list(result.checkpoints[1:]) == [
            f"attempt-{i}" for i in range(2, len(result.checkpoints) + 1)
        ]

    def test_rollback_restores_fault_counter(self):
        """The retried attempt starts from the checkpoint's metric snapshot;
        the surviving run's counters never double-count the failed attempt."""
        inst = random_instance(5, seed=3, volume="uniform")
        plan = FaultPlan(0, (FaultSpec(kind="power_transient", after_calls=5),))
        sup = Supervisor(PowerLaw(3.0), plan=plan)
        sup.run("NC_GENERAL", inst, max_step=5e-2)
        assert sup.context.metrics.get("faults_fired") == 0.0

    def test_persistent_fault_exhausts_with_context(self):
        inst = random_instance(5, seed=3, volume="uniform")
        plan = FaultPlan(
            0, (FaultSpec(kind="oracle_lie", mode="withhold", max_firings=50),)
        )
        power = PowerLaw(3.0)
        policy = RecoveryPolicy(max_retries=2, degrade_after=99)
        sup = Supervisor(power, plan=plan, policy=policy)
        with pytest.raises(RecoveryExhaustedError) as exc:
            sup.run("NC", inst)
        err = exc.value
        assert err.context["algorithm"] == "NC"
        assert err.context["attempts"] == 3
        assert "oracle_lie" in err.context["fault"]
        assert err.context["checkpoint"].startswith(("pre-run", "attempt-"))
        # hooks are removed even on failure
        assert sup.context.volume_filter is None

    def test_degraded_mode_falls_back_to_engine(self):
        inst = random_instance(4, seed=9, volume="uniform")
        plan = FaultPlan(
            0, (FaultSpec(kind="oracle_lie", mode="withhold", max_firings=3),)
        )
        power = PowerLaw(3.0)
        ctx = SimulationContext(power, recorder=MemoryRecorder())
        policy = RecoveryPolicy(max_retries=5, degrade_after=2)
        sup = Supervisor(power, plan=plan, policy=policy, context=ctx)
        result = sup.run("NC", inst)
        assert result.recovered and result.degraded
        assert result.attempts == 4  # 3 budgeted failures, then a clean run
        degraded = ctx.recorder.events_of(kind="degraded_mode")
        assert len(degraded) == 1
        assert degraded[0].payload["algorithm"] == "NC"
        assert degraded[0].payload["after_failures"] == 2
        assert result.report.energy > 0

    def test_machine_failure_switches_to_failover(self):
        inst = random_instance(8, seed=13, volume="uniform")
        power = PowerLaw(3.0)
        plan = FaultPlan(
            0, (FaultSpec(kind="machine_failure", machine=1, at_time=0.4),)
        )
        sup = Supervisor(power, plan=plan)
        result = sup.run("NC_PAR", inst, machines=3)
        assert len(result.faults) == 1 and "machine_failure" in result.faults[0][0]
        scheduled = {j for jobs in result.run.assignments.values() for j in jobs}
        assert scheduled == {j.job_id for j in inst}

    def test_unknown_algorithm_rejected(self):
        sup = Supervisor(PowerLaw(3.0))
        with pytest.raises(ValueError):
            sup.run("SRPT", random_instance(3, seed=0, volume="uniform"))
