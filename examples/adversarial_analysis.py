#!/usr/bin/env python3
"""Adversarial analysis: probing the algorithms where non-clairvoyance bites.

Three studies on a single machine:

1. **Heavy-tailed volumes** — Pareto job sizes are the regime where not
   knowing volumes should hurt most; we sweep the tail index and measure the
   empirical competitive ratio of Algorithm NC against a certified OPT lower
   bound (it stays under Theorem 5's 2 + 1/(alpha-1) everywhere).
2. **Escalating volumes** — FIFO's worst ordering: ever-larger jobs arriving
   just behind each other; the paper's bound is tight here.
3. **The §7 geometric-density family** — l jobs with densities
   1, rho, rho^2, ..., each costing c alone, all cost at most ~4*l*c on ONE
   machine once rho >= 4: density spread does not force load balancing.

Usage::

    python examples/adversarial_analysis.py
"""

from __future__ import annotations

from repro import PowerLaw
from repro.algorithms import simulate_clairvoyant
from repro.analysis import empirical_ratio, format_table
from repro.core import evaluate
from repro.workloads import (
    escalating_volumes_instance,
    geometric_density_instance,
    random_instance,
)


def heavy_tail_study(power: PowerLaw) -> None:
    alpha = power.alpha
    bound = 2 + 1 / (alpha - 1)
    rows = []
    for shape in (3.0, 2.0, 1.5, 1.1):
        worst = 0.0
        for seed in (1, 2, 3):
            inst = random_instance(
                18, seed, volume="pareto", volume_params={"shape": shape, "scale": 0.5}
            )
            res = empirical_ratio("NC", inst, power, slots=200, iterations=800)
            worst = max(worst, res.ratio)
        rows.append([shape, worst, bound])
    print(
        format_table(
            ["pareto tail index", "worst NC ratio", "Theorem 5 bound"],
            rows,
            title="Study 1: heavy-tailed volumes (smaller index = heavier tail)",
            floatfmt=".3f",
        )
    )


def escalating_study(power: PowerLaw) -> None:
    alpha = power.alpha
    rows = []
    for n in (4, 8, 12):
        inst = escalating_volumes_instance(n, base=0.1, factor=2.0, spacing=0.05)
        res = empirical_ratio("NC", inst, power, slots=250, iterations=800)
        rows.append([n, res.ratio, 2 + 1 / (alpha - 1), res.bound.source])
    print()
    print(
        format_table(
            ["jobs", "NC ratio", "bound", "OPT bound source"],
            rows,
            title="Study 2: escalating volumes (doubling sizes behind FIFO)",
            floatfmt=".3f",
        )
    )


def geometric_density_study(power: PowerLaw) -> None:
    alpha = power.alpha
    rows = []
    for l in (2, 4, 6, 8):
        inst = geometric_density_instance(l, rho=5.0, unit_cost=1.0, alpha=alpha)
        cost = evaluate(
            simulate_clairvoyant(inst, power).schedule, inst, power
        ).fractional_objective
        rows.append([l, cost, cost / l, 4.0])
    print()
    print(
        format_table(
            ["l (jobs)", "single-machine cost", "cost / (l*c)", "paper's cap"],
            rows,
            title="Study 3: §7 geometric densities on one machine (c = 1 per job)",
            floatfmt=".3f",
        )
    )


def main() -> None:
    power = PowerLaw(3.0)
    heavy_tail_study(power)
    escalating_study(power)
    geometric_density_study(power)


if __name__ == "__main__":
    main()
