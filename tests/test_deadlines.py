"""Tests for the deadline-scheduling extension (YDS / AVR)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Job, PowerLaw
from repro.core.errors import InvalidInstanceError, SimulationError
from repro.extensions import (
    DeadlineInstance,
    avr_schedule,
    deadline_energy_lower_bound,
    validate_deadlines,
    yds_schedule,
)


def energy_of(schedule, power) -> float:
    return sum(s.energy(power) for s in schedule)


@st.composite
def deadline_instances(draw, max_jobs: int = 6):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    deadlines = {}
    for i in range(n):
        r = draw(st.floats(min_value=0.0, max_value=10.0))
        span = draw(st.floats(min_value=0.5, max_value=10.0))
        v = draw(st.floats(min_value=0.1, max_value=5.0))
        jobs.append(Job(i, r, v, 1.0))
        deadlines[i] = r + span
    return DeadlineInstance(Instance(jobs), deadlines)


class TestDeadlineInstance:
    def test_missing_deadline_rejected(self):
        with pytest.raises(InvalidInstanceError):
            DeadlineInstance(Instance([Job(0, 0.0, 1.0)]), {})

    def test_deadline_before_release_rejected(self):
        with pytest.raises(InvalidInstanceError):
            DeadlineInstance(Instance([Job(0, 5.0, 1.0)]), {0: 4.0})

    def test_window_and_horizon(self):
        di = DeadlineInstance(Instance([Job(0, 1.0, 1.0)]), {0: 3.0})
        assert di.window(0) == (1.0, 3.0)
        assert di.horizon == 3.0


class TestYds:
    def test_single_job_constant_speed(self, cube):
        di = DeadlineInstance(Instance([Job(0, 0.0, 4.0)]), {0: 2.0})
        sched = yds_schedule(di)
        validate_deadlines(sched, di)
        assert sched.speed_at(1.0) == pytest.approx(2.0)

    def test_textbook_nested_example(self, cube):
        """Job 0: [0,10] v=10; job 1: [4,6] v=4.  Critical interval [4,6]
        at speed 2; job 0 spread over the remaining 8 units at 1.25."""
        di = DeadlineInstance(
            Instance([Job(0, 0.0, 10.0), Job(1, 4.0, 4.0)]), {0: 10.0, 1: 6.0}
        )
        sched = yds_schedule(di)
        validate_deadlines(sched, di)
        assert sched.speed_at(5.0) == pytest.approx(2.0)
        assert sched.speed_at(1.0) == pytest.approx(1.25)
        assert energy_of(sched, cube) == pytest.approx(2**3 * 2 + 1.25**3 * 8, rel=1e-9)

    def test_disjoint_jobs_independent(self, cube):
        di = DeadlineInstance(
            Instance([Job(0, 0.0, 2.0), Job(1, 10.0, 6.0)]), {0: 2.0, 1: 12.0}
        )
        sched = yds_schedule(di)
        validate_deadlines(sched, di)
        assert sched.speed_at(1.0) == pytest.approx(1.0)
        assert sched.speed_at(11.0) == pytest.approx(3.0)

    def test_identical_windows_pool(self, cube):
        di = DeadlineInstance(
            Instance([Job(0, 0.0, 1.0), Job(1, 0.0, 2.0)]), {0: 3.0, 1: 3.0}
        )
        sched = yds_schedule(di)
        validate_deadlines(sched, di)
        assert sched.speed_at(1.5) == pytest.approx(1.0)

    @given(deadline_instances(max_jobs=5))
    @settings(max_examples=25, deadline=None)
    def test_always_feasible(self, di):
        sched = yds_schedule(di)
        validate_deadlines(sched, di)

    @given(deadline_instances(max_jobs=4))
    @settings(max_examples=10, deadline=None)
    def test_matches_convex_lower_bound(self, di):
        """YDS is optimal: its energy equals the certified lower bound up to
        the bound's discretisation error.

        The bound smears each window by up to a slot on each side, so its
        slack grows with horizon/slots; scale the resolution accordingly and
        keep a generous margin (the *equality*-grade check lives in
        ``test_textbook_nested_example``, where the numbers are exact).
        """
        power = PowerLaw(3.0)
        e = energy_of(yds_schedule(di), power)
        slots = min(900, max(300, int(di.horizon / 0.02)))
        lb = deadline_energy_lower_bound(di, power, slots=slots, iterations=1200)
        assert lb <= e * (1 + 1e-6)
        assert e <= lb * 1.20

    @given(deadline_instances(max_jobs=5))
    @settings(max_examples=15, deadline=None)
    def test_never_beaten_by_avr(self, di):
        power = PowerLaw(2.5)
        assert energy_of(yds_schedule(di), power) <= energy_of(
            avr_schedule(di), power
        ) * (1 + 1e-9)


class TestAvr:
    def test_single_job_average_rate(self, cube):
        di = DeadlineInstance(Instance([Job(0, 0.0, 4.0)]), {0: 2.0})
        sched = avr_schedule(di)
        validate_deadlines(sched, di)
        assert sched.speed_at(1.0) == pytest.approx(2.0)

    def test_rates_add(self, cube):
        di = DeadlineInstance(
            Instance([Job(0, 0.0, 2.0), Job(1, 0.0, 2.0)]), {0: 2.0, 1: 2.0}
        )
        sched = avr_schedule(di)
        assert sched.speed_at(0.5) == pytest.approx(2.0)

    @given(deadline_instances(max_jobs=5))
    @settings(max_examples=25, deadline=None)
    def test_always_feasible(self, di):
        sched = avr_schedule(di)
        validate_deadlines(sched, di)

    def test_known_competitive_gap(self, cube):
        """The nested example where AVR famously overspends (~2x at alpha=3)."""
        di = DeadlineInstance(
            Instance([Job(0, 0.0, 10.0), Job(1, 4.0, 4.0)]), {0: 10.0, 1: 6.0}
        )
        e_avr = energy_of(avr_schedule(di), cube)
        e_yds = energy_of(yds_schedule(di), cube)
        assert e_avr > 1.5 * e_yds
        assert e_avr < 2.0 ** (3 - 1) * 3.0**3 * e_yds  # the proved cap


class TestValidator:
    def test_detects_missed_deadline(self, cube):
        from repro.core.schedule import ConstantSegment, Schedule

        di = DeadlineInstance(Instance([Job(0, 0.0, 1.0)]), {0: 1.0})
        late = Schedule([ConstantSegment(0.0, 2.0, 0, 0.5)])
        with pytest.raises(SimulationError):
            validate_deadlines(late, di)

    def test_detects_missing_volume(self, cube):
        from repro.core.schedule import ConstantSegment, Schedule

        di = DeadlineInstance(Instance([Job(0, 0.0, 2.0)]), {0: 2.0})
        short = Schedule([ConstantSegment(0.0, 1.0, 0, 1.0)])
        with pytest.raises(SimulationError):
            validate_deadlines(short, di)
