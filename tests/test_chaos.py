"""Tier-1: the chaos campaign harness and its CLI exit-code contract.

The acceptance bar for the robustness layer: a campaign of >= 50
injected-fault runs where every run either completes with the paper's
invariants re-verified from the trace, or terminates with a structured
error naming the fault and the last good checkpoint — no hangs, no silent
corruption.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import main
from repro.core.tracing import read_jsonl, rotated_paths
from repro.runtime.chaos import (
    CampaignReport,
    RunOutcome,
    format_campaign,
    iter_campaign_runs,
    run_campaign,
    verify_campaign_trace,
)

# One shared 50-run campaign: module-scoped because it is the expensive bit
# (~1.5 s) and several tests inspect different facets of the same report.
N_RUNS = 50


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    out = tmp_path_factory.mktemp("chaos") / "chaos.jsonl"
    report = run_campaign(0, N_RUNS, out=out)
    return report, out


class TestCampaignGuarantee:
    def test_every_run_survives_or_fails_structured(self, campaign):
        report, _ = campaign
        assert report.n_runs == N_RUNS
        assert len(report.outcomes) == N_RUNS
        for outcome in report.outcomes:
            assert outcome.status in ("clean", "recovered", "failed")
            if outcome.status == "failed":
                # structured terminal state: the error names the fault and
                # the last good checkpoint
                assert outcome.error
                assert outcome.checkpoint
            else:
                assert outcome.error is None

    def test_seed0_campaign_is_all_survived(self, campaign):
        report, _ = campaign
        assert report.n_failed == 0
        assert report.n_clean + report.n_recovered == N_RUNS
        assert report.ok

    def test_faults_actually_fire(self, campaign):
        report, _ = campaign
        fired = sum(o.faults_fired for o in report.outcomes)
        # every run carries a one-fault plan; the vast majority must land
        assert fired >= N_RUNS * 0.8

    def test_pair_runs_reverify_lemmas(self, campaign):
        report, _ = campaign
        pair_runs = [o for o in report.outcomes if o.lemmas_ok is not None]
        assert pair_runs  # the rotation always includes pair scenarios
        assert all(o.lemmas_ok for o in pair_runs)

    def test_all_families_covered(self, campaign):
        report, _ = campaign
        families = {o.family for o in report.outcomes}
        assert families == {"NC_PAIR", "CAPPED_PAIR", "NC_GENERAL", "NC_PAR"}

    def test_format_renders_verdict(self, campaign):
        report, _ = campaign
        text = format_campaign(report)
        assert "CAMPAIGN OK" in text
        for outcome in report.outcomes[:3]:
            assert str(outcome.run_id) in text


class TestDeterminism:
    def test_same_seed_same_outcomes(self):
        a = run_campaign(5, 10)
        b = run_campaign(5, 10)
        strip = lambda o: dataclasses.replace(o)  # frozen: compare directly
        assert [strip(o) for o in a.outcomes] == [strip(o) for o in b.outcomes]

    def test_different_seed_different_plans(self):
        a = run_campaign(1, 10)
        b = run_campaign(2, 10)
        assert [o.plan for o in a.outcomes] != [o.plan for o in b.outcomes]


class TestJsonlRoundTrip:
    def test_events_round_trip(self, campaign):
        report, out = campaign
        events = read_jsonl(out)
        assert events
        kinds = {e.kind for e in events}
        assert "fault_injected" in kinds
        assert "recovery" in kinds or report.n_recovered == 0
        # every fault_injected payload names its fault kind
        for e in events:
            if e.kind == "fault_injected":
                assert "fault" in e.payload

    def test_run_meta_headers_partition_the_file(self, campaign):
        report, out = campaign
        headers = [
            e for e in read_jsonl(out)
            if e.kind == "run_meta" and "run_id" in e.payload
        ]
        assert len(headers) == N_RUNS
        by_id = {h.payload["run_id"]: h for h in headers}
        for outcome in report.outcomes:
            header = by_id[outcome.run_id]
            assert header.payload["family"] == outcome.family
            assert header.payload["status"] == outcome.status
            assert header.payload["plan"] == outcome.plan


class TestCampaignStreamVerification:
    def test_iter_campaign_runs_partitions_by_header(self, campaign):
        report, out = campaign
        runs = list(iter_campaign_runs(out))
        assert len(runs) == N_RUNS
        assert [h["run_id"] for h, _ in runs] == [o.run_id for o in report.outcomes]
        for header, events in runs:
            assert "family" in header and "status" in header
            # The header is consumed into the slot boundary, never the body.
            assert not any(
                e.kind == "run_meta" and e.component == "campaign" for e in events
            )

    def test_verify_campaign_trace_re_checks_every_run(self, campaign):
        """The written campaign trace re-verifies offline, one bounded-memory
        pass per run: every surviving pair run's Lemma 3/4 replay must pass
        again from the file alone."""
        report, out = campaign
        verdicts = verify_campaign_trace(out)
        assert len(verdicts) == N_RUNS
        by_id = {v.header["run_id"]: v for v in verdicts}
        for outcome in report.outcomes:
            v = by_id[outcome.run_id]
            if outcome.status == "failed":
                continue  # aborted runs may leave partial kernel streams
            assert v.ok, (outcome.run_id, v.error)
            if outcome.lemmas_ok:
                assert v.report is not None
                assert all(c.holds for c in v.report.checks)

    def test_campaign_rotate_sink_verifies_identically(self, tmp_path):
        from repro.core.tracing import iter_trace

        base = tmp_path / "c.jsonl"
        plain = tmp_path / "plain.jsonl"
        run_campaign(3, 4, out=base, sink_spec="rotate:200")
        run_campaign(3, 4, out=plain)
        segments = rotated_paths(base)
        assert segments and not base.exists()
        rotated = verify_campaign_trace(iter_trace(segments))
        reference = verify_campaign_trace(plain)
        assert len(rotated) == 4
        assert [v.ok for v in rotated] == [v.ok for v in reference]
        assert [v.header["run_id"] for v in rotated] == [
            v.header["run_id"] for v in reference
        ]


class TestOutcomeModel:
    def test_report_ok_rejects_failed_runs(self):
        good = RunOutcome(
            run_id="r0", family="NC_GENERAL", seed=1, plan="p", status="clean",
            attempts=1, faults_fired=0, lemmas_ok=None, error=None,
            checkpoint=None, n_events=10,
        )
        bad = dataclasses.replace(
            good, run_id="r1", status="failed", error="RecoveryExhaustedError",
            checkpoint="attempt-3",
        )
        assert CampaignReport(0, 2, (good, good)).ok
        assert not CampaignReport(0, 2, (good, bad)).ok

    def test_report_ok_rejects_broken_lemmas(self):
        run = RunOutcome(
            run_id="r0", family="NC_PAIR", seed=1, plan="p", status="recovered",
            attempts=2, faults_fired=1, lemmas_ok=False, error=None,
            checkpoint=None, n_events=10,
        )
        assert not CampaignReport(0, 1, (run,)).ok


class TestRunTimeout:
    def test_generous_timeout_changes_nothing(self):
        a = run_campaign(5, 6)
        b = run_campaign(5, 6, run_timeout=60.0)
        assert a.outcomes == b.outcomes

    def test_wedged_run_fails_structured(self, tmp_path, monkeypatch):
        import time

        import repro.runtime.chaos as chaos_mod

        real = chaos_mod._run_one

        def wedged(run_id, family, derived_seed, **kwargs):
            time.sleep(0.5)
            return real(run_id, family, derived_seed, **kwargs)

        monkeypatch.setattr(chaos_mod, "_run_one", wedged)
        out = tmp_path / "chaos.jsonl"
        report = run_campaign(0, 2, run_timeout=0.05, out=out)
        assert not report.ok
        assert report.n_failed == 2
        for outcome in report.outcomes:
            assert outcome.status == "failed"
            assert outcome.checkpoint == "run_timeout"
            assert outcome.error and "RunTimeout" in outcome.error
        events = read_jsonl(out)
        assert any(e.kind == "run_timeout" for e in events)
        # the abandoned runs still get run_meta headers in the sink
        headers = [e for e in events if e.kind == "run_meta" and "run_id" in e.payload]
        assert len(headers) == 2

    def test_cli_timeout_preserves_nonzero_exit(self, capsys, monkeypatch):
        import time

        import repro.runtime.chaos as chaos_mod

        monkeypatch.setattr(
            chaos_mod, "_run_one",
            lambda *a, **k: time.sleep(0.5) or (_ for _ in ()).throw(RuntimeError),
        )
        assert main(["chaos", "--n", "1", "--timeout", "0.05"]) == 1
        assert "CAMPAIGN FAILED" in capsys.readouterr().out


class TestCliExitCodes:
    def test_chaos_exits_zero_on_survival(self, capsys):
        assert main(["chaos", "--seed", "0", "--n", "3"]) == 0
        assert "CAMPAIGN OK" in capsys.readouterr().out

    def test_chaos_exits_nonzero_on_failure(self, capsys, monkeypatch):
        import repro.runtime.chaos as chaos_mod

        failed = RunOutcome(
            run_id="r0", family="NC_GENERAL", seed=1, plan="p", status="failed",
            attempts=4, faults_fired=1, lemmas_ok=None,
            error="RecoveryExhaustedError", checkpoint="attempt-3", n_events=5,
        )
        monkeypatch.setattr(
            chaos_mod, "run_campaign",
            lambda *a, **k: CampaignReport(0, 1, (failed,)),
        )
        assert main(["chaos", "--n", "1"]) == 1
        assert "CAMPAIGN FAILED" in capsys.readouterr().out

    def test_verify_exits_zero_when_claims_hold(self, capsys):
        assert main(["verify", "--jobs", "5", "--seed", "2"]) == 0
        assert "ALL CLAIMS HOLD" in capsys.readouterr().out

    def test_verify_exits_nonzero_when_a_claim_fails(self, capsys, monkeypatch):
        import repro.analysis.verification as verification

        real = verification.verify_paper_claims

        def sabotage(*args, **kwargs):
            checks = real(*args, **kwargs)
            broken = dataclasses.replace(
                checks[0], measured=checks[0].expected + 1e6
            )
            return [broken, *checks[1:]]

        monkeypatch.setattr(verification, "verify_paper_claims", sabotage)
        assert main(["verify", "--jobs", "5", "--seed", "2"]) == 1
        assert "SOME CLAIMS FAILED" in capsys.readouterr().out
