"""A structured checker for the paper's testable claims.

`verify_paper_claims` runs every lemma/theorem of the paper that is checkable
on a *given* instance and returns typed results — the programmatic companion
to the test-suite (which asserts the same facts over random instances) and a
convenient one-call health check for downstream users who modify the
algorithms:

>>> from repro.analysis import verify_paper_claims
>>> results = verify_paper_claims(instance, PowerLaw(3.0))
>>> assert all(r.holds for r in results)

Claims checked (uniform-density instances check all of them; non-uniform
instances check the subset that applies):

* Theorem 1's identity — Algorithm C's fractional flow equals its energy;
* Lemma 3 — energy(NC) == energy(C);
* Lemma 4 — flow(NC) == flow(C) / (1 - 1/alpha);
* Lemma 6 — equal schedule spans and matching speed distributions;
* Lemma 8 — F_int(NC) <= (2 - 1/alpha) * F_frac(NC);
* Theorem 5 / Theorem 9 — objective ratios vs a certified OPT lower bound;
* Lemma 15 — the §5 conversion's energy and flow factors (at epsilon = 0.5);
* Lemmas 20/21/22 — parallel-machine assignment/energy/flow relations
  (checked at ``machines`` machines when > 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import convert, simulate_clairvoyant, simulate_nc_uniform
from ..core.job import Instance
from ..core.metrics import evaluate
from ..core.power import PowerLaw
from ..offline.bounds import opt_fractional_lower_bound, opt_integral_lower_bound
from .curves import speed_quantile_gap

__all__ = ["ClaimCheck", "verify_paper_claims", "render_claims"]


@dataclass(frozen=True)
class ClaimCheck:
    """Outcome of one claim verification."""

    claim: str  # e.g. "Lemma 3"
    statement: str
    measured: float
    expected: float
    tolerance: float
    kind: str  # "equality" | "upper-bound"

    @property
    def holds(self) -> bool:
        if self.kind == "equality":
            scale = max(abs(self.expected), 1e-12)
            return abs(self.measured - self.expected) <= self.tolerance * scale
        return self.measured <= self.expected * (1.0 + self.tolerance)

    def __str__(self) -> str:
        verdict = "OK " if self.holds else "FAIL"
        rel = "==" if self.kind == "equality" else "<="
        return (
            f"[{verdict}] {self.claim}: {self.statement} — "
            f"measured {self.measured:.6g} {rel} {self.expected:.6g}"
        )


def render_claims(checks: list[ClaimCheck]) -> str:
    """Plain-text table of claim-check outcomes."""
    from .report import format_table

    rows = [
        [
            "OK" if c.holds else "FAIL",
            c.claim,
            c.statement,
            c.measured,
            "==" if c.kind == "equality" else "<=",
            c.expected,
        ]
        for c in checks
    ]
    return format_table(
        ["", "claim", "statement", "measured", "", "expected"], rows, floatfmt=".6g"
    )


def verify_paper_claims(
    instance: Instance,
    power: PowerLaw,
    *,
    machines: int = 1,
    slots: int = 250,
    iterations: int = 1000,
    equality_tol: float = 1e-6,
) -> list[ClaimCheck]:
    """Check every applicable claim of the paper on ``instance``."""
    alpha = power.alpha
    checks: list[ClaimCheck] = []

    c_run = simulate_clairvoyant(instance, power)
    rep_c = evaluate(c_run.schedule, instance, power)
    checks.append(
        ClaimCheck(
            claim="Theorem 1 (identity)",
            statement="Algorithm C: fractional flow == energy",
            measured=rep_c.fractional_flow,
            expected=rep_c.energy,
            tolerance=equality_tol,
            kind="equality",
        )
    )

    if instance.is_uniform_density():
        nc_run = simulate_nc_uniform(instance, power)
        rep_nc = evaluate(nc_run.schedule, instance, power)
        checks.append(
            ClaimCheck(
                claim="Lemma 3",
                statement="energy(NC) == energy(C)",
                measured=rep_nc.energy,
                expected=rep_c.energy,
                tolerance=equality_tol,
                kind="equality",
            )
        )
        checks.append(
            ClaimCheck(
                claim="Lemma 4",
                statement="flow(NC) == flow(C) / (1 - 1/alpha)",
                measured=rep_nc.fractional_flow,
                expected=rep_c.fractional_flow / (1 - 1 / alpha),
                tolerance=equality_tol,
                kind="equality",
            )
        )
        checks.append(
            ClaimCheck(
                claim="Lemma 6 (span)",
                statement="schedules of NC and C span equal time",
                measured=nc_run.schedule.end_time,
                expected=c_run.schedule.end_time,
                tolerance=equality_tol,
                kind="equality",
            )
        )
        checks.append(
            ClaimCheck(
                claim="Lemma 6 (speeds)",
                statement="speed distribution gap of NC vs C stays at sampling noise",
                measured=speed_quantile_gap(nc_run.schedule, c_run.schedule),
                expected=5e-3,
                tolerance=0.0,
                kind="upper-bound",
            )
        )
        checks.append(
            ClaimCheck(
                claim="Lemma 8",
                statement="F_int(NC) <= (2 - 1/alpha) * F_frac(NC)",
                measured=rep_nc.integral_flow,
                expected=(2 - 1 / alpha) * rep_nc.fractional_flow,
                tolerance=1e-9,
                kind="upper-bound",
            )
        )
        lb_f = opt_fractional_lower_bound(instance, power, slots=slots, iterations=iterations)
        checks.append(
            ClaimCheck(
                claim="Theorem 5",
                statement="NC fractional ratio <= 2 + 1/(alpha-1)",
                measured=rep_nc.fractional_objective / lb_f.value,
                expected=2 + 1 / (alpha - 1),
                tolerance=1e-9,
                kind="upper-bound",
            )
        )
        lb_i = opt_integral_lower_bound(instance, power, slots=slots, iterations=iterations)
        checks.append(
            ClaimCheck(
                claim="Theorem 9",
                statement="NC integral ratio <= 3 + 1/(alpha-1)",
                measured=rep_nc.integral_objective / lb_i.value,
                expected=3 + 1 / (alpha - 1),
                tolerance=1e-9,
                kind="upper-bound",
            )
        )
        eps = 0.5
        conv = convert(nc_run.schedule, instance, power, eps)
        checks.append(
            ClaimCheck(
                claim="Lemma 15 (energy)",
                statement="energy(A_int) <= (1+eps)^alpha * energy(A_frac)",
                measured=conv.integral_report.energy,
                expected=(1 + eps) ** alpha * conv.fractional_report.energy,
                tolerance=1e-9,
                kind="upper-bound",
            )
        )
        checks.append(
            ClaimCheck(
                claim="Lemma 15 (flow)",
                statement="F_int(A_int) <= (1 + 1/eps) * F_frac(A_frac)",
                measured=conv.integral_report.integral_flow,
                expected=(1 + 1 / eps) * conv.fractional_report.fractional_flow,
                tolerance=1e-9,
                kind="upper-bound",
            )
        )

        if machines > 1:
            from ..parallel import simulate_c_par, simulate_nc_par

            cp = simulate_c_par(instance, power, machines)
            np_ = simulate_nc_par(instance, power, machines)
            rep_cp, rep_np = cp.report(), np_.report()
            checks.append(
                ClaimCheck(
                    claim="Lemma 20",
                    statement="NC-PAR and C-PAR assignments coincide (1 = yes)",
                    measured=1.0 if np_.assignments == cp.assignments else 0.0,
                    expected=1.0,
                    tolerance=0.0,
                    kind="equality",
                )
            )
            checks.append(
                ClaimCheck(
                    claim="Lemma 21",
                    statement="energy(NC-PAR) == energy(C-PAR)",
                    measured=rep_np.energy,
                    expected=rep_cp.energy,
                    tolerance=equality_tol,
                    kind="equality",
                )
            )
            checks.append(
                ClaimCheck(
                    claim="Lemma 22",
                    statement="flow(NC-PAR) == flow(C-PAR) / (1 - 1/alpha)",
                    measured=rep_np.fractional_flow,
                    expected=rep_cp.fractional_flow / (1 - 1 / alpha),
                    tolerance=equality_tol,
                    kind="equality",
                )
            )
    return checks
