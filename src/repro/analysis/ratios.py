"""Empirical competitive ratios.

A measured ratio is ``algorithm cost / certified lower bound on OPT``; since
the denominator never exceeds OPT, the measurement *upper-bounds* the
instance's true ratio — a measured value below the paper's theoretical bound
is consistent, above it would expose a bug.

`run_algorithm` is the single entry point benches and tables use to run any
of the package's schedulers by name with uniform semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import (
    convert,
    simulate_active_count,
    simulate_clairvoyant,
    simulate_constant_speed_fifo,
    simulate_nc_general,
    simulate_nc_uniform,
)
from ..core.job import Instance
from ..core.metrics import CostReport, evaluate
from ..core.power import PowerLaw
from ..offline.bounds import OptBound, opt_fractional_lower_bound, opt_integral_lower_bound

__all__ = ["RatioResult", "run_algorithm", "empirical_ratio", "ALGORITHMS"]

#: Names accepted by :func:`run_algorithm`.
ALGORITHMS = (
    "C",
    "NC",
    "NC_GENERAL",
    "NC_INT",
    "NC_GENERAL_INT",
    "ACTIVE_COUNT",
    "CONSTANT_SPEED",
)


@dataclass(frozen=True)
class RatioResult:
    """One measured competitive ratio."""

    algorithm: str
    objective: str  # "fractional" | "integral"
    cost: float
    bound: OptBound

    @property
    def ratio(self) -> float:
        return self.cost / self.bound.value


def run_algorithm(
    name: str,
    instance: Instance,
    power: PowerLaw,
    *,
    max_step: float = 1e-2,
    conversion_epsilon: float = 0.5,
    constant_speed: float = 1.0,
    **kwargs,
) -> CostReport:
    """Run a scheduler by name and return its exact cost report.

    ``NC_INT`` / ``NC_GENERAL_INT`` apply the §5 black-box conversion (with
    ``conversion_epsilon``) on top of the fractional algorithm and report the
    *converted* schedule's costs.
    """
    if name == "C":
        sched = simulate_clairvoyant(instance, power).schedule
    elif name == "NC":
        sched = simulate_nc_uniform(instance, power).schedule
    elif name == "NC_GENERAL":
        sched = simulate_nc_general(instance, power, max_step=max_step, **kwargs).schedule
    elif name == "NC_INT":
        base = simulate_nc_uniform(instance, power).schedule
        return convert(base, instance, power, conversion_epsilon).integral_report
    elif name == "NC_GENERAL_INT":
        base = simulate_nc_general(instance, power, max_step=max_step, **kwargs).schedule
        return convert(base, instance, power, conversion_epsilon).integral_report
    elif name == "ACTIVE_COUNT":
        sched = simulate_active_count(instance, power)
    elif name == "CONSTANT_SPEED":
        sched = simulate_constant_speed_fifo(instance, constant_speed)
    else:
        raise ValueError(f"unknown algorithm {name!r}; choose from {ALGORITHMS}")
    return evaluate(sched, instance, power)


def empirical_ratio(
    name: str,
    instance: Instance,
    power: PowerLaw,
    *,
    objective: str = "fractional",
    slots: int = 400,
    iterations: int = 3000,
    **run_kwargs,
) -> RatioResult:
    """Measured cost of ``name`` on ``instance`` over the best certified OPT
    lower bound for the chosen objective."""
    report = run_algorithm(name, instance, power, **run_kwargs)
    if objective == "fractional":
        cost = report.fractional_objective
        bound = opt_fractional_lower_bound(instance, power, slots=slots, iterations=iterations)
    elif objective == "integral":
        cost = report.integral_objective
        bound = opt_integral_lower_bound(instance, power, slots=slots, iterations=iterations)
    else:
        raise ValueError(f"objective must be 'fractional' or 'integral', got {objective!r}")
    return RatioResult(algorithm=name, objective=objective, cost=cost, bound=bound)
