"""Exact offline optima for a single job under ``P(s) = s**alpha``.

These are the only instances where the true offline optimum has a clean
closed form, which makes them the anchor of the empirical competitive-ratio
harness (every other lower bound is validated against them).

**Fractional objective.**  Minimise ``∫ (rho*V(t) + s(t)**alpha) dt`` with
``dV/dt = -s``, ``V(0)=V``, free end time.  Pontryagin's principle gives a
costate ``p(t) = rho*(T-t)`` and the optimal speed

    ``s*(t) = (rho*(T-t)/alpha)**(1/(alpha-1))``,

with ``T`` fixed by ``∫ s* = V``.  The resulting costs satisfy
``flow = (alpha-1) * energy`` (so the objective is ``alpha * energy``) — a
closed-form identity the tests assert.

**Integral objective.**  The flow cost is ``rho*V*T`` regardless of the speed
profile, so by Jensen the optimum runs at *constant* speed ``V/T``; optimising
``rho*V*T + V**alpha * T**(1-alpha)`` over ``T`` gives
``T* = ((alpha-1) * V**(alpha-1) / rho)**(1/alpha)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SingleJobOptimum", "single_job_opt_fractional", "single_job_opt_integral"]


@dataclass(frozen=True, slots=True)
class SingleJobOptimum:
    """The optimal single-job schedule summary."""

    duration: float  # T: completion time minus release time
    energy: float
    flow: float

    @property
    def objective(self) -> float:
        return self.energy + self.flow


def _check(volume: float, rho: float, alpha: float) -> None:
    if volume <= 0 or not math.isfinite(volume):
        raise ValueError(f"volume must be finite > 0, got {volume}")
    if rho <= 0 or not math.isfinite(rho):
        raise ValueError(f"density must be finite > 0, got {rho}")
    if alpha <= 1:
        raise ValueError(f"alpha must exceed 1, got {alpha}")


def single_job_opt_fractional(volume: float, rho: float, alpha: float) -> SingleJobOptimum:
    """Optimal fractional flow-time plus energy for one job (closed form)."""
    _check(volume, rho, alpha)
    q = alpha / (alpha - 1.0)  # the recurring exponent
    # T from the volume constraint: (rho/alpha)^{1/(alpha-1)} * T^q / q = V.
    duration = (volume * q * (alpha / rho) ** (1.0 / (alpha - 1.0))) ** (1.0 / q)
    # E = (rho/alpha)^q * T^{q+1} / (q+1).
    energy = (rho / alpha) ** q * duration ** (q + 1.0) / (q + 1.0)
    flow = (alpha - 1.0) * energy
    return SingleJobOptimum(duration=duration, energy=energy, flow=flow)


def single_job_opt_integral(volume: float, rho: float, alpha: float) -> SingleJobOptimum:
    """Optimal integral flow-time plus energy for one job (closed form).

    Constant speed ``V/T*`` with ``T* = ((alpha-1) V**(alpha-1) / rho)**(1/alpha)``;
    at the optimum ``flow = rho*V*T*`` and ``energy = flow / (alpha-1)``.
    """
    _check(volume, rho, alpha)
    duration = ((alpha - 1.0) * volume ** (alpha - 1.0) / rho) ** (1.0 / alpha)
    energy = volume**alpha * duration ** (1.0 - alpha)
    flow = rho * volume * duration
    return SingleJobOptimum(duration=duration, energy=energy, flow=flow)
