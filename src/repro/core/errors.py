"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch package failures with a single ``except`` clause while still letting
programming errors (``TypeError`` etc.) propagate.

Every error can carry structured *context* (``time=...``, ``job=...``,
``fault=...``) alongside its message.  The supervised runtime
(:mod:`repro.runtime.supervisor`) uses this to decide how to recover — e.g.
rolling back to the last checkpoint before ``error.context["time"]`` — and to
name the failing fault in its final report, so context keys are part of the
error's contract, not just formatting sugar.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidPowerFunctionError",
    "KernelDomainError",
    "ScheduleError",
    "ClairvoyanceViolationError",
    "SimulationError",
    "ConvergenceError",
    "GuardViolationError",
    "RecoveryExhaustedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package.

    ``context`` holds machine-readable keyword details (simulation time, job
    id, guard name, ...) that recovery code can branch on without parsing the
    message string.
    """

    def __init__(self, message: str = "", **context: object) -> None:
        super().__init__(message)
        self.context: dict[str, object] = context

    def __str__(self) -> str:
        base = super().__str__()
        if not self.context:
            return base
        inner = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
        return f"{base} [{inner}]"


class InvalidInstanceError(ReproError):
    """An instance (set of jobs) failed validation."""


class InvalidPowerFunctionError(ReproError):
    """A power function failed validation (non-convex, decreasing, ...)."""


class KernelDomainError(ReproError, ValueError):
    """A closed-form kernel was called outside its domain.

    Raised by the scalar kernels in :mod:`repro.core.kernels` and their
    vectorized twins in :mod:`repro.core.arraykernels` when a weight, density
    or time argument is negative or non-finite.  ``context`` always carries
    the offending call under the machine-readable keys ``x`` (the weight-like
    argument), ``rho`` and ``t`` (``None`` for kernels without a time
    argument), so recovery code can branch on the values without parsing the
    message.  Also a :class:`ValueError` for compatibility with callers that
    guarded the pre-typed raise.
    """


class ScheduleError(ReproError):
    """A schedule is malformed or inconsistent with its instance."""


class ClairvoyanceViolationError(ReproError):
    """A non-clairvoyant algorithm attempted to read a hidden job volume."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ConvergenceError(ReproError):
    """An iterative numerical routine failed to converge."""


class GuardViolationError(ReproError):
    """A supervised run broke an online invariant guard.

    Raised by :mod:`repro.runtime.supervisor` when a post-run check fails
    (negative remaining weight, FIFO order violated, power/weight relation
    off, non-monotone simulation time).  ``context`` names the guard and the
    offending time/job so recovery can target it.
    """


class RecoveryExhaustedError(ReproError):
    """The supervisor exhausted its retry budget without a clean run.

    ``context`` records the last fault observed, the last good checkpoint
    label, and the attempt count — the structured "no silent failure"
    terminal state of a chaos run.
    """
