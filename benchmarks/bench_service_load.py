"""Load-test the scheduling service through an in-process ASGI client.

Drives :func:`repro.service.create_app` with a representative request mix —
streamed single-job arrivals, live speed queries, periodic full-schedule
metrics, health probes — through :func:`repro.service.asgi.asgi_call` (no
sockets, so the numbers measure the service stack itself: routing, pydantic
validation, session locking, shadow advancement, serialization).

The claims pinned here:

* ``service_p99_ms`` — 99th-percentile request latency over the mixed load.
  Gated one-sided by ``scripts/check_bench_regression.py
  --max-service-p99-ms``: CI fails if the tail exceeds the committed ceiling.
* ``service_p50_ms`` / ``requests_per_s`` — recorded alongside (host
  dependent, excluded from the baseline diff like every timing number).
* The request counts per endpoint class and the count of non-2xx responses
  are deterministic and land in the JSON artifact, so a silent change in the
  measured mix is caught by the baseline diff.  ``errors`` must be zero.

Sessions are rotated every ``JOBS_PER_SESSION`` arrivals so the metrics
endpoint (which re-simulates the whole session instance) measures a bounded,
representative session size instead of an ever-growing one.
"""

from __future__ import annotations

import asyncio
import statistics
import time

import pytest

from conftest import emit, emit_json

pytest.importorskip("pydantic")

from repro.analysis import format_table  # noqa: E402
from repro.service import create_app  # noqa: E402
from repro.service.asgi import asgi_call  # noqa: E402

ALPHA = 3.0
#: Arrivals per session before rotating to a fresh one.
JOBS_PER_SESSION = 40
#: Measured mixed-load request count (warmup not recorded).
REQUESTS = 600
WARMUP = 60
#: Every Nth arrival also queries full metrics (the expensive endpoint).
METRICS_EVERY = 20


def _percentile(sorted_ms: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted latency list."""
    idx = min(len(sorted_ms) - 1, max(0, round(q * (len(sorted_ms) - 1))))
    return sorted_ms[idx]


async def _drive(n_requests: int, *, record: bool) -> dict:
    """Run the mixed load; returns latencies (ms) per endpoint class."""
    app = create_app()
    await app.startup()
    latencies: dict[str, list[float]] = {
        "arrival": [], "speeds": [], "metrics": [], "health": []
    }
    errors = 0
    session_idx = 0
    session_id = ""
    jobs_in_session = JOBS_PER_SESSION  # force a session on the first loop
    release = 0.0

    async def timed(kind: str, method: str, path: str, **kw) -> None:
        nonlocal errors
        t0 = time.perf_counter()
        resp = await asgi_call(app, method, path, **kw)
        dt_ms = (time.perf_counter() - t0) * 1e3
        if record:
            latencies[kind].append(dt_ms)
        if resp.status_code >= 300:
            errors += 1

    i = 0
    job_id = 0
    while i < n_requests:
        if jobs_in_session >= JOBS_PER_SESSION:
            session_idx += 1
            session_id = f"load-{session_idx}"
            resp = await asgi_call(
                app, "POST", "/sessions",
                json_body={"session_id": session_id, "alpha": ALPHA, "algorithm": "NC"},
            )
            if resp.status_code >= 300:
                errors += 1
            jobs_in_session = 0
            release = 0.0
        job_id += 1
        release += 0.05
        await timed(
            "arrival", "POST", f"/sessions/{session_id}/jobs",
            json_body={"jobs": [{"id": job_id, "release": release, "volume": 1.0}]},
        )
        await timed("speeds", "GET", f"/sessions/{session_id}/speeds")
        jobs_in_session += 1
        i += 2
        if jobs_in_session % METRICS_EVERY == 0:
            await timed("metrics", "GET", f"/sessions/{session_id}/metrics")
            await timed("health", "GET", "/health")
            i += 2
    await app.shutdown()
    return {"latencies": latencies, "errors": errors}


def _measure() -> dict:
    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(_drive(WARMUP, record=False))
        t0 = time.perf_counter()
        out = loop.run_until_complete(_drive(REQUESTS, record=True))
        wall = time.perf_counter() - t0
    finally:
        loop.close()

    latencies = out["latencies"]
    all_ms = sorted(ms for series in latencies.values() for ms in series)
    by_class = {}
    for kind, series in latencies.items():
        if not series:
            continue
        s = sorted(series)
        by_class[kind] = {
            "requests": len(s),
            "p50_ms": _percentile(s, 0.50),
            "p99_ms": _percentile(s, 0.99),
            "mean_ms": statistics.fmean(s),
        }
    return {
        "requests": len(all_ms),
        "errors": out["errors"],
        "wall_clock_s": wall,
        "requests_per_s": len(all_ms) / wall,
        "service_p50_ms": _percentile(all_ms, 0.50),
        "service_p99_ms": _percentile(all_ms, 0.99),
        "by_class": by_class,
        "jobs_per_session": JOBS_PER_SESSION,
        "metrics_every": METRICS_EVERY,
    }


def test_service_load(benchmark):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = [
        [kind, c["requests"], f"{c['p50_ms']:.3f}", f"{c['p99_ms']:.3f}",
         f"{c['mean_ms']:.3f}"]
        for kind, c in sorted(result["by_class"].items())
    ]
    rows.append(
        ["ALL", result["requests"], f"{result['service_p50_ms']:.3f}",
         f"{result['service_p99_ms']:.3f}", "—"]
    )
    table = format_table(
        ["endpoint class", "requests", "p50 ms", "p99 ms", "mean ms"],
        rows,
        title=f"service load: {result['requests_per_s']:.0f} req/s over "
        f"{result['requests']} in-process requests ({result['errors']} errors)",
    )
    emit("service_load", table)
    emit_json("service_load", result)

    assert result["errors"] == 0
    assert result["requests"] >= REQUESTS
    # Sanity ceiling far above any healthy run; the sharp gate lives in
    # scripts/check_bench_regression.py --max-service-p99-ms.
    assert result["service_p99_ms"] < 1000.0
