"""Algorithm NC-general — non-clairvoyant scheduling with non-uniform
densities (§4).

The algorithm:

1. round every density *down* to a power of ``beta`` (``beta > 4``);
2. among active jobs, process the one with the highest rounded density,
   FIFO within a density class;
3. run at speed ``s(t) = eta * s^C_{I(t)}(t) + epsilon`` where ``I(t)`` is the
   **current instance** — every job's weight is exactly the (rounded-density)
   weight the non-clairvoyant algorithm has processed of it so far — and
   ``s^C_{I(t)}(t)`` is the speed Algorithm C would have at time ``t`` when run
   on ``I(t)`` from scratch.

``eta > 1`` is the speedup that makes the induction of §4.1 go through
(properties (A) and (B)); ``epsilon > 0`` bootstraps the recursion away from
the all-zero solution.  The extended abstract defers exact constants to the
full version, so ``eta``, ``beta`` and ``epsilon`` are parameters here
(defaults ``eta=2``, ``beta=5``, ``epsilon=1e-6``) and the ablation bench
sweeps them.

Unlike the uniform case there is no closed form — the speed at ``t`` depends
on a *shadow simulation* of Algorithm C over the evolving instance — so this
runs on the generic numeric engine.

Shadow modes (``shadow_mode``):

* ``"incremental"`` (default) — a live :class:`~repro.core.shadow.ClairvoyantShadow`
  per *epoch* (a maximal interval over which NC processes one job ``j*`` and
  no release/completion intervenes).  Only ``j*``'s weight in ``I(t)``
  changes during an epoch and ``j*`` enters C's run at its own release
  ``r*``, so the shadow is checkpointed at ``r*`` once and every engine-step
  query is a rollback + insert-``j*`` + advance-to-``t`` over a handful of
  events — no per-query ``Instance`` construction or schedule building.
* ``"resume"`` — the pre-refactor warm path: a fresh
  ``simulate_clairvoyant(..., resume=...)`` per query from a dict checkpoint.
* ``"fromscratch"`` — a cold ``simulate_clairvoyant(..., until=t)`` per query.

All three agree to ~1e-12 relative (the first two are bit-identical away
from boundary queries); the incremental mode is what makes
``bench_general_density.py`` scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import EngineResult, NumericEngine, SchedulingPolicy
from ..core.job import Instance, Job
from ..core.power import PowerLaw
from ..core.schedule import Schedule
from ..core.shadow import ClairvoyantShadow, ShadowCheckpoint, ShadowCounters, SimulationContext
from .density_rounding import round_density_down

__all__ = ["NCGeneralRun", "NCGeneralPolicy", "simulate_nc_general", "eta_threshold"]

#: Safety margin over the single-job threshold used when ``eta`` is defaulted.
_ETA_MARGIN = 1.3


def eta_threshold(alpha: float) -> float:
    """The minimal ``eta`` for which the single-job dynamics are self-sustaining.

    While NC-general processes a lone job of density ``rho``, the processed
    weight ``w(t)`` that keeps the shadow run exactly on a self-similar curve
    ``w = (c * beta_a * rho * t)**(1/beta_a)`` (``beta_a = 1 - 1/alpha``)
    requires ``eta = c**(alpha/(alpha-1)) / (c-1)**(1/(alpha-1))``.  Minimising
    over ``c`` (at ``c = alpha/(alpha-1)``) gives

        ``eta_min = (alpha/(alpha-1))**(alpha/(alpha-1)) * (alpha-1)**(1/(alpha-1))``.

    Below this threshold no self-similar solution exists: the shadow
    clairvoyant run catches up with NC, its remaining weight hits zero, and
    the algorithm degenerates to the ``epsilon`` crawl.  Above it, the larger
    root ``c2`` of the equation is a stable attractor and the paper's
    property (A) holds with ``zeta = (c2-1)/c2``.  (The extended abstract
    defers its choice of ``eta`` to the full version; this threshold is the
    reproduction's derivation of the constraint.)
    """
    if alpha <= 1:
        raise ValueError(f"alpha must exceed 1, got {alpha}")
    q = alpha / (alpha - 1.0)
    return q**q * (alpha - 1.0) ** (1.0 / (alpha - 1.0))


class NCGeneralPolicy(SchedulingPolicy):
    """Algorithm NC-general as a policy for the numeric engine.

    Honestly non-clairvoyant: the policy sees releases/densities and the
    engine-maintained processed volumes; true volumes reach it only through
    ``on_completion``.
    """

    def __init__(
        self,
        power: PowerLaw,
        *,
        eta: float | None = None,
        beta: float = 5.0,
        epsilon: float = 1e-6,
        use_checkpoints: bool | None = None,
        shadow_mode: str | None = None,
    ) -> None:
        if not isinstance(power, PowerLaw):
            raise TypeError("NC-general's shadow simulation requires a PowerLaw")
        if eta is None:
            eta = _ETA_MARGIN * eta_threshold(power.alpha)
        if eta < 1:
            raise ValueError(f"eta must be >= 1, got {eta}")
        if beta <= 1:
            raise ValueError(f"beta must be > 1, got {beta}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        if shadow_mode is None:
            # Back-compat: the pre-refactor flag toggled the warm-resume path.
            if use_checkpoints is None:
                shadow_mode = "incremental"
            else:
                shadow_mode = "resume" if use_checkpoints else "fromscratch"
        if shadow_mode not in ("incremental", "resume", "fromscratch"):
            raise ValueError(
                f"shadow_mode must be 'incremental', 'resume' or 'fromscratch', got {shadow_mode!r}"
            )
        self.power = power
        self.eta = eta
        self.beta = beta
        self.epsilon = epsilon
        self.shadow_mode = shadow_mode
        self.use_checkpoints = shadow_mode != "fromscratch"
        self.counters = ShadowCounters()
        #: job id -> (release, rounded density); insertion order is release
        #: order because on_release fires in that order.
        self._released: dict[int, tuple[float, float]] = {}
        self._active: list[int] = []
        #: shadow-run checkpoint for the "resume" mode: (current job id, its
        #: release, Algorithm C's remaining volumes just before that release
        #: on the *other* jobs).  While NC processes one job, only that job's
        #: weight in I(t) changes and it is released at its own release time,
        #: so C's run before that instant is invariant — the checkpoint
        #: amortises the shadow cost.
        self._ckpt: tuple[int, float, dict[int, float]] | None = None
        #: live-shadow epoch for the "incremental" mode: (current job id, its
        #: release, the shadow, its base checkpoint at that release).  Each
        #: query rolls the shadow back to the base, inserts the current job
        #: with its latest processed weight and advances to the query time.
        self._epoch: tuple[int, float, ClairvoyantShadow, ShadowCheckpoint] | None = None
        #: tracing (wired by bind): hoisted recorder guard + the rounded
        #: density class of the last epoch's j*, for density_class_switch.
        self._recorder = None
        self._rec = None
        self._last_class: float | None = None

    def bind(self, context: SimulationContext) -> None:
        super().bind(context)
        self.counters = context.counters
        self._epoch = None
        self._recorder = context.recorder
        self._rec = context.recorder if context.recorder.enabled else None
        self._last_class = None

    # -- engine callbacks -----------------------------------------------------

    def on_release(self, t: float, job_id: int, density: float) -> None:
        self._released[job_id] = (t, round_density_down(density, self.beta))
        self._active.append(job_id)
        self._ckpt = None  # a new arrival may change which job is processed
        self._epoch = None

    def on_completion(self, t: float, job_id: int, volume: float) -> None:
        self._active.remove(job_id)
        self._ckpt = None
        self._epoch = None

    def select_job(self, t: float) -> int | None:
        if not self._active:
            return None
        # Highest rounded density; FIFO within a class (insertion order of
        # _active is release order, so a stable min does the tie-breaking).
        return min(self._active, key=lambda j: (-self._released[j][1], self._released[j][0], j))

    def speed(self, t: float, processed: dict[int, float]) -> float:
        shadow = self._shadow_speed(t, processed)
        return self.eta * shadow + self.epsilon

    # -- the shadow simulation -----------------------------------------------

    def current_instance(self, processed: dict[int, float]) -> Instance | None:
        """The paper's ``I(t)``: released jobs with rounded densities, each
        with volume equal to what NC has processed of it (zero-volume jobs
        drop out)."""
        jobs = [
            Job(jid, rel, processed[jid], rho)
            for jid, (rel, rho) in self._released.items()
            if processed.get(jid, 0.0) > 0.0
        ]
        return Instance(jobs) if jobs else None

    def _shadow_speed(self, t: float, processed: dict[int, float]) -> float:
        if self.shadow_mode == "incremental":
            return self._shadow_speed_incremental(t, processed)
        from .clairvoyant import simulate_clairvoyant

        inst = self.current_instance(processed)
        if inst is None:
            return 0.0
        j_star = self.select_job(t)
        if (
            not self.use_checkpoints
            or j_star is None
            or processed.get(j_star, 0.0) <= 0.0
            or j_star not in inst
        ):
            # Boundary states (nothing of the current job processed yet):
            # just run the shadow from scratch, it is short anyway.  The
            # legacy resume/fromscratch modes promise *bit-identical* results
            # to each other, which only the scalar backend's sequential
            # accumulation order can deliver across warm/cold histories.
            run = simulate_clairvoyant(inst, self.power, until=t, backend="scalar")
        else:
            r_star = self._released[j_star][0]
            if self._ckpt is None or self._ckpt[0] != j_star:
                others = [j for j in inst if j.job_id != j_star]
                if others:
                    pre = simulate_clairvoyant(
                        Instance(others), self.power, until=r_star, backend="scalar"
                    )
                    ck = dict(pre.remaining)
                else:
                    ck = {}
                self._ckpt = (j_star, r_star, ck)
            _, t0, ck = self._ckpt
            run = simulate_clairvoyant(
                inst, self.power, until=t, resume=(t0, ck), backend="scalar"
            )
        w_rem = sum(inst[jid].density * v for jid, v in run.remaining.items())
        return self.power.speed(w_rem)

    def _shadow_speed_incremental(self, t: float, processed: dict[int, float]) -> float:
        """``s^C_{I(t)}(t)`` from the live epoch shadow.

        The epoch base is C's state on the *other* jobs of ``I(t)`` (their
        processed weights are frozen while NC drives ``j*``) materialized at
        ``r*``; a query replays only ``j*``'s admission and the events in
        ``(r*, t]`` — exactly the events the pre-refactor resume path
        re-simulated, minus all object construction.
        """
        epoch = self._epoch
        if epoch is None:
            # The active set only changes through on_release/on_completion,
            # which clear the epoch — while one is alive its j* stays the
            # HDF-rounded selection, so select_job need not be re-run.
            j_star = self.select_job(t)
            alpha = self.power.alpha
            r_star = self._released[j_star][0] if j_star is not None else t
            rec = self._rec
            if rec is not None:
                # The rebuild marker goes on the epoch shadow's own component
                # *before* the new shadow replays history: it is the rewind
                # boundary the ordering contract keys on.
                rec.emit(
                    "shadow_rebuild",
                    t,
                    "nc_general.shadow",
                    j_star=j_star,
                    base_time=r_star,
                )
                cls = self._released[j_star][1] if j_star is not None else None
                if cls != self._last_class:
                    rec.emit(
                        "density_class_switch",
                        t,
                        "nc_general",
                        job=j_star,
                        density_class=cls,
                        prev_class=self._last_class,
                    )
                    self._last_class = cls
            shadow = ClairvoyantShadow(
                alpha,
                counters=self.counters,
                recorder=self._recorder,
                component="nc_general.shadow",
                backend=getattr(getattr(self, "context", None), "backend", None),
            )
            for jid, (rel, rho) in self._released.items():
                if jid != j_star and processed.get(jid, 0.0) > 0.0:
                    shadow.insert_job(jid, rel, rho, processed[jid])
            shadow.advance(r_star)
            base = shadow.checkpoint()
            self.counters.rebuilds += 1
            epoch = self._epoch = (j_star, r_star, shadow, base)
        j_star, r_star, shadow, base = epoch
        if j_star is not None:
            v_star = processed.get(j_star, 0.0)
            if v_star > 0.0:
                w_rem = shadow.query_with_job(
                    base, t, j_star, r_star, self._released[j_star][1], v_star
                )
            else:
                w_rem = shadow.query_with_job(base, t, None, 0.0, 0.0, 0.0)
        else:
            w_rem = shadow.query_with_job(base, t, None, 0.0, 0.0, 0.0)
        if w_rem <= 0.0:
            return 0.0
        return self.power.speed(w_rem)


@dataclass(frozen=True)
class NCGeneralRun:
    """Outcome of an NC-general simulation."""

    instance: Instance
    power: PowerLaw
    schedule: Schedule
    eta: float
    beta: float
    epsilon: float
    engine_steps: int
    shadow_mode: str = "incremental"
    counters: ShadowCounters | None = None

    def completion_time(self, job_id: int) -> float:
        return self.schedule.completion_time(job_id, self.instance[job_id].volume)


def simulate_nc_general(
    instance: Instance,
    power: PowerLaw,
    *,
    eta: float | None = None,
    beta: float = 5.0,
    epsilon: float = 1e-6,
    max_step: float = 1e-2,
    shadow_mode: str | None = None,
    context: SimulationContext | None = None,
) -> NCGeneralRun:
    """Run Algorithm NC-general numerically on ``instance``.

    ``eta=None`` picks ``1.3 * eta_threshold(alpha)``.  ``max_step`` is the
    engine's integration step bound; results converge as it shrinks (see
    ``benchmarks/bench_engine_accuracy.py``).  The engine's ``min_step`` is
    tied to ``epsilon**2`` so the post-release bootstrap window is resolved.
    ``shadow_mode`` selects how ``s^C_{I(t)}`` is obtained (see
    :class:`NCGeneralPolicy`); the returned run carries the
    :class:`~repro.core.shadow.ShadowCounters` of its engine context.
    """
    policy = NCGeneralPolicy(power, eta=eta, beta=beta, epsilon=epsilon, shadow_mode=shadow_mode)
    min_step = min(1e-14, epsilon**2 / 16.0)
    engine = NumericEngine(
        power, max_step=max_step, min_step=max(min_step, 1e-300), context=context
    )
    result: EngineResult = engine.run(instance, policy)
    return NCGeneralRun(
        instance=instance,
        power=power,
        schedule=result.schedule,
        eta=policy.eta,
        beta=policy.beta,
        epsilon=policy.epsilon,
        engine_steps=result.steps,
        shadow_mode=policy.shadow_mode,
        counters=result.context.counters if result.context is not None else None,
    )
