"""Tests for the offline optimum substrate: closed forms, the convex
relaxation, and the bound selector."""

from __future__ import annotations

import pytest
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Instance, Job, PowerLaw
from repro.algorithms.clairvoyant import simulate_clairvoyant
from repro.algorithms.nc_uniform import simulate_nc_uniform
from repro.core.metrics import evaluate
from repro.offline.bounds import opt_fractional_lower_bound, opt_integral_lower_bound
from repro.offline.convex import fractional_lower_bound, project_simplex
from repro.offline.single_job import single_job_opt_fractional, single_job_opt_integral

from conftest import alphas, uniform_instances

vols = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
rhos = st.floats(min_value=0.2, max_value=5.0, allow_nan=False)


class TestSingleJobFractional:
    @given(vols, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_flow_energy_identity(self, v, rho, alpha):
        """Pontryagin solution satisfies flow = (alpha-1) * energy."""
        opt = single_job_opt_fractional(v, rho, alpha)
        assert opt.flow == pytest.approx((alpha - 1) * opt.energy, rel=1e-9)

    @given(vols, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_volume_constraint_satisfied(self, v, rho, alpha):
        """∫ s*(t) dt == V for the stated optimal profile."""
        opt = single_job_opt_fractional(v, rho, alpha)
        ts = np.linspace(0.0, opt.duration, 20001)
        s = (rho * (opt.duration - ts) / alpha) ** (1.0 / (alpha - 1.0))
        assert float(np.trapezoid(s, ts)) == pytest.approx(v, rel=1e-4)

    @given(vols, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_energy_matches_profile(self, v, rho, alpha):
        opt = single_job_opt_fractional(v, rho, alpha)
        ts = np.linspace(0.0, opt.duration, 20001)
        s = (rho * (opt.duration - ts) / alpha) ** (1.0 / (alpha - 1.0))
        assert float(np.trapezoid(s**alpha, ts)) == pytest.approx(opt.energy, rel=1e-4)

    @given(vols, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_beats_algorithm_c(self, v, rho, alpha):
        """OPT <= cost(C), and >= cost(C)/2 (Theorem 1)."""
        power = PowerLaw(alpha)
        inst = Instance([Job(0, 0.0, v, rho)])
        c_cost = evaluate(
            simulate_clairvoyant(inst, power).schedule, inst, power
        ).fractional_objective
        opt = single_job_opt_fractional(v, rho, alpha).objective
        assert opt <= c_cost * (1 + 1e-9)
        assert opt >= c_cost / 2 * (1 - 1e-9)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            single_job_opt_fractional(0.0, 1.0, 3.0)
        with pytest.raises(ValueError):
            single_job_opt_fractional(1.0, -1.0, 3.0)
        with pytest.raises(ValueError):
            single_job_opt_fractional(1.0, 1.0, 1.0)

    def test_known_value_alpha_two(self):
        """alpha=2, V=1, rho=1: T = (2*sqrt(2))^{1/2}, E = T^3/12 ... verify
        against a dense numeric minimisation over constant-deceleration
        profiles is overkill; instead verify KKT: s(0)^{alpha-1} * alpha ==
        rho * T."""
        opt = single_job_opt_fractional(1.0, 1.0, 2.0)
        s0 = (1.0 * opt.duration / 2.0) ** 1.0
        assert 2.0 * s0 == pytest.approx(opt.duration, rel=1e-12)


class TestSingleJobIntegral:
    @given(vols, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_flow_energy_identity(self, v, rho, alpha):
        """At the optimum, flow = (alpha-1) * energy here too."""
        opt = single_job_opt_integral(v, rho, alpha)
        assert opt.flow == pytest.approx((alpha - 1) * opt.energy, rel=1e-9)

    @given(vols, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_duration_is_stationary_point(self, v, rho, alpha):
        """Perturbing T in either direction cannot reduce the cost."""
        opt = single_job_opt_integral(v, rho, alpha)

        def cost(T: float) -> float:
            return rho * v * T + v**alpha * T ** (1 - alpha)

        assert cost(opt.duration) <= cost(opt.duration * 1.01) + 1e-12
        assert cost(opt.duration) <= cost(opt.duration * 0.99) + 1e-12

    @given(vols, rhos, alphas)
    @settings(max_examples=50, deadline=None)
    def test_integral_at_least_fractional(self, v, rho, alpha):
        f = single_job_opt_fractional(v, rho, alpha).objective
        i = single_job_opt_integral(v, rho, alpha).objective
        assert i >= f * (1 - 1e-9)


class TestProjectSimplex:
    def test_already_feasible(self):
        v = np.array([0.3, 0.7])
        out = project_simplex(v, 1.0)
        np.testing.assert_allclose(out, v, atol=1e-12)

    def test_sums_to_total(self):
        out = project_simplex(np.array([5.0, -3.0, 0.5]), 2.0)
        assert out.sum() == pytest.approx(2.0)
        assert np.all(out >= 0)

    def test_zero_total(self):
        out = project_simplex(np.array([1.0, 2.0]), 0.0)
        assert out.sum() == pytest.approx(0.0)

    @given(
        st.lists(st.floats(min_value=-10, max_value=10), min_size=1, max_size=20),
        st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=60)
    def test_projection_properties(self, vals, total):
        v = np.array(vals)
        out = project_simplex(v, total)
        assert out.sum() == pytest.approx(total, abs=1e-9)
        assert np.all(out >= -1e-12)

    def test_rejects_negative_total(self):
        with pytest.raises(ValueError):
            project_simplex(np.array([1.0]), -1.0)


class TestConvexRelaxation:
    def test_dual_below_exact_single_job(self, cube):
        inst = Instance([Job(0, 0.0, 2.0)])
        exact = single_job_opt_fractional(2.0, 1.0, 3.0).objective
        cb = fractional_lower_bound(inst, cube, slots=400, iterations=2000)
        assert cb.dual_value <= exact * (1 + 1e-9)
        assert cb.dual_value >= 0.9 * exact  # and reasonably tight

    def test_dual_at_most_primal(self, cube, three_jobs):
        cb = fractional_lower_bound(three_jobs, cube, slots=200, iterations=800)
        assert cb.dual_value <= cb.primal_value * (1 + 1e-9)
        assert -1e-9 <= cb.gap < 0.2  # tiny negative gap is float noise

    def test_converges_with_slots(self, cube):
        inst = Instance([Job(0, 0.0, 2.0)])
        exact = single_job_opt_fractional(2.0, 1.0, 3.0).objective
        gaps = []
        for slots in (100, 400):
            cb = fractional_lower_bound(inst, cube, slots=slots, iterations=1500)
            gaps.append(exact - cb.dual_value)
        assert gaps[1] < gaps[0]

    @given(uniform_instances(max_jobs=4))
    @settings(max_examples=8, deadline=None)
    def test_lower_bounds_algorithm_costs(self, inst):
        """The dual never exceeds the cost of any feasible schedule."""
        power = PowerLaw(3.0)
        cb = fractional_lower_bound(inst, power, slots=150, iterations=600)
        for sched in (
            simulate_clairvoyant(inst, power).schedule,
            simulate_nc_uniform(inst, power).schedule,
        ):
            cost = evaluate(sched, inst, power).fractional_objective
            assert cb.dual_value <= cost * (1 + 1e-6)

    def test_rejects_horizon_before_release(self, cube):
        inst = Instance([Job(0, 5.0, 1.0)])
        with pytest.raises(ValueError):
            fractional_lower_bound(inst, cube, horizon=4.0)


class TestBoundSelector:
    def test_single_job_uses_closed_form(self, cube):
        inst = Instance([Job(0, 0.0, 2.0)])
        ob = opt_fractional_lower_bound(inst, cube)
        assert ob.source == "single-job closed form"
        assert ob.value == pytest.approx(single_job_opt_fractional(2.0, 1.0, 3.0).objective)

    def test_multi_job_below_c(self, cube, three_jobs):
        ob = opt_fractional_lower_bound(three_jobs, cube, slots=200, iterations=800)
        c_cost = evaluate(
            simulate_clairvoyant(three_jobs, cube).schedule, three_jobs, cube
        ).fractional_objective
        assert ob.value <= c_cost * (1 + 1e-9)
        assert ob.value >= c_cost / 2 * (1 - 1e-9)  # surrogate included

    def test_integral_bound_at_least_fractional(self, cube, three_jobs):
        f = opt_fractional_lower_bound(three_jobs, cube, slots=150, iterations=600)
        i = opt_integral_lower_bound(three_jobs, cube, slots=150, iterations=600)
        assert i.value >= f.value * (1 - 1e-9)

    def test_machines_pooling_weakens_bound(self, cube, three_jobs):
        """More machines => OPT can only drop, and so must the bound."""
        one = opt_fractional_lower_bound(three_jobs, cube, slots=150, iterations=600)
        four = opt_fractional_lower_bound(
            three_jobs, cube, machines=4, slots=150, iterations=600
        )
        assert four.value <= one.value * (1 + 1e-9)

    def test_rejects_bad_machine_count(self, cube, three_jobs):
        with pytest.raises(ValueError):
            opt_fractional_lower_bound(three_jobs, cube, machines=0)


class TestScheduleFromBound:
    def test_brackets_single_job_optimum(self, cube):
        from repro.offline.convex import schedule_from_bound

        inst = Instance([Job(0, 0.0, 2.0)])
        cb = fractional_lower_bound(inst, cube, slots=400, iterations=2000)
        ub = evaluate(schedule_from_bound(inst, cb), inst, cube).fractional_objective
        exact = single_job_opt_fractional(2.0, 1.0, 3.0).objective
        assert cb.dual_value <= exact * (1 + 1e-9)
        assert exact <= ub * (1 + 1e-9)
        assert (ub - cb.dual_value) / ub < 0.02  # tight bracket

    def test_feasible_and_exact_volumes(self, cube, three_jobs):
        from repro.core.metrics import validate_schedule
        from repro.offline.convex import schedule_from_bound

        cb = fractional_lower_bound(three_jobs, cube, slots=200, iterations=800)
        sched = schedule_from_bound(three_jobs, cb)
        validate_schedule(sched, three_jobs, vol_tol=1e-9)

    def test_release_mid_slot_respected(self, cube):
        from repro.offline.convex import schedule_from_bound

        inst = Instance([Job(0, 0.0, 1.0), Job(1, 0.777, 1.0)])
        cb = fractional_lower_bound(inst, cube, slots=37, iterations=600)
        sched = schedule_from_bound(inst, cb)
        for seg in sched.job_segments(1):
            assert seg.t0 >= 0.777 - 1e-12

    def test_upper_bound_beats_nothing_silly(self, cube, three_jobs):
        """The rounded schedule costs at least the dual (sanity) and at most
        a small factor above the primal."""
        from repro.offline.convex import schedule_from_bound

        cb = fractional_lower_bound(three_jobs, cube, slots=250, iterations=1000)
        ub = evaluate(schedule_from_bound(three_jobs, cb), three_jobs, cube).fractional_objective
        assert ub >= cb.dual_value * (1 - 1e-9)
        assert ub <= cb.primal_value * 1.1

    def test_requires_rates(self, cube, three_jobs):
        from repro.offline.convex import ConvexBound, schedule_from_bound

        empty = ConvexBound(1.0, 1.0, 10.0, 10, 0, rates=None)
        with pytest.raises(ValueError):
            schedule_from_bound(three_jobs, empty)
