"""Jobs and problem instances.

An :class:`Instance` is the offline truth: every job's release time, volume
and density.  Algorithms never receive an ``Instance`` directly — clairvoyant
algorithms get it wrapped so the types make the information model explicit,
and non-clairvoyant algorithms only see it through the
:class:`~repro.core.oracle.VolumeOracle`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .errors import InvalidInstanceError

__all__ = ["Job", "Instance"]


@dataclass(frozen=True, slots=True)
class Job:
    """A single job: released at ``release``, needs ``volume`` units of
    processing, and pays flow-time at rate ``density`` per unit of remaining
    volume (weight = ``density * volume``).

    ``job_id`` is the identity used everywhere (schedules, metrics, oracles);
    it must be unique within an instance.
    """

    job_id: int
    release: float
    volume: float
    density: float = 1.0

    def __post_init__(self) -> None:
        if self.release < 0 or not math.isfinite(self.release):
            raise InvalidInstanceError(f"job {self.job_id}: release must be finite >= 0, got {self.release}")
        if self.volume <= 0 or not math.isfinite(self.volume):
            raise InvalidInstanceError(f"job {self.job_id}: volume must be finite > 0, got {self.volume}")
        if self.density <= 0 or not math.isfinite(self.density):
            raise InvalidInstanceError(f"job {self.job_id}: density must be finite > 0, got {self.density}")

    @property
    def weight(self) -> float:
        """``W[j] = rho[j] * V[j]`` — the flow-time weight of the job."""
        return self.density * self.volume

    def with_volume(self, volume: float) -> "Job":
        """A copy of this job with a different volume (same id/release/density)."""
        return Job(self.job_id, self.release, volume, self.density)

    def with_density(self, density: float) -> "Job":
        """A copy of this job with a different density."""
        return Job(self.job_id, self.release, self.volume, density)


@dataclass(frozen=True)
class Instance:
    """An immutable, validated set of jobs sorted by (release, job_id).

    Iteration order is release order, which is also the FIFO order used by the
    non-clairvoyant algorithms (ties broken by ``job_id``, standing in for the
    paper's w.l.o.g. assumption of distinct release times).
    """

    jobs: tuple[Job, ...]
    _by_id: dict[int, Job] = field(repr=False, compare=False, default_factory=dict)

    def __init__(self, jobs: Iterable[Job]) -> None:
        ordered = tuple(sorted(jobs, key=lambda j: (j.release, j.job_id)))
        if not ordered:
            raise InvalidInstanceError("an instance must contain at least one job")
        ids = [j.job_id for j in ordered]
        if len(set(ids)) != len(ids):
            dup = sorted({i for i in ids if ids.count(i) > 1})
            raise InvalidInstanceError(f"duplicate job ids: {dup}")
        object.__setattr__(self, "jobs", ordered)
        object.__setattr__(self, "_by_id", {j.job_id: j for j in ordered})

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __len__(self) -> int:
        return len(self.jobs)

    def __getitem__(self, job_id: int) -> Job:
        try:
            return self._by_id[job_id]
        except KeyError:
            raise KeyError(f"no job with id {job_id}") from None

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_id

    # -- derived quantities --------------------------------------------------

    @property
    def job_ids(self) -> tuple[int, ...]:
        return tuple(j.job_id for j in self.jobs)

    @property
    def total_volume(self) -> float:
        return sum(j.volume for j in self.jobs)

    @property
    def total_weight(self) -> float:
        return sum(j.weight for j in self.jobs)

    @property
    def max_release(self) -> float:
        return max(j.release for j in self.jobs)

    def is_uniform_density(self, rel_tol: float = 1e-12) -> bool:
        """True when all jobs share one density (the §3 setting)."""
        first = self.jobs[0].density
        return all(math.isclose(j.density, first, rel_tol=rel_tol) for j in self.jobs)

    # -- transformations -----------------------------------------------------

    def released_before(self, time: float, strict: bool = True) -> "Instance | None":
        """The prefix sub-instance of jobs released before ``time``.

        Returns ``None`` when the prefix is empty.  This is the instance
        Algorithm NC knows when a job released at ``time`` starts processing.
        """
        if strict:
            picked = [j for j in self.jobs if j.release < time]
        else:
            picked = [j for j in self.jobs if j.release <= time]
        return Instance(picked) if picked else None

    def with_volumes(self, volumes: dict[int, float]) -> "Instance | None":
        """An instance with overridden volumes; jobs mapped to ``<= 0`` are
        dropped.  Used to build the paper's *current instance* ``I(t)`` whose
        weights are the amounts the non-clairvoyant algorithm has processed.
        """
        out = []
        for j in self.jobs:
            v = volumes.get(j.job_id, j.volume)
            if v > 0:
                out.append(j.with_volume(v))
        return Instance(out) if out else None

    def with_densities(self, densities: dict[int, float]) -> "Instance":
        """An instance with overridden densities (e.g. rounded to powers of β)."""
        return Instance(j.with_density(densities.get(j.job_id, j.density)) for j in self.jobs)

    def subset(self, job_ids: Sequence[int]) -> "Instance | None":
        wanted = set(job_ids)
        picked = [j for j in self.jobs if j.job_id in wanted]
        return Instance(picked) if picked else None
