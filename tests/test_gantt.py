"""Tests for the ASCII Gantt renderer."""

from __future__ import annotations

import pytest

from repro import Instance, Job
from repro.algorithms import simulate_clairvoyant
from repro.analysis import cluster_gantt, gantt_chart, gantt_line
from repro.core.schedule import ConstantSegment, Schedule
from repro.parallel import simulate_nc_par


class TestGanttLine:
    def test_idle_schedule(self):
        sched = Schedule([])
        assert gantt_line(sched, width=10) == "." * 10

    def test_single_job_fills(self):
        sched = Schedule([ConstantSegment(0.0, 1.0, 0, 1.0)])
        assert gantt_line(sched, width=8) == "00000000"

    def test_gap_rendered_as_idle(self):
        sched = Schedule(
            [ConstantSegment(0.0, 1.0, 0, 1.0), ConstantSegment(3.0, 4.0, 1, 1.0)]
        )
        line = gantt_line(sched, width=8)
        assert line == "00....11"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            gantt_line(Schedule([]), width=0)

    def test_t_end_extends_with_idle(self):
        sched = Schedule([ConstantSegment(0.0, 1.0, 0, 1.0)])
        line = gantt_line(sched, width=10, t_end=2.0)
        assert line == "00000....."

    def test_glyphs_wrap_for_large_ids(self):
        sched = Schedule([ConstantSegment(0.0, 1.0, 100, 1.0)])
        line = gantt_line(sched, width=4)
        assert len(set(line)) == 1 and line[0] != "."


class TestCharts:
    def test_single_machine_chart(self, cube, three_jobs):
        run = simulate_clairvoyant(three_jobs, cube)
        chart = gantt_chart(run.schedule, width=40)
        lines = chart.splitlines()
        assert len(lines[0]) == 40
        assert "job 0" in lines[-1]

    def test_cluster_chart_rows(self, cube, three_jobs):
        run = simulate_nc_par(three_jobs, cube, 2)
        chart = cluster_gantt(run, width=40)
        rows = [l for l in chart.splitlines() if l.startswith("m")]
        assert len(rows) == 2
        # All job glyphs present somewhere.
        body = "".join(rows)
        for jid in three_jobs.job_ids:
            assert str(jid) in body

    def test_cluster_chart_empty_machine(self, cube):
        inst = Instance([Job(0, 0.0, 1.0)])
        run = simulate_nc_par(inst, cube, 3)
        chart = cluster_gantt(run, width=20)
        rows = [l for l in chart.splitlines() if l.startswith("m")]
        assert rows[1].strip("m12 |") == "." * 0 or "." * 20 in rows[1]
