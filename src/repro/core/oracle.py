"""The non-clairvoyance boundary.

In the paper's model (§2) an online non-clairvoyant algorithm learns, for each
job: its release time and density on release, and — only at the instant the
job completes — its volume.  At any time it can observe whether a job is still
active.  :class:`VolumeOracle` is the single object through which algorithm
code in this package may access volumes; it enforces the information model at
runtime and keeps an audit log that tests inspect to prove no algorithm
peeked.

The *simulator* (which plays the adversary/nature) naturally knows the truth;
it uses the underscore-prefixed trusted accessors.  Algorithm code must never
call those — the test suite greps the algorithm modules for this.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ClairvoyanceViolationError
from .job import Instance

__all__ = ["VolumeOracle", "ReleaseInfo"]


@dataclass(frozen=True, slots=True)
class ReleaseInfo:
    """What a non-clairvoyant algorithm learns when a job is released."""

    job_id: int
    release: float
    density: float


class VolumeOracle:
    """Gatekeeper between the true :class:`Instance` and a non-clairvoyant
    algorithm.

    Trusted (simulator-only) accessors are prefixed with an underscore.
    """

    def __init__(self, instance: Instance) -> None:
        self._instance = instance
        self._completed: set[int] = set()
        self.audit_log: list[tuple[str, int]] = []

    # -- public information (known on release) -------------------------------

    def release_info(self, job_id: int) -> ReleaseInfo:
        job = self._instance[job_id]
        return ReleaseInfo(job.job_id, job.release, job.density)

    def releases(self) -> tuple[ReleaseInfo, ...]:
        """All releases in FIFO order (release time, then job id)."""
        return tuple(self.release_info(j.job_id) for j in self._instance)

    # -- the only volume channel an algorithm may use -------------------------

    def is_completed(self, job_id: int) -> bool:
        self.audit_log.append(("is_completed", job_id))
        return job_id in self._completed

    def revealed_volume(self, job_id: int) -> float:
        """The volume of a *completed* job.

        Raises :class:`ClairvoyanceViolationError` for active jobs — that read
        is exactly what "non-clairvoyant" forbids.
        """
        self.audit_log.append(("revealed_volume", job_id))
        if job_id not in self._completed:
            raise ClairvoyanceViolationError(
                f"volume of job {job_id} is hidden until the job completes"
            )
        return self._instance[job_id].volume

    # -- trusted accessors for the simulation harness ------------------------

    def _true_volume(self, job_id: int) -> float:
        return self._instance[job_id].volume

    def _reveal_on_completion(self, job_id: int) -> float:
        """The volume the simulator reports to a policy at the completion
        instant.  The base oracle reveals the truth; fault injectors override
        this to lie (:class:`repro.faults.injector.FaultyVolumeOracle`)."""
        return self._instance[job_id].volume

    def _mark_completed(self, job_id: int) -> None:
        if job_id in self._completed:
            raise ClairvoyanceViolationError(f"job {job_id} completed twice")
        self._completed.add(job_id)
