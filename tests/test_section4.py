"""Tests for the §4.1 property probes (ζ, γ, ψ measurements)."""

from __future__ import annotations

import pytest

from repro import Instance, Job, PowerLaw
from repro.algorithms import eta_threshold, simulate_nc_general
from repro.analysis import Section4Trace, shadow_properties


@pytest.fixture(scope="module")
def general_run():
    cube = PowerLaw(3.0)
    inst = Instance(
        [Job(0, 0.0, 1.5, 1.0), Job(1, 0.4, 0.8, 5.0), Job(2, 0.9, 0.6, 1.0)]
    )
    return simulate_nc_general(inst, cube, max_step=1e-2)


class TestShadowProperties:
    def test_properties_hold_at_default_eta(self, general_run):
        tr = shadow_properties(general_run, samples=12)
        assert tr.properties_hold
        assert 0 < tr.zeta_min < 1.0
        assert tr.gamma_min > 0
        assert tr.psi_min > 0

    def test_more_samples_never_raise_minima(self, general_run):
        coarse = shadow_properties(general_run, samples=8)
        fine = shadow_properties(general_run, samples=24)
        # A superset-ish sample grid can only find worse (smaller) minima, up
        # to grid non-nesting slack.
        assert fine.zeta_min <= coarse.zeta_min * 1.25

    def test_zeta_increases_with_eta(self):
        cube = PowerLaw(3.0)
        inst = Instance([Job(0, 0.0, 1.0, 1.0), Job(1, 0.3, 0.7, 5.0)])
        thr = eta_threshold(3.0)
        lo = shadow_properties(
            simulate_nc_general(inst, cube, eta=1.1 * thr, max_step=1e-2), samples=10
        )
        hi = shadow_properties(
            simulate_nc_general(inst, cube, eta=2.5 * thr, max_step=1e-2), samples=10
        )
        assert hi.zeta_min > lo.zeta_min

    def test_single_job_zeta_matches_self_similar_theory(self):
        """On a lone job the measured zeta approaches ((c2-1)/c2)^{1/beta}."""
        cube = PowerLaw(3.0)
        thr = eta_threshold(3.0)
        eta = 2.0 * thr
        inst = Instance([Job(0, 0.0, 2.0, 1.0)])
        run = simulate_nc_general(inst, cube, eta=eta, max_step=2e-3)
        tr = shadow_properties(run, samples=12)
        # c2 solves c^{3/2}/(c-1)^{1/2} = eta; the weight-ratio prediction
        # is ((c2-1)/c2)^{1/beta} with beta = 2/3 (the remaining weight is
        # (beta*t*(c-1))^{1/beta} against processed (c*beta*t)^{1/beta}).
        lo, hi = 1.5, 64.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if mid**1.5 / (mid - 1.0) ** 0.5 < eta:
                lo = mid
            else:
                hi = mid
        zeta_theory = ((lo - 1.0) / lo) ** 1.5
        assert tr.zeta_min == pytest.approx(zeta_theory, rel=0.02)

    def test_trace_dataclass(self):
        tr = Section4Trace(0.5, 0.2, 1.0, 10)
        assert tr.properties_hold
        assert not Section4Trace(0.0, 0.2, 1.0, 10).properties_hold
