"""Density rounding for the non-uniform algorithm (§4).

Algorithm NC-general first rounds every job's density *down* to an integer
power of a base ``beta`` (the paper needs ``beta > 4`` for its amortized
charging argument).  Jobs whose rounded densities coincide form a *density
class* and are processed FIFO within the class.

Rounding down loses at most a factor ``beta`` of weight, which the analysis
absorbs into the competitive constant; it buys the geometric separation
between classes that the bin-based potential argument requires.
"""

from __future__ import annotations

import math

from ..core.job import Instance

__all__ = ["round_density_down", "density_class_index", "rounded_instance", "density_classes"]


def density_class_index(density: float, beta: float) -> int:
    """The integer ``k`` with ``beta**k <= density < beta**(k+1)``.

    Computed robustly: the naive ``floor(log(density)/log(beta))`` is nudged
    to survive the float cases where ``density`` is an exact power of
    ``beta``.
    """
    if density <= 0 or not math.isfinite(density):
        raise ValueError(f"density must be finite > 0, got {density}")
    if beta <= 1 or not math.isfinite(beta):
        raise ValueError(f"beta must be finite > 1, got {beta}")
    k = math.floor(math.log(density) / math.log(beta) + 1e-12)
    # Repair off-by-one from float logarithms.
    while beta ** (k + 1) <= density * (1 + 1e-12):
        k += 1
    while beta**k > density * (1 + 1e-12):
        k -= 1
    return k


def round_density_down(density: float, beta: float) -> float:
    """``beta**k`` for the class index ``k`` of ``density``."""
    return float(beta ** density_class_index(density, beta))


def rounded_instance(instance: Instance, beta: float) -> Instance:
    """The instance with every density rounded down to a power of ``beta``."""
    return instance.with_densities(
        {j.job_id: round_density_down(j.density, beta) for j in instance}
    )


def density_classes(instance: Instance, beta: float) -> dict[int, list[int]]:
    """Job ids grouped by density class index, FIFO within each class."""
    classes: dict[int, list[int]] = {}
    for job in instance:  # instance iterates in (release, id) order == FIFO
        classes.setdefault(density_class_index(job.density, beta), []).append(job.job_id)
    return classes
