"""Plain-text rendering for benches: aligned tables and ASCII line charts.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output readable in a terminal and in
the captured ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_table", "format_ascii_chart"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Monospace table with per-column alignment (numbers right, text left)."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    grid = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in grid)) if grid else len(headers[c])
        for c in range(len(headers))
    ]

    def fmt_row(cells: Sequence[str], values: Sequence[object] | None = None) -> str:
        parts = []
        for c, text in enumerate(cells):
            is_num = values is not None and isinstance(values[c], (int, float))
            parts.append(text.rjust(widths[c]) if is_num else text.ljust(widths[c]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row, src in zip(grid, rows):
        lines.append(fmt_row(row, src))
    return "\n".join(lines)


def format_ascii_chart(
    series: Sequence[tuple[str, Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 16,
    title: str | None = None,
) -> str:
    """A quick ASCII line chart for bench output.

    ``series`` is a list of ``(label, xs, ys)``; each series gets its own
    glyph.  Axes are annotated with min/max.  This deliberately stays crude —
    it documents curve *shape* (the reproduction target), not precise values.
    """
    glyphs = "*o+x#@%&"
    xs_all = np.concatenate([np.asarray(x, dtype=float) for _, x, _ in series])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, _, y in series])
    x0, x1 = float(xs_all.min()), float(xs_all.max())
    y0, y1 = float(ys_all.min()), float(ys_all.max())
    if x1 <= x0:
        x1 = x0 + 1.0
    if y1 <= y0:
        y1 = y0 + 1.0
    canvas = [[" "] * width for _ in range(height)]
    for k, (_, xs, ys) in enumerate(series):
        g = glyphs[k % len(glyphs)]
        for x, y in zip(xs, ys):
            cx = int((float(x) - x0) / (x1 - x0) * (width - 1))
            cy = int((float(y) - y0) / (y1 - y0) * (height - 1))
            canvas[height - 1 - cy][cx] = g
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y0:.4g}, {y1:.4g}]")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    lines.append(f"x: [{x0:.4g}, {x1:.4g}]")
    legend = "   ".join(f"{glyphs[k % len(glyphs)]} {label}" for k, (label, _, _) in enumerate(series))
    lines.append(legend)
    return "\n".join(lines)
