"""Unit tests for the job/instance model."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings

from repro import Instance, Job
from repro.core.errors import InvalidInstanceError

from conftest import general_instances


class TestJob:
    def test_weight(self):
        assert Job(0, 0.0, 4.0, 0.5).weight == pytest.approx(2.0)

    def test_rejects_nonpositive_volume(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, 0.0, 0.0)
        with pytest.raises(InvalidInstanceError):
            Job(0, 0.0, -1.0)

    def test_rejects_nonpositive_density(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, 0.0, 1.0, 0.0)

    def test_rejects_negative_release(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, -1.0, 1.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(InvalidInstanceError):
            Job(0, math.inf, 1.0)
        with pytest.raises(InvalidInstanceError):
            Job(0, 0.0, math.nan)

    def test_with_volume_preserves_identity(self):
        j = Job(3, 1.0, 2.0, 0.5).with_volume(9.0)
        assert (j.job_id, j.release, j.volume, j.density) == (3, 1.0, 9.0, 0.5)

    def test_with_density(self):
        j = Job(3, 1.0, 2.0, 0.5).with_density(4.0)
        assert j.density == 4.0
        assert j.volume == 2.0

    def test_frozen(self):
        with pytest.raises(Exception):
            Job(0, 0.0, 1.0).volume = 2.0  # type: ignore[misc]


class TestInstance:
    def test_sorted_by_release(self):
        inst = Instance([Job(0, 5.0, 1.0), Job(1, 1.0, 1.0)])
        assert [j.job_id for j in inst] == [1, 0]

    def test_tie_broken_by_id(self):
        inst = Instance([Job(5, 1.0, 1.0), Job(2, 1.0, 1.0)])
        assert [j.job_id for j in inst] == [2, 5]

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError):
            Instance([])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(InvalidInstanceError):
            Instance([Job(0, 0.0, 1.0), Job(0, 1.0, 1.0)])

    def test_lookup(self):
        inst = Instance([Job(7, 0.0, 2.0)])
        assert inst[7].volume == 2.0
        assert 7 in inst
        assert 8 not in inst
        with pytest.raises(KeyError):
            inst[8]

    def test_totals(self):
        inst = Instance([Job(0, 0.0, 2.0, 3.0), Job(1, 1.0, 4.0, 0.5)])
        assert inst.total_volume == pytest.approx(6.0)
        assert inst.total_weight == pytest.approx(8.0)
        assert inst.max_release == 1.0
        assert inst.job_ids == (0, 1)

    def test_uniform_density_detection(self):
        assert Instance([Job(0, 0.0, 1.0, 2.0), Job(1, 1.0, 3.0, 2.0)]).is_uniform_density()
        assert not Instance([Job(0, 0.0, 1.0, 2.0), Job(1, 1.0, 3.0, 2.5)]).is_uniform_density()

    def test_released_before_strict(self):
        inst = Instance([Job(0, 0.0, 1.0), Job(1, 1.0, 1.0), Job(2, 2.0, 1.0)])
        prefix = inst.released_before(1.0)
        assert prefix is not None and prefix.job_ids == (0,)
        assert inst.released_before(0.0) is None

    def test_released_before_inclusive(self):
        inst = Instance([Job(0, 0.0, 1.0), Job(1, 1.0, 1.0)])
        prefix = inst.released_before(1.0, strict=False)
        assert prefix is not None and prefix.job_ids == (0, 1)

    def test_with_volumes_drops_empty(self):
        inst = Instance([Job(0, 0.0, 1.0), Job(1, 1.0, 1.0)])
        cur = inst.with_volumes({0: 0.5, 1: 0.0})
        assert cur is not None and cur.job_ids == (0,)
        assert cur[0].volume == 0.5
        assert inst.with_volumes({0: 0.0, 1: 0.0}) is None

    def test_with_densities(self):
        inst = Instance([Job(0, 0.0, 1.0, 3.0)])
        out = inst.with_densities({0: 1.0})
        assert out[0].density == 1.0

    def test_subset(self):
        inst = Instance([Job(0, 0.0, 1.0), Job(1, 1.0, 1.0), Job(2, 2.0, 1.0)])
        sub = inst.subset([2, 0])
        assert sub is not None and sub.job_ids == (0, 2)
        assert inst.subset([]) is None

    @given(general_instances())
    @settings(max_examples=40, deadline=None)
    def test_iteration_is_fifo_order(self, inst):
        rel = [(j.release, j.job_id) for j in inst]
        assert rel == sorted(rel)
