"""Workload generation: seeded random streams, adversarial/structured
instances from the paper's arguments, and the intro's cloud-billing model."""

from .adversarial import (
    burst_instance,
    escalating_volumes_instance,
    geometric_density_instance,
    staircase_instance,
    volume_for_unit_cost,
)
from .cloud import BillingSummary, Tenant, billing_summary, cloud_instance
from .random_instances import DENSITY_MODELS, VOLUME_MODELS, poisson_releases, random_instance
from .trace import parse_trace, read_trace, trace_from_string, write_trace

__all__ = [
    "random_instance",
    "poisson_releases",
    "VOLUME_MODELS",
    "DENSITY_MODELS",
    "burst_instance",
    "staircase_instance",
    "geometric_density_instance",
    "escalating_volumes_instance",
    "volume_for_unit_cost",
    "Tenant",
    "cloud_instance",
    "billing_summary",
    "BillingSummary",
    "read_trace",
    "write_trace",
    "parse_trace",
    "trace_from_string",
]
