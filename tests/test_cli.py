"""Tests for the command-line interface (also the package's integration
surface — every command exercises the public API end to end)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv: str) -> str:
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--algorithm", "MAGIC"])

    def test_alpha_is_global(self):
        args = build_parser().parse_args(["--alpha", "2.5", "run"])
        assert args.alpha == 2.5


class TestRun:
    def test_nc_default(self, capsys):
        out = run_cli(capsys, "run", "--jobs", "6", "--seed", "1")
        assert "G_frac" in out and "energy" in out

    def test_clairvoyant(self, capsys):
        out = run_cli(capsys, "run", "--algorithm", "C", "--jobs", "5")
        assert "C on 5 jobs" in out

    def test_nc_general_with_densities(self, capsys):
        out = run_cli(
            capsys,
            "run",
            "--algorithm",
            "NC_GENERAL",
            "--jobs",
            "4",
            "--densities",
            "loguniform",
            "--max-step",
            "5e-2",
        )
        assert "G_frac" in out

    def test_deterministic(self, capsys):
        a = run_cli(capsys, "run", "--jobs", "6", "--seed", "9")
        b = run_cli(capsys, "run", "--jobs", "6", "--seed", "9")
        assert a == b


class TestRatio:
    def test_nc_ratio_under_theorem5(self, capsys):
        out = run_cli(capsys, "ratio", "--jobs", "6", "--seed", "4")
        ratio = float(out.splitlines()[-1].split()[-3])
        assert 1.0 <= ratio <= 2.5 + 1e-9

    def test_integral_objective(self, capsys):
        out = run_cli(capsys, "ratio", "--objective", "integral", "--jobs", "5")
        assert "integral" in out


class TestFiguresAndTables:
    def test_figures(self, capsys):
        out = run_cli(capsys, "figures", "--weight", "2.0")
        assert "Figure 1" in out and "NC" in out

    def test_lower_bound(self, capsys):
        out = run_cli(capsys, "lower-bound", "--machines", "2", "4")
        assert "k^(1-1/alpha)" in out

    def test_cluster(self, capsys):
        out = run_cli(capsys, "cluster", "--machines", "2", "--jobs", "8")
        assert "Lemma 20 assignments equal: True" in out

    def test_cluster_rejects_nonuniform(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", "--densities", "loguniform", "--jobs", "5"])

    def test_shard_serial(self, capsys):
        out = run_cli(
            capsys, "shard", "--machines", "3", "--jobs", "9", "--serial"
        )
        assert "bit-identical: True" in out
        assert "serial (forced)" in out

    def test_shard_pool(self, capsys):
        out = run_cli(
            capsys, "shard", "--machines", "2", "--jobs", "8", "--workers", "2"
        )
        assert "bit-identical: True" in out
        assert "pool:" in out

    def test_shard_rejects_nonuniform(self, capsys):
        with pytest.raises(SystemExit):
            main(["shard", "--densities", "loguniform", "--jobs", "5", "--serial"])

    def test_chaos_shard_campaign(self, capsys):
        assert main(
            ["chaos", "--shards", "--n", "1", "--jobs", "8", "--machines", "2",
             "--kills", "1", "--hold", "0.08"]
        ) == 0
        assert "SHARD CAMPAIGN OK" in capsys.readouterr().out

    def test_table1_small(self, capsys):
        out = run_cli(
            capsys,
            "table1",
            "--uniform-jobs",
            "5",
            "--nonuniform-jobs",
            "4",
            "--seeds",
            "1",
        )
        assert "Table 1 reproduction" in out
        assert "fractional unit" in out


class TestOptBracket:
    def test_bracket_holds(self, capsys):
        out = run_cli(capsys, "opt", "--jobs", "4", "--seed", "6", "--slots", "150",
                      "--iterations", "500")
        line = out.splitlines()[-1].split()
        lower, upper = float(line[0]), float(line[1])
        assert lower <= upper * (1 + 1e-9)
        assert (upper - lower) / upper < 0.25


class TestVerifyCommand:
    def test_all_claims_hold(self, capsys):
        out = run_cli(capsys, "verify", "--jobs", "5", "--seed", "3", "--machines", "2")
        assert "ALL CLAIMS HOLD" in out
        assert "Lemma 20" in out

    def test_single_machine_skips_parallel_claims(self, capsys):
        out = run_cli(capsys, "verify", "--jobs", "4", "--seed", "2")
        assert "Lemma 20" not in out
        assert "Theorem 5" in out


class TestTraceCommand:
    def test_trace_writes_jsonl_and_passes_lemmas(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        out = run_cli(
            capsys, "trace", "--jobs", "6", "--seed", "2", "--out", str(out_path)
        )
        assert out_path.exists()
        assert "[PASS] Lemma 3" in out
        assert "[PASS] Lemma 4" in out
        assert "event ordering: OK" in out

    def test_trace_pretty_prints_events(self, capsys, tmp_path):
        out = run_cli(
            capsys,
            "trace",
            "--jobs",
            "4",
            "--seed",
            "1",
            "--events",
            "3",
            "--out",
            str(tmp_path / "t.jsonl"),
        )
        assert "run_meta" in out
        assert "more)" in out

    def test_trace_golden_corpus_case(self, capsys, tmp_path):
        import json
        import pathlib

        corpus_path = pathlib.Path(__file__).parent / "data" / "golden_corpus.json"
        key = sorted(
            k for k in json.loads(corpus_path.read_text()) if k.startswith("nc_uniform/")
        )[0]
        out = run_cli(
            capsys,
            "trace",
            "--corpus",
            str(corpus_path),
            "--case",
            key,
            "--out",
            str(tmp_path / "g.jsonl"),
        )
        assert "[PASS] Lemma 3" in out

    def test_trace_rejects_nonuniform(self, tmp_path):
        from repro.core.errors import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            main(
                [
                    "trace",
                    "--jobs",
                    "4",
                    "--densities",
                    "loguniform",
                    "--out",
                    str(tmp_path / "t.jsonl"),
                ]
            )

    def test_trace_case_requires_corpus(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--case", "nc_uniform/whatever"])


class TestTraceStreaming:
    def test_sink_rotate_writes_segments_then_replays(self, capsys, tmp_path):
        base = tmp_path / "t.jsonl"
        out = run_cli(
            capsys, "trace", "--jobs", "6", "--seed", "3",
            "--out", str(base), "--sink", "rotate:20",
        )
        assert not base.exists()  # rotate writes numbered segments only
        assert (tmp_path / "t.00000.jsonl").exists()
        assert (tmp_path / "t.00001.jsonl").exists()
        assert "[PASS] Lemma 3" in out
        # --replay on the base path finds the segments and re-verifies.
        replay = run_cli(capsys, "trace", "--replay", str(base))
        assert "[PASS] Lemma 3" in replay and "[PASS] Lemma 4" in replay

    def test_sink_gzip_then_replay(self, capsys, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        run_cli(
            capsys, "trace", "--jobs", "5", "--seed", "2",
            "--out", str(path), "--sink", "gzip",
        )
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        replay = run_cli(capsys, "trace", "--replay", str(path))
        assert "[PASS] Lemma 3" in replay

    def test_replay_missing_path_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no trace at"):
            main(["trace", "--replay", str(tmp_path / "nope.jsonl")])

    def test_replay_follow_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--replay", "a.jsonl", "--follow", "b.jsonl"])

    def test_follow_finished_file(self, capsys, tmp_path):
        path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "--jobs", "5", "--seed", "2", "--out", str(path))
        out = run_cli(
            capsys, "trace", "--follow", str(path),
            "--poll", "0.02", "--idle-timeout", "0.1",
        )
        assert "followed" in out and "[PASS] Lemma 3" in out

    def test_follow_partial_trace_fails_loudly(self, capsys, tmp_path):
        """A tail that ends mid-run (writer died) must exit nonzero with the
        replay error, not a traceback."""
        path = tmp_path / "t.jsonl"
        run_cli(capsys, "trace", "--jobs", "5", "--seed", "2", "--out", str(path))
        lines = path.read_text().splitlines()
        partial = tmp_path / "partial.jsonl"
        partial.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        assert main(
            ["trace", "--follow", str(partial),
             "--poll", "0.02", "--idle-timeout", "0.1"]
        ) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_shard_trace_reverifies(self, capsys, tmp_path):
        path = tmp_path / "shard.jsonl"
        out = run_cli(
            capsys, "shard", "--machines", "2", "--jobs", "8", "--serial",
            "--trace", str(path),
        )
        assert path.exists()
        assert "streamed re-verification: OK" in out
        assert "PASS Lemma 3" in out

    def test_chaos_sink_gzip(self, capsys, tmp_path):
        path = tmp_path / "chaos.jsonl.gz"
        assert main(
            ["chaos", "--seed", "5", "--n", "1", "--jobs", "5",
             "--out", str(path), "--sink", "gzip"]
        ) == 0
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        from repro.runtime.chaos import verify_campaign_trace

        verdicts = verify_campaign_trace(path)
        assert len(verdicts) == 1 and verdicts[0].ok
