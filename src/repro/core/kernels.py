"""Closed-form kernels for the ``P(s) = s**alpha`` weight dynamics.

Both algorithms in the paper set the machine speed from a *weight-like*
quantity ``X`` through the power-equals-weight rule ``P(s) = X``, i.e.
``s = X**(1/alpha)``.  While a single job of density ``rho`` is being
processed, ``X`` then obeys one of two autonomous ODEs:

* **decay** (Algorithm C; ``X`` = remaining weight):   ``dX/dt = -rho * X**(1/alpha)``
* **growth** (Algorithm NC; ``X`` = offset + processed weight): ``dX/dt = +rho * X**(1/alpha)``

With ``beta = 1 - 1/alpha`` both have the closed form ``X(t)**beta = X(0)**beta
∓ rho*beta*t`` — ``X**beta`` is *linear in time*.  Every function below is an
exact consequence of that linearity; the simulators lean on them to advance
between scheduler events in one step and to integrate energy and fractional
flow-time to machine precision.

All functions take ``alpha`` explicitly rather than a :class:`PowerLaw` to keep
this module dependency-free and trivially testable against numeric quadrature.
"""

from __future__ import annotations

import math

from .errors import KernelDomainError

__all__ = [
    "beta_of",
    "speed_at",
    "decay_weight_after",
    "decay_time_between",
    "decay_time_to_zero",
    "decay_energy_between",
    "decay_flow_integral",
    "growth_weight_after",
    "growth_time_between",
    "growth_energy_between",
    "growth_flow_integral",
]


def beta_of(alpha: float) -> float:
    """The exponent ``beta = 1 - 1/alpha`` governing the linearised dynamics."""
    if not alpha > 1.0:
        raise KernelDomainError(f"alpha must exceed 1, got {alpha}", x=None, rho=None, t=None)
    return 1.0 - 1.0 / alpha


def speed_at(weight: float, alpha: float) -> float:
    """Speed from the power-equals-weight rule: ``s = weight**(1/alpha)``."""
    if not alpha > 1.0:
        raise KernelDomainError(f"alpha must exceed 1, got {alpha}", x=weight, rho=None, t=None)
    if weight < 0:
        raise KernelDomainError(
            f"weight must be non-negative, got {weight}", x=weight, rho=None, t=None
        )
    return weight ** (1.0 / alpha)


# ---------------------------------------------------------------------------
# Decay dynamics: dX/dt = -rho * X**(1/alpha)   (Algorithm C)
# ---------------------------------------------------------------------------


def decay_weight_after(w0: float, rho: float, t: float, alpha: float) -> float:
    """Remaining weight after time ``t`` of decay starting from ``w0``.

    ``X(t) = (w0**beta - rho*beta*t)**(1/beta)``; returns 0 once the weight is
    exhausted (at ``t == decay_time_to_zero(w0, rho, alpha)``).
    """
    _check(w0, rho, t)
    beta = beta_of(alpha)
    base = w0**beta - rho * beta * t
    if base <= 0.0:
        return 0.0
    return base ** (1.0 / beta)


def decay_time_between(w0: float, w1: float, rho: float, alpha: float) -> float:
    """Time for the decay to fall from weight ``w0`` to ``w1 <= w0``."""
    _check(w0, rho)
    if not 0.0 <= w1 <= w0 * (1 + 1e-12):
        raise ValueError(f"need 0 <= w1 <= w0, got w1={w1}, w0={w0}")
    beta = beta_of(alpha)
    return max(0.0, (w0**beta - w1**beta) / (rho * beta))


def decay_time_to_zero(w0: float, rho: float, alpha: float) -> float:
    """Time for the decay to exhaust weight ``w0`` entirely.

    Finite for every ``alpha > 1`` — the power-equals-weight rule always
    finishes in bounded time (unlike exponential decay).
    """
    return decay_time_between(w0, 0.0, rho, alpha)


def decay_energy_between(w0: float, w1: float, rho: float, alpha: float) -> float:
    """Energy consumed while the decay falls from ``w0`` to ``w1``.

    Under ``P(s) = X`` the energy is ``∫ X dt``; substituting ``dt = dX /
    (rho X**(1/alpha))`` gives the exact value
    ``(w0**(1+beta) - w1**(1+beta)) / (rho * (1+beta))``.
    """
    _check(w0, rho)
    if not 0.0 <= w1 <= w0 * (1 + 1e-12):
        raise ValueError(f"need 0 <= w1 <= w0, got w1={w1}, w0={w0}")
    beta = beta_of(alpha)
    return max(0.0, (w0 ** (1.0 + beta) - w1 ** (1.0 + beta)) / (rho * (1.0 + beta)))


def decay_flow_integral(w0: float, rho: float, tau: float, alpha: float) -> float:
    """``∫_0^tau processed_volume(t) dt`` for a decay segment of length ``tau``.

    The volume processed by time ``t`` is ``(w0 - X(t)) / rho`` (weight drops
    at ``rho`` per unit volume), so the integral equals
    ``(w0*tau - ∫_0^tau X dt) / rho`` and ``∫ X dt`` is exactly the segment
    energy.  Used for exact fractional flow-time accounting.
    """
    _check(w0, rho, tau)
    if tau == 0.0:
        # Exact zero: the w0 -> w0**beta -> w0 round trip below is off by an
        # ulp, and the two rho divisions amplify that into O(ulp/rho**2).
        return 0.0
    w_end = decay_weight_after(w0, rho, tau, alpha)
    energy = decay_energy_between(w0, w_end, rho, alpha)
    return (w0 * tau - energy) / rho


# ---------------------------------------------------------------------------
# Growth dynamics: dX/dt = +rho * X**(1/alpha)   (Algorithm NC)
# ---------------------------------------------------------------------------


def growth_weight_after(u0: float, rho: float, t: float, alpha: float) -> float:
    """Weight-like quantity after time ``t`` of growth starting from ``u0``.

    ``X(t) = (u0**beta + rho*beta*t)**(1/beta)``.  Note that growth from
    ``u0 == 0`` is well defined and positive for ``t > 0`` — this is the
    non-trivial solution of the degenerate ODE, and it is exactly the time
    reversal of the clairvoyant decay curve (Fig. 1b of the paper); it is why
    Algorithm NC needs no ``epsilon`` bootstrap in the uniform-density case.
    """
    _check(u0, rho, t)
    beta = beta_of(alpha)
    return (u0**beta + rho * beta * t) ** (1.0 / beta)


def growth_time_between(u0: float, u1: float, rho: float, alpha: float) -> float:
    """Time for the growth to rise from ``u0`` to ``u1 >= u0``."""
    _check(u0, rho)
    if u1 < u0 * (1 - 1e-12):
        raise ValueError(f"need u1 >= u0, got u1={u1}, u0={u0}")
    beta = beta_of(alpha)
    return max(0.0, (u1**beta - u0**beta) / (rho * beta))


def growth_energy_between(u0: float, u1: float, rho: float, alpha: float) -> float:
    """Energy consumed while the growth rises from ``u0`` to ``u1``.

    Mirrors :func:`decay_energy_between`; the two agree on matching endpoints,
    which is the single-job version of Lemma 3 (energy equality of Algorithms
    C and NC).
    """
    _check(u0, rho)
    if u1 < u0 * (1 - 1e-12):
        raise ValueError(f"need u1 >= u0, got u1={u1}, u0={u0}")
    beta = beta_of(alpha)
    return max(0.0, (u1 ** (1.0 + beta) - u0 ** (1.0 + beta)) / (rho * (1.0 + beta)))


def growth_flow_integral(u0: float, rho: float, tau: float, alpha: float) -> float:
    """``∫_0^tau processed_volume(t) dt`` for a growth segment of length ``tau``.

    Volume processed by time ``t`` is ``(X(t) - u0) / rho``, so the integral is
    ``(∫_0^tau X dt - u0*tau) / rho = (energy - u0*tau) / rho``.
    """
    _check(u0, rho, tau)
    if tau == 0.0:
        # Same ulp round-trip hazard as decay_flow_integral.
        return 0.0
    u_end = growth_weight_after(u0, rho, tau, alpha)
    energy = growth_energy_between(u0, u_end, rho, alpha)
    return (energy - u0 * tau) / rho


def _check(x: float, rho: float, t: float | None = None) -> None:
    if x < 0 or not math.isfinite(x):
        raise KernelDomainError(
            f"weight must be finite and non-negative, got {x}", x=x, rho=rho, t=t
        )
    if rho <= 0 or not math.isfinite(rho):
        raise KernelDomainError(
            f"density must be finite and positive, got {rho}", x=x, rho=rho, t=t
        )
    if t is not None and (t < 0 or not math.isfinite(t)):
        raise KernelDomainError(
            f"time must be finite and non-negative, got {t}", x=x, rho=rho, t=t
        )
