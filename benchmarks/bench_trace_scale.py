"""Bounded-memory verification of million-event traces (ISSUE 8 acceptance).

Synthesizes a trace of >= 10^6 events as a *generator* — one traced (C, NC)
pair repeated as supervisor attempts separated by ``retry`` boundaries, so
the one-pass replayer keeps only the final attempt live — and drives
:func:`repro.analysis.trace_report.build_report` over it while tracemalloc
watches the Python heap.  The claims pinned here:

* ``trace_peak_mb`` — peak heap while verifying the 10^6-event stream.
  Gated one-sided by ``scripts/check_bench_regression.py
  --max-trace-peak-mb``: streaming verification must fit in a fixed ceiling
  no matter how long the trace is.
* ``trace_peak_ratio`` — peak at 10^6 events over peak at 10^4 events.
  Asserted <= 2.0 in-bench: the aggregator's memory is a function of the
  *job count*, not the event count (100x more events, ~1x the memory).
* ``in_memory_peak_mb`` — the differential twin
  (:func:`build_report_in_memory`) on a materialized 10^5-event list, for
  scale: the list path's peak grows linearly with the trace and already
  dwarfs the streaming ceiling at a tenth of the gated length.
* Event counts and the replayed invariant verdicts are deterministic and
  land in the JSON artifact, so a silent change in what the synthesized
  trace contains is caught by the baseline diff.

``ru_maxrss`` is recorded informationally (whole-process high-water mark;
it never shrinks, so only the first measurement in the process is sharp).
"""

from __future__ import annotations

import resource
import time
import tracemalloc
from typing import Iterator

from repro.algorithms.clairvoyant import simulate_clairvoyant
from repro.algorithms.nc_uniform import simulate_nc_uniform
from repro.analysis import format_table
from repro.analysis.trace_report import build_report, build_report_in_memory
from repro.core.power import PowerLaw
from repro.core.shadow import SimulationContext
from repro.core.tracing import MemoryRecorder, TraceEvent
from repro.workloads import random_instance

from conftest import emit, emit_json

ALPHA = 3.0
SEED = 808
JOBS = 8
#: The ISSUE's acceptance point and the small reference point.
TARGET_LARGE = 1_000_000
TARGET_SMALL = 10_000
TARGET_IN_MEMORY = 100_000
#: Streaming peak may drift this factor across a 100x event-count spread.
MAX_PEAK_RATIO = 2.0


def _base_attempt() -> tuple[TraceEvent, list[TraceEvent]]:
    """One traced (C, NC) pair: ``(run_meta header, body events)``."""
    inst = random_instance(JOBS, seed=SEED, volume="exponential", density="unit")
    power = PowerLaw(ALPHA)
    rec = MemoryRecorder()
    context = SimulationContext(power, recorder=rec)
    context.emit(
        "run_meta",
        0.0,
        "harness",
        alpha=ALPHA,
        instance=[[j.job_id, j.release, j.volume, j.density] for j in inst],
    )
    simulate_clairvoyant(inst, power, context=context)
    simulate_nc_uniform(inst, power, context=context)
    events = list(rec)
    return events[0], events[1:]


def _retry(component: str) -> TraceEvent:
    return TraceEvent(
        kind="retry", sim_time=0.0, wall_time=0.0, component=component,
        payload={"reason": "bench_trace_scale"},
    )


def synthesize(target: int) -> tuple[Iterator[TraceEvent], int]:
    """A generator of >= ``target`` events and its exact length.

    The header is emitted once; the pair body repeats as attempts separated
    by ``retry`` events on C and NC, exactly the shape a supervised run
    leaves behind.  Nothing is materialized — each attempt re-yields the
    same ~200 base events, so the *source* is O(1) memory too and any peak
    observed belongs to the verifier.
    """
    header, body = _base_attempt()
    per_attempt = len(body) + 2  # + the two retry events
    attempts = max(1, -(-(target + 1) // per_attempt))
    total = 1 + attempts * len(body) + (attempts - 1) * 2
    assert total >= target

    def gen() -> Iterator[TraceEvent]:
        yield header
        for k in range(attempts):
            if k:
                yield _retry("C")
                yield _retry("NC")
            yield from body

    return gen(), total


def _streaming_peak(target: int) -> dict:
    events, total = synthesize(target)
    tracemalloc.start()
    tracemalloc.reset_peak()
    t0 = time.perf_counter()
    report = build_report(events)
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert report.n_events == total
    assert report.ok, [c for c in report.checks if not c.holds]
    return {
        "events": total,
        "trace_peak_mb": peak / 2**20,
        "wall_clock_s": wall,
        "events_per_s": total / wall,
        "n_checks": len(report.checks),
        "checks_hold": all(c.holds for c in report.checks),
    }


def _in_memory_peak(target: int) -> dict:
    events, total = synthesize(target)
    tracemalloc.start()
    tracemalloc.reset_peak()
    t0 = time.perf_counter()
    report = build_report_in_memory(events)
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert report.n_events == total
    return {
        "events": total,
        "in_memory_peak_mb": peak / 2**20,
        "wall_clock_s": wall,
        "checks_hold": all(c.holds for c in report.checks),
    }


def _measure() -> dict:
    small = _streaming_peak(TARGET_SMALL)
    large = _streaming_peak(TARGET_LARGE)
    in_mem = _in_memory_peak(TARGET_IN_MEMORY)
    return {
        "streaming_small": small,
        "streaming_large": large,
        "in_memory": in_mem,
        "trace_peak_ratio": large["trace_peak_mb"] / small["trace_peak_mb"],
        "ru_maxrss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024,
        "max_peak_ratio": MAX_PEAK_RATIO,
    }


def test_trace_scale(benchmark):
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    small, large, in_mem = (
        result["streaming_small"], result["streaming_large"], result["in_memory"]
    )

    table = format_table(
        ["path", "events", "peak MB", "wall s", "events/s"],
        [
            ["streaming", small["events"], f"{small['trace_peak_mb']:.2f}",
             f"{small['wall_clock_s']:.2f}", f"{small['events_per_s']:.0f}"],
            ["streaming", large["events"], f"{large['trace_peak_mb']:.2f}",
             f"{large['wall_clock_s']:.2f}", f"{large['events_per_s']:.0f}"],
            ["in-memory", in_mem["events"], f"{in_mem['in_memory_peak_mb']:.2f}",
             f"{in_mem['wall_clock_s']:.2f}", "—"],
        ],
        title=f"trace verification peak heap (ratio 1e6/1e4 = "
        f"{result['trace_peak_ratio']:.2f}, ru_maxrss "
        f"{result['ru_maxrss_mb']:.0f} MB)",
    )
    emit("trace_scale", table)
    emit_json("trace_scale", result)

    assert large["events"] >= 1_000_000
    assert large["checks_hold"] and small["checks_hold"]
    # The bounded-memory claim: 100x the events, (about) the same peak.
    assert result["trace_peak_ratio"] <= MAX_PEAK_RATIO, (
        f"streaming peak grew {result['trace_peak_ratio']:.2f}x from 10^4 to "
        f"10^6 events — the aggregators are no longer event-count independent"
    )
    # And the twin really does pay linearly: at a tenth of the length it
    # already uses far more heap than the streaming ceiling.
    assert in_mem["in_memory_peak_mb"] > 4 * large["trace_peak_mb"]
