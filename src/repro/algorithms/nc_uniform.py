"""Algorithm NC — the non-clairvoyant algorithm for uniform densities (§3).

Scheduling rule: **first-in first-out** — always run the active job with the
earliest release.  Speed rule: while processing job ``j`` at time ``t``,

    ``P(s(t)) = W^C(r[j]-) + W̆[j](t)``

where ``W^C(r[j]-)`` is the remaining weight of *Algorithm C simulated on the
prefix instance* (all jobs released strictly before ``r[j]``, whose volumes NC
has already learned by completing them — FIFO guarantees this) just before
``r[j]``, and ``W̆[j](t)`` is the weight of ``j`` that NC has processed so far.

Guarantees reproduced by the test-suite as *equalities*:

* Lemma 3 — energy(NC) == energy(C);
* Lemma 4 — fractional flow(NC) == fractional flow(C) / (1 − 1/α);
* Theorem 5 — NC is ``2 + 1/(α−1)``-competitive (fractional);
* Lemma 8 / Theorem 9 — ``3 + 1/(α−1)``-competitive (integral).

For ``P(s)=s**alpha`` the dynamics while a job runs are the growth kernel
``dU/dt = rho·U**(1/alpha)`` with ``U = W^C(r[j]-) + W̆[j]``, so the whole run
is computed in closed form: one :class:`~repro.core.schedule.GrowthSegment`
per job.  Note that the speed while processing ``j`` depends only on ``j``'s
own progress and on jobs released *before* ``j`` — later arrivals never change
it — which is why the simulation is a single FIFO pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.engine import NumericEngine, SchedulingPolicy
from ..core.errors import InvalidInstanceError, SimulationError
from ..core.job import Instance
from ..core.kernels import growth_time_between
from ..core.power import PowerFunction, PowerLaw
from ..core.schedule import GrowthSegment, Schedule, ScheduleBuilder
from ..core.shadow import PrefixWeightOracle, SimulationContext
from .clairvoyant import ClairvoyantPolicy

__all__ = ["NCUniformRun", "simulate_nc_uniform", "NCUniformPolicy"]


@dataclass(frozen=True)
class NCUniformRun:
    """Outcome of an exact Algorithm NC simulation.

    ``offsets`` maps each job id to its speed-rule constant ``W^C(r[j]-)``;
    ``starts`` maps each job to the time NC began processing it.
    """

    instance: Instance
    power: PowerLaw
    schedule: Schedule
    offsets: dict[int, float]
    starts: dict[int, float]

    def processed_weight_at(self, job_id: int, t: float) -> float:
        """``W̆[j](t)`` — the weight of job ``j`` processed by time ``t``."""
        job = self.instance[job_id]
        return job.density * self.schedule.processed_volume_until(job_id, t)

    def completion_time(self, job_id: int) -> float:
        return self.schedule.completion_time(job_id, self.instance[job_id].volume)


def simulate_nc_uniform(
    instance: Instance,
    power: PowerLaw,
    *,
    context: SimulationContext | None = None,
    component: str = "NC",
) -> NCUniformRun:
    """Exact simulation of Algorithm NC on a uniform-density instance.

    All per-job speed-rule offsets ``W^C(r[j]-)`` come from **one**
    incrementally-extended clairvoyant shadow run (jobs are revealed to it in
    FIFO order, strictly-earlier releases first), not from per-job fresh
    simulations — the offsets are bit-identical either way, see
    :class:`~repro.core.shadow.PrefixWeightOracle`.
    """
    if not isinstance(power, PowerLaw):
        raise TypeError("analytic Algorithm NC requires a PowerLaw; use NCUniformPolicy otherwise")
    if not instance.is_uniform_density():
        raise InvalidInstanceError(
            "Algorithm NC (§3) requires uniform densities; "
            "use simulate_nc_general for the non-uniform case"
        )
    alpha = power.alpha
    builder = ScheduleBuilder()
    offsets: dict[int, float] = {}
    starts: dict[int, float] = {}
    if context is None:
        context = SimulationContext(power)
    oracle = context.prefix_oracle(component=f"{component}.prefix")
    recorder = context.recorder
    rec = recorder if recorder.enabled else None  # zero-overhead hoist
    filt = context.volume_filter  # fault reveal channel; None when unfaulted
    jobs = list(instance.jobs)
    revealed = 0
    t = 0.0
    for job in instance:  # FIFO == release order
        start = max(t, job.release)
        # The speed-rule constant: Algorithm C's remaining weight just before
        # r[j], over the prefix of already-completed (hence known) jobs.  The
        # oracle reads C's live state rather than re-integrating a schedule:
        # completed jobs are exactly absent, so no 1e-16 residue survives
        # (residues get amplified by the 1/beta exponent of the growth curve
        # when alpha is close to 1).
        while revealed < len(jobs) and jobs[revealed].release < job.release:
            prev = jobs[revealed]
            vol = prev.volume
            if filt is not None:
                vol = filt(prev.job_id, vol)
                if not (math.isfinite(vol) and vol > 0.0):
                    raise SimulationError(
                        f"revealed volume of job {prev.job_id} corrupted to {vol}",
                        time=job.release,
                        job=prev.job_id,
                        value=vol,
                    )
            oracle.add_job(prev.job_id, prev.release, prev.density, vol)
            revealed += 1
        offset = oracle.weight_at(job.release)
        offsets[job.job_id] = offset
        starts[job.job_id] = start
        # U grows from offset to offset + W[j]; the job completes when all of
        # its (only now revealed) weight has been processed.
        tau = growth_time_between(offset, offset + job.weight, job.density, alpha)
        builder.append(GrowthSegment(start, start + tau, job.job_id, offset, job.density, alpha))
        if rec is not None:
            rec.emit(
                "release",
                job.release,
                component,
                job=job.job_id,
                density=job.density,
                offset=offset,
            )
            rec.emit(
                "kernel_eval",
                start,
                component,
                profile="growth",
                t0=start,
                t1=start + tau,
                job=job.job_id,
                x0=offset,
                rho=job.density,
                alpha=alpha,
            )
            rec.emit("completion", start + tau, component, job=job.job_id)
        t = start + tau
    return NCUniformRun(
        instance=instance, power=power, schedule=builder.build(), offsets=offsets, starts=starts
    )


class NCUniformPolicy(SchedulingPolicy):
    """Algorithm NC as a policy for the generic numeric engine.

    Works for any power function (Lemmas 3 and 6 hold in that generality);
    the prefix shadow run of Algorithm C is analytic under a
    :class:`PowerLaw` and numeric otherwise.  The policy is honestly
    non-clairvoyant: it learns densities from ``on_release`` and volumes from
    ``on_completion`` only.
    """

    def __init__(
        self, power: PowerFunction, shadow_max_step: float = 1e-3, epsilon: float = 1e-6
    ) -> None:
        self.power = power
        self.shadow_max_step = shadow_max_step
        self.epsilon = epsilon
        self._released: dict[int, tuple[float, float]] = {}  # id -> (release, density)
        self._completed: dict[int, float] = {}  # id -> revealed volume
        self._active: list[int] = []  # FIFO queue
        self._offsets: dict[int, float] = {}
        self._starts: dict[int, float] = {}  # first time each job was driven
        #: incremental prefix shadow (PowerLaw only); jobs enter it as their
        #: volumes are revealed by completion.
        self._prefix_oracle: PrefixWeightOracle | None = None
        self._in_oracle: set[int] = set()

    def on_release(self, t: float, job_id: int, density: float) -> None:
        self._released[job_id] = (t, density)
        self._active.append(job_id)

    def on_completion(self, t: float, job_id: int, volume: float) -> None:
        self._completed[job_id] = volume
        self._active.remove(job_id)

    def select_job(self, t: float) -> int | None:
        return self._active[0] if self._active else None

    def speed(self, t: float, processed: dict[int, float]) -> float:
        job_id = self._active[0]
        release, density = self._released[job_id]
        offset = self._offsets.get(job_id)
        if offset is None:
            offset = self._prefix_remaining_weight(release)
            self._offsets[job_id] = offset
        self._starts.setdefault(job_id, t)
        u = offset + density * processed.get(job_id, 0.0)
        if u <= 0.0:
            # Degenerate start: P(s) = 0 + 0.  The growth ODE's non-trivial
            # solution (the time reversal of the clairvoyant decay; Fig 1b)
            # leaves zero immediately — follow it exactly for power laws,
            # epsilon-bootstrap otherwise (the paper's fix, §4).
            tau = max(t - self._starts[job_id], 0.0)
            if isinstance(self.power, PowerLaw) and tau > 0.0:
                from ..core.kernels import growth_weight_after

                u = growth_weight_after(0.0, density, tau, self.power.alpha)
            else:
                return self.epsilon
        return self.power.speed(u)

    def _prefix_remaining_weight(self, release: float) -> float:
        """``W^C(release-)`` from the jobs completed so far (all jobs released
        strictly before ``release``, by FIFO)."""
        from ..core.job import Job

        if isinstance(self.power, PowerLaw):
            # One incrementally-extended shadow run serves every offset
            # query; FIFO makes both the queries and the insertions monotone.
            if self._prefix_oracle is None:
                context = getattr(self, "context", None)
                self._prefix_oracle = (
                    context.prefix_oracle(power=self.power)
                    if context is not None and context.power is self.power
                    else PrefixWeightOracle(self.power.alpha)
                )
            for jid, (r, rho) in self._released.items():
                if r < release and jid not in self._in_oracle:
                    if jid not in self._completed:
                        raise SimulationError(
                            f"FIFO invariant broken: job {jid} released before {release} "
                            "has not completed when its successor starts"
                        )
                    self._prefix_oracle.add_job(jid, r, rho, self._completed[jid])
                    self._in_oracle.add(jid)
            return self._prefix_oracle.weight_at(release)

        prefix_jobs = []
        for jid, (r, rho) in self._released.items():
            if r < release:
                if jid not in self._completed:
                    raise SimulationError(
                        f"FIFO invariant broken: job {jid} released before {release} "
                        "has not completed when its successor starts"
                    )
                prefix_jobs.append(Job(jid, r, self._completed[jid], rho))
        if not prefix_jobs:
            return 0.0
        prefix = Instance(prefix_jobs)
        engine = NumericEngine(self.power, max_step=self.shadow_max_step)
        result = engine.run(prefix, ClairvoyantPolicy(prefix, self.power))
        total = 0.0
        for job in prefix:
            done = result.schedule.processed_volume_until(job.job_id, release)
            total += job.density * max(job.volume - done, 0.0)
        return total
