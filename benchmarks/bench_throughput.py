"""E16 — simulator throughput (library performance, not a paper artifact).

pytest-benchmark timings for the core simulators across instance sizes.  The
analytic paths are event-driven (O(n^2) worst case from the per-event weight
sum and the prefix shadow runs), so a 200-job stream should simulate in
milliseconds — this bench is the regression guard for that.
"""

from __future__ import annotations

import pytest

from repro import PowerLaw
from repro.algorithms import simulate_clairvoyant, simulate_nc_uniform
from repro.core import evaluate
from repro.parallel import simulate_nc_par
from repro.workloads import random_instance

POWER = PowerLaw(3.0)


@pytest.mark.parametrize("n", [50, 200])
def test_clairvoyant_throughput(benchmark, n):
    inst = random_instance(n, seed=5, rate=2.0)
    result = benchmark(lambda: simulate_clairvoyant(inst, POWER))
    assert result.schedule.end_time > 0


@pytest.mark.parametrize("n", [50, 200])
def test_nc_uniform_throughput(benchmark, n):
    inst = random_instance(n, seed=5, rate=2.0)
    result = benchmark(lambda: simulate_nc_uniform(inst, POWER))
    assert result.schedule.end_time > 0


def test_evaluate_throughput(benchmark):
    inst = random_instance(200, seed=5, rate=2.0)
    sched = simulate_clairvoyant(inst, POWER).schedule
    rep = benchmark(lambda: evaluate(sched, inst, POWER))
    assert rep.energy > 0


def test_nc_par_throughput(benchmark):
    inst = random_instance(100, seed=5, rate=2.0)
    run = benchmark(lambda: simulate_nc_par(inst, POWER, 8))
    assert run.machines == 8
